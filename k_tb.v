`timescale 1ns/1ps

module k_tb;
  localparam EXPECTED_FIRES = 5828;
  reg clk = 0;
  reg rst = 1;
  wire kernel_fire;
  integer fires = 0;
  integer cycles = 0;
  reg  [31:0] s0_stream0_cnt = 0;
  wire s0_stream0_ready;
  wire [31:0] port_s0_f0;
  wire [31:0] port_s0_f1;
  wire [31:0] port_s0_f2;
  wire [31:0] port_s0_f3;
  wire [31:0] port_s0_f4;
  k_top dut (
    .clk(clk), .rst(rst), .kernel_ready(1'b1),
    .kernel_fire(kernel_fire),
    .s0_stream0_valid(1'b1), .s0_stream0_data(s0_stream0_cnt), .s0_stream0_ready(s0_stream0_ready),
    .port_s0_f0(port_s0_f0),
    .port_s0_f1(port_s0_f1),
    .port_s0_f2(port_s0_f2),
    .port_s0_f3(port_s0_f3),
    .port_s0_f4(port_s0_f4)
  );

  always #2.5 clk = ~clk;

  always @(posedge clk) begin
    if (!rst) begin
      cycles <= cycles + 1;
      if (s0_stream0_ready) s0_stream0_cnt <= s0_stream0_cnt + 1;
      if (kernel_fire) fires <= fires + 1;
      if (fires == EXPECTED_FIRES) begin
        $display("PASS: %0d fires in %0d cycles", fires, cycles);
        $finish;
      end
      if (cycles > 64 * EXPECTED_FIRES + 100000) begin
        $display("FAIL: timeout with %0d fires", fires);
        $finish;
      end
    end
  end

  initial begin
    repeat (4) @(posedge clk);
    rst = 0;
  end
endmodule
