#pragma once

#include <string>

#include "arch/design.hpp"
#include "stencil/program.hpp"

namespace nup::codegen {

/// Emits the Fig 4-style transformed computation kernel for HLS: all memory
/// accesses are replaced by reads of volatile stream pointers (one per
/// array reference, in the order of the original code) and the innermost
/// loop carries a pipeline pragma. The arithmetic body is emitted as a call
/// to an extern `stencil_op` so any kernel function can be linked in.
std::string emit_transformed_kernel(const stencil::StencilProgram& program);

/// Emits the original Fig 1-style source of the computation (for reports
/// and round-trip tests with the frontend).
std::string emit_original_code(const stencil::StencilProgram& program);

/// Emits a C++ integration header describing the generated memory system:
/// stream/port layout of the top module, FIFO depths, and segment mapping.
/// Downstream users compile against this to hook the accelerator up.
std::string emit_integration_header(const stencil::StencilProgram& program,
                                    const arch::AcceleratorDesign& design);

}  // namespace nup::codegen
