#include "codegen/verilog.hpp"

#include <cctype>
#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace nup::codegen {

namespace {

std::string sanitize(const std::string& name) {
  std::string out;
  for (char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c))
                      ? static_cast<char>(std::tolower(
                            static_cast<unsigned char>(c)))
                      : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), 'm');
  }
  return out;
}

std::string prefix_of(const stencil::StencilProgram& program,
                      const VerilogOptions& options) {
  return options.module_prefix.empty() ? sanitize(program.name())
                                       : options.module_prefix;
}

/// Emits the shared synchronous FIFO with registered occupancy count and
/// same-cycle flow-through handled by the surrounding advance logic.
void emit_fifo_module(std::ostringstream& out, const std::string& prefix) {
  out << "module " << prefix << "_reuse_fifo #(\n"
      << "    parameter DEPTH = 2,\n"
      << "    parameter WIDTH = 32,\n"
      << "    parameter ADDR  = 1\n"
      << ") (\n"
      << "    input  wire             clk,\n"
      << "    input  wire             rst,\n"
      << "    input  wire             wr_en,\n"
      << "    input  wire [WIDTH-1:0] wr_data,\n"
      << "    input  wire             rd_en,\n"
      << "    output wire [WIDTH-1:0] rd_data,\n"
      << "    output wire             full,\n"
      << "    output wire             empty\n"
      << ");\n"
      << "  reg [WIDTH-1:0] mem [0:DEPTH-1];\n"
      << "  reg [ADDR:0]    count;\n"
      << "  reg [ADDR:0]    rd_ptr;\n"
      << "  reg [ADDR:0]    wr_ptr;\n"
      << "  assign empty   = (count == 0);\n"
      << "  assign full    = (count == DEPTH);\n"
      << "  assign rd_data = mem[rd_ptr[ADDR-1:0]];\n"
      << "  always @(posedge clk) begin\n"
      << "    if (rst) begin\n"
      << "      count  <= 0;\n"
      << "      rd_ptr <= 0;\n"
      << "      wr_ptr <= 0;\n"
      << "    end else begin\n"
      << "      if (wr_en) begin\n"
      << "        mem[wr_ptr[ADDR-1:0]] <= wr_data;\n"
      << "        wr_ptr <= (wr_ptr[ADDR-1:0] == DEPTH-1) ? 0 : wr_ptr + 1;\n"
      << "      end\n"
      << "      if (rd_en) begin\n"
      << "        rd_ptr <= (rd_ptr[ADDR-1:0] == DEPTH-1) ? 0 : rd_ptr + 1;\n"
      << "      end\n"
      << "      count <= count + (wr_en ? 1 : 0) - (rd_en ? 1 : 0);\n"
      << "    end\n"
      << "  end\n"
      << "endmodule\n\n";
}

int addr_bits(std::int64_t depth) {
  int bits = 1;
  while ((std::int64_t{1} << bits) < depth) ++bits;
  return bits;
}

/// Renders the D_Ax membership test over the counter registers.
std::string membership_expr(const poly::Domain& domain) {
  std::vector<std::string> pieces;
  for (const poly::Polyhedron& piece : domain.pieces()) {
    std::vector<std::string> terms;
    for (const poly::Constraint& c : piece.constraints()) {
      std::string expr;
      bool first = true;
      for (std::size_t d = 0; d < c.expr.coeffs.size(); ++d) {
        const std::int64_t a = c.expr.coeffs[d];
        if (a == 0) continue;
        if (!first) expr += " + ";
        expr.append("(").append(std::to_string(a)).append(") * cnt");
        expr.append(std::to_string(d));
        first = false;
      }
      if (first) expr = "0";
      expr.append(" + (").append(std::to_string(c.expr.constant));
      expr.append(") >= 0");
      terms.push_back("(" + expr + ")");
    }
    pieces.push_back("(" + join(terms, " && ") + ")");
  }
  return join(pieces, " || ");
}

/// Emits one data filter: the input counter iterates the streamed hull box
/// in lexicographic order; `member` decides forward vs discard (Fig 10).
void emit_filter_module(std::ostringstream& out, const std::string& prefix,
                        const std::string& name, const poly::IntVec& lo,
                        const poly::IntVec& hi,
                        const poly::Domain& out_domain, int width) {
  const std::size_t m = lo.size();
  out << "module " << prefix << "_" << name << " #(\n"
      << "    parameter WIDTH = " << width << "\n"
      << ") (\n"
      << "    input  wire             clk,\n"
      << "    input  wire             rst,\n"
      << "    input  wire             consume,\n"
      << "    output wire             member\n"
      << ");\n";
  for (std::size_t d = 0; d < m; ++d) {
    out << "  reg signed [31:0] cnt" << d << ";\n";
  }
  out << "  assign member = " << membership_expr(out_domain) << ";\n";
  out << "  always @(posedge clk) begin\n"
      << "    if (rst) begin\n";
  for (std::size_t d = 0; d < m; ++d) {
    out << "      cnt" << d << " <= " << lo[d] << ";\n";
  }
  out << "    end else if (consume) begin\n";
  // Nested lexicographic increment with wrap-and-carry.
  std::string indent = "      ";
  for (std::size_t d = m; d-- > 0;) {
    const std::size_t level = d;
    if (level == 0) {
      out << indent << "cnt0 <= cnt0 + 1;\n";
    } else {
      out << indent << "if (cnt" << level << " != " << hi[level]
          << ") begin\n"
          << indent << "  cnt" << level << " <= cnt" << level << " + 1;\n"
          << indent << "end else begin\n"
          << indent << "  cnt" << level << " <= " << lo[level] << ";\n";
      indent += "  ";
    }
  }
  for (std::size_t d = 1; d < m; ++d) {
    indent.resize(indent.size() - 2);
    out << indent << "end\n";
  }
  out << "    end\n"
      << "  end\n"
      << "endmodule\n\n";
}

struct SystemNames {
  std::vector<std::string> filter_modules;
};

}  // namespace

std::string emit_verilog(const stencil::StencilProgram& program,
                         const arch::AcceleratorDesign& design,
                         const VerilogOptions& options) {
  const std::string prefix = prefix_of(program, options);
  const int width = options.data_width;
  std::ostringstream out;

  out << "// Generated by the non-uniform reuse-buffer design flow (DAC'14\n"
      << "// microarchitecture). Program: " << program.name() << "\n"
      << "//\n";
  {
    std::istringstream code(program.to_c_code());
    std::string line;
    while (std::getline(code, line)) out << "// " << line << "\n";
  }
  out << "\n`timescale 1ns/1ps\n\n";

  emit_fifo_module(out, prefix);

  // Filters.
  std::vector<SystemNames> names(design.systems.size());
  for (std::size_t s = 0; s < design.systems.size(); ++s) {
    const arch::MemorySystem& sys = design.systems[s];
    poly::IntVec lo;
    poly::IntVec hi;
    if (!program.data_domain_hull(sys.array_index).as_single_box(&lo, &hi)) {
      throw Error("emit_verilog: hull is not a box");
    }
    for (std::size_t k = 0; k < sys.filter_count(); ++k) {
      const std::string name =
          "filter_s" + std::to_string(s) + "_f" + std::to_string(k);
      names[s].filter_modules.push_back(prefix + "_" + name);
      emit_filter_module(
          out, prefix, name, lo, hi,
          program.iteration().translated(sys.ordered_offsets[k]), width);
    }
  }

  // Top module.
  out << "module " << prefix << "_top (\n"
      << "    input  wire        clk,\n"
      << "    input  wire        rst,\n"
      << "    input  wire        kernel_ready,\n"
      << "    output wire        kernel_fire,\n";
  for (std::size_t s = 0; s < design.systems.size(); ++s) {
    const arch::MemorySystem& sys = design.systems[s];
    const std::vector<std::size_t> heads = sys.segment_heads();
    for (std::size_t seg = 0; seg < heads.size(); ++seg) {
      std::string sn = "s";
      sn.append(std::to_string(s)).append("_stream");
      sn.append(std::to_string(seg));
      out << "    input  wire        " << sn << "_valid,\n"
          << "    input  wire [" << width - 1 << ":0] " << sn << "_data,\n"
          << "    output wire        " << sn << "_ready,\n";
    }
    for (std::size_t k = 0; k < sys.filter_count(); ++k) {
      out << "    output wire [" << width - 1 << ":0] port_s"
          << s << "_f" << k;
      const bool last = s + 1 == design.systems.size() &&
                        k + 1 == sys.filter_count();
      out << (last ? "\n" : ",\n");
    }
  }
  out << ");\n";

  std::vector<std::string> fire_terms;
  for (std::size_t s = 0; s < design.systems.size(); ++s) {
    const arch::MemorySystem& sys = design.systems[s];
    const std::size_t n = sys.filter_count();
    const std::string S = "s" + std::to_string(s);
    // Per-filter wires.
    for (std::size_t k = 0; k < n; ++k) {
      const std::string F = S + "_f" + std::to_string(k);
      out << "  wire " << F << "_avail, " << F << "_member, " << F
          << "_adv_hyp, " << F << "_adv, " << F << "_space_hyp, " << F
          << "_space;\n"
          << "  wire [" << width - 1 << ":0] " << F << "_data;\n";
    }
    for (std::size_t k = 0; k + 1 < n; ++k) {
      if (sys.fifos[k].cut) continue;
      const std::string Q = S + "_q" + std::to_string(k);
      out << "  wire " << Q << "_full, " << Q << "_empty;\n"
          << "  wire [" << width - 1 << ":0] " << Q << "_rd_data;\n";
    }

    // Segment bookkeeping: which stream feeds each head filter.
    std::vector<std::size_t> segment_of(n, 0);
    {
      std::size_t seg = 0;
      for (std::size_t k = 0; k < n; ++k) {
        if (k > 0 && sys.fifos[k - 1].cut) ++seg;
        segment_of[k] = seg;
      }
    }

    for (std::size_t k = 0; k < n; ++k) {
      const std::string F = S + "_f" + std::to_string(k);
      const bool head = k == 0 || sys.fifos[k - 1].cut;
      if (head) {
        const std::string sn =
            S + "_stream" + std::to_string(segment_of[k]);
        out << "  assign " << F << "_avail = " << sn << "_valid;\n"
            << "  assign " << F << "_data  = " << sn << "_data;\n"
            << "  assign " << sn << "_ready = " << F << "_adv;\n";
      } else {
        const std::string Q = S + "_q" + std::to_string(k - 1);
        out << "  assign " << F << "_avail = !" << Q << "_empty;\n"
            << "  assign " << F << "_data  = " << Q << "_rd_data;\n";
      }
      out << "  " << names[s].filter_modules[k] << " #(.WIDTH(" << width
          << ")) u_" << F << " (.clk(clk), .rst(rst), .consume(" << F
          << "_adv), .member(" << F << "_member));\n"
          << "  assign port_" << F << " = " << F << "_data;\n";
    }

    // Space/advance chains, downstream to upstream (pure combinational,
    // acyclic: the hypothesis chain assumes the kernel fires, the actual
    // chain uses the resolved fire signal).
    for (std::size_t k = n; k-- > 0;) {
      const std::string F = S + "_f" + std::to_string(k);
      if (k + 1 == n || sys.fifos[k].cut) {
        out << "  assign " << F << "_space_hyp = 1'b1;\n"
            << "  assign " << F << "_space = 1'b1;\n";
      } else {
        const std::string Q = S + "_q" + std::to_string(k);
        const std::string Fn = S + "_f" + std::to_string(k + 1);
        out << "  assign " << F << "_space_hyp = !" << Q << "_full || "
            << Fn << "_adv_hyp;\n"
            << "  assign " << F << "_space = !" << Q << "_full || " << Fn
            << "_adv;\n";
      }
      out << "  assign " << F << "_adv_hyp = " << F << "_avail && " << F
          << "_space_hyp;\n"
          << "  assign " << F << "_adv = " << F << "_avail && " << F
          << "_space && (" << F << "_member ? kernel_fire : 1'b1);\n";
      fire_terms.push_back(F + "_adv_hyp && " + F + "_member");
    }

    // FIFO instances.
    for (std::size_t k = 0; k + 1 < n; ++k) {
      if (sys.fifos[k].cut) continue;
      const std::string Q = S + "_q" + std::to_string(k);
      const std::string F = S + "_f" + std::to_string(k);
      const std::string Fn = S + "_f" + std::to_string(k + 1);
      out << "  " << prefix << "_reuse_fifo #(.DEPTH("
          << sys.fifos[k].depth << "), .WIDTH(" << width << "), .ADDR("
          << addr_bits(sys.fifos[k].depth) << ")) u_" << Q
          << " (.clk(clk), .rst(rst), .wr_en(" << F << "_adv), .wr_data("
          << F << "_data), .rd_en(" << Fn << "_adv), .rd_data(" << Q
          << "_rd_data), .full(" << Q << "_full), .empty(" << Q
          << "_empty));\n";
    }
  }

  out << "  assign kernel_fire = kernel_ready";
  for (const std::string& term : fire_terms) out << "\n      && (" << term << ")";
  out << ";\n";
  out << "endmodule\n";
  return out.str();
}

std::string emit_testbench(const stencil::StencilProgram& program,
                           const arch::AcceleratorDesign& design,
                           const VerilogOptions& options) {
  const std::string prefix = prefix_of(program, options);
  const int width = options.data_width;
  std::ostringstream out;
  const std::int64_t expected = program.iteration().count();

  out << "`timescale 1ns/1ps\n\n"
      << "module " << prefix << "_tb;\n"
      << "  localparam EXPECTED_FIRES = " << expected << ";\n"
      << "  reg clk = 0;\n"
      << "  reg rst = 1;\n"
      << "  wire kernel_fire;\n"
      << "  integer fires = 0;\n"
      << "  integer cycles = 0;\n";

  std::vector<std::string> streams;
  std::vector<std::string> ports;
  for (std::size_t s = 0; s < design.systems.size(); ++s) {
    const arch::MemorySystem& sys = design.systems[s];
    for (std::size_t seg = 0; seg < sys.segment_heads().size(); ++seg) {
      std::string sn = "s";
      sn.append(std::to_string(s)).append("_stream");
      sn.append(std::to_string(seg));
      streams.push_back(std::move(sn));
    }
    for (std::size_t k = 0; k < sys.filter_count(); ++k) {
      ports.push_back("s" + std::to_string(s) + "_f" + std::to_string(k));
    }
  }
  for (const std::string& sn : streams) {
    out << "  reg  [" << width - 1 << ":0] " << sn << "_cnt = 0;\n"
        << "  wire " << sn << "_ready;\n";
  }
  for (const std::string& pn : ports) {
    out << "  wire [" << width - 1 << ":0] port_" << pn << ";\n";
  }

  out << "  " << prefix << "_top dut (\n"
      << "    .clk(clk), .rst(rst), .kernel_ready(1'b1),\n"
      << "    .kernel_fire(kernel_fire),\n";
  for (const std::string& sn : streams) {
    out << "    ." << sn << "_valid(1'b1), ." << sn << "_data(" << sn
        << "_cnt), ." << sn << "_ready(" << sn << "_ready),\n";
  }
  for (std::size_t i = 0; i < ports.size(); ++i) {
    out << "    .port_" << ports[i] << "(port_" << ports[i] << ")"
        << (i + 1 < ports.size() ? ",\n" : "\n");
  }
  out << "  );\n\n"
      << "  always #2.5 clk = ~clk;\n\n"
      << "  always @(posedge clk) begin\n"
      << "    if (!rst) begin\n"
      << "      cycles <= cycles + 1;\n";
  for (const std::string& sn : streams) {
    out << "      if (" << sn << "_ready) " << sn << "_cnt <= " << sn
        << "_cnt + 1;\n";
  }
  out << "      if (kernel_fire) fires <= fires + 1;\n"
      << "      if (fires == EXPECTED_FIRES) begin\n"
      << "        $display(\"PASS: %0d fires in %0d cycles\", fires, "
         "cycles);\n"
      << "        $finish;\n"
      << "      end\n"
      << "      if (cycles > 64 * EXPECTED_FIRES + 100000) begin\n"
      << "        $display(\"FAIL: timeout with %0d fires\", fires);\n"
      << "        $finish;\n"
      << "      end\n"
      << "    end\n"
      << "  end\n\n"
      << "  initial begin\n"
      << "    repeat (4) @(posedge clk);\n"
      << "    rst = 0;\n"
      << "  end\n"
      << "endmodule\n";
  return out.str();
}

std::string lint_verilog(const std::string& text) {
  long module_balance = 0;
  long begin_balance = 0;
  long case_balance = 0;
  std::set<std::string> defined;
  std::set<std::string> instantiated;

  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::string t = trim(line);
    if (starts_with(t, "//")) continue;
    std::istringstream words(t);
    std::string w0;
    words >> w0;
    if (w0 == "module") {
      ++module_balance;
      std::string name;
      words >> name;
      const std::size_t paren = name.find_first_of("(#; ");
      defined.insert(name.substr(0, paren));
    } else if (w0 == "endmodule") {
      --module_balance;
    }
    // Token-level begin/end/case balance.
    std::istringstream tokens(t);
    std::string tok;
    while (tokens >> tok) {
      if (tok == "begin") ++begin_balance;
      if (tok == "end") --begin_balance;
      if (tok == "case" || tok == "casez") ++case_balance;
      if (tok == "endcase") --case_balance;
    }
    // Instantiation heuristic: "<type> [#(...)] u_<name> (".
    if (!w0.empty() && w0 != "module" && t.find(" u_") != std::string::npos &&
        (std::isalpha(static_cast<unsigned char>(w0[0])) || w0[0] == '_') &&
        w0 != "assign" && w0 != "wire" && w0 != "reg" && w0 != "input" &&
        w0 != "output" && w0 != "if" && w0 != "end" && w0 != "always" &&
        w0 != "initial") {
      instantiated.insert(w0);
    }
  }
  if (module_balance != 0) return "unbalanced module/endmodule";
  if (begin_balance != 0) return "unbalanced begin/end";
  if (case_balance != 0) return "unbalanced case/endcase";
  for (const std::string& name : instantiated) {
    if (defined.find(name) == defined.end()) {
      return "instantiated module '" + name + "' is not defined";
    }
  }
  return "";
}

}  // namespace nup::codegen
