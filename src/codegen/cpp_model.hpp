#pragma once

#include <string>

#include "arch/design.hpp"
#include "stencil/program.hpp"

namespace nup::codegen {

/// Emits a standalone, dependency-free C++17 source file that simulates
/// the generated memory system(s) -- the C co-simulation model an HLS user
/// would run next to the RTL. The model streams ramp data (element k of
/// each array's input stream carries the value k), applies exactly the
/// splitter/FIFO/filter semantics of the microarchitecture, and prints
///
///   FIRES=<n> CYCLES=<m> CHECKSUM=<16-hex-digits>
///
/// where the checksum is an FNV-1a hash over (fire index, port index,
/// delivered element) triples. The same checksum can be computed
/// analytically from the rank oracle, so a single string comparison
/// validates the whole run (tests/codegen/cpp_model_test.cpp compiles the
/// emitted file with the system compiler and does exactly that).
std::string emit_cpp_model(const stencil::StencilProgram& program,
                           const arch::AcceleratorDesign& design);

/// The FNV-1a checksum the emitted model computes, evaluated natively.
std::uint64_t expected_model_checksum(
    const stencil::StencilProgram& program,
    const arch::AcceleratorDesign& design);

}  // namespace nup::codegen
