#include "codegen/hls_cpp.hpp"

#include <cctype>
#include <sstream>

namespace nup::codegen {

namespace {

std::string identifier(const std::string& name) {
  std::string out;
  for (char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out;
}

}  // namespace

std::string emit_transformed_kernel(const stencil::StencilProgram& program) {
  std::ostringstream out;
  const std::vector<std::string> names = program.iteration_names();
  const std::int64_t iterations = program.iteration().count();

  out << "// Transformed computation kernel (Fig 4): memory accesses are\n"
      << "// offloaded to the generated memory system; each volatile pointer\n"
      << "// is one data port fed by a data filter.\n"
      << "#include \"stencil_op.h\"\n\n"
      << "void kernel_" << identifier(program.name()) << "(\n";
  std::vector<std::string> args;
  std::vector<std::string> reads;
  std::size_t slot = 0;
  for (const stencil::InputArray& input : program.inputs()) {
    for (const stencil::ArrayReference& ref : input.refs) {
      const std::string port =
          identifier(input.name) + "_" + std::to_string(slot);
      args.push_back("    volatile const float* " + port + "  // " +
                     ref.to_string(input.name, names));
      reads.push_back("      const float v" + std::to_string(slot) +
                      " = *" + port + ";  // " +
                      ref.to_string(input.name, names));
      ++slot;
    }
  }
  for (std::size_t i = 0; i < args.size(); ++i) {
    out << args[i] << (i + 1 < args.size() ? ",\n" : ",\n");
  }
  out << "    float* " << identifier(program.output_name()) << "_out) {\n"
      << "  for (long t = 0; t < " << iterations << "L; t++) {\n"
      << "#pragma HLS pipeline II=1\n";
  for (const std::string& read : reads) out << read << "\n";
  out << "    " << identifier(program.output_name())
      << "_out[t] = stencil_op(";
  for (std::size_t i = 0; i < slot; ++i) {
    out << "v" << i << (i + 1 < slot ? ", " : "");
  }
  out << ");\n"
      << "  }\n"
      << "}\n";
  return out.str();
}

std::string emit_original_code(const stencil::StencilProgram& program) {
  std::ostringstream out;
  out << "// Original user code (Fig 1 style) for " << program.name()
      << "\n"
      << program.to_c_code();
  return out.str();
}

std::string emit_integration_header(const stencil::StencilProgram& program,
                                    const arch::AcceleratorDesign& design) {
  std::ostringstream out;
  const std::string name = identifier(program.name());
  out << "// Integration description of the generated accelerator '"
      << program.name() << "'.\n"
      << "#pragma once\n\n"
      << "namespace " << name << "_accel {\n\n"
      << "inline constexpr long kIterations = "
      << program.iteration().count() << "L;\n"
      << "inline constexpr int kMemorySystems = "
      << design.systems.size() << ";\n\n";
  for (std::size_t s = 0; s < design.systems.size(); ++s) {
    const arch::MemorySystem& sys = design.systems[s];
    out << "// array " << sys.array << ": " << sys.filter_count()
        << " ports, " << sys.stream_count() << " off-chip stream(s)\n"
        << "inline constexpr int kPorts_" << identifier(sys.array) << " = "
        << sys.filter_count() << ";\n"
        << "inline constexpr long kFifoDepths_" << identifier(sys.array)
        << "[] = {";
    for (std::size_t k = 0; k < sys.fifos.size(); ++k) {
      out << (sys.fifos[k].cut ? 0 : sys.fifos[k].depth)
          << (k + 1 < sys.fifos.size() ? ", " : "");
    }
    if (sys.fifos.empty()) out << "0";
    out << "};\n";
  }
  out << "\n}  // namespace " << name << "_accel\n";
  return out.str();
}

}  // namespace nup::codegen
