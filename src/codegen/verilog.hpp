#pragma once

#include <string>

#include "arch/design.hpp"
#include "stencil/program.hpp"

namespace nup::codegen {

struct VerilogOptions {
  int data_width = 32;
  std::string module_prefix;  ///< defaults to a sanitized program name
};

/// Emits synthesizable Verilog-2001 for the generated microarchitecture:
/// one parameterized FIFO module, one data filter per array reference
/// (input counter over the streamed hull, polyhedral membership test for
/// D_Ax, Fig 10), data-path splitters folded into the chain wiring, and a
/// top-level module exposing the off-chip stream input(s) and one data port
/// per reference towards the computation kernel.
std::string emit_verilog(const stencil::StencilProgram& program,
                         const arch::AcceleratorDesign& design,
                         const VerilogOptions& options = {});

/// Emits a self-checking behavioural testbench that streams a ramp pattern
/// into the accelerator and asserts per-port data ordering.
std::string emit_testbench(const stencil::StencilProgram& program,
                           const arch::AcceleratorDesign& design,
                           const VerilogOptions& options = {});

/// Structural sanity check used by tests (no external tools offline): all
/// module/endmodule, begin/end and case/endcase pairs balance, and every
/// instantiated module is defined. Returns an empty string when clean, else
/// a diagnostic.
std::string lint_verilog(const std::string& text);

}  // namespace nup::codegen
