#include "util/error.hpp"

namespace nup {

ParseError::ParseError(const std::string& what, int line, int column)
    : Error(what + " (line " + std::to_string(line) + ", column " +
            std::to_string(column) + ")"),
      line_(line),
      column_(column) {}

}  // namespace nup
