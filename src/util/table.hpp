#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace nup {

/// Plain-text table formatter used by the benchmark harnesses to print the
/// paper's tables. Columns are sized to their widest cell; numeric-looking
/// cells are right-aligned, text cells left-aligned.
class TextTable {
 public:
  /// Optional title printed above the table.
  explicit TextTable(std::string title = "");

  /// Sets the header row. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Appends one data row; its width must match the header if one is set.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator at the current position.
  void add_separator();

  /// Renders the whole table, including title and borders.
  std::string to_string() const;

  /// Writes to_string() to `os`.
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Convenience cell constructors.
std::string cell(std::int64_t value);
std::string cell(double value, int digits = 2);

}  // namespace nup
