#pragma once

/// Dependency-free loopback TCP plumbing shared by the serving layers:
/// the observability exposition endpoint (obs::MetricsServer) and the
/// multi-tenant request front-end (serve::ServeEndpoint) both accept
/// scrapers / clients on 127.0.0.1 with the same blocking accept / read /
/// write code. Everything here is plain POSIX sockets behind small RAII
/// wrappers; no third-party dependency, loopback only (never a public
/// bind).

#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>

namespace nup::util {

/// Listening socket bound to 127.0.0.1:<port>. Construction binds and
/// listens; a failed bind leaves ok() false with an error() that names the
/// requested port (so a server refusing to start says which port was
/// taken instead of dying silently).
class LoopbackListener {
 public:
  /// `port` 0 binds an ephemeral port (read it back from port()).
  explicit LoopbackListener(int port, int backlog = 8);
  ~LoopbackListener();

  LoopbackListener(const LoopbackListener&) = delete;
  LoopbackListener& operator=(const LoopbackListener&) = delete;

  bool ok() const { return fd_ >= 0; }
  const std::string& error() const { return error_; }

  /// The bound port (the requested one, or the ephemeral pick for 0).
  int port() const { return port_; }

  /// Blocks until a client connects; returns the connection fd (caller
  /// closes it) or -1 once the listener was shut down. EINTR is retried.
  int accept_client();

  /// Unblocks accept_client() and closes the listening socket. Safe to
  /// call from another thread while an accept is in flight; idempotent.
  void shutdown();

 private:
  // Atomic: shutdown() races with a blocked accept_client() by design.
  std::atomic<int> fd_{-1};
  int port_ = 0;
  std::string error_;
};

/// Writes the whole buffer, retrying on EINTR and short writes. False on
/// any other error (the peer hung up).
bool write_all(int fd, const char* data, std::size_t n);
bool write_all(int fd, std::string_view data);

/// Incremental line reader over a connection fd: buffers whatever read()
/// returns and hands out one '\n'-terminated line at a time (terminator
/// stripped, a trailing '\r' too), so a request protocol never depends on
/// TCP segmentation.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Blocks until a full line is available. False on EOF / error with no
  /// complete line buffered (a final unterminated fragment is discarded --
  /// a protocol line that never ended was never a request).
  bool next_line(std::string* line);

 private:
  int fd_;
  std::string buffer_;
  bool eof_ = false;
};

/// Connects to 127.0.0.1:<port>; returns the fd or -1 (errno holds why).
/// Test and tooling helper -- production clients are in-process.
int connect_loopback(int port);

}  // namespace nup::util
