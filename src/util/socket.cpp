#include "util/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>

namespace nup::util {

LoopbackListener::LoopbackListener(int port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error_ = "socket: " + std::string(std::strerror(errno));
    return;
  }
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(fd_, backlog) < 0) {
    error_ = "bind port " + std::to_string(port) + ": " +
             std::string(std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    return;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
}

LoopbackListener::~LoopbackListener() { shutdown(); }

int LoopbackListener::accept_client() {
  for (;;) {
    const int fd = fd_.load();
    if (fd < 0) return -1;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client >= 0) return client;
    if (errno == EINTR) continue;
    return -1;  // listener shut down under us
  }
}

void LoopbackListener::shutdown() {
  // exchange() makes shutdown idempotent and publishes the closed state to
  // a concurrently blocked accept_client().
  const int fd = fd_.exchange(-1);
  if (fd < 0) return;
  ::shutdown(fd, SHUT_RDWR);  // unblocks a concurrent accept()
  ::close(fd);
}

bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    // MSG_NOSIGNAL: a peer hanging up mid-reply must surface as a failed
    // write, not kill the serving process with SIGPIPE.
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool write_all(int fd, std::string_view data) {
  return write_all(fd, data.data(), data.size());
}

bool LineReader::next_line(std::string* line) {
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buffer_, 0, nl);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      buffer_.erase(0, nl + 1);
      return true;
    }
    if (eof_) return false;
    char chunk[2048];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
    } else if (n == 0) {
      eof_ = true;
    } else if (errno != EINTR) {
      eof_ = true;
    }
  }
}

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace nup::util
