#pragma once

#include <cstdint>

namespace nup {

/// Deterministic 64-bit linear congruential generator (Knuth MMIX
/// constants). Used to fill synthetic grids and drive property tests so
/// every run is reproducible without seeding from the environment.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  std::uint64_t next_u64() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    // Output mixing: xorshift of the high bits, which have the longest
    // period in an LCG.
    std::uint64_t x = state_;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return x;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  std::uint64_t state_;
};

}  // namespace nup
