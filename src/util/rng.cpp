#include "util/rng.hpp"

// Rng is header-only; this translation unit exists so the library has a
// stable home for it if out-of-line helpers are added later.
