#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nup {

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits `text` on every occurrence of `sep` (single character). Empty
/// fields are preserved.
std::vector<std::string> split(const std::string& text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string trim(const std::string& text);

/// True if `text` begins with `prefix`.
bool starts_with(const std::string& text, const std::string& prefix);

/// Formats a double with `digits` digits after the decimal point.
std::string format_fixed(double value, int digits);

/// Formats an integer with thousands separators, e.g. 1234567 -> "1,234,567".
std::string format_grouped(std::int64_t value);

/// Formats a ratio as a signed percentage string, e.g. -0.662 -> "-66.2%".
std::string format_percent(double fraction, int digits = 1);

}  // namespace nup
