#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace nup {

namespace {

bool looks_numeric(const std::string& text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != '%' && c != ',') {
      return false;
    }
  }
  return true;
}

std::string pad(const std::string& text, std::size_t width, bool right) {
  if (text.size() >= width) return text;
  const std::string fill(width - text.size(), ' ');
  return right ? fill + text : text + fill;
}

}  // namespace

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size()) {
    throw Error("TextTable row width " + std::to_string(row.size()) +
                " does not match header width " +
                std::to_string(header_.size()));
  }
  rows_.push_back(Row{false, std::move(row)});
}

void TextTable::add_separator() { rows_.push_back(Row{true, {}}); }

std::string TextTable::to_string() const {
  std::size_t columns = header_.size();
  for (const Row& row : rows_) columns = std::max(columns, row.cells.size());

  std::vector<std::size_t> widths(columns, 0);
  auto account = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  account(header_);
  for (const Row& row : rows_) {
    if (!row.separator) account(row.cells);
  }

  auto render_rule = [&]() {
    std::string line = "+";
    for (std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t i = 0; i < columns; ++i) {
      const std::string text = i < cells.size() ? cells[i] : std::string();
      line.append(" ");
      line.append(pad(text, widths[i], looks_numeric(text)));
      line.append(" |");
    }
    line.append("\n");
    return line;
  };

  std::ostringstream out;
  if (!title_.empty()) out << title_ << "\n";
  out << render_rule();
  if (!header_.empty()) {
    out << render_row(header_);
    out << render_rule();
  }
  for (const Row& row : rows_) {
    if (row.separator) {
      out << render_rule();
    } else {
      out << render_row(row.cells);
    }
  }
  out << render_rule();
  return out.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

std::string cell(std::int64_t value) { return std::to_string(value); }

std::string cell(double value, int digits) {
  return format_fixed(value, digits);
}

}  // namespace nup
