#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace nup {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[nup:%s] %s\n", level_tag(level), message.c_str());
}

}  // namespace nup
