#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace nup {

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

std::string format_fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string format_grouped(std::int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

std::string format_percent(double fraction, int digits) {
  return format_fixed(fraction * 100.0, digits) + "%";
}

}  // namespace nup
