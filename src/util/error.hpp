#pragma once

#include <stdexcept>
#include <string>

namespace nup {

/// Base class for all errors raised by the library. Every subsystem throws a
/// subclass of this so callers can catch tool errors separately from
/// std::logic_error-style programming mistakes.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an input program is not a stencil computation under
/// Definition 4 of the paper (non-affine access, non-constant offset, ...).
class NotStencilError : public Error {
 public:
  explicit NotStencilError(const std::string& what) : Error(what) {}
};

/// Raised by the frontend on malformed source text.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, int column);
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Raised by the simulator when the design deadlocks (§3.3.2) or produces
/// data inconsistent with the golden execution.
class SimulationError : public Error {
 public:
  explicit SimulationError(const std::string& what) : Error(what) {}
};

/// Raised when a baseline partitioner cannot find a conflict-free scheme
/// within its search bounds.
class PartitionError : public Error {
 public:
  explicit PartitionError(const std::string& what) : Error(what) {}
};

}  // namespace nup
