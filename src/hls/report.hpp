#pragma once

#include <string>
#include <vector>

#include "hls/estimate.hpp"

namespace nup::hls {

/// One benchmark row of the Table 5 comparison.
struct SynthesisComparison {
  std::string benchmark;
  ResourceUsage baseline;  ///< uniform partitioning [8]
  ResourceUsage ours;      ///< streaming microarchitecture

  /// Relative change of ours vs the baseline, e.g. -0.66 for 66% fewer.
  /// Returns 0 when the baseline count is 0.
  static double delta(std::int64_t ours_v, std::int64_t baseline_v);
};

/// Arithmetic means of the per-benchmark deltas (the "Average(%)" row).
struct SynthesisAverages {
  double bram = 0.0;
  double slices = 0.0;
  double dsp = 0.0;
  double clock_period = 0.0;
};

SynthesisAverages average_deltas(
    const std::vector<SynthesisComparison>& rows);

/// Renders the full Table 5 (BRAM / Slice / DSP / CP, [8] vs ours vs
/// comparison %, plus the average row).
std::string render_synthesis_table(
    const std::vector<SynthesisComparison>& rows);

}  // namespace nup::hls
