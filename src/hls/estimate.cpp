#include "hls/estimate.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nup::hls {

namespace {

/// ceil(log2(max(2, x))).
int bits_for(std::int64_t x) {
  int bits = 1;
  std::int64_t cap = 2;
  while (cap < x) {
    cap <<= 1;
    ++bits;
  }
  return bits;
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

bool is_power_of_two(std::int64_t x) { return x > 0 && (x & (x - 1)) == 0; }

/// Sum of counter widths over the streamed grid extents.
int counter_bits(const poly::IntVec& extents) {
  int total = 0;
  for (std::int64_t e : extents) total += bits_for(e);
  return total;
}

poly::IntVec domain_extents(const poly::Domain& domain) {
  poly::IntVec lo;
  poly::IntVec hi;
  if (domain.as_single_box(&lo, &hi)) {
    poly::IntVec extents(lo.size());
    for (std::size_t d = 0; d < lo.size(); ++d) extents[d] = hi[d] - lo[d] + 1;
    return extents;
  }
  // Non-box domain: size counters by the per-axis hulls of the pieces.
  poly::IntVec extents(domain.dim(), 2);
  for (std::size_t d = 0; d < domain.dim(); ++d) {
    std::int64_t lo_d = 0;
    std::int64_t hi_d = 0;
    bool any = false;
    for (const poly::Polyhedron& piece : domain.pieces()) {
      const poly::Interval range = piece.axis_range(d);
      if (range.empty()) continue;
      lo_d = any ? std::min(lo_d, range.lo) : range.lo;
      hi_d = any ? std::max(hi_d, range.hi) : range.hi;
      any = true;
    }
    if (any) extents[d] = hi_d - lo_d + 1;
  }
  return extents;
}

}  // namespace

ResourceUsage& ResourceUsage::operator+=(const ResourceUsage& other) {
  bram18k += other.bram18k;
  slices += other.slices;
  dsp48 += other.dsp48;
  clock_period_ns = std::max(clock_period_ns, other.clock_period_ns);
  return *this;
}

std::int64_t bram18k_blocks(std::int64_t depth, int width) {
  if (depth <= 0 || width <= 0) return 0;
  struct Aspect {
    std::int64_t depth;
    int width;
  };
  static constexpr Aspect kAspects[] = {{512, 36},  {1024, 18}, {2048, 9},
                                        {4096, 4},  {8192, 2},  {16384, 1}};
  std::int64_t best = -1;
  for (const Aspect& aspect : kAspects) {
    const std::int64_t blocks =
        ceil_div(width, aspect.width) * ceil_div(depth, aspect.depth);
    if (best < 0 || blocks < best) best = blocks;
  }
  return best;
}

ResourceUsage estimate_streaming(const arch::MemorySystem& system,
                                 const stencil::StencilProgram& program,
                                 const DeviceModel& device,
                                 const EstimateOptions& options) {
  const int width = options.data_width_bits;
  ResourceUsage usage;

  bool any_bram = false;
  for (const arch::ReuseFifo& fifo : system.fifos) {
    if (fifo.cut) continue;
    switch (fifo.impl) {
      case arch::BufferImpl::kRegister:
        usage.slices += ceil_div(fifo.depth * width, 8) + 2;
        break;
      case arch::BufferImpl::kShiftRegister:
        // SRL32: one LUT per bit per 32 stages.
        usage.slices += ceil_div(width * ceil_div(fifo.depth, 32), 4) + 2;
        break;
      case arch::BufferImpl::kBlockRam:
        usage.bram18k += bram18k_blocks(fifo.depth, width);
        usage.slices += 4 + bits_for(fifo.depth) / 2;
        any_bram = true;
        break;
    }
  }

  // Data filters: an input counter over D_A, an output counter over D_Ax,
  // an equality comparator (Fig 10), plus one adder per non-bound
  // constraint on general polyhedral domains.
  const poly::IntVec extents = domain_extents(system.input_domain);
  const int cbits = counter_bits(extents);
  std::size_t extra_constraints = 0;
  for (const poly::Polyhedron& piece : program.iteration().pieces()) {
    for (const poly::Constraint& c : piece.constraints()) {
      std::size_t nonzero = 0;
      for (std::int64_t v : c.expr.coeffs) nonzero += (v != 0) ? 1 : 0;
      if (nonzero > 1) ++extra_constraints;
    }
  }
  // Each counter needs, per dimension, an incrementer, a wrap comparator
  // and a next-value mux (~3 slices per 4 counter bits), and the filter
  // adds the data switch and stall handshake.
  const std::int64_t counter_slices = 3 * ceil_div(cbits, 4) + 4;
  const std::int64_t filter_slices =
      2 * counter_slices                                        // in + out
      + ceil_div(cbits, 6) + 1                                  // comparator
      + static_cast<std::int64_t>(extra_constraints) * ceil_div(cbits, 4)
      + 10;                                      // data switch + handshake
  usage.slices +=
      filter_slices * static_cast<std::int64_t>(system.filter_count());

  // Splitters (data fanout registers) and the off-chip stream
  // interface(s).
  usage.slices +=
      ceil_div(width, 8) * static_cast<std::int64_t>(system.filter_count());
  usage.slices += 6 * static_cast<std::int64_t>(system.stream_count());

  // Critical path: counter carry chain + compare + routing; a BRAM FIFO
  // read if any. Fanout of the kernel-fire signal grows with the filter
  // count.
  const double counter_path = device.ff_clk_to_q_ns +
                              ceil_div(cbits, 4) * device.carry_per_4bit_ns +
                              2 * device.lut_delay_ns +
                              device.route_overhead_ns;
  const double bram_path =
      any_bram
          ? device.ff_clk_to_q_ns + device.bram_access_ns +
                device.lut_delay_ns + device.route_overhead_ns
          : 0.0;
  // The kernel-fire signal fans out to every filter; the back end stops
  // optimizing once the target period is met, so the period saturates just
  // below the target (Section 5.2's "larger slacks" observation).
  const double fanout_ns =
      1.20 + 0.035 * static_cast<double>(system.filter_count());
  usage.clock_period_ns = std::min(
      std::max(counter_path, bram_path) + fanout_ns,
      device.target_period_ns - 0.05);
  return usage;
}

ResourceUsage estimate_streaming(const arch::AcceleratorDesign& design,
                                 const stencil::StencilProgram& program,
                                 const DeviceModel& device,
                                 const EstimateOptions& options) {
  ResourceUsage usage;
  for (const arch::MemorySystem& system : design.systems) {
    usage += estimate_streaming(system, program, device, options);
  }
  return usage;
}

ResourceUsage estimate_uniform(const baseline::UniformPartition& partition,
                               std::size_t load_ports,
                               const DeviceModel& device,
                               const EstimateOptions& options) {
  const int width = options.data_width_bits;
  const std::int64_t banks = static_cast<std::int64_t>(partition.banks);
  ResourceUsage usage;

  // Uniform banks all live in block RAM (the conventional mapping the
  // paper contrasts with its heterogeneous one).
  usage.bram18k += banks * bram18k_blocks(partition.bank_depth, width);
  usage.slices += banks * 4;

  // Per-port address transformer: alpha dot h, bank id = (.) mod N and the
  // intra-bank address (.) div N. Multiplication/division by a non-power-
  // of-two bank count maps to DSP-based reciprocal arithmetic; this is the
  // "complex calculation involving multiplication and division" the paper
  // eliminates.
  const int abits = counter_bits(partition.padded_extents);
  const std::int64_t ports = static_cast<std::int64_t>(load_ports) + 1;
  const bool pow2 = is_power_of_two(banks);
  for (std::int64_t p = 0; p < ports; ++p) {
    usage.slices += ceil_div(abits, 4) + 2;  // scheme dot product
    if (pow2) {
      usage.slices += 4;  // mask + shift
    } else {
      usage.dsp48 += 5;   // 2 for mod, 3 for divide
      usage.slices += 35;
    }
  }

  // n x N read crossbar (32-bit N-to-1 mux per port).
  usage.slices +=
      static_cast<std::int64_t>(load_ports) * ceil_div(width * (banks - 1), 12);

  // Centralized controller: fill/evict sequencing plus grid counters.
  usage.slices += 60 + ceil_div(abits, 4) + 1;

  // Critical path: the modulo/divide address transform feeding the bank
  // crossbar.
  const double addr_path =
      pow2 ? device.ff_clk_to_q_ns + 3 * device.lut_delay_ns +
                 ceil_div(abits, 4) * device.carry_per_4bit_ns +
                 device.route_overhead_ns
           : device.ff_clk_to_q_ns + device.dsp_mult_ns +
                 2 * device.lut_delay_ns + device.route_overhead_ns;
  const double crossbar_ns = 0.25 * static_cast<double>(bits_for(banks));
  usage.clock_period_ns =
      std::min(addr_path + crossbar_ns, device.target_period_ns - 0.02);
  return usage;
}

}  // namespace nup::hls
