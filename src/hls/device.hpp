#pragma once

#include <cstdint>
#include <string>

namespace nup::hls {

/// FPGA capacity and unit-delay model. Replaces the Xilinx ISE 14.2 back
/// end of the paper's flow (DESIGN.md §3): calibrated to Virtex-7-class
/// fabric so the comparisons have the same shape as Table 5, not the same
/// absolute cells.
struct DeviceModel {
  std::string name;
  std::int64_t bram18k = 0;   ///< total 18Kb block RAMs
  std::int64_t slices = 0;    ///< total logic slices (4 LUT6 + 8 FF each)
  std::int64_t dsp48 = 0;     ///< total DSP48 blocks

  double target_period_ns = 5.0;  ///< 200 MHz target (Section 5.1)

  // Unit delays of the timing model.
  double ff_clk_to_q_ns = 0.35;
  double lut_delay_ns = 0.25;       ///< one LUT6 level including local route
  double carry_per_4bit_ns = 0.06;  ///< carry-chain propagation
  double bram_access_ns = 1.8;      ///< synchronous BRAM read
  double dsp_mult_ns = 2.4;         ///< DSP48 multiply (pipelined once)
  double route_overhead_ns = 0.9;   ///< global routing margin
};

/// The paper's target device: Xilinx Virtex-7 XC7VX485T.
DeviceModel virtex7_485t();

}  // namespace nup::hls
