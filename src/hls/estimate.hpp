#pragma once

#include <cstdint>

#include "arch/design.hpp"
#include "baseline/partition.hpp"
#include "hls/device.hpp"
#include "stencil/program.hpp"

namespace nup::hls {

/// Post-synthesis physical usage of one design (the Table 5 columns).
struct ResourceUsage {
  std::int64_t bram18k = 0;
  std::int64_t slices = 0;
  std::int64_t dsp48 = 0;
  double clock_period_ns = 0.0;

  /// Component-wise sum; the clock period is the maximum of the two.
  ResourceUsage& operator+=(const ResourceUsage& other);
};

struct EstimateOptions {
  int data_width_bits = 32;
};

/// Minimum number of BRAM18K blocks holding `depth` words of `width` bits,
/// choosing the best of the native aspect ratios (512x36 ... 16384x1).
std::int64_t bram18k_blocks(std::int64_t depth, int width);

/// Resource estimate for one memory system of the paper's streaming
/// microarchitecture: heterogeneous FIFOs, lexicographic counters in the
/// filters, no address arithmetic -- hence no DSPs (Section 5.2).
ResourceUsage estimate_streaming(const arch::MemorySystem& system,
                                 const stencil::StencilProgram& program,
                                 const DeviceModel& device,
                                 const EstimateOptions& options = {});

/// Whole-accelerator estimate (sum over memory systems).
ResourceUsage estimate_streaming(const arch::AcceleratorDesign& design,
                                 const stencil::StencilProgram& program,
                                 const DeviceModel& device,
                                 const EstimateOptions& options = {});

/// Resource estimate for a uniform-partitioning design ([5]/[8]): all banks
/// in block RAM, a modulo/divide address transformer per load port (DSPs
/// unless the bank count is a power of two), an n x N crossbar and a
/// centralized controller.
ResourceUsage estimate_uniform(const baseline::UniformPartition& partition,
                               std::size_t load_ports,
                               const DeviceModel& device,
                               const EstimateOptions& options = {});

}  // namespace nup::hls
