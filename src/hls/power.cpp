#include "hls/power.hpp"

namespace nup::hls {

namespace {

// Unit dynamic power at 100% toggle, 100 MHz (mW per instance); scaled
// linearly with clock and activity. Ballpark figures for 28 nm fabric.
constexpr double kBramMwUnit = 9.0;
constexpr double kSliceMwUnit = 0.035;
constexpr double kDspMwUnit = 4.5;

// Device leakage for a Virtex-7-class part (mW).
constexpr double kStaticMw = 1200.0;

}  // namespace

PowerEstimate estimate_power(const ResourceUsage& usage,
                             const DeviceModel& device,
                             const ActivityModel& activity) {
  PowerEstimate out;
  out.static_mw = kStaticMw;
  const double scale = (activity.clock_mhz / 100.0) * activity.toggle_rate;
  out.dynamic_mw = scale * (kBramMwUnit * static_cast<double>(usage.bram18k) +
                            kSliceMwUnit * static_cast<double>(usage.slices) +
                            kDspMwUnit * static_cast<double>(usage.dsp48));
  // Occupied fraction: the dominant resource decides how much of the
  // fabric must stay powered.
  double fraction = 0.0;
  if (device.bram18k > 0) {
    fraction = std::max(fraction, static_cast<double>(usage.bram18k) /
                                      static_cast<double>(device.bram18k));
  }
  if (device.slices > 0) {
    fraction = std::max(fraction, static_cast<double>(usage.slices) /
                                      static_cast<double>(device.slices));
  }
  if (device.dsp48 > 0) {
    fraction = std::max(fraction, static_cast<double>(usage.dsp48) /
                                      static_cast<double>(device.dsp48));
  }
  out.gated_mw = out.static_mw * fraction + out.dynamic_mw;
  return out;
}

}  // namespace nup::hls
