#pragma once

#include "hls/device.hpp"
#include "hls/estimate.hpp"

namespace nup::hls {

/// Activity assumptions for dynamic power.
struct ActivityModel {
  double clock_mhz = 200.0;
  double toggle_rate = 0.25;  ///< average fraction of nets switching
};

/// Power estimate reproducing the paper's Section 5.2 observation: on the
/// Virtex-7 the total is dominated by device static power and barely
/// changes between designs, but *if power gating were available* the
/// static share would scale with resource usage and the comparison would
/// mirror Table 5.
struct PowerEstimate {
  double static_mw = 0.0;   ///< device leakage, design-invariant
  double dynamic_mw = 0.0;  ///< activity-dependent
  /// Hypothetical power-gated total: leakage scaled by the fraction of the
  /// device actually occupied, plus dynamic.
  double gated_mw = 0.0;

  double total_mw() const { return static_mw + dynamic_mw; }
};

PowerEstimate estimate_power(const ResourceUsage& usage,
                             const DeviceModel& device,
                             const ActivityModel& activity = {});

}  // namespace nup::hls
