#include "hls/report.hpp"

#include "util/strings.hpp"
#include "util/table.hpp"

namespace nup::hls {

double SynthesisComparison::delta(std::int64_t ours_v,
                                  std::int64_t baseline_v) {
  if (baseline_v == 0) return 0.0;
  return static_cast<double>(ours_v - baseline_v) /
         static_cast<double>(baseline_v);
}

SynthesisAverages average_deltas(
    const std::vector<SynthesisComparison>& rows) {
  SynthesisAverages avg;
  if (rows.empty()) return avg;
  for (const SynthesisComparison& row : rows) {
    avg.bram += SynthesisComparison::delta(row.ours.bram18k,
                                           row.baseline.bram18k);
    avg.slices +=
        SynthesisComparison::delta(row.ours.slices, row.baseline.slices);
    avg.dsp += SynthesisComparison::delta(row.ours.dsp48, row.baseline.dsp48);
    if (row.baseline.clock_period_ns > 0) {
      avg.clock_period += (row.ours.clock_period_ns -
                           row.baseline.clock_period_ns) /
                          row.baseline.clock_period_ns;
    }
  }
  const double n = static_cast<double>(rows.size());
  avg.bram /= n;
  avg.slices /= n;
  avg.dsp /= n;
  avg.clock_period /= n;
  return avg;
}

std::string render_synthesis_table(
    const std::vector<SynthesisComparison>& rows) {
  TextTable table("Table 5: post-synthesis results ([8] vs ours)");
  table.set_header(
      {"benchmark", "", "BRAM18K", "Slice", "DSP", "CP (ns)"});
  for (const SynthesisComparison& row : rows) {
    table.add_row({row.benchmark, "[8]", cell(row.baseline.bram18k),
                   cell(row.baseline.slices), cell(row.baseline.dsp48),
                   cell(row.baseline.clock_period_ns, 2)});
    table.add_row({"", "ours", cell(row.ours.bram18k), cell(row.ours.slices),
                   cell(row.ours.dsp48), cell(row.ours.clock_period_ns, 2)});
    table.add_row(
        {"", "comp.",
         format_percent(SynthesisComparison::delta(row.ours.bram18k,
                                                   row.baseline.bram18k)),
         format_percent(SynthesisComparison::delta(row.ours.slices,
                                                   row.baseline.slices)),
         format_percent(SynthesisComparison::delta(row.ours.dsp48,
                                                   row.baseline.dsp48)),
         format_percent((row.ours.clock_period_ns -
                         row.baseline.clock_period_ns) /
                        row.baseline.clock_period_ns)});
    table.add_separator();
  }
  const SynthesisAverages avg = average_deltas(rows);
  table.add_row({"Average", "", format_percent(avg.bram),
                 format_percent(avg.slices), format_percent(avg.dsp),
                 format_percent(avg.clock_period)});
  return table.to_string();
}

}  // namespace nup::hls
