#include "hls/device.hpp"

namespace nup::hls {

DeviceModel virtex7_485t() {
  DeviceModel device;
  device.name = "xc7vx485t";
  device.bram18k = 2060;
  device.slices = 75900;
  device.dsp48 = 2800;
  return device;
}

}  // namespace nup::hls
