#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace nup::obs {

/// Monotonically increasing counter. The hot path is one relaxed atomic
/// add on a per-thread shard (cache-line padded), so concurrent writers
/// from the frame engine's worker pool never contend on one line;
/// value() folds the shards.
class Counter {
 public:
  static constexpr std::size_t kShards = 8;

  void add(std::int64_t n = 1) noexcept;
  void inc() noexcept { add(1); }
  std::int64_t value() const noexcept;
  void reset() noexcept;

 private:
  friend class Registry;
  Counter() = default;
  struct alignas(64) Shard {
    std::atomic<std::int64_t> n{0};
  };
  Shard shards_[kShards];
};

/// Last-written value with atomic set/add and a monotonic update_max
/// (CAS loop) for high-water marks.
class Gauge {
 public:
  void set(std::int64_t v) noexcept;
  void add(std::int64_t d) noexcept;
  void update_max(std::int64_t v) noexcept;
  std::int64_t value() const noexcept;
  void reset() noexcept;

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram: bucket upper bounds are set at creation (the
/// default is a 1-2-5 exponential ladder suitable for microsecond and
/// cycle-count latencies), each bucket is one atomic counter, and min/max
/// are CAS loops. observe() is lock-free; snapshot() gives count, sum,
/// min/max and interpolated percentiles.
class Histogram {
 public:
  struct Snapshot {
    std::int64_t count = 0;
    std::int64_t sum = 0;
    std::int64_t min = 0;
    std::int64_t max = 0;
    std::vector<std::int64_t> bounds;  ///< upper bounds; last bucket open
    std::vector<std::int64_t> counts;  ///< bounds.size() + 1 entries
    double mean() const;
    /// Linear interpolation inside the bucket holding rank p*count,
    /// clamped to the observed [min, max]. p in [0, 1].
    double percentile(double p) const;
  };

  void observe(std::int64_t v) noexcept;
  Snapshot snapshot() const;
  void reset() noexcept;

  /// 1-2-5 ladder from 1 to 5e8 (covers sub-us spans to minutes-in-us
  /// and cycle counts up to paper-scale runs).
  static std::vector<std::int64_t> default_bounds();

 private:
  friend class Registry;
  explicit Histogram(std::vector<std::int64_t> bounds);
  std::vector<std::int64_t> bounds_;
  std::vector<std::atomic<std::int64_t>> counts_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_;
  std::atomic<std::int64_t> max_;
};

/// One metric in a rendered snapshot.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  std::int64_t value = 0;     ///< counter / gauge
  Histogram::Snapshot hist;   ///< histogram only
};

/// Point-in-time view of every metric, sorted by name within each kind.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with
  /// count/sum/min/max/mean/p50/p95/p99 per histogram.
  std::string to_json() const;

  /// Aligned text table (one row per metric) for --stats output.
  std::string to_table() const;

  /// Value of a counter/gauge sample, or `fallback` when absent.
  std::int64_t value_of(std::string_view name,
                        std::int64_t fallback = 0) const;
};

/// Thread-safe named-metric registry. Lookup takes a mutex; the returned
/// references are stable for the registry's lifetime, so instrumented
/// code resolves each metric once and then updates it lock-free.
/// reset() zeroes values in place (addresses stay valid).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` applies only when the histogram is created by this call;
  /// empty selects Histogram::default_bounds().
  Histogram& histogram(std::string_view name,
                       std::vector<std::int64_t> bounds = {});

  MetricsSnapshot snapshot() const;

  /// snapshot() rendered in OpenMetrics text exposition format (the
  /// Prometheus scrape format): one `# TYPE`/`# HELP` pair per family,
  /// `_total` counters, cumulative histogram `_bucket`/`_sum`/`_count`
  /// series, per-FIFO families folded into `{array=,fifo=}` labels, and a
  /// terminating `# EOF`. Implemented in expo.cpp.
  std::string snapshot_openmetrics() const;

  void reset();

  /// Process-wide registry used by the runtime and stencilcc.
  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace nup::obs
