#include "obs/trace.hpp"

#include <cstdio>
#include <sstream>
#include <unordered_map>

namespace nup::obs {

namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void append_json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// Chrome trace timestamps are microseconds; keep ns resolution as a
/// fraction.
void append_us(std::ostringstream& out, std::int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out << buf;
}

}  // namespace

Tracer::Tracer()
    : id_(next_tracer_id()), epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // immortal
  return *tracer;
}

std::int64_t Tracer::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // Keyed by tracer id (not address): ids are never reused, so a stale
  // entry for a destroyed tracer can never alias a new one.
  thread_local std::unordered_map<std::uint64_t,
                                  std::shared_ptr<ThreadBuffer>>
      buffers;
  std::shared_ptr<ThreadBuffer>& slot = buffers[id_];
  if (!slot) {
    slot = std::make_shared<ThreadBuffer>();
    slot->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(slot);
  }
  return *slot;
}

void Tracer::record(Event event) {
#ifndef NUP_OBS_DISABLE
  ThreadBuffer& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(std::move(event));
#else
  (void)event;
#endif
}

void Tracer::complete(std::string name, std::string cat,
                      std::int64_t start_ns, std::int64_t end_ns,
                      std::string args_json) {
  if (!enabled()) return;
  Event e;
  e.ph = 'X';
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.args = std::move(args_json);
  e.ts_ns = start_ns;
  e.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  record(std::move(e));
}

void Tracer::instant(std::string name, std::string cat,
                     std::string args_json) {
  if (!enabled()) return;
  Event e;
  e.ph = 'i';
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.args = std::move(args_json);
  e.ts_ns = now_ns();
  record(std::move(e));
}

void Tracer::counter(std::string name, std::int64_t value) {
  if (!enabled()) return;
  Event e;
  e.ph = 'C';
  e.name = std::move(name);
  e.cat = "counter";
  e.ts_ns = now_ns();
  e.value = value;
  record(std::move(e));
}

void Tracer::async_begin(std::string name, std::string cat, std::uint64_t id,
                         std::string args_json) {
  if (!enabled()) return;
  Event e;
  e.ph = 'b';
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.args = std::move(args_json);
  e.ts_ns = now_ns();
  e.id = id;
  record(std::move(e));
}

void Tracer::async_end(std::string name, std::string cat, std::uint64_t id) {
  if (!enabled()) return;
  Event e;
  e.ph = 'e';
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ts_ns = now_ns();
  e.id = id;
  record(std::move(e));
}

void Tracer::flow_start(std::string name, std::string cat, std::uint64_t id) {
  if (!enabled()) return;
  Event e;
  e.ph = 's';
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ts_ns = now_ns();
  e.id = id;
  record(std::move(e));
}

void Tracer::flow_step(std::string name, std::string cat, std::uint64_t id) {
  if (!enabled()) return;
  Event e;
  e.ph = 't';
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ts_ns = now_ns();
  e.id = id;
  record(std::move(e));
}

void Tracer::flow_end(std::string name, std::string cat, std::uint64_t id) {
  if (!enabled()) return;
  Event e;
  e.ph = 'f';
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ts_ns = now_ns();
  e.id = id;
  record(std::move(e));
}

void Tracer::set_thread_name(std::string name) {
#ifndef NUP_OBS_DISABLE
  ThreadBuffer& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.thread_name = std::move(name);
#else
  (void)name;
#endif
}

std::string Tracer::to_chrome_json() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out << ',';
    first = false;
  };
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    if (!buffer->thread_name.empty()) {
      comma();
      out << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":"
          << buffer->tid << ",\"args\":{\"name\":";
      append_json_string(out, buffer->thread_name);
      out << "}}";
    }
    for (const Event& e : buffer->events) {
      comma();
      out << "{\"ph\":\"" << e.ph << "\",\"name\":";
      append_json_string(out, e.name);
      if (!e.cat.empty()) {
        out << ",\"cat\":";
        append_json_string(out, e.cat);
      }
      out << ",\"pid\":1,\"tid\":" << buffer->tid << ",\"ts\":";
      append_us(out, e.ts_ns);
      if (e.ph == 'X') {
        out << ",\"dur\":";
        append_us(out, e.dur_ns);
      }
      if (e.ph == 'b' || e.ph == 'e' || e.ph == 's' || e.ph == 't' ||
          e.ph == 'f') {
        // Async/flow events pair up by id; the flow end binds to its
        // enclosing slice ("bp":"e") so the arrow lands on the span that
        // was open when it was recorded.
        out << ",\"id\":\"" << e.id << '"';
        if (e.ph == 'f') out << ",\"bp\":\"e\"";
      }
      if (e.ph == 'C') {
        out << ",\"args\":{\"value\":" << e.value << '}';
      } else if (!e.args.empty()) {
        out << ",\"args\":" << e.args;
      } else if (e.ph == 'i') {
        out << ",\"s\":\"t\"";
      }
      out << '}';
    }
  }
  out << "]}";
  return out.str();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    n += buffer->events.size();
  }
  return n;
}

// ---- Span --------------------------------------------------------------

Span::Span(std::string name, std::string cat, std::string args_json)
    : Span(Tracer::global(), std::move(name), std::move(cat),
           std::move(args_json)) {}

Span::Span(Tracer& tracer, std::string name, std::string cat,
           std::string args_json)
    : tracer_(&tracer),
      name_(std::move(name)),
      cat_(std::move(cat)),
      args_(std::move(args_json)),
      active_(tracer.enabled()) {
  if (active_) start_ns_ = tracer_->now_ns();
}

void Span::end() {
  if (!active_) return;
  active_ = false;
  // Record directly, not via complete(): a span live at construction must
  // close even when the tracer was disabled mid-flight, or the trace
  // would end with a dangling open region.
  Tracer::Event e;
  e.ph = 'X';
  e.name = std::move(name_);
  e.cat = std::move(cat_);
  e.args = std::move(args_);
  e.ts_ns = start_ns_;
  const std::int64_t end_ns = tracer_->now_ns();
  e.dur_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  tracer_->record(std::move(e));
}

Span::~Span() { end(); }

}  // namespace nup::obs
