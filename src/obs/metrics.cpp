#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

#include "util/table.hpp"

namespace nup::obs {

namespace {

/// Stable per-thread shard index: threads are striped round-robin over the
/// shards, so a fixed worker pool lands on distinct cache lines.
std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed);
  return idx % Counter::kShards;
}

void append_json_string(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

// ---- Counter -----------------------------------------------------------

void Counter::add(std::int64_t n) noexcept {
#ifndef NUP_OBS_DISABLE
  shards_[shard_index()].n.fetch_add(n, std::memory_order_relaxed);
#else
  (void)n;
#endif
}

std::int64_t Counter::value() const noexcept {
  std::int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.n.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() noexcept {
  for (Shard& shard : shards_) shard.n.store(0, std::memory_order_relaxed);
}

// ---- Gauge -------------------------------------------------------------

void Gauge::set(std::int64_t v) noexcept {
#ifndef NUP_OBS_DISABLE
  v_.store(v, std::memory_order_relaxed);
#else
  (void)v;
#endif
}

void Gauge::add(std::int64_t d) noexcept {
#ifndef NUP_OBS_DISABLE
  v_.fetch_add(d, std::memory_order_relaxed);
#else
  (void)d;
#endif
}

void Gauge::update_max(std::int64_t v) noexcept {
#ifndef NUP_OBS_DISABLE
  std::int64_t seen = v_.load(std::memory_order_relaxed);
  while (v > seen &&
         !v_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
#else
  (void)v;
#endif
}

std::int64_t Gauge::value() const noexcept {
  return v_.load(std::memory_order_relaxed);
}

void Gauge::reset() noexcept { v_.store(0, std::memory_order_relaxed); }

// ---- Histogram ---------------------------------------------------------

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1),
      min_(std::numeric_limits<std::int64_t>::max()),
      max_(std::numeric_limits<std::int64_t>::min()) {}

std::vector<std::int64_t> Histogram::default_bounds() {
  std::vector<std::int64_t> bounds;
  for (std::int64_t decade = 1; decade <= 100'000'000; decade *= 10) {
    bounds.push_back(decade);
    bounds.push_back(2 * decade);
    bounds.push_back(5 * decade);
  }
  return bounds;
}

void Histogram::observe(std::int64_t v) noexcept {
#ifndef NUP_OBS_DISABLE
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::int64_t seen = min_.load(std::memory_order_relaxed);
  while (v < seen &&
         !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
#else
  (void)v;
#endif
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.reserve(counts_.size());
  for (const std::atomic<std::int64_t>& c : counts_) {
    s.counts.push_back(c.load(std::memory_order_relaxed));
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count > 0 ? min_.load(std::memory_order_relaxed) : 0;
  s.max = s.count > 0 ? max_.load(std::memory_order_relaxed) : 0;
  return s;
}

void Histogram::reset() noexcept {
  for (std::atomic<std::int64_t>& c : counts_) {
    c.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<std::int64_t>::max(),
             std::memory_order_relaxed);
  max_.store(std::numeric_limits<std::int64_t>::min(),
             std::memory_order_relaxed);
}

double Histogram::Snapshot::mean() const {
  return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                   : 0.0;
}

double Histogram::Snapshot::percentile(double p) const {
  if (count <= 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double rank = p * static_cast<double>(count);
  std::int64_t seen = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const std::int64_t before = seen;
    seen += counts[b];
    if (static_cast<double>(seen) < rank) continue;
    // Interpolate inside bucket b, with the span clamped to the observed
    // [min, max]. The overflow (top) bucket in particular holds values in
    // [max(last finite bound, min), max]: anchoring its low edge at the
    // last finite bound would skew every percentile landing there toward
    // the bound instead of the data (a bucket containing observations
    // always satisfies lo <= hi after clamping).
    const double lo_bound = b == 0 ? static_cast<double>(min)
                                   : static_cast<double>(bounds[b - 1]);
    const double hi_bound = b < bounds.size() ? static_cast<double>(bounds[b])
                                              : static_cast<double>(max);
    const double lo = std::max(lo_bound, static_cast<double>(min));
    const double hi = std::min(hi_bound, static_cast<double>(max));
    const double fraction =
        counts[b] > 0
            ? (rank - static_cast<double>(before)) /
                  static_cast<double>(counts[b])
            : 0.0;
    const double value = lo + (hi - lo) * std::clamp(fraction, 0.0, 1.0);
    return std::clamp(value, static_cast<double>(min),
                      static_cast<double>(max));
  }
  return static_cast<double>(max);
}

// ---- Registry ----------------------------------------------------------

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge()))
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<std::int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = Histogram::default_bounds();
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(
                          new Histogram(std::move(bounds))))
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.samples.reserve(counters_.size() + gauges_.size() +
                       histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kCounter;
    s.name = name;
    s.value = counter->value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kGauge;
    s.name = name;
    s.value = gauge->value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [name, hist] : histograms_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kHistogram;
    s.name = name;
    s.hist = hist->snapshot();
    s.value = s.hist.count;
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, hist] : histograms_) hist->reset();
}

Registry& Registry::global() {
  static Registry* registry = new Registry();  // immortal
  return *registry;
}

// ---- MetricsSnapshot rendering -----------------------------------------

std::int64_t MetricsSnapshot::value_of(std::string_view name,
                                       std::int64_t fallback) const {
  for (const MetricSample& s : samples) {
    if (s.name == name) return s.value;
  }
  return fallback;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  const auto emit_kind = [&](MetricSample::Kind kind, const char* key,
                             bool first_section) {
    if (!first_section) out << ",";
    out << '"' << key << "\":{";
    bool first = true;
    for (const MetricSample& s : samples) {
      if (s.kind != kind) continue;
      if (!first) out << ',';
      first = false;
      append_json_string(out, s.name);
      out << ':';
      if (kind == MetricSample::Kind::kHistogram) {
        const Histogram::Snapshot& h = s.hist;
        out << "{\"count\":" << h.count << ",\"sum\":" << h.sum
            << ",\"min\":" << h.min << ",\"max\":" << h.max << ",\"mean\":"
            << h.mean() << ",\"p50\":" << h.percentile(0.50)
            << ",\"p95\":" << h.percentile(0.95)
            << ",\"p99\":" << h.percentile(0.99) << '}';
      } else {
        out << s.value;
      }
    }
    out << '}';
  };
  out << '{';
  emit_kind(MetricSample::Kind::kCounter, "counters", true);
  emit_kind(MetricSample::Kind::kGauge, "gauges", false);
  emit_kind(MetricSample::Kind::kHistogram, "histograms", false);
  out << '}';
  return out.str();
}

std::string MetricsSnapshot::to_table() const {
  TextTable table("metrics");
  table.set_header(
      {"metric", "kind", "value", "mean", "p50", "p95", "p99", "max"});
  for (const MetricSample& s : samples) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        table.add_row({s.name, "counter", cell(s.value), "", "", "", "", ""});
        break;
      case MetricSample::Kind::kGauge:
        table.add_row({s.name, "gauge", cell(s.value), "", "", "", "", ""});
        break;
      case MetricSample::Kind::kHistogram:
        table.add_row({s.name, "hist", cell(s.hist.count),
                       cell(s.hist.mean(), 1), cell(s.hist.percentile(0.50), 1),
                       cell(s.hist.percentile(0.95), 1),
                       cell(s.hist.percentile(0.99), 1), cell(s.hist.max)});
        break;
    }
  }
  return table.to_string();
}

}  // namespace nup::obs
