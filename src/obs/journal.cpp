#include "obs/journal.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "obs/metrics.hpp"

namespace nup::obs {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

constexpr std::uint8_t kMaxKind =
    static_cast<std::uint8_t>(JournalKind::kDeadlock);

}  // namespace

const char* to_string(JournalKind kind) {
  switch (kind) {
    case JournalKind::kNone: return "none";
    case JournalKind::kFrameAdmitted: return "frame.admitted";
    case JournalKind::kFrameCompleted: return "frame.completed";
    case JournalKind::kFrameFailed: return "frame.failed";
    case JournalKind::kFrameCancelled: return "frame.cancelled";
    case JournalKind::kTileExecuted: return "tile.executed";
    case JournalKind::kTileSkipped: return "tile.skipped";
    case JournalKind::kDepResolved: return "dep.resolved";
    case JournalKind::kSlabLeased: return "slab.leased";
    case JournalKind::kSlabRecycled: return "slab.recycled";
    case JournalKind::kPassStarted: return "pass.started";
    case JournalKind::kFifoHighWater: return "fifo.high_water";
    case JournalKind::kDepthViolation: return "fifo.depth_violation";
    case JournalKind::kDeadlock: return "deadlock";
  }
  return "unknown";
}

/// One 64-byte seqlock slot. seq: 0 = never written, odd = write in
/// progress, even = the payload words are consistent for that sequence.
struct alignas(64) JournalSlot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> w[7] = {};
};

struct Journal::ThreadRing {
  ThreadRing(std::size_t cap_, std::uint32_t tid_)
      : cap(cap_), tid(tid_), slots(new JournalSlot[cap_]) {}

  const std::size_t cap;   ///< power of two
  const std::uint32_t tid;
  std::unique_ptr<JournalSlot[]> slots;
  std::uint64_t head = 0;  ///< owner-thread only
  std::atomic<std::uint64_t> written{0};
};

struct Journal::Impl {
  std::uint64_t id = 0;
  std::size_t cap = 0;
  std::atomic<bool> enabled{true};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> dump_seq{0};

  mutable std::mutex mu;  ///< rings list, intern table, post-mortem dir
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::vector<std::string> names{std::string()};  ///< id 0 = anonymous
  std::unordered_map<std::string, std::uint32_t> name_ids;
  std::string dir;
};

namespace {
std::atomic<std::uint64_t> g_next_journal_id{1};
std::atomic<std::uint64_t> g_next_frame_id{1};
}  // namespace

std::uint64_t next_frame_id() {
  return g_next_frame_id.fetch_add(1, std::memory_order_relaxed);
}

Journal::Journal(std::size_t ring_capacity) : impl_(std::make_unique<Impl>()) {
  impl_->id = g_next_journal_id.fetch_add(1, std::memory_order_relaxed);
  impl_->cap = round_up_pow2(std::max<std::size_t>(ring_capacity, 8));
}

Journal::~Journal() = default;

std::uint32_t Journal::intern(std::string_view name) {
  if (name.empty()) return 0;
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->name_ids.find(std::string(name));
  if (it != impl_->name_ids.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(impl_->names.size());
  impl_->names.emplace_back(name);
  impl_->name_ids.emplace(std::string(name), id);
  return id;
}

void Journal::record(JournalKind kind, std::uint64_t frame, std::int32_t stage,
                     std::int64_t tile, std::int64_t a, std::int64_t b,
                     std::uint32_t name_id) noexcept {
#ifdef NUP_OBS_DISABLE
  (void)kind, (void)frame, (void)stage, (void)tile;
  (void)a, (void)b, (void)name_id;
#else
  // Per-thread ring lookup, keyed by journal instance id so tests can hold
  // several journals at once. A null entry means this thread arrived after
  // the ring budget was exhausted: its events are counted as dropped.
  thread_local std::unordered_map<std::uint64_t, std::shared_ptr<ThreadRing>>
      t_rings;
  Impl& im = *impl_;
  if (!im.enabled.load(std::memory_order_relaxed)) return;

  auto it = t_rings.find(im.id);
  if (it == t_rings.end()) {
    std::shared_ptr<ThreadRing> ring;
    {
      std::lock_guard<std::mutex> lock(im.mu);
      if (im.rings.size() < kMaxThreadRings) {
        ring = std::make_shared<ThreadRing>(
            im.cap, static_cast<std::uint32_t>(im.rings.size()));
        im.rings.push_back(ring);
      }
    }
    it = t_rings.emplace(im.id, std::move(ring)).first;
  }
  ThreadRing* ring = it->second.get();
  if (ring == nullptr) {
    im.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  JournalSlot& slot = ring->slots[ring->head & (ring->cap - 1)];
  ++ring->head;

  const std::uint64_t seq0 = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq0 + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.w[0].store(static_cast<std::uint64_t>(now_ns()),
                  std::memory_order_relaxed);
  slot.w[1].store(frame, std::memory_order_relaxed);
  slot.w[2].store(static_cast<std::uint64_t>(static_cast<std::uint8_t>(kind)) |
                      (static_cast<std::uint64_t>(ring->tid & 0xffffff) << 8) |
                      (static_cast<std::uint64_t>(name_id) << 32),
                  std::memory_order_relaxed);
  slot.w[3].store(static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(stage)),
                  std::memory_order_relaxed);
  slot.w[4].store(static_cast<std::uint64_t>(tile), std::memory_order_relaxed);
  slot.w[5].store(static_cast<std::uint64_t>(a), std::memory_order_relaxed);
  slot.w[6].store(static_cast<std::uint64_t>(b), std::memory_order_relaxed);
  slot.seq.store(seq0 + 2, std::memory_order_release);
  ring->written.fetch_add(1, std::memory_order_relaxed);
#endif
}

std::vector<JournalRecord> Journal::snapshot(std::size_t last_n) const {
  Impl& im = *impl_;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    rings = im.rings;
    names = im.names;
  }

  std::vector<JournalRecord> out;
  for (const auto& ring : rings) {
    for (std::size_t i = 0; i < ring->cap; ++i) {
      const JournalSlot& slot = ring->slots[i];
      const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 == 0 || (s1 & 1) != 0) continue;  // unwritten or mid-write
      std::uint64_t w[7];
      for (int k = 0; k < 7; ++k) {
        w[k] = slot.w[k].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != s1) continue;  // torn

      const auto kind_byte = static_cast<std::uint8_t>(w[2] & 0xff);
      if (kind_byte == 0 || kind_byte > kMaxKind) continue;
      JournalRecord r;
      r.ts_ns = static_cast<std::int64_t>(w[0]);
      r.kind = static_cast<JournalKind>(kind_byte);
      r.thread = static_cast<std::uint32_t>((w[2] >> 8) & 0xffffff);
      const auto name_id = static_cast<std::uint32_t>(w[2] >> 32);
      if (name_id < names.size()) r.name = names[name_id];
      r.frame = w[1];
      r.stage = static_cast<std::int32_t>(static_cast<std::int64_t>(w[3]));
      r.tile = static_cast<std::int64_t>(w[4]);
      r.a = static_cast<std::int64_t>(w[5]);
      r.b = static_cast<std::int64_t>(w[6]);
      out.push_back(std::move(r));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const JournalRecord& x, const JournalRecord& y) {
              if (x.ts_ns != y.ts_ns) return x.ts_ns < y.ts_ns;
              return x.thread < y.thread;
            });
  if (last_n > 0 && out.size() > last_n) {
    out.erase(out.begin(), out.end() - static_cast<std::ptrdiff_t>(last_n));
  }
  return out;
}

std::uint64_t Journal::recorded() const {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    rings = impl_->rings;
  }
  std::uint64_t total = 0;
  for (const auto& ring : rings) {
    total += ring->written.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Journal::dropped() const {
  return impl_->dropped.load(std::memory_order_relaxed);
}

std::size_t Journal::capacity_bytes() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->rings.size() * impl_->cap * sizeof(JournalSlot);
}

void Journal::set_enabled(bool enabled) {
  impl_->enabled.store(enabled, std::memory_order_relaxed);
}

bool Journal::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void Journal::set_postmortem_dir(std::string dir) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->dir = std::move(dir);
}

std::string Journal::postmortem_dir() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->dir;
}

std::string Journal::dump_postmortem(const PostmortemInfo& info,
                                     const Registry* metrics) {
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    dir = impl_->dir;
  }
  if (dir.empty()) return std::string();

  const std::vector<JournalRecord> events =
      snapshot(info.last_n == 0 ? 256 : info.last_n);

  std::string json;
  json.reserve(4096 + events.size() * 160);
  json += "{\n  \"reason\": ";
  append_json_string(json, info.reason);
  json += ",\n  \"detail\": ";
  append_json_string(json, info.detail);
  json += ",\n  \"frame\": " + std::to_string(info.frame);
  json += ",\n  \"stage\": " + std::to_string(info.stage);
  json += ",\n  \"tile\": " + std::to_string(info.tile);
  if (!info.design.empty()) {
    json += ",\n  \"design\": ";
    append_json_string(json, info.design);
  }
  if (info.has_fifo) {
    json += ",\n  \"fifo\": {\"array\": ";
    append_json_string(json, info.fifo.array);
    json += ", \"index\": " + std::to_string(info.fifo.fifo);
    json += ", \"depth\": " + std::to_string(info.fifo.depth);
    json += ", \"high_water\": " + std::to_string(info.fifo.high_water);
    json += std::string(", \"word_level\": ") +
            (info.fifo.word_level ? "true" : "false") + "}";
  }
  json += ",\n  \"journal\": {\"recorded\": " + std::to_string(recorded());
  json += ", \"dropped\": " + std::to_string(dropped());
  json += ", \"capacity_bytes\": " + std::to_string(capacity_bytes()) + "}";
  json += ",\n  \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JournalRecord& r = events[i];
    json += i == 0 ? "\n" : ",\n";
    json += "    {\"ts_ns\": " + std::to_string(r.ts_ns);
    json += ", \"kind\": ";
    append_json_string(json, to_string(r.kind));
    json += ", \"thread\": " + std::to_string(r.thread);
    json += ", \"frame\": " + std::to_string(r.frame);
    json += ", \"stage\": " + std::to_string(r.stage);
    json += ", \"tile\": " + std::to_string(r.tile);
    json += ", \"a\": " + std::to_string(r.a);
    json += ", \"b\": " + std::to_string(r.b);
    if (!r.name.empty()) {
      json += ", \"name\": ";
      append_json_string(json, r.name);
    }
    json += "}";
  }
  json += "\n  ]";
  if (metrics != nullptr) {
    json += ",\n  \"metrics\": " + metrics->snapshot().to_json();
  }
  json += "\n}\n";

  ::mkdir(dir.c_str(), 0755);  // best effort; may already exist
  const std::uint64_t seq =
      impl_->dump_seq.fetch_add(1, std::memory_order_relaxed);
  const std::string path =
      dir + "/postmortem-" + info.reason + "-" + std::to_string(seq) + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return std::string();
  out << json;
  out.close();
  if (!out) return std::string();
  return path;
}

Journal& Journal::global() {
  static Journal* const journal = new Journal();  // immortal
  return *journal;
}

}  // namespace nup::obs
