#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nup::obs {

/// Span tracer exporting Chrome `trace_event` JSON (loadable in
/// chrome://tracing and Perfetto). Events are recorded into per-thread
/// buffers: the hot path is one relaxed enabled-flag load, then an
/// uncontended push into the calling thread's own buffer (its lock is only
/// ever contended by export/clear, which run when the traced work is
/// done). Disabled tracers (the default) record nothing.
class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since this tracer's construction (its trace epoch).
  std::int64_t now_ns() const;

  /// Records a complete ('X') event spanning [start_ns, end_ns] on the
  /// calling thread. `args_json` is an optional preformatted JSON object
  /// ("{\"tile\":3}") copied into the event's args. No-op when disabled.
  void complete(std::string name, std::string cat, std::int64_t start_ns,
                std::int64_t end_ns, std::string args_json = "");

  /// Records an instant ('i') event at the current time. No-op when
  /// disabled.
  void instant(std::string name, std::string cat,
               std::string args_json = "");

  /// Records a counter ('C') sample; chrome://tracing draws these as a
  /// stacked time series. No-op when disabled.
  void counter(std::string name, std::int64_t value);

  /// Async events ('b'/'e'): one open-ended lane per id, drawn as a
  /// nestable track in Perfetto. The begin and end may come from
  /// different threads — the id ties them together. No-ops when disabled.
  void async_begin(std::string name, std::string cat, std::uint64_t id,
                   std::string args_json = "");
  void async_end(std::string name, std::string cat, std::uint64_t id);

  /// Flow events ('s'/'t'/'f'): arrows between slices across threads with
  /// the same id. A step/end binds to the enclosing slice on its thread,
  /// so emit them while a Span covering the moment is open. The end is
  /// recorded with binding point "enclosing" ("bp":"e"). No-ops when
  /// disabled.
  void flow_start(std::string name, std::string cat, std::uint64_t id);
  void flow_step(std::string name, std::string cat, std::uint64_t id);
  void flow_end(std::string name, std::string cat, std::uint64_t id);

  /// Names the calling thread in the exported trace (thread_name
  /// metadata). Recorded even while disabled, so worker threads can
  /// register up front.
  void set_thread_name(std::string name);

  /// {"traceEvents": [...]} with every recorded event plus thread_name
  /// metadata. Safe to call concurrently with recording; events appended
  /// during the export may or may not be included.
  std::string to_chrome_json() const;

  /// Drops all recorded events (thread registrations stay).
  void clear();

  /// Total recorded events across all threads.
  std::size_t event_count() const;

  /// Process-wide tracer used by the runtime and stencilcc.
  static Tracer& global();

 private:
  friend class Span;
  struct Event {
    char ph = 'X';
    std::string name;
    std::string cat;
    std::string args;       ///< preformatted JSON object or empty
    std::int64_t ts_ns = 0;
    std::int64_t dur_ns = 0;   ///< 'X' only
    std::int64_t value = 0;    ///< 'C' only
    std::uint64_t id = 0;      ///< async/flow ('b','e','s','t','f') only
  };
  struct ThreadBuffer {
    mutable std::mutex mu;
    std::uint32_t tid = 0;
    std::string thread_name;
    std::vector<Event> events;
  };

  ThreadBuffer& local_buffer();
  void record(Event event);

  const std::uint64_t id_;  ///< keys the thread-local buffer map
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> next_tid_{1};
  mutable std::mutex mu_;  ///< guards buffers_
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: captures the start time at construction and records one
/// complete event at destruction. When the tracer is disabled at
/// construction the span is inert (one atomic load, no clock reads).
class Span {
 public:
  explicit Span(std::string name, std::string cat = "task",
                std::string args_json = "");
  Span(Tracer& tracer, std::string name, std::string cat = "task",
       std::string args_json = "");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Closes the span now (idempotent; the destructor then does nothing).
  void end();

 private:
  Tracer* tracer_ = nullptr;
  std::string name_;
  std::string cat_;
  std::string args_;
  std::int64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace nup::obs
