#ifndef NUP_OBS_EXPO_HPP
#define NUP_OBS_EXPO_HPP

/// Live metrics exposition: the OpenMetrics text renderer behind
/// Registry::snapshot_openmetrics() and a dependency-free blocking TCP
/// server (`stencilcc --metrics-port`) that serves the registry at
/// `/metrics` (OpenMetrics) and `/metrics.json` (the JSON snapshot), plus
/// a background sampler thread that periodically folds selected gauges
/// into `<gauge>.sampled` histograms so rates and percentiles of
/// instantaneous values (queue depth, frames in flight) survive scrape
/// gaps.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace nup::obs {

/// Renders a snapshot in OpenMetrics text exposition format. Dotted
/// per-FIFO families (`fifo.high_water.<array>.<k>`, `fifo.depth.…`,
/// `fifo.word_depth.…`, `fifo.high_water_words.…`,
/// `filter.stall_cycles.<array>.<k>`) fold into one family with
/// `{array=…,fifo=…}` labels; every other dotted name flattens with `_`.
/// Ends with `# EOF`.
std::string render_openmetrics(const MetricsSnapshot& snapshot);

struct MetricsServerOptions {
  /// TCP port to listen on (loopback only). 0 binds an ephemeral port;
  /// read it back from MetricsServer::port().
  int port = 0;
  /// Registry to expose; null means Registry::global().
  Registry* registry = nullptr;
  /// Sampler period; 0 disables the sampler thread.
  std::int64_t sample_period_ms = 0;
  /// Gauges whose dotted name ends in one of these suffixes are folded
  /// into `<gauge>.sampled` histograms each sampler tick.
  std::vector<std::string> sampled_suffixes = {"queue_depth",
                                               "frames_in_flight"};
};

/// Blocking HTTP/1.0-style server on a loopback socket; one accept-loop
/// thread, one connection at a time (a scraper, not a web server).
/// Construction binds and starts serving; stop() (or destruction) shuts
/// the listener down and joins both threads.
class MetricsServer {
 public:
  explicit MetricsServer(MetricsServerOptions options = {});
  ~MetricsServer();

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// False when the listener failed to bind; error() says why.
  bool ok() const;
  const std::string& error() const;

  /// The bound port (the requested one, or the ephemeral pick for 0).
  int port() const;

  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nup::obs

#endif  // NUP_OBS_EXPO_HPP
