#include "obs/expo.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "util/socket.hpp"

namespace nup::obs {

// ---- OpenMetrics rendering ---------------------------------------------

namespace {

/// Metric names allow only [a-zA-Z0-9_:]; every dotted segment separator
/// and anything exotic becomes '_'.
std::string sanitize_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

/// Label values escape backslash, double quote and newline.
std::string escape_label(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string escape_help(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Per-FIFO and per-filter families keep their identity as labels instead
/// of flattening into one metric name per FIFO. Longest prefix first so
/// `high_water_words` is not captured by `high_water`.
struct LabeledFamily {
  const char* prefix;
  const char* family;
  const char* help;
};

constexpr LabeledFamily kLabeledFamilies[] = {
    {"fifo.high_water_words.", "fifo_high_water_words",
     "max observed occupancy of the reuse FIFO in W-element words"},
    {"fifo.high_water.", "fifo_high_water",
     "max observed occupancy of the reuse FIFO in elements"},
    {"fifo.word_depth.", "fifo_word_depth",
     "designed Eq. 2 / W word depth of the reuse FIFO"},
    {"fifo.depth.", "fifo_depth",
     "designed Eq. 2 depth of the reuse FIFO in elements"},
    {"filter.stall_cycles.", "filter_stall_cycles",
     "cycles the data filter could not advance while live"},
};

struct RenderedSample {
  std::string labels;  ///< "{array=\"A\",fifo=\"0\"}" or ""
  const MetricSample* sample = nullptr;
};

struct Family {
  MetricSample::Kind kind = MetricSample::Kind::kCounter;
  std::string help;
  std::vector<RenderedSample> samples;
};

const char* kind_name(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter: return "counter";
    case MetricSample::Kind::kGauge: return "gauge";
    case MetricSample::Kind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string render_openmetrics(const MetricsSnapshot& snapshot) {
  std::map<std::string, Family> families;

  for (const MetricSample& sample : snapshot.samples) {
    std::string family_name;
    std::string labels;
    std::string help;
    for (const LabeledFamily& lf : kLabeledFamilies) {
      const std::string_view prefix = lf.prefix;
      if (sample.name.size() > prefix.size() &&
          sample.name.compare(0, prefix.size(), prefix) == 0) {
        const std::string rest = sample.name.substr(prefix.size());
        const std::size_t dot = rest.rfind('.');
        if (dot != std::string::npos) {
          family_name = lf.family;
          help = lf.help;
          labels = "{array=\"" + escape_label(rest.substr(0, dot)) +
                   "\",fifo=\"" + escape_label(rest.substr(dot + 1)) + "\"}";
        }
        break;
      }
    }
    // Per-tenant serving series (serve.[<inst>.]tenant.<t>.<metric>) keep
    // the tenant as a label instead of one family per tenant, so SLO
    // dashboards aggregate across tenants with a plain sum by (tenant).
    if (family_name.empty() &&
        sample.name.compare(0, 6, "serve.") == 0) {
      const std::size_t tpos = sample.name.find(".tenant.");
      if (tpos != std::string::npos) {
        const std::string rest = sample.name.substr(tpos + 8);
        const std::size_t dot = rest.rfind('.');
        if (dot != std::string::npos) {
          family_name = sanitize_name(sample.name.substr(0, tpos) +
                                      "_tenant_" + rest.substr(dot + 1));
          help = "per-tenant serving metric (see docs/SERVING.md)";
          labels =
              "{tenant=\"" + escape_label(rest.substr(0, dot)) + "\"}";
        }
      }
    }
    if (family_name.empty()) {
      family_name = sanitize_name(sample.name);
      help = "stencilcc metric " + escape_help(sample.name);
    }

    auto it = families.find(family_name);
    if (it == families.end()) {
      it = families.emplace(family_name, Family{}).first;
      it->second.kind = sample.kind;
      it->second.help = std::move(help);
    } else if (it->second.kind != sample.kind) {
      // Same family name reached from two kinds (should not happen with
      // the runtime's naming scheme); keep both by splitting on kind.
      const std::string alt = family_name + "_" + kind_name(sample.kind);
      it = families.emplace(alt, Family{}).first;
      it->second.kind = sample.kind;
      it->second.help = std::move(help);
    }
    it->second.samples.push_back(RenderedSample{std::move(labels), &sample});
  }

  std::string out;
  out.reserve(families.size() * 160);
  for (const auto& [name, family] : families) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " " + kind_name(family.kind) + "\n";
    for (const RenderedSample& rs : family.samples) {
      const MetricSample& s = *rs.sample;
      switch (family.kind) {
        case MetricSample::Kind::kCounter:
          out += name + "_total" + rs.labels + " " +
                 std::to_string(s.value) + "\n";
          break;
        case MetricSample::Kind::kGauge:
          out += name + rs.labels + " " + std::to_string(s.value) + "\n";
          break;
        case MetricSample::Kind::kHistogram: {
          const Histogram::Snapshot& h = s.hist;
          std::int64_t cumulative = 0;
          for (std::size_t b = 0; b < h.bounds.size(); ++b) {
            cumulative += b < h.counts.size() ? h.counts[b] : 0;
            out += name + "_bucket{le=\"" + std::to_string(h.bounds[b]) +
                   "\"} " + std::to_string(cumulative) + "\n";
          }
          out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) +
                 "\n";
          out += name + "_sum " + std::to_string(h.sum) + "\n";
          out += name + "_count " + std::to_string(h.count) + "\n";
          break;
        }
      }
    }
  }
  out += "# EOF\n";
  return out;
}

std::string Registry::snapshot_openmetrics() const {
  return render_openmetrics(snapshot());
}

// ---- MetricsServer ------------------------------------------------------

namespace {

std::string http_response(const std::string& status,
                          const std::string& content_type,
                          const std::string& body) {
  return "HTTP/1.0 " + status + "\r\nContent-Type: " + content_type +
         "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n" + body;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

struct MetricsServer::Impl {
  MetricsServerOptions options;
  Registry* registry = nullptr;
  // The loopback accept/read/write plumbing is shared with the serving
  // front-end (serve::ServeEndpoint) through util::LoopbackListener.
  std::unique_ptr<util::LoopbackListener> listener;
  std::string error;

  std::thread acceptor;
  std::thread sampler;
  std::atomic<bool> running{false};
  std::mutex stop_mu;
  std::condition_variable stop_cv;
  bool stopping = false;

  void serve_connection(int fd) {
    char buf[2048];
    const ssize_t n = ::read(fd, buf, sizeof(buf) - 1);
    if (n <= 0) return;
    buf[n] = '\0';
    // "GET /path HTTP/1.x" — everything else is a 404/400.
    std::string path;
    if (std::strncmp(buf, "GET ", 4) == 0) {
      const char* start = buf + 4;
      const char* end = std::strchr(start, ' ');
      if (end != nullptr) path.assign(start, end);
    }
    std::string response;
    if (path == "/metrics" || path == "/") {
      response = http_response(
          "200 OK",
          "application/openmetrics-text; version=1.0.0; charset=utf-8",
          registry->snapshot_openmetrics());
    } else if (path == "/metrics.json") {
      response = http_response("200 OK", "application/json",
                               registry->snapshot().to_json() + "\n");
    } else if (path.empty()) {
      response = http_response("400 Bad Request", "text/plain",
                               "bad request\n");
    } else {
      response = http_response("404 Not Found", "text/plain", "not found\n");
    }
    util::write_all(fd, response);
  }

  void accept_loop() {
    while (running.load(std::memory_order_acquire)) {
      const int fd = listener->accept_client();
      if (fd < 0) break;  // listener shut down
      serve_connection(fd);
      ::close(fd);
    }
  }

  void sample_loop() {
    std::unique_lock<std::mutex> lock(stop_mu);
    while (!stopping) {
      stop_cv.wait_for(
          lock, std::chrono::milliseconds(options.sample_period_ms));
      if (stopping) break;
      lock.unlock();
      const MetricsSnapshot snap = registry->snapshot();
      for (const MetricSample& s : snap.samples) {
        if (s.kind != MetricSample::Kind::kGauge) continue;
        for (const std::string& suffix : options.sampled_suffixes) {
          if (ends_with(s.name, suffix)) {
            registry->histogram(s.name + ".sampled").observe(s.value);
            break;
          }
        }
      }
      lock.lock();
    }
  }
};

MetricsServer::MetricsServer(MetricsServerOptions options)
    : impl_(std::make_unique<Impl>()) {
  Impl& im = *impl_;
  im.options = std::move(options);
  im.registry = im.options.registry != nullptr ? im.options.registry
                                               : &Registry::global();

  im.listener = std::make_unique<util::LoopbackListener>(im.options.port);
  if (!im.listener->ok()) {
    im.error = im.listener->error();  // names the requested port
    im.listener.reset();
    return;
  }

  im.running.store(true, std::memory_order_release);
  im.acceptor = std::thread([this] { impl_->accept_loop(); });
  if (im.options.sample_period_ms > 0) {
    im.sampler = std::thread([this] { impl_->sample_loop(); });
  }
}

MetricsServer::~MetricsServer() { stop(); }

bool MetricsServer::ok() const { return impl_->listener != nullptr; }

const std::string& MetricsServer::error() const { return impl_->error; }

int MetricsServer::port() const {
  return impl_->listener ? impl_->listener->port() : 0;
}

void MetricsServer::stop() {
  Impl& im = *impl_;
  if (!im.running.exchange(false, std::memory_order_acq_rel)) {
    // Never started (bind failure) or already stopped.
    im.listener.reset();
    return;
  }
  im.listener->shutdown();  // unblocks accept_client()
  {
    std::lock_guard<std::mutex> lock(im.stop_mu);
    im.stopping = true;
  }
  im.stop_cv.notify_all();
  if (im.acceptor.joinable()) im.acceptor.join();
  if (im.sampler.joinable()) im.sampler.join();
  im.listener.reset();
}

}  // namespace nup::obs
