#ifndef NUP_OBS_JOURNAL_HPP
#define NUP_OBS_JOURNAL_HPP

/// Flight recorder: an always-on, lock-free ring of compact structured
/// events, one ring per recording thread, plus a post-mortem dumper that
/// bundles the last-N events (merged across threads, time-ordered) with a
/// metrics snapshot and the offending design's describe() text whenever a
/// frame fails, is cancelled, deadlocks, or violates its Eq. 2 depth bound.
///
/// The write path is a seqlock per 64-byte slot: one sequence word and
/// seven relaxed payload words bracketed by release/acquire fences, so
/// recording never takes a lock and never blocks a reader; a reader that
/// races a writer simply discards the torn slot. Under -DNUP_OBS_DISABLE
/// record() compiles to an empty function.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace nup::obs {

class Registry;

/// What happened. Kept to one byte in the packed slot.
enum class JournalKind : std::uint8_t {
  kNone = 0,
  kFrameAdmitted,    ///< a = admission wait us, b = tiles in the frame
  kFrameCompleted,   ///< a = frame latency us
  kFrameFailed,      ///< a = frame latency us
  kFrameCancelled,   ///< a = frame latency us
  kTileExecuted,     ///< a = tile latency us
  kTileSkipped,      ///< tile dropped by cancellation / abort
  kDepResolved,      ///< stage dependency resolved; tile released downstream
  kSlabLeased,       ///< a = elements, b = 1 when the lease hit the heap
  kSlabRecycled,     ///< a = elements returned to the pool
  kPassStarted,      ///< a = pass index, b = generations in the pass
  kFifoHighWater,    ///< a = high water, b = designed depth
  kDepthViolation,   ///< a = high water, b = designed (Eq. 2) depth
  kDeadlock,         ///< simulator returned a deadlock verdict
};

const char* to_string(JournalKind kind);

/// One decoded event. `name` resolves the writer's interned name id
/// (engine / pipeline / edge instance); empty when the writer passed 0.
struct JournalRecord {
  std::int64_t ts_ns = 0;  ///< steady-clock nanoseconds (same base as Tracer)
  JournalKind kind = JournalKind::kNone;
  std::uint32_t thread = 0;  ///< recording thread (registration order)
  std::uint64_t frame = 0;   ///< causal frame id (obs::next_frame_id)
  std::int32_t stage = -1;   ///< pipeline stage, -1 outside a pipeline
  std::int64_t tile = -1;    ///< tile index, -1 for frame-level events
  std::int64_t a = 0;        ///< kind-specific payload (see JournalKind)
  std::int64_t b = 0;        ///< kind-specific payload
  std::string name;          ///< interned component name
};

/// The FIFO a depth violation names in its post-mortem bundle.
struct FifoDetail {
  std::string array;
  std::size_t fifo = 0;
  std::int64_t depth = 0;
  std::int64_t high_water = 0;
  bool word_level = false;  ///< Eq. 2 / W word bound rather than elements
};

/// Everything a post-mortem bundle records beside the event log and the
/// metrics snapshot.
struct PostmortemInfo {
  std::string reason;  ///< "frame_failed" | "frame_cancelled" |
                       ///< "depth_violation" | "deadlock"
  std::string detail;  ///< human-readable error text
  std::uint64_t frame = 0;
  std::int64_t stage = -1;
  std::int64_t tile = -1;
  std::string design;  ///< arch::describe() of the offending design
  bool has_fifo = false;
  FifoDetail fifo;
  std::size_t last_n = 256;  ///< events to include, newest first
};

class Journal {
 public:
  /// ring_capacity is rounded up to a power of two; each recording thread
  /// owns one ring of that many 64-byte slots.
  explicit Journal(std::size_t ring_capacity = kDefaultRingCapacity);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Maps a component name to a small id carried in the packed slot.
  /// Takes a lock; call once at construction and cache the id.
  std::uint32_t intern(std::string_view name);

  /// Records one event into the calling thread's ring. Lock-free after the
  /// thread's first call; wait-free against readers. No-op when disabled
  /// at run time or compiled out.
  void record(JournalKind kind, std::uint64_t frame, std::int32_t stage = -1,
              std::int64_t tile = -1, std::int64_t a = 0, std::int64_t b = 0,
              std::uint32_t name_id = 0) noexcept;

  /// Merges every thread's ring into one time-ordered log. last_n == 0
  /// returns everything still buffered; otherwise the newest last_n.
  /// Torn slots (racing a concurrent writer) are skipped, not waited on.
  std::vector<JournalRecord> snapshot(std::size_t last_n = 0) const;

  /// Total events ever recorded (including those overwritten by ring wrap)
  /// and events dropped because the thread-ring budget was exhausted.
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

  /// Bytes currently committed to slot storage across all thread rings.
  std::size_t capacity_bytes() const;

  /// Run-time kill switch (the compile-time one is -DNUP_OBS_DISABLE).
  /// The journal is always-on by default; benches A/B against this.
  void set_enabled(bool enabled);
  bool enabled() const;

  /// Post-mortem bundles are written under this directory; empty (the
  /// default) disables dumping entirely.
  void set_postmortem_dir(std::string dir);
  std::string postmortem_dir() const;

  /// Writes `postmortem-<reason>-<seq>.json` under the post-mortem dir:
  /// the info header, the last-N merged events, and (when `metrics` is
  /// non-null) a full registry snapshot. Callers record the failure event
  /// itself (kDeadlock, kDepthViolation, ...) before dumping, so the
  /// bundle's own log names it and the flight recorder keeps the event
  /// even when no directory is configured. Returns the path written, or
  /// "" when no directory is configured or the write failed. Never
  /// throws.
  std::string dump_postmortem(const PostmortemInfo& info,
                              const Registry* metrics = nullptr);

  /// Process-wide journal, used unless an EngineOptions/PipelineOptions
  /// override is given. Never destroyed.
  static Journal& global();

  static constexpr std::size_t kDefaultRingCapacity = 4096;
  /// Budget backstop: threads beyond this many get their events dropped
  /// (and counted) instead of growing slot storage without bound.
  static constexpr std::size_t kMaxThreadRings = 512;

 private:
  struct ThreadRing;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Process-wide causal frame-id allocator: every frame that enters any
/// engine, pipeline, or temporal runner gets a unique id so journal events
/// and trace flows from different components stitch into one lane.
std::uint64_t next_frame_id();

}  // namespace nup::obs

#endif  // NUP_OBS_JOURNAL_HPP
