#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "pipeline/executor.hpp"
#include "stencil/program.hpp"
#include "temporal/unroll.hpp"

namespace nup::temporal {

/// How the runner drives the unrolled schedule.
struct RunnerOptions {
  /// Options of the underlying pipeline executors (threads, tile shape,
  /// build options including datapath_width, metrics registry, admission
  /// window). The runner derives one executor per distinct pass shape; a
  /// non-empty name namespaces their metrics per shape. kWrap overrides
  /// the tile shape to whole-frame tiles (a wrapped read reaches the
  /// opposite edge of the grid, so the stitched slice must span it).
  pipeline::PipelineOptions pipeline;

  /// Convergence monitor: when > 0, the runner compares successive pass
  /// outputs over the target domain (max-abs delta) and stops a frame's
  /// remaining passes once the residual is <= tolerance. 0 disables the
  /// monitor; every frame runs all ceil(T/B) passes.
  double tolerance = 0.0;

  /// Temporal admission window: how many passes (across frames) the
  /// runner keeps in flight at once when pumping multiple frames. Passes
  /// of one frame are data-dependent and always run in order; the window
  /// overlaps frame f+1's early passes with frame f's later ones.
  /// Clamped to at least 1.
  std::size_t max_passes_in_flight = 4;
};

/// Result of one temporal frame (one seed swept through T generations).
struct FrameOutcome {
  std::uint64_t seed = 0;
  /// Generation `generations_completed` over the target domain,
  /// lexicographic order. Bit-identical to run_golden_sweeps when all T
  /// generations ran.
  std::vector<double> outputs;
  std::int64_t generations_completed = 0;  ///< T, or fewer when converged
  std::int64_t passes_completed = 0;
  bool converged_early = false;
  /// Last pass-boundary residual the monitor saw; -1 when never measured.
  double last_residual = -1.0;
  std::string error;  ///< non-empty when a pass failed

  bool ok() const { return error.empty(); }
};

/// Drives a temporal-blocking schedule end to end: plans the replica
/// chains (plan_temporal), builds one PipelineExecutor per distinct pass
/// shape -- each stage engine sizes its replica's reuse FIFOs
/// non-uniformly via the arch builder, honoring datapath_width -- and
/// pumps ceil(T/B) passes per frame through them, chaining pass p+1's
/// external input to pass p's sink output via FrameOptions. Multiple
/// frames overlap: while frame f's later passes drain, frame f+1's early
/// passes already stream (cross-frame admission at both the temporal and
/// the executor level).
///
/// Publishes temporal.<name>.{passes_completed, generations_completed,
/// frames_completed, converged_frames, generations_saved} counters and a
/// temporal.<name>.pass_residual histogram (micro-units) to the
/// registry of RunnerOptions::pipeline.metrics.
class TemporalRunner {
 public:
  TemporalRunner(const stencil::StencilProgram& program,
                 const TemporalConfig& config, RunnerOptions options = {});
  ~TemporalRunner();  // shutdown() if still running

  TemporalRunner(const TemporalRunner&) = delete;
  TemporalRunner& operator=(const TemporalRunner&) = delete;

  /// Runs one frame to completion (all passes, or early exit on
  /// convergence). Blocking; equivalent to run_frames({seed})[0].
  FrameOutcome run(std::uint64_t seed);

  /// Runs one frame per seed with cross-frame pass overlap, in order;
  /// outcome k belongs to seeds[k].
  std::vector<FrameOutcome> run_frames(
      const std::vector<std::uint64_t>& seeds);

  const TemporalSchedule& schedule() const { return schedule_; }

  /// Number of executors (one per distinct pass shape).
  std::size_t executor_count() const { return executors_.size(); }

  /// Sum of per-tile designs pinned across every stage engine of every
  /// executor: the non-uniformly partitioned replica microarchitectures
  /// resident for steady-state serving.
  std::size_t pinned_designs() const;

  /// Stops all executors (draining in-flight work). Idempotent; run()
  /// fails afterwards.
  void shutdown();

 private:
  struct InFlight;

  pipeline::PipelineHandle submit_pass(
      std::uint64_t seed, std::size_t pass, std::uint64_t trace_id,
      const std::shared_ptr<const std::vector<double>>& prev,
      const poly::IntVec& prev_lo, const poly::IntVec& prev_hi);

  /// Restricts a pass output (over box [lo, hi]) to the target domain.
  std::vector<double> restrict_to_target(const std::vector<double>& data,
                                         const poly::IntVec& lo,
                                         const poly::IntVec& hi) const;

  TemporalSchedule schedule_;
  RunnerOptions options_;
  std::string metric_prefix_;
  obs::Journal* journal_ = nullptr;
  std::uint32_t jname_ = 0;
  std::vector<std::unique_ptr<pipeline::PipelineExecutor>> executors_;
  bool shut_down_ = false;

  obs::Counter* c_passes_ = nullptr;
  obs::Counter* c_generations_ = nullptr;
  obs::Counter* c_frames_ = nullptr;
  obs::Counter* c_converged_ = nullptr;
  obs::Counter* c_saved_ = nullptr;
  obs::Histogram* h_residual_ = nullptr;
};

}  // namespace nup::temporal
