#include "temporal/unroll.hpp"

#include <algorithm>
#include <utility>

namespace nup::temporal {

namespace {

/// The box N_g = D + (T - g) * W a kShrink replica producing generation g
/// iterates: exactly the points whose value can still influence generation
/// T on the target box D, so every pass-to-pass handoff is containment.
void shrink_box(const poly::IntVec& dlo, const poly::IntVec& dhi,
                const poly::IntVec& wlo, const poly::IntVec& whi,
                std::int64_t steps_left, poly::IntVec* lo,
                poly::IntVec* hi) {
  lo->resize(dlo.size());
  hi->resize(dhi.size());
  for (std::size_t d = 0; d < dlo.size(); ++d) {
    (*lo)[d] = dlo[d] + steps_left * wlo[d];
    (*hi)[d] = dhi[d] + steps_left * whi[d];
  }
}

PassShape build_shape(const stencil::StencilProgram& base,
                      std::vector<poly::Domain> domains,
                      std::int64_t first_generation,
                      const pipeline::EdgePolicy& policy) {
  PassShape shape;
  shape.replicas = domains.size();
  for (std::size_t k = 0; k < domains.size(); ++k) {
    shape.graph.add_stage(make_replica(
        base, domains[k],
        base.name() + ".t" + std::to_string(first_generation +
                                            static_cast<std::int64_t>(k))));
  }
  for (std::size_t k = 0; k + 1 < domains.size(); ++k) {
    shape.graph.add_edge(k, k + 1, 0, policy);
  }
  shape.domains = std::move(domains);
  return shape;
}

}  // namespace

stencil::StencilProgram make_replica(const stencil::StencilProgram& base,
                                     poly::Domain domain,
                                     std::string name) {
  stencil::StencilProgram replica(std::move(name), std::move(domain));
  const stencil::InputArray& input = base.inputs()[0];
  std::vector<poly::IntVec> offsets;
  offsets.reserve(input.refs.size());
  for (const stencil::ArrayReference& ref : input.refs) {
    offsets.push_back(ref.offset);
  }
  replica.add_input(input.name, std::move(offsets));
  replica.set_output(base.output_name());
  // Materialize the lazy equal-weight default first, so default-kernel
  // programs replicate as weighted sums (canonical fma order -> replicas
  // are bit-identical to the base, and the vector path sees the weights).
  const stencil::KernelFn& kernel = base.kernel();
  if (!base.weighted_sum_weights().empty()) {
    replica.set_weighted_sum(base.weighted_sum_weights());
  } else {
    replica.set_kernel(kernel);
  }
  return replica;
}

TemporalSchedule plan_temporal(const stencil::StencilProgram& base,
                               const TemporalConfig& config) {
  const std::int64_t T = config.timesteps;
  const std::int64_t B = config.block;
  if (T < 1) {
    throw TemporalConfigError("plan_temporal: timesteps must be >= 1, got " +
                              std::to_string(T));
  }
  if (B < 1) {
    throw TemporalConfigError("plan_temporal: block must be >= 1, got " +
                              std::to_string(B));
  }
  if (B > T) {
    throw TemporalConfigError(
        "plan_temporal: block " + std::to_string(B) + " exceeds timesteps " +
        std::to_string(T) + "; a pass cannot hold more replicas than there "
        "are generations left");
  }
  if (base.inputs().size() != 1) {
    throw TemporalConfigError(
        "plan_temporal: program '" + base.name() + "' reads " +
        std::to_string(base.inputs().size()) +
        " arrays; iterative unrolling needs exactly one (the previous "
        "generation)");
  }

  TemporalSchedule sched;
  sched.config = config;
  if (!base.iteration().as_single_box(&sched.domain_lo, &sched.domain_hi)) {
    throw TemporalDomainError(
        "plan_temporal: program '" + base.name() +
        "' iterates a non-box domain " + base.iteration().to_string() +
        "; temporal replica algebra is defined on axis-aligned boxes only");
  }

  const std::size_t dim = base.dim();
  sched.window_lo.assign(dim, 0);
  sched.window_hi.assign(dim, 0);
  for (const stencil::ArrayReference& ref : base.inputs()[0].refs) {
    for (std::size_t d = 0; d < dim; ++d) {
      sched.window_lo[d] = std::min(sched.window_lo[d], ref.offset[d]);
      sched.window_hi[d] = std::max(sched.window_hi[d], ref.offset[d]);
    }
  }

  sched.num_passes = (T + B - 1) / B;
  const pipeline::EdgePolicy policy{config.boundary, config.constant_value};

  if (stencil::is_containment_policy(config.boundary)) {
    // One shape per pass: replica for generation g iterates the target box
    // grown by (T - g) windows.
    for (std::int64_t p = 0; p < sched.num_passes; ++p) {
      const std::int64_t first = p * B + 1;
      const std::int64_t last = std::min((p + 1) * B, T);
      std::vector<poly::Domain> domains;
      for (std::int64_t g = first; g <= last; ++g) {
        poly::IntVec lo, hi;
        shrink_box(sched.domain_lo, sched.domain_hi, sched.window_lo,
                   sched.window_hi, T - g, &lo, &hi);
        domains.push_back(poly::Domain::box(lo, hi));
      }
      sched.shapes.push_back(
          build_shape(base, std::move(domains), first, policy));
      sched.pass_shape.push_back(static_cast<std::size_t>(p));
      sched.first_generation.push_back(first);
    }
  } else {
    // Every replica iterates the target box; out-of-domain reads are
    // defined by the policy. At most two shapes: full and (T % B) tail.
    const auto same_domain_shape = [&](std::int64_t replicas) {
      std::vector<poly::Domain> domains(
          static_cast<std::size_t>(replicas),
          poly::Domain::box(sched.domain_lo, sched.domain_hi));
      return build_shape(base, std::move(domains), 1, policy);
    };
    sched.shapes.push_back(same_domain_shape(B));
    const std::int64_t tail = T % B;
    if (tail != 0) sched.shapes.push_back(same_domain_shape(tail));
    for (std::int64_t p = 0; p < sched.num_passes; ++p) {
      const bool is_tail = tail != 0 && p == sched.num_passes - 1;
      sched.pass_shape.push_back(is_tail ? 1 : 0);
      sched.first_generation.push_back(p * B + 1);
    }
  }
  return sched;
}

void TemporalSchedule::pass_output_box(std::size_t pass, poly::IntVec* lo,
                                       poly::IntVec* hi) const {
  const PassShape& shape = shapes[pass_shape[pass]];
  if (!shape.domains.back().as_single_box(lo, hi)) {
    throw TemporalDomainError(
        "pass_output_box: sink replica domain is not a box");
  }
}

}  // namespace nup::temporal
