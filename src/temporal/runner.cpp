#include "temporal/runner.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <utility>

#include "obs/trace.hpp"
#include "pipeline/stage_buffer.hpp"
#include "temporal/golden.hpp"

namespace nup::temporal {

namespace {

std::vector<std::int64_t> row_major_strides(const poly::IntVec& lo,
                                            const poly::IntVec& hi) {
  std::vector<std::int64_t> strides(lo.size(), 1);
  for (std::size_t d = lo.size(); d-- > 1;) {
    strides[d - 1] = strides[d] * (hi[d] - lo[d] + 1);
  }
  return strides;
}

std::int64_t box_index(const poly::IntVec& point, const poly::IntVec& lo,
                       const std::vector<std::int64_t>& strides) {
  std::int64_t idx = 0;
  for (std::size_t d = 0; d < point.size(); ++d) {
    idx += (point[d] - lo[d]) * strides[d];
  }
  return idx;
}

std::int64_t residual_micro(double residual) {
  const double scaled = residual * 1e6;
  if (scaled >= static_cast<double>(
                    std::numeric_limits<std::int64_t>::max())) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return std::llround(std::max(scaled, 0.0));
}

}  // namespace

struct TemporalRunner::InFlight {
  std::size_t idx = 0;   ///< index into the seeds/outcomes vectors
  std::size_t pass = 0;
  std::uint64_t trace_id = 0;  ///< one causal id across all passes
  pipeline::PipelineHandle handle;
  /// Previous pass output restricted to the target domain, kept only
  /// while the convergence monitor is on.
  std::shared_ptr<const std::vector<double>> prev_target;
  double last_residual = -1.0;
};

TemporalRunner::TemporalRunner(const stencil::StencilProgram& program,
                               const TemporalConfig& config,
                               RunnerOptions options)
    : schedule_(plan_temporal(program, config)),
      options_(std::move(options)) {
  const std::string effective = options_.pipeline.name.empty()
                                    ? program.name()
                                    : options_.pipeline.name;
  metric_prefix_ = "temporal." + effective + ".";
  obs::Registry& reg = options_.pipeline.metrics
                           ? *options_.pipeline.metrics
                           : obs::Registry::global();
  c_passes_ = &reg.counter(metric_prefix_ + "passes_completed");
  c_generations_ = &reg.counter(metric_prefix_ + "generations_completed");
  c_frames_ = &reg.counter(metric_prefix_ + "frames_completed");
  c_converged_ = &reg.counter(metric_prefix_ + "converged_frames");
  c_saved_ = &reg.counter(metric_prefix_ + "generations_saved");
  h_residual_ = &reg.histogram(metric_prefix_ + "pass_residual");
  journal_ = options_.pipeline.journal ? options_.pipeline.journal
                                       : &obs::Journal::global();
  jname_ = journal_->intern("temporal." + effective);

  for (std::size_t k = 0; k < schedule_.shapes.size(); ++k) {
    pipeline::PipelineOptions po = options_.pipeline;
    po.name = effective;
    if (schedule_.shapes.size() > 1) po.name += ".sh" + std::to_string(k);
    if (config.boundary == stencil::BoundaryPolicy::kWrap) {
      // A wrapped halo read reaches the opposite edge of the grid, so a
      // consumer tile may need any producer row: force whole-frame tiles
      // (<= 0 extents select the full dimension).
      po.tile_shape.assign(program.dim(), 0);
    }
    executors_.push_back(std::make_unique<pipeline::PipelineExecutor>(
        schedule_.shapes[k].graph, std::move(po)));
  }
}

TemporalRunner::~TemporalRunner() { shutdown(); }

void TemporalRunner::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  for (auto& executor : executors_) {
    executor->shutdown(pipeline::PipelineExecutor::Drain::kDrainAll);
  }
}

pipeline::PipelineHandle TemporalRunner::submit_pass(
    std::uint64_t seed, std::size_t pass, std::uint64_t trace_id,
    const std::shared_ptr<const std::vector<double>>& prev,
    const poly::IntVec& prev_lo, const poly::IntVec& prev_hi) {
  pipeline::PipelineExecutor& executor =
      *executors_[schedule_.pass_shape[pass]];
  const PassShape& shape = schedule_.shapes[schedule_.pass_shape[pass]];
  journal_->record(obs::JournalKind::kPassStarted, trace_id, -1, -1,
                   static_cast<std::int64_t>(pass),
                   static_cast<std::int64_t>(shape.replicas), jname_);
  pipeline::FrameOptions frame;
  // One causal identity across all passes of the frame: the runner owns
  // the trace lane (async begin/end, flow start/end); each pass's stage
  // tiles bind to it through flow steps.
  frame.frame_id = trace_id;
  frame.own_frame_events = false;
  if (pass == 0) return executor.submit(seed, std::move(frame));

  // Chain: the pass's first replica streams the previous pass's sink
  // output instead of synthetic DRAM. A value policy wraps the slice so
  // halo reads past the previous generation's box are defined; kShrink
  // needs no wrapper (the replica's grown domain is contained by
  // construction).
  pipeline::Slice slice;
  slice.data = prev;
  slice.lo = prev_lo;
  slice.hi = prev_hi;
  const stencil::BoundaryPolicy boundary = schedule_.config.boundary;
  const double constant = schedule_.config.constant_value;
  frame.external_feed = [slice, boundary, constant](
                            std::size_t stage, std::size_t input,
                            const runtime::Tile&)
      -> std::shared_ptr<sim::ExternalFeed> {
    if (stage != 0 || input != 0) return nullptr;
    auto feed = std::make_shared<pipeline::SliceFeed>(slice);
    if (stencil::is_containment_policy(boundary)) return feed;
    return std::make_shared<pipeline::BoundaryFeed>(
        std::move(feed), slice.lo, slice.hi, boundary, constant);
  };
  return executor.submit(seed, std::move(frame));
}

std::vector<double> TemporalRunner::restrict_to_target(
    const std::vector<double>& data, const poly::IntVec& lo,
    const poly::IntVec& hi) const {
  if (lo == schedule_.domain_lo && hi == schedule_.domain_hi) return data;
  const std::vector<std::int64_t> strides = row_major_strides(lo, hi);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(
      poly::Domain::box(schedule_.domain_lo, schedule_.domain_hi).count()));
  poly::Domain::box(schedule_.domain_lo, schedule_.domain_hi)
      .for_each([&](const poly::IntVec& h) {
        out.push_back(
            data[static_cast<std::size_t>(box_index(h, lo, strides))]);
      });
  return out;
}

FrameOutcome TemporalRunner::run(std::uint64_t seed) {
  return run_frames({seed})[0];
}

std::vector<FrameOutcome> TemporalRunner::run_frames(
    const std::vector<std::uint64_t>& seeds) {
  if (shut_down_) {
    throw TemporalError("TemporalRunner::run_frames: runner is shut down");
  }
  std::vector<FrameOutcome> outcomes(seeds.size());
  for (std::size_t k = 0; k < seeds.size(); ++k) {
    outcomes[k].seed = seeds[k];
  }
  const std::size_t window = std::max<std::size_t>(
      options_.max_passes_in_flight, 1);
  const bool monitor = options_.tolerance > 0.0;
  const std::size_t num_passes =
      static_cast<std::size_t>(schedule_.num_passes);

  std::deque<InFlight> in_flight;
  std::size_t next_frame = 0;
  obs::Tracer& tracer = obs::Tracer::global();
  const auto admit = [&] {
    if (next_frame >= seeds.size()) return;
    InFlight f;
    f.idx = next_frame;
    f.pass = 0;
    f.trace_id = obs::next_frame_id();
    journal_->record(obs::JournalKind::kFrameAdmitted, f.trace_id, -1, -1,
                     0, static_cast<std::int64_t>(num_passes), jname_);
    if (tracer.enabled()) {
      tracer.async_begin("temporal.frame", "temporal", f.trace_id,
                         "{\"seed\":" + std::to_string(seeds[next_frame]) +
                             ",\"passes\":" + std::to_string(num_passes) +
                             "}");
      tracer.flow_start("frame", "temporal", f.trace_id);
    }
    f.handle = submit_pass(seeds[next_frame], 0, f.trace_id, nullptr, {}, {});
    in_flight.push_back(std::move(f));
    ++next_frame;
  };
  // Closes the frame's trace lane and journals its terminal event.
  const auto finish_frame = [&](const InFlight& f, bool failed,
                                std::int64_t generations) {
    journal_->record(failed ? obs::JournalKind::kFrameFailed
                            : obs::JournalKind::kFrameCompleted,
                     f.trace_id, -1, -1, generations,
                     static_cast<std::int64_t>(f.pass), jname_);
    if (tracer.enabled()) {
      tracer.flow_end("frame", "temporal", f.trace_id);
      tracer.async_end("temporal.frame", "temporal", f.trace_id);
    }
  };
  while (in_flight.size() < window && next_frame < seeds.size()) admit();

  while (!in_flight.empty()) {
    InFlight f = std::move(in_flight.front());
    in_flight.pop_front();
    FrameOutcome& outcome = outcomes[f.idx];
    const pipeline::PipelineResult& result = f.handle.wait();
    if (!result.ok()) {
      outcome.error = "pass " + std::to_string(f.pass) + ": " +
                      (result.cancelled ? "cancelled" : result.error);
      outcome.passes_completed = static_cast<std::int64_t>(f.pass);
      finish_frame(f, /*failed=*/true, outcome.generations_completed);
      admit();
      continue;
    }

    const PassShape& shape = schedule_.shapes[schedule_.pass_shape[f.pass]];
    const std::size_t sink = shape.graph.stage_count() - 1;
    const std::vector<double>& out = result.stages[sink].outputs;
    poly::IntVec out_lo, out_hi;
    schedule_.pass_output_box(f.pass, &out_lo, &out_hi);

    c_passes_->inc();
    c_generations_->add(static_cast<std::int64_t>(shape.replicas));
    outcome.passes_completed = static_cast<std::int64_t>(f.pass) + 1;
    outcome.generations_completed =
        schedule_.first_generation[f.pass] +
        static_cast<std::int64_t>(shape.replicas) - 1;

    bool converged = false;
    std::vector<double> restricted;
    if (monitor || f.pass + 1 == num_passes) {
      restricted = restrict_to_target(out, out_lo, out_hi);
    }
    if (monitor && f.pass > 0) {
      const double residual = max_abs_delta(restricted, *f.prev_target);
      h_residual_->observe(residual_micro(residual));
      outcome.last_residual = residual;
      f.last_residual = residual;
      converged = residual <= options_.tolerance;
    }

    if (converged || f.pass + 1 == num_passes) {
      outcome.outputs = std::move(restricted);
      outcome.converged_early = converged && f.pass + 1 < num_passes;
      c_frames_->inc();
      if (outcome.converged_early) {
        c_converged_->inc();
        c_saved_->add(schedule_.config.timesteps -
                      outcome.generations_completed);
      }
      finish_frame(f, /*failed=*/false, outcome.generations_completed);
      admit();
      continue;
    }

    InFlight next;
    next.idx = f.idx;
    next.pass = f.pass + 1;
    next.trace_id = f.trace_id;
    next.last_residual = f.last_residual;
    if (monitor) {
      next.prev_target =
          std::make_shared<const std::vector<double>>(std::move(restricted));
    }
    next.handle =
        submit_pass(outcome.seed, next.pass, next.trace_id,
                    std::make_shared<const std::vector<double>>(out),
                    out_lo, out_hi);
    in_flight.push_back(std::move(next));
  }
  return outcomes;
}

std::size_t TemporalRunner::pinned_designs() const {
  std::size_t pinned = 0;
  for (const auto& executor : executors_) {
    for (std::size_t s = 0; s < executor->graph().stage_count(); ++s) {
      pinned += static_cast<std::size_t>(
          executor->engine(s).stats().cache.pinned);
    }
  }
  return pinned;
}

}  // namespace nup::temporal
