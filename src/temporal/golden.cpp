#include "temporal/golden.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "stencil/boundary.hpp"
#include "stencil/golden.hpp"

namespace nup::temporal {

namespace {

std::vector<std::int64_t> row_major_strides(const poly::IntVec& lo,
                                            const poly::IntVec& hi) {
  std::vector<std::int64_t> strides(lo.size(), 1);
  for (std::size_t d = lo.size(); d-- > 1;) {
    strides[d - 1] = strides[d] * (hi[d] - lo[d] + 1);
  }
  return strides;
}

std::int64_t box_index(const poly::IntVec& point, const poly::IntVec& lo,
                       const std::vector<std::int64_t>& strides) {
  std::int64_t idx = 0;
  for (std::size_t d = 0; d < point.size(); ++d) {
    idx += (point[d] - lo[d]) * strides[d];
  }
  return idx;
}

bool in_box(const poly::IntVec& point, const poly::IntVec& lo,
            const poly::IntVec& hi) {
  for (std::size_t d = 0; d < point.size(); ++d) {
    if (point[d] < lo[d] || point[d] > hi[d]) return false;
  }
  return true;
}

std::int64_t box_count(const poly::IntVec& lo, const poly::IntVec& hi) {
  std::int64_t n = 1;
  for (std::size_t d = 0; d < lo.size(); ++d) n *= hi[d] - lo[d] + 1;
  return n;
}

}  // namespace

std::vector<double> run_golden_sweeps(const stencil::StencilProgram& program,
                                      const TemporalConfig& config,
                                      std::uint64_t seed) {
  // Validate through the planner (same typed errors, same box/window
  // algebra) with the trivial block -- the reference is blocking-free.
  TemporalConfig ref = config;
  ref.block = 1;
  const TemporalSchedule sched = plan_temporal(program, ref);
  const std::int64_t T = config.timesteps;
  const std::size_t dim = program.dim();
  const std::vector<stencil::ArrayReference>& refs =
      program.inputs()[0].refs;
  const stencil::KernelFn& kernel = program.kernel();
  const bool shrink = stencil::is_containment_policy(config.boundary);

  std::vector<double> prev, cur;
  poly::IntVec prev_lo, prev_hi, cur_lo, cur_hi;
  std::vector<std::int64_t> prev_strides;
  std::vector<double> gathered(refs.size());
  poly::IntVec coord(dim);

  for (std::int64_t g = 1; g <= T; ++g) {
    if (shrink) {
      // Generation g covers the target box grown by (T - g) windows.
      cur_lo.resize(dim);
      cur_hi.resize(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        cur_lo[d] = sched.domain_lo[d] + (T - g) * sched.window_lo[d];
        cur_hi[d] = sched.domain_hi[d] + (T - g) * sched.window_hi[d];
      }
    } else {
      cur_lo = sched.domain_lo;
      cur_hi = sched.domain_hi;
    }
    cur.assign(static_cast<std::size_t>(box_count(cur_lo, cur_hi)), 0.0);
    const std::vector<std::int64_t> cur_strides =
        row_major_strides(cur_lo, cur_hi);

    poly::Domain::box(cur_lo, cur_hi).for_each([&](const poly::IntVec& h) {
      for (std::size_t r = 0; r < refs.size(); ++r) {
        for (std::size_t d = 0; d < dim; ++d) {
          coord[d] = h[d] + refs[r].offset[d];
        }
        if (g == 1) {
          // Generation 0 is the synthetic input, defined everywhere:
          // gather raw, never remapped.
          gathered[r] = stencil::synthetic_value(seed, 0, coord);
        } else if (in_box(coord, prev_lo, prev_hi)) {
          gathered[r] = prev[static_cast<std::size_t>(
              box_index(coord, prev_lo, prev_strides))];
        } else if (config.boundary == stencil::BoundaryPolicy::kConstant) {
          gathered[r] = config.constant_value;
        } else {
          gathered[r] = prev[static_cast<std::size_t>(box_index(
              stencil::map_into_box(coord, prev_lo, prev_hi,
                                    config.boundary),
              prev_lo, prev_strides))];
        }
      }
      cur[static_cast<std::size_t>(box_index(h, cur_lo, cur_strides))] =
          kernel(gathered);
    });

    prev = std::move(cur);
    prev_lo = cur_lo;
    prev_hi = cur_hi;
    prev_strides = row_major_strides(prev_lo, prev_hi);
  }
  return prev;
}

double max_abs_delta(const std::vector<double>& a,
                     const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw TemporalConfigError(
        "max_abs_delta: generation layouts differ (" +
        std::to_string(a.size()) + " vs " + std::to_string(b.size()) +
        " elements)");
  }
  double delta = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    delta = std::max(delta, std::abs(a[k] - b[k]));
  }
  return delta;
}

}  // namespace nup::temporal
