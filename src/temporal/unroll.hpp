#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pipeline/stage_graph.hpp"
#include "poly/int_vec.hpp"
#include "stencil/boundary.hpp"
#include "stencil/program.hpp"
#include "util/error.hpp"

namespace nup::temporal {

/// Base of every temporal-blocking error.
class TemporalError : public Error {
 public:
  explicit TemporalError(const std::string& what) : Error(what) {}
};

/// Raised for inconsistent (T, B, program) configurations: T < 1, B < 1,
/// B > T, or a program the unroller cannot replicate (multiple inputs).
class TemporalConfigError : public TemporalError {
 public:
  explicit TemporalConfigError(const std::string& what)
      : TemporalError(what) {}
};

/// Raised when the program's iteration domain is not a single axis-aligned
/// box. Temporal replicas translate and grow the domain per generation;
/// that algebra (and the boundary policies' coordinate mapping) is defined
/// on boxes only.
class TemporalDomainError : public TemporalError {
 public:
  explicit TemporalDomainError(const std::string& what)
      : TemporalError(what) {}
};

/// How to unroll an iterative stencil in time. `timesteps` is the total
/// iteration count T of the solver; `block` is the temporal blocking
/// factor B: the number of consecutive generations computed by one pass of
/// a replicated pipeline (Zohouri-style temporal blocking -- B replica
/// stages back to back, each holding one generation in its reuse buffers).
/// ceil(T/B) passes complete the run.
struct TemporalConfig {
  std::int64_t timesteps = 1;  ///< T >= 1: generations to compute
  std::int64_t block = 1;      ///< B in [1, T]: replicas per pass

  /// How replicas read past the previous generation's domain edge.
  /// kShrink (the default) computes a grown halo instead -- earlier
  /// replicas iterate a domain expanded by the stencil window per
  /// remaining generation, so every read is contained. The value policies
  /// (clamp / wrap / constant) keep all replicas on the target domain and
  /// define the out-of-domain reads.
  stencil::BoundaryPolicy boundary = stencil::BoundaryPolicy::kShrink;

  /// Dirichlet value served by BoundaryPolicy::kConstant.
  double constant_value = 0.0;
};

/// One pass shape: a validated chain of replica stages. Passes whose
/// replica domains coincide (all full passes under a value policy) share
/// one PassShape -- and hence, in the runner, one executor whose per-stage
/// engines hold the non-uniformly partitioned reuse buffers of every
/// replica.
struct PassShape {
  pipeline::StageGraph graph;          ///< replica chain, one stage per gen
  std::size_t replicas = 0;            ///< stages in the chain
  std::vector<poly::Domain> domains;   ///< per-replica iteration domain
};

/// The full unrolled schedule of one temporal-blocking run.
struct TemporalSchedule {
  TemporalConfig config;
  std::int64_t num_passes = 0;  ///< ceil(T / B)

  /// Distinct pass shapes. Value policies need at most two (the B-replica
  /// full pass and, when T % B != 0, the shorter final pass); kShrink
  /// builds one per pass, since every generation iterates a different box.
  std::vector<PassShape> shapes;

  /// shape index of pass p, p in [0, num_passes).
  std::vector<std::size_t> pass_shape;

  /// First generation computed by pass p (replica k of pass p produces
  /// generation first_generation[p] + k; generation 0 is the input).
  std::vector<std::int64_t> first_generation;

  /// Per-step stencil window: the per-dimension min/max reference offset.
  poly::IntVec window_lo, window_hi;

  /// The target iteration domain box (generation T lives here).
  poly::IntVec domain_lo, domain_hi;

  /// Iteration domain of pass p's sink replica (the pass output box).
  /// Under a value policy every pass outputs the target box; under
  /// kShrink pass p's output box is the target grown by (T - (p+1)B)
  /// windows -- exactly the box pass p+1's first replica needs.
  void pass_output_box(std::size_t pass, poly::IntVec* lo,
                       poly::IntVec* hi) const;
};

/// Builds one replica of `base` over `domain`: same input array name and
/// reference offsets, same output name, and the same kernel -- weighted-sum
/// kernels are re-installed from their weights so the replica keeps the
/// canonical fma evaluation order (bit-identity across replicas) and the
/// vector path keeps seeing the linear structure.
stencil::StencilProgram make_replica(const stencil::StencilProgram& base,
                                     poly::Domain domain, std::string name);

/// Unrolls `base` (a single-input stencil over a box domain) into the
/// replica-pass schedule of `config`. Throws TemporalConfigError /
/// TemporalDomainError on invalid configurations; the returned schedule's
/// graphs are fully validated (window containment for kShrink chains,
/// box-domain checks for value-policy chains).
TemporalSchedule plan_temporal(const stencil::StencilProgram& base,
                               const TemporalConfig& config);

}  // namespace nup::temporal
