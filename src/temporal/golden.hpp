#pragma once

#include <cstdint>
#include <vector>

#include "stencil/program.hpp"
#include "temporal/unroll.hpp"

namespace nup::temporal {

/// Naive frame-by-frame reference of an iterative stencil: computes
/// generations 1..T one full grid at a time (no temporal blocking, no
/// pipeline) and returns generation T over the target domain in
/// lexicographic order. Generation 0 is the synthetic input, defined on
/// the whole grid, so generation 1 gathers raw synthetic values at
/// unmapped coordinates -- exactly what the pipeline's external DRAM feed
/// serves. Later generations read out-of-domain values per
/// `config.boundary` (shrink grows the computed grid instead). This is
/// the bit-exact contract the temporal runner is tested against; `block`
/// is ignored (blocking must not change values).
std::vector<double> run_golden_sweeps(const stencil::StencilProgram& program,
                                      const TemporalConfig& config,
                                      std::uint64_t seed);

/// max |a[k] - b[k]|: the convergence residual between two generations of
/// equal layout. Throws TemporalConfigError on length mismatch.
double max_abs_delta(const std::vector<double>& a,
                     const std::vector<double>& b);

}  // namespace nup::temporal
