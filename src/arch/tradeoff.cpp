#include "arch/tradeoff.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace nup::arch {

MemorySystem apply_tradeoff(const MemorySystem& system, std::size_t cuts) {
  if (cuts >= system.filter_count()) {
    throw Error("apply_tradeoff: cannot cut " + std::to_string(cuts) +
                " FIFOs in a chain of " +
                std::to_string(system.filter_count()) + " filters");
  }
  MemorySystem out = system;
  // Cut the largest FIFOs first (Fig 14 picks the largest reuse buffer);
  // stable order breaks ties toward the front of the chain.
  std::vector<std::size_t> order(out.fifos.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return out.fifos[a].depth > out.fifos[b].depth;
                   });
  std::size_t applied = 0;
  for (std::size_t idx : order) {
    if (applied == cuts) break;
    if (!out.fifos[idx].cut) {
      out.fifos[idx].cut = true;
      ++applied;
    }
  }
  return out;
}

std::vector<TradeoffPoint> bandwidth_sweep(const MemorySystem& system) {
  std::vector<TradeoffPoint> curve;
  const std::size_t max_cuts =
      system.filter_count() >= 2 ? system.filter_count() - 1 : 0;
  curve.reserve(max_cuts + 1);
  for (std::size_t cuts = 0; cuts <= max_cuts; ++cuts) {
    const MemorySystem traded = apply_tradeoff(system, cuts);
    TradeoffPoint point;
    point.offchip_streams = traded.stream_count();
    point.total_buffer_size = traded.total_buffer_size();
    point.bank_count = traded.bank_count();
    for (const ReuseFifo& f : traded.fifos) {
      if (!f.cut) {
        point.largest_remaining = std::max(point.largest_remaining, f.depth);
      }
    }
    curve.push_back(point);
  }
  return curve;
}

}  // namespace nup::arch
