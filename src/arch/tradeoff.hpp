#pragma once

#include <cstdint>
#include <vector>

#include "arch/design.hpp"

namespace nup::arch {

/// One point on the off-chip-bandwidth vs on-chip-memory curve (Fig 15).
struct TradeoffPoint {
  std::size_t offchip_streams = 1;     ///< off-chip accesses per cycle
  std::int64_t total_buffer_size = 0;  ///< remaining on-chip elements
  std::size_t bank_count = 0;          ///< remaining uncut FIFOs
  std::int64_t largest_remaining = 0;  ///< depth of the largest uncut FIFO
};

/// Applies the Fig 14 rewrite: cut the `cuts` largest reuse FIFOs and feed
/// each resulting chain segment from its own off-chip stream. Ties cut the
/// earliest FIFO first so the result is deterministic.
MemorySystem apply_tradeoff(const MemorySystem& system, std::size_t cuts);

/// Sweeps cuts = 0 .. filter_count()-2, producing the full degradation
/// curve of on-chip memory against off-chip accesses per cycle.
std::vector<TradeoffPoint> bandwidth_sweep(const MemorySystem& system);

}  // namespace nup::arch
