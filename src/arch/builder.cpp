#include "arch/builder.hpp"

#include <algorithm>
#include <numeric>

#include "poly/reuse.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace nup::arch {

BufferImpl map_physical(std::int64_t depth, const BuildOptions& options) {
  if (depth <= options.register_max_depth) return BufferImpl::kRegister;
  if (depth <= options.shift_register_max_depth) {
    return BufferImpl::kShiftRegister;
  }
  return BufferImpl::kBlockRam;
}

namespace {

MemorySystem build_system(const stencil::StencilProgram& program,
                          std::size_t array_idx, const BuildOptions& options) {
  const stencil::InputArray& input = program.inputs()[array_idx];
  const std::size_t n = input.refs.size();

  MemorySystem system;
  system.array = input.name;
  system.array_index = array_idx;

  // Deadlock condition 1: map references to filters in descending
  // lexicographic order of their data-access offsets.
  system.ref_order.resize(n);
  std::iota(system.ref_order.begin(), system.ref_order.end(), 0);
  std::sort(system.ref_order.begin(), system.ref_order.end(),
            [&](std::size_t a, std::size_t b) {
              return poly::lex_less(input.refs[b].offset,
                                    input.refs[a].offset);
            });
  system.ordered_offsets.reserve(n);
  for (std::size_t ref : system.ref_order) {
    system.ordered_offsets.push_back(input.refs[ref].offset);
  }

  system.exact_input_domain = program.input_data_domain(array_idx);
  const poly::Domain hull = program.data_domain_hull(array_idx);
  system.input_domain =
      options.exact_streaming ? system.exact_input_domain : hull;

  // Deadlock condition 2: FIFO depth >= maximum reuse distance between the
  // adjacent references (Eq. 2). Depths are clamped to >= 1 so every bank
  // is a realizable FIFO stage.
  poly::IntVec hull_lo;
  poly::IntVec hull_hi;
  if (!hull.as_single_box(&hull_lo, &hull_hi)) {
    throw Error("data_domain_hull did not produce a box");
  }
  system.fifos.reserve(n - 1);
  for (std::size_t k = 0; k + 1 < n; ++k) {
    const poly::IntVec& f_from = system.ordered_offsets[k];
    const poly::IntVec& f_to = system.ordered_offsets[k + 1];
    std::int64_t depth = 0;
    if (options.exact_sizing) {
      poly::ReuseOptions reuse_options;
      reuse_options.exact_iteration_limit = options.exact_iteration_limit;
      depth = poly::max_reuse_distance(program.iteration(),
                                       system.exact_input_domain, f_from,
                                       f_to, reuse_options)
                  .max_distance;
    } else {
      depth =
          poly::box_linearized_distance(hull_lo, hull_hi, poly::sub(f_from, f_to));
    }
    ReuseFifo fifo;
    fifo.from_filter = k;
    fifo.to_filter = k + 1;
    fifo.depth = std::max<std::int64_t>(1, depth);
    fifo.impl = map_physical(fifo.depth, options);
    system.fifos.push_back(fifo);
  }
  return system;
}

}  // namespace

AcceleratorDesign build_design(const stencil::StencilProgram& program,
                               const BuildOptions& options) {
  if (program.inputs().empty()) {
    throw NotStencilError("program '" + program.name() +
                          "' has no input arrays");
  }
  AcceleratorDesign design;
  design.name = program.name();
  design.systems.reserve(program.inputs().size());
  for (std::size_t a = 0; a < program.inputs().size(); ++a) {
    design.systems.push_back(build_system(program, a, options));
  }
  if (options.datapath_width != 1) {
    design = widen_design(std::move(design), options.datapath_width, options);
  }
  log_debug() << "built design for " << program.name() << ": "
              << design.total_bank_count() << " banks, "
              << design.total_buffer_size() << " elements";
  return design;
}

AcceleratorDesign widen_design(AcceleratorDesign design, std::int64_t width,
                               const BuildOptions& options) {
  if (width < 1 || width > kMaxDatapathWidth) {
    throw Error("datapath_width " + std::to_string(width) +
                " out of range [1, " + std::to_string(kMaxDatapathWidth) +
                "]");
  }
  if (width > 1) {
    // A width the streamed rows can never fill buys word padding without any
    // bandwidth: reject it. The longest row is the inner extent of the
    // streamed domain's bounding box (per system; the design is only
    // unwidenable when *no* system has a row that can fill a vector).
    std::int64_t longest_row = 0;
    for (const MemorySystem& s : design.systems) {
      const std::size_t dim = s.input_domain.dim();
      if (dim == 0) continue;
      std::optional<poly::IntVec> lo = s.input_domain.lex_min();
      std::optional<poly::IntVec> hi = s.input_domain.lex_max();
      if (!lo || !hi) continue;
      // lex_max's inner coordinate is the largest inner value at the largest
      // prefix; use the hull over all pieces for a conservative row length.
      poly::IntVec box_lo;
      poly::IntVec box_hi;
      if (s.input_domain.as_single_box(&box_lo, &box_hi)) {
        longest_row = std::max<std::int64_t>(
            longest_row, box_hi[dim - 1] - box_lo[dim - 1] + 1);
      } else {
        // Non-box domain: scan per-piece inner hulls at their own prefixes
        // is overkill here -- the bounding box of lex extremes is a safe
        // upper bound and only used to reject absurd widths.
        longest_row = std::max<std::int64_t>(
            longest_row, (*hi)[dim - 1] - (*lo)[dim - 1] + 1);
      }
    }
    if (longest_row > 0 && width > longest_row) {
      throw Error("datapath_width " + std::to_string(width) +
                  " exceeds the longest streamed row (" +
                  std::to_string(longest_row) +
                  " elements); no vector could ever fill");
    }
  }
  design.datapath_width = width;
  // Re-derive each uncut FIFO's physical mapping from its word depth: a
  // 1023-deep scalar BRAM FIFO becomes ceil(1023/8)=128 8-wide words, which
  // still maps by the same Table 2 thresholds applied to address depth.
  for (MemorySystem& s : design.systems) {
    for (ReuseFifo& f : s.fifos) {
      if (!f.cut) f.impl = map_physical(f.word_depth(width), options);
    }
  }
  return design;
}

}  // namespace nup::arch
