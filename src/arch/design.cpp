#include "arch/design.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace nup::arch {

const char* to_string(BufferImpl impl) {
  switch (impl) {
    case BufferImpl::kRegister:
      return "register";
    case BufferImpl::kShiftRegister:
      return "shift-register";
    case BufferImpl::kBlockRam:
      return "BRAM";
  }
  return "?";
}

std::size_t MemorySystem::bank_count() const {
  std::size_t banks = 0;
  for (const ReuseFifo& f : fifos) {
    if (!f.cut) ++banks;
  }
  return banks;
}

std::int64_t MemorySystem::total_buffer_size() const {
  std::int64_t total = 0;
  for (const ReuseFifo& f : fifos) {
    if (!f.cut) total += f.depth;
  }
  return total;
}

std::int64_t MemorySystem::padded_buffer_size(std::int64_t width) const {
  std::int64_t total = 0;
  for (const ReuseFifo& f : fifos) {
    if (!f.cut) total += f.word_depth(width) * std::max<std::int64_t>(width, 1);
  }
  return total;
}

std::size_t MemorySystem::stream_count() const {
  std::size_t streams = 1;
  for (const ReuseFifo& f : fifos) {
    if (f.cut) ++streams;
  }
  return streams;
}

std::vector<std::size_t> MemorySystem::segment_heads() const {
  std::vector<std::size_t> heads{0};
  for (const ReuseFifo& f : fifos) {
    if (f.cut) heads.push_back(f.to_filter);
  }
  return heads;
}

std::int64_t AcceleratorDesign::total_buffer_size() const {
  std::int64_t total = 0;
  for (const MemorySystem& s : systems) total += s.total_buffer_size();
  return total;
}

std::int64_t AcceleratorDesign::total_padded_buffer_size() const {
  std::int64_t total = 0;
  for (const MemorySystem& s : systems) {
    total += s.padded_buffer_size(datapath_width);
  }
  return total;
}

std::size_t AcceleratorDesign::total_bank_count() const {
  std::size_t banks = 0;
  for (const MemorySystem& s : systems) banks += s.bank_count();
  return banks;
}

std::string describe(const AcceleratorDesign& design) {
  std::ostringstream out;
  out << "accelerator '" << design.name << "': " << design.systems.size()
      << " memory system(s), " << design.total_bank_count() << " bank(s), "
      << design.total_buffer_size() << " element(s) of reuse storage";
  if (design.datapath_width > 1) {
    out << ", W=" << design.datapath_width << " datapath ("
        << design.total_padded_buffer_size() << " padded element(s))";
  }
  out << "\n";
  for (const MemorySystem& s : design.systems) {
    out << "  array " << s.array << ": " << s.filter_count() << " filters";
    if (s.stream_count() > 1) {
      out << ", " << s.stream_count() << " off-chip streams";
    }
    out << "\n";
    for (std::size_t k = 0; k < s.ordered_offsets.size(); ++k) {
      out << "    filter " << k << ": offset "
          << poly::to_string(s.ordered_offsets[k]) << "\n";
      if (k < s.fifos.size()) {
        const ReuseFifo& f = s.fifos[k];
        if (f.cut) {
          out << "    (chain cut: next segment fed by off-chip stream)\n";
        } else {
          out << "    FIFO_" << k << ": depth " << f.depth;
          if (design.datapath_width > 1) {
            out << " (" << f.word_depth(design.datapath_width) << " word(s) x "
                << design.datapath_width << ")";
          }
          out << " (" << to_string(f.impl) << ")\n";
        }
      }
    }
  }
  return out.str();
}

}  // namespace nup::arch
