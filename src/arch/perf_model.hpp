#pragma once

#include <cstdint>

#include "arch/design.hpp"
#include "stencil/program.hpp"

namespace nup::arch {

/// Closed-form performance prediction for a single-array streaming design
/// fed at one element per cycle: the first kernel fire happens when the
/// newest element of the first window has streamed in (its rank in the
/// input stream), every later fire is gated the same way, and the run ends
/// with the last window's newest element. Accurate to within a few cycles
/// of chain latency (validated against the cycle-accurate simulator in
/// tests/arch/perf_model_test.cpp).
struct PerfPrediction {
  std::int64_t stream_elements = 0;  ///< size of the streamed input domain
  std::int64_t iterations = 0;       ///< kernel outputs
  std::int64_t fill_latency = 0;     ///< predicted cycle of the first fire
  std::int64_t total_cycles = 0;     ///< predicted end-of-run cycle
  double steady_ii = 0.0;            ///< (total - fill) / (iterations - 1)
};

PerfPrediction predict_performance(const stencil::StencilProgram& program,
                                   const MemorySystem& system);

}  // namespace nup::arch
