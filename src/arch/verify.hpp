#pragma once

#include <cstdint>
#include <string>

#include "arch/builder.hpp"
#include "arch/design.hpp"
#include "stencil/program.hpp"

namespace nup::arch {

/// Static verification of one memory system against the paper's
/// deadlock-freedom conditions (Section 3.3.2) and optimality claims
/// (Section 3.3.3).
struct ConditionCheck {
  /// Condition 1: filter offsets strictly descending lexicographically.
  bool ordering_descending = false;
  /// Condition 2: every FIFO depth >= the maximum reuse distance between
  /// its adjacent references, measured over the streamed input domain.
  bool sizing_sufficient = false;
  /// Optimality: bank count equals n-1 (before any bandwidth trade-off).
  bool banks_minimum = false;
  /// Optimality: total buffer size equals the end-to-end maximum reuse
  /// distance between the earliest and latest reference (Property 3).
  bool size_minimum = false;

  std::string detail;  ///< explanation of the first failed check, if any

  bool all_ok() const {
    return ordering_descending && sizing_sufficient && banks_minimum &&
           size_minimum;
  }
};

ConditionCheck verify_design(const stencil::StencilProgram& program,
                             const MemorySystem& system,
                             const BuildOptions& options = {});

}  // namespace nup::arch
