#include "arch/verify.hpp"

#include <algorithm>

#include "poly/reuse.hpp"

namespace nup::arch {

namespace {

std::int64_t streamed_max_distance(const stencil::StencilProgram& program,
                                   const MemorySystem& system,
                                   const poly::IntVec& f_from,
                                   const poly::IntVec& f_to,
                                   const BuildOptions& options) {
  poly::ReuseOptions reuse_options;
  reuse_options.exact_iteration_limit = options.exact_iteration_limit;
  return poly::max_reuse_distance(program.iteration(), system.input_domain,
                                  f_from, f_to, reuse_options)
      .max_distance;
}

}  // namespace

ConditionCheck verify_design(const stencil::StencilProgram& program,
                             const MemorySystem& system,
                             const BuildOptions& options) {
  ConditionCheck check;

  // Condition 1: strictly descending offsets.
  check.ordering_descending = true;
  for (std::size_t k = 0; k + 1 < system.ordered_offsets.size(); ++k) {
    if (poly::lex_compare(system.ordered_offsets[k],
                          system.ordered_offsets[k + 1]) <= 0) {
      check.ordering_descending = false;
      check.detail = "filters " + std::to_string(k) + " and " +
                     std::to_string(k + 1) +
                     " violate descending lexicographic order: " +
                     poly::to_string(system.ordered_offsets[k]) + " then " +
                     poly::to_string(system.ordered_offsets[k + 1]);
      break;
    }
  }

  // Condition 2: capacities cover the max reuse distances over the
  // *streamed* domain. Cut FIFOs are exempt -- their segment is refilled
  // from off-chip.
  check.sizing_sufficient = true;
  for (const ReuseFifo& fifo : system.fifos) {
    if (fifo.cut) continue;
    const std::int64_t needed = streamed_max_distance(
        program, system, system.ordered_offsets[fifo.from_filter],
        system.ordered_offsets[fifo.to_filter], options);
    if (fifo.depth < needed) {
      check.sizing_sufficient = false;
      if (check.detail.empty()) {
        check.detail = "FIFO between filters " +
                       std::to_string(fifo.from_filter) + " and " +
                       std::to_string(fifo.to_filter) + " has depth " +
                       std::to_string(fifo.depth) + " but needs " +
                       std::to_string(needed);
      }
      break;
    }
  }

  const std::size_t n = system.filter_count();
  check.banks_minimum =
      system.stream_count() > 1 || system.bank_count() == n - 1;
  if (!check.banks_minimum && check.detail.empty()) {
    check.detail = "bank count " + std::to_string(system.bank_count()) +
                   " differs from the minimum " + std::to_string(n - 1);
  }

  // Size minimality. Condition 2 forces every FIFO to hold at least its
  // pair's maximum reuse distance, so the chain-wise minimum total is the
  // sum of those maxima (clamped to realizable depths >= 1). On a
  // box-streamed domain, linearity of maximum reuse distances (Property 3)
  // makes that sum equal the end-to-end maximum -- the absolute minimum
  // buffer size of Section 2.3. On skewed exact domains the per-pair
  // maxima can occur at different iterations, so the chain minimum may
  // exceed the absolute minimum by boundary terms; chain minimality is the
  // strongest attainable claim there.
  if (n >= 2 && system.stream_count() == 1) {
    std::int64_t chain_minimum = 0;
    for (const ReuseFifo& fifo : system.fifos) {
      const std::int64_t needed = streamed_max_distance(
          program, system, system.ordered_offsets[fifo.from_filter],
          system.ordered_offsets[fifo.to_filter], options);
      chain_minimum += std::max<std::int64_t>(1, needed);
    }
    check.size_minimum = system.total_buffer_size() == chain_minimum;
    if (!check.size_minimum && check.detail.empty()) {
      check.detail = "total buffer size " +
                     std::to_string(system.total_buffer_size()) +
                     " differs from the chain minimum " +
                     std::to_string(chain_minimum);
    }
    poly::IntVec lo;
    poly::IntVec hi;
    if (check.size_minimum && system.input_domain.as_single_box(&lo, &hi)) {
      const std::int64_t end_to_end = streamed_max_distance(
          program, system, system.ordered_offsets.front(),
          system.ordered_offsets.back(), options);
      if (chain_minimum < end_to_end) {
        check.size_minimum = false;
        check.detail = "linearity violated: chain minimum " +
                       std::to_string(chain_minimum) +
                       " below end-to-end distance " +
                       std::to_string(end_to_end);
      }
    }
  } else {
    check.size_minimum = true;
  }

  return check;
}

}  // namespace nup::arch
