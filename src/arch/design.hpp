#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "poly/domain.hpp"
#include "poly/int_vec.hpp"

namespace nup::arch {

/// Physical implementation chosen for one reuse buffer (Table 2's
/// heterogeneous mapping: block memory, distributed memory / shift register
/// lookup, or slice registers).
enum class BufferImpl { kRegister, kShiftRegister, kBlockRam };

const char* to_string(BufferImpl impl);

/// One reuse FIFO between two adjacent data filters (Fig 7). Depth is the
/// maximum reuse distance between the two references (Eq. 2); non-uniform
/// by construction.
struct ReuseFifo {
  std::size_t from_filter = 0;  ///< upstream (earlier reference) filter index
  std::size_t to_filter = 0;    ///< downstream filter index (= from+1)
  std::int64_t depth = 0;       ///< capacity in data elements
  BufferImpl impl = BufferImpl::kRegister;
  /// True when the bandwidth/memory trade-off (Fig 14) replaced this FIFO
  /// with an extra off-chip stream; a cut FIFO occupies no on-chip storage.
  bool cut = false;

  /// Depth in W-element datapath words when the chain moves W elements per
  /// cycle (Eq. 2 / W): the Eq. 2 element bound rounded up to whole words.
  /// Equals `depth` for width 1. The element capacity of the physical
  /// buffer is then word_depth(W) * W >= depth (the padding is the memory
  /// cost of the wide datapath on the Fig 14 trade-off curve).
  std::int64_t word_depth(std::int64_t width) const {
    return width <= 1 ? depth : (depth + width - 1) / width;
  }
};

/// The generated memory system for one data array: n data filters chained
/// through n-1 non-uniform reuse FIFOs, fed by one off-chip stream per
/// chain segment.
struct MemorySystem {
  std::string array;
  std::size_t array_index = 0;

  /// Filter order: position k holds the index (into the program's reference
  /// list) of the k-th filter's reference. Offsets are descending
  /// lexicographically (deadlock condition 1).
  std::vector<std::size_t> ref_order;
  /// ordered_offsets[k] = offset of filter k's reference.
  std::vector<poly::IntVec> ordered_offsets;

  std::vector<ReuseFifo> fifos;  ///< n-1 entries, fifos[k] between k and k+1

  /// Data domain streamed from external memory (D_A). By default the
  /// bounding-box hull the paper streams ("A[0..767][0..1023]").
  poly::Domain input_domain;
  /// Exact union-of-references domain (Definition 6), kept for analysis and
  /// exact-streaming mode.
  poly::Domain exact_input_domain;

  std::size_t filter_count() const { return ordered_offsets.size(); }

  /// Number of distinct on-chip buffer banks (uncut FIFOs). Equals
  /// filter_count()-1 for an un-traded design: the theoretical minimum.
  std::size_t bank_count() const;

  /// Total on-chip reuse storage in data elements.
  std::int64_t total_buffer_size() const;

  /// On-chip storage in data elements after padding every uncut FIFO up to
  /// whole W-element words: sum of word_depth(width) * width. Equals
  /// total_buffer_size() for width 1.
  std::int64_t padded_buffer_size(std::int64_t width) const;

  /// Number of off-chip streams feeding the chain (1 + number of cuts).
  std::size_t stream_count() const;

  /// Filter indices that start a chain segment (always includes 0).
  std::vector<std::size_t> segment_heads() const;
};

/// Complete accelerator: one memory system per input array plus the
/// fully-pipelined computation kernel HLS generates from the transformed
/// code (Fig 3).
struct AcceleratorDesign {
  std::string name;
  std::vector<MemorySystem> systems;

  /// Datapath width W (Fig 14's bandwidth knob as a first-class design
  /// point): every off-chip stream delivers W elements per cycle, every
  /// filter forwards a W-element word per cycle, and each reuse FIFO holds
  /// word_depth(W) = ceil(depth / W) words. FIFO `depth` fields stay the
  /// Eq. 2 element bounds, so the element-level stream semantics -- and
  /// every cycle-level observable of the simulators -- are identical for
  /// all W; only the cycles-per-frame (see SimResult::datapath_cycles) and
  /// the padded on-chip footprint change. 1 = the paper's scalar design.
  std::int64_t datapath_width = 1;

  std::int64_t total_buffer_size() const;
  /// Word-padded on-chip storage in elements under datapath_width.
  std::int64_t total_padded_buffer_size() const;
  std::size_t total_bank_count() const;
};

/// Human-readable structural summary (used by examples and EXPERIMENTS.md).
std::string describe(const AcceleratorDesign& design);

}  // namespace nup::arch
