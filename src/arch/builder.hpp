#pragma once

#include <cstdint>

#include "arch/design.hpp"
#include "stencil/program.hpp"

namespace nup::arch {

struct BuildOptions {
  /// When true, FIFO depths are the exact maximum reuse distances over the
  /// exact input data domain (Definition 6's union). When false (default),
  /// the paper's closed form on the bounding-box hull is used -- the same
  /// rule that yields Table 2's {1023, 1, 1, 1023} for DENOISE. Exact
  /// sizing matters for skewed/non-rectangular grids (Fig 9).
  bool exact_sizing = false;

  /// When true, the off-chip stream iterates the exact union domain instead
  /// of its bounding box (consistent with exact_sizing).
  bool exact_streaming = false;

  /// Physical-mapping thresholds (Table 2 / Section 3.5.1): depths at most
  /// register_max map to slice registers, at most shift_register_max to
  /// SRL-based distributed memory, larger to block RAM.
  std::int64_t register_max_depth = 4;
  std::int64_t shift_register_max_depth = 128;

  /// Guard for the exact reuse-distance scan on non-box domains.
  std::int64_t exact_iteration_limit = 5'000'000;
};

/// Generates the paper's microarchitecture for every input array of the
/// stencil program (Section 3): references sorted by offset in descending
/// lexicographic order, one reuse FIFO per adjacent pair sized to the
/// maximum reuse distance, heterogeneous physical mapping.
AcceleratorDesign build_design(const stencil::StencilProgram& program,
                               const BuildOptions& options = {});

/// Chooses the physical implementation for a buffer of the given depth.
BufferImpl map_physical(std::int64_t depth, const BuildOptions& options);

}  // namespace nup::arch
