#pragma once

#include <cstdint>

#include "arch/design.hpp"
#include "stencil/program.hpp"

namespace nup::arch {

struct BuildOptions {
  /// When true, FIFO depths are the exact maximum reuse distances over the
  /// exact input data domain (Definition 6's union). When false (default),
  /// the paper's closed form on the bounding-box hull is used -- the same
  /// rule that yields Table 2's {1023, 1, 1, 1023} for DENOISE. Exact
  /// sizing matters for skewed/non-rectangular grids (Fig 9).
  bool exact_sizing = false;

  /// When true, the off-chip stream iterates the exact union domain instead
  /// of its bounding box (consistent with exact_sizing).
  bool exact_streaming = false;

  /// Physical-mapping thresholds (Table 2 / Section 3.5.1): depths at most
  /// register_max map to slice registers, at most shift_register_max to
  /// SRL-based distributed memory, larger to block RAM.
  std::int64_t register_max_depth = 4;
  std::int64_t shift_register_max_depth = 128;

  /// Guard for the exact reuse-distance scan on non-box domains.
  std::int64_t exact_iteration_limit = 5'000'000;

  /// Datapath width W of the generated design (Fig 14's bandwidth knob):
  /// W elements enter per stream per cycle and every reuse FIFO is
  /// organized as ceil(depth / W) W-element words. 1 = the paper's scalar
  /// microarchitecture. See widen_design for the validation rules.
  std::int64_t datapath_width = 1;
};

/// Hard ceiling on datapath_width: wider than any realistic burst port,
/// and the simulator's lane buffers are sized against it.
inline constexpr std::int64_t kMaxDatapathWidth = 64;

/// Generates the paper's microarchitecture for every input array of the
/// stencil program (Section 3): references sorted by offset in descending
/// lexicographic order, one reuse FIFO per adjacent pair sized to the
/// maximum reuse distance, heterogeneous physical mapping.
AcceleratorDesign build_design(const stencil::StencilProgram& program,
                               const BuildOptions& options = {});

/// Chooses the physical implementation for a buffer of the given depth.
BufferImpl map_physical(std::int64_t depth, const BuildOptions& options);

/// Promotes `design` to a W-wide datapath: sets datapath_width and
/// re-derives every uncut FIFO's physical mapping from its word depth
/// (Eq. 2 / W words of W elements). FIFO `depth` fields keep the Eq. 2
/// element bounds so element-stream semantics are width-invariant.
/// Throws Error when width < 1 or width > kMaxDatapathWidth. Rows
/// narrower than W are legal -- the fast backend retires them through its
/// scalar remainder path, they just waste lanes -- but widths that cannot
/// ever fill a vector (W larger than the longest streamed row) are
/// rejected, because such a design buys padding without any bandwidth.
AcceleratorDesign widen_design(AcceleratorDesign design, std::int64_t width,
                               const BuildOptions& options = {});

}  // namespace nup::arch
