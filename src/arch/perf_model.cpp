#include "arch/perf_model.hpp"

#include "poly/reuse.hpp"
#include "util/error.hpp"

namespace nup::arch {

PerfPrediction predict_performance(const stencil::StencilProgram& program,
                                   const MemorySystem& system) {
  if (system.stream_count() != 1) {
    throw Error(
        "predict_performance models single-stream designs; trade-off "
        "variants refill mid-chain and finish no later");
  }
  PerfPrediction out;
  const poly::RankOracle oracle(system.input_domain);
  out.stream_elements = oracle.total();
  out.iterations = program.iteration().count();

  const poly::IntVec& f_first = system.ordered_offsets.front();
  const poly::IntVec first_iter = program.iteration().lex_min().value();
  // The binding constraint of every fire is its newest element
  // (i + f_first), which is consumed the cycle it leaves the source.
  out.fill_latency = oracle.rank_inclusive(poly::add(first_iter, f_first));

  const poly::IntVec last_iter = program.iteration().lex_max().value();
  out.total_cycles = oracle.rank_inclusive(poly::add(last_iter, f_first));

  if (out.iterations >= 2) {
    out.steady_ii =
        static_cast<double>(out.total_cycles - out.fill_latency) /
        static_cast<double>(out.iterations - 1);
  }
  return out;
}

}  // namespace nup::arch
