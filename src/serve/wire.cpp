#include "serve/wire.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/socket.hpp"

namespace nup::serve {

std::uint64_t output_checksum(const std::vector<double>& outputs) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (const double v : outputs) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (bits >> (byte * 8)) & 0xffu;
      h *= 1099511628211ull;  // FNV prime
    }
  }
  return h;
}

namespace {

std::vector<std::string> split_words(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream in(line);
  std::string word;
  while (in >> word) words.push_back(std::move(word));
  return words;
}

bool parse_u64(const std::string& word, std::uint64_t* value) {
  if (word.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : word) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *value = v;
  return true;
}

}  // namespace

struct ServeEndpoint::Impl {
  StencilServer* server = nullptr;
  std::unique_ptr<util::LoopbackListener> listener;
  std::string error;

  std::thread acceptor;
  std::atomic<bool> running{false};
  std::mutex conn_mu;
  std::vector<std::thread> conn_threads;
  std::vector<int> conn_fds;  ///< open connection fds (for stop())

  /// One tenant session: line in, line out, until QUIT or EOF. An EOF
  /// without QUIT counts as the tenant vanishing mid-flight.
  void serve_connection(int fd) {
    util::LineReader reader(fd);
    std::string tenant;
    bool graceful = false;
    std::unordered_map<std::uint64_t, RequestHandle> handles;
    std::string line;
    while (reader.next_line(&line)) {
      const std::vector<std::string> words = split_words(line);
      std::string reply;
      if (words.empty()) {
        reply = "ERR empty command";
      } else if (words[0] == "HELLO") {
        if (words.size() != 2) {
          reply = "ERR usage: HELLO <tenant>";
        } else {
          tenant = words[1];
          server->register_tenant(tenant, TenantQuota{});
          reply = "OK " + tenant;
        }
      } else if (words[0] == "SUBMIT") {
        std::uint64_t seed = 0;
        if (words.size() != 3 || !parse_u64(words[2], &seed)) {
          reply = "ERR usage: SUBMIT <kernel> <seed>";
        } else if (tenant.empty()) {
          reply = "ERR HELLO first";
        } else {
          try {
            const SubmitResult r = server->submit(tenant, words[1], seed);
            if (r.admitted()) {
              handles.emplace(r.handle.id(), r.handle);
              reply = "OK " + std::to_string(r.handle.id());
            } else {
              reply = std::string("SHED ") + to_string(r.reason);
            }
          } catch (const std::exception& e) {
            reply = std::string("ERR ") + e.what();
          }
        }
      } else if (words[0] == "WAIT") {
        std::uint64_t id = 0;
        if (words.size() != 2 || !parse_u64(words[1], &id)) {
          reply = "ERR usage: WAIT <id>";
        } else {
          const auto it = handles.find(id);
          if (it == handles.end()) {
            reply = "ERR unknown request " + std::to_string(id);
          } else {
            const runtime::FrameResult& fr = it->second.wait();
            const char* status = fr.ok() ? "ok"
                                 : fr.cancelled ? "cancelled"
                                                : "failed";
            reply = "DONE " + std::to_string(id) + " " + status + " " +
                    std::to_string(fr.outputs.size()) + " " +
                    std::to_string(output_checksum(fr.outputs));
            handles.erase(it);
          }
        }
      } else if (words[0] == "KERNELS") {
        reply = "OK";
        for (const std::string& name : server->kernels()) {
          reply += " " + name;
        }
      } else if (words[0] == "STATS") {
        const ServeStats s = server->stats();
        reply = "OK submitted=" + std::to_string(s.submitted) +
                " completed=" + std::to_string(s.completed) +
                " shed=" + std::to_string(s.shed) +
                " queued=" + std::to_string(s.queued) +
                " inflight=" + std::to_string(s.in_flight);
      } else if (words[0] == "QUIT") {
        graceful = true;
        util::write_all(fd, "OK bye\n");
        break;
      } else {
        reply = "ERR unknown command " + words[0];
      }
      if (!util::write_all(fd, reply + "\n")) break;
    }
    if (!graceful && !tenant.empty()) {
      // The connection dropped mid-session: cancel the tenant's work so
      // nothing (frames, pins, queue slots) leaks past the disconnect.
      server->disconnect(tenant);
    }
  }

  void accept_loop() {
    while (running.load(std::memory_order_acquire)) {
      const int fd = listener->accept_client();
      if (fd < 0) break;  // listener shut down
      std::lock_guard<std::mutex> lock(conn_mu);
      conn_fds.push_back(fd);
      conn_threads.emplace_back([this, fd] {
        serve_connection(fd);
        ::close(fd);
      });
    }
  }
};

ServeEndpoint::ServeEndpoint(StencilServer& server,
                             ServeEndpointOptions options)
    : impl_(std::make_unique<Impl>()) {
  Impl& im = *impl_;
  im.server = &server;
  im.listener = std::make_unique<util::LoopbackListener>(options.port);
  if (!im.listener->ok()) {
    im.error = im.listener->error();  // names the requested port
    im.listener.reset();
    return;
  }
  im.running.store(true, std::memory_order_release);
  im.acceptor = std::thread([this] { impl_->accept_loop(); });
}

ServeEndpoint::~ServeEndpoint() { stop(); }

bool ServeEndpoint::ok() const { return impl_->listener != nullptr; }

const std::string& ServeEndpoint::error() const { return impl_->error; }

int ServeEndpoint::port() const {
  return impl_->listener ? impl_->listener->port() : 0;
}

void ServeEndpoint::stop() {
  Impl& im = *impl_;
  if (!im.running.exchange(false, std::memory_order_acq_rel)) {
    im.listener.reset();
    return;
  }
  im.listener->shutdown();  // unblocks accept_client()
  if (im.acceptor.joinable()) im.acceptor.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(im.conn_mu);
    // Force readers off their sockets; the threads then fall out of
    // their loops (fds are closed by the threads themselves).
    for (const int fd : im.conn_fds) ::shutdown(fd, SHUT_RDWR);
    threads.swap(im.conn_threads);
    im.conn_fds.clear();
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  im.listener.reset();
}

}  // namespace nup::serve
