#pragma once

#include <cstddef>
#include <string>

namespace nup::serve {

/// Admission limits of one tenant. Defaults are deliberately generous so
/// a single-tenant CLI run (`stencilcc --serve N`) never sheds; a service
/// operator tightens them per tenant (or via --quota / --shed-after).
struct TenantQuota {
  /// How many of the tenant's frames may execute on the engine at once.
  /// Never sheds by itself -- requests past it queue and wait their turn.
  std::size_t max_in_flight = 4;

  /// Queue-depth cap: a submit arriving while this many of the tenant's
  /// requests are already queued (not yet dispatched) is shed with an
  /// explicit kShed verdict instead of growing the backlog without bound.
  std::size_t max_queued = 64;

  /// Weighted-fair-queuing share. A tenant with weight 2 is scheduled
  /// twice as often as a weight-1 tenant when both have work queued.
  /// Values <= 0 are treated as 1.
  double weight = 1.0;
};

/// Synchronous admission answer of StencilServer::submit.
enum class Verdict {
  kAdmitted,  ///< queued for dispatch; the handle resolves eventually
  kShed,      ///< dropped at the door; the handle is empty
};

/// Why a request was shed (kNone when it was admitted).
enum class ShedReason {
  kNone,
  kTenantQueueFull,  ///< tenant backlog reached TenantQuota::max_queued
  kGlobalQueueFull,  ///< service backlog reached global_queue_limit
  kShuttingDown,     ///< submit raced server shutdown
};

inline const char* to_string(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone: return "none";
    case ShedReason::kTenantQueueFull: return "tenant_queue_full";
    case ShedReason::kGlobalQueueFull: return "global_queue_full";
    case ShedReason::kShuttingDown: return "shutting_down";
  }
  return "unknown";
}

/// Dispatch-order policy of the serving scheduler.
enum class Policy {
  /// Group queued requests by canonical design key: the dispatcher drains
  /// a whole same-design group before switching, so the engine's design
  /// cache serves every frame after the first from memory.
  kAffinity,
  /// Strict weighted-fair order, design-blind: consecutive frames
  /// alternate designs under a mixed workload (the baseline bench_serve
  /// compares against).
  kRoundRobin,
};

inline const char* to_string(Policy policy) {
  switch (policy) {
    case Policy::kAffinity: return "affinity";
    case Policy::kRoundRobin: return "round_robin";
  }
  return "unknown";
}

}  // namespace nup::serve
