#include "serve/scheduler.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nup::serve {

Scheduler::Scheduler(SchedulerOptions options)
    : options_(std::move(options)) {}

void Scheduler::register_tenant(const std::string& tenant,
                                TenantQuota quota) {
  if (tenant.empty()) throw Error("Scheduler: empty tenant name");
  if (quota.weight <= 0.0) quota.weight = 1.0;
  for (Tenant& t : tenants_) {
    if (t.name == tenant) {
      t.quota = quota;
      return;
    }
  }
  Tenant t;
  t.name = tenant;
  t.quota = quota;
  // A late joiner starts at the current virtual time, not at zero:
  // otherwise it would monopolize the engine until its pass caught up
  // with tenants that have been running for a while.
  t.pass = virtual_time_;
  tenants_.push_back(std::move(t));
}

bool Scheduler::has_tenant(const std::string& tenant) const {
  for (const Tenant& t : tenants_) {
    if (t.name == tenant) return true;
  }
  return false;
}

Verdict Scheduler::submit(const SchedItem& item, ShedReason* reason) {
  if (!has_tenant(item.tenant)) {
    register_tenant(item.tenant, options_.default_quota);
  }
  Tenant* tenant = nullptr;
  for (Tenant& t : tenants_) {
    if (t.name == item.tenant) {
      tenant = &t;
      break;
    }
  }
  if (options_.global_queue_limit != 0 &&
      queued_total_ >= options_.global_queue_limit) {
    if (reason != nullptr) *reason = ShedReason::kGlobalQueueFull;
    return Verdict::kShed;
  }
  if (tenant->queue.size() >= tenant->quota.max_queued) {
    if (reason != nullptr) *reason = ShedReason::kTenantQueueFull;
    return Verdict::kShed;
  }
  if (tenant->queue.empty()) {
    // Idle tenants bank no credit: rejoin at the current virtual time.
    tenant->pass = std::max(tenant->pass, virtual_time_);
  }
  tenant->queue.push_back(item);
  ++queued_total_;
  if (reason != nullptr) *reason = ShedReason::kNone;
  return Verdict::kAdmitted;
}

bool Scheduler::has_eligible() const { return pick_eligible() != npos; }

std::size_t Scheduler::pick_eligible() const {
  std::size_t best = npos;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const Tenant& t = tenants_[i];
    if (t.queue.empty() || t.in_flight >= t.quota.max_in_flight) continue;
    if (best == npos || t.pass < tenants_[best].pass) best = i;
  }
  return best;
}

SchedItem Scheduler::take(Tenant& t, std::size_t queue_pos) {
  SchedItem item = std::move(t.queue[queue_pos]);
  t.queue.erase(t.queue.begin() + static_cast<std::ptrdiff_t>(queue_pos));
  --queued_total_;
  ++t.in_flight;
  t.pass += 1.0 / t.quota.weight;
  virtual_time_ = std::max(virtual_time_, t.pass);
  return item;
}

std::vector<SchedItem> Scheduler::next_group(std::size_t max_size) {
  std::vector<SchedItem> group;
  if (max_size == 0) return group;

  const std::size_t leader = pick_eligible();
  if (leader == npos) return group;
  group.push_back(take(tenants_[leader], 0));
  const std::uint64_t key = group.front().design_key;

  while (group.size() < max_size) {
    if (options_.policy == Policy::kRoundRobin) {
      const std::size_t next = pick_eligible();
      if (next == npos) break;
      group.push_back(take(tenants_[next], 0));
      continue;
    }
    // Affinity: min-pass tenant holding any queued request with the
    // leader's design key (its earliest such request -- requests of one
    // tenant with other designs keep their relative order).
    std::size_t best = npos;
    std::size_t best_pos = 0;
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      const Tenant& t = tenants_[i];
      if (t.in_flight >= t.quota.max_in_flight) continue;
      for (std::size_t p = 0; p < t.queue.size(); ++p) {
        if (t.queue[p].design_key != key) continue;
        if (best == npos || t.pass < tenants_[best].pass) {
          best = i;
          best_pos = p;
        }
        break;
      }
    }
    if (best == npos) break;
    group.push_back(take(tenants_[best], best_pos));
  }
  return group;
}

void Scheduler::complete(const std::string& tenant) {
  for (Tenant& t : tenants_) {
    if (t.name != tenant) continue;
    if (t.in_flight == 0) {
      throw Error("Scheduler::complete without a dispatched request for " +
                  tenant);
    }
    --t.in_flight;
    return;
  }
  throw Error("Scheduler::complete for unknown tenant " + tenant);
}

std::vector<SchedItem> Scheduler::drop_tenant(const std::string& tenant) {
  std::vector<SchedItem> dropped;
  for (Tenant& t : tenants_) {
    if (t.name != tenant) continue;
    dropped.assign(std::make_move_iterator(t.queue.begin()),
                   std::make_move_iterator(t.queue.end()));
    queued_total_ -= t.queue.size();
    t.queue.clear();
    break;
  }
  return dropped;
}

std::size_t Scheduler::queued(const std::string& tenant) const {
  for (const Tenant& t : tenants_) {
    if (t.name == tenant) return t.queue.size();
  }
  return 0;
}

std::size_t Scheduler::in_flight(const std::string& tenant) const {
  for (const Tenant& t : tenants_) {
    if (t.name == tenant) return t.in_flight;
  }
  return 0;
}

std::vector<std::string> Scheduler::tenants() const {
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const Tenant& t : tenants_) names.push_back(t.name);
  return names;
}

}  // namespace nup::serve
