#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/engine.hpp"
#include "serve/scheduler.hpp"
#include "serve/tenant.hpp"
#include "stencil/program.hpp"

namespace nup::serve {

namespace detail {
struct RequestState;
struct ServerImpl;
}  // namespace detail

struct ServeOptions {
  /// Instance label: metrics publish as serve.<name>.* (empty: serve.*).
  /// The embedded engine inherits it, so its engine.*/cache.* series are
  /// namespaced the same way.
  std::string name;

  /// Options of the embedded FrameEngine (threads, tile shape, design
  /// cache capacity, build options...). `name`, `metrics` and `journal`
  /// are overridden by the server's own.
  runtime::EngineOptions engine;

  /// Serve-level admission window: how many dispatched frames may be on
  /// the engine at once, across all tenants. A dispatch group is admitted
  /// atomically -- the dispatcher waits until the whole group fits -- so
  /// an affinity group occupies the window as a unit. 0 removes the
  /// bound.
  std::size_t max_frames_in_flight = 4;

  /// Quota applied to tenants that were never explicitly registered.
  TenantQuota default_quota;

  /// Total queued requests (all tenants) before kGlobalQueueFull sheds.
  /// 0 removes the bound.
  std::size_t global_queue_limit = 256;

  Policy policy = Policy::kAffinity;

  obs::Registry* metrics = nullptr;  ///< nullptr = obs::Registry::global()
  obs::Journal* journal = nullptr;   ///< nullptr = obs::Journal::global()
};

/// Future of one admitted request. Handles are cheap shared references; a
/// shed request yields an invalid handle (the verdict says why).
class RequestHandle {
 public:
  RequestHandle() = default;

  bool valid() const { return state_ != nullptr; }
  std::uint64_t id() const;
  const std::string& tenant() const;

  /// Blocks until the request resolves (frame completed, failed or
  /// cancelled -- including cancellation while still queued) and returns
  /// the result; the reference stays valid for the handle's lifetime.
  const runtime::FrameResult& wait();

  /// True when the request resolved within the timeout.
  bool wait_for(std::chrono::milliseconds timeout);

  /// Blocks until the request either reached the engine (true) or was
  /// cancelled/shed while still queued (false). A caller that wants to
  /// cancel a *running* frame (not silently drop a queued one) waits for
  /// admission first.
  bool wait_admitted();

  bool done() const;

  /// Queued: resolves the request as cancelled without ever touching the
  /// engine. Running: cancels the engine frame. Idempotent.
  void cancel();

  /// Microseconds the request spent queued before dispatch (-1 while
  /// still queued or when it never dispatched).
  std::int64_t queue_us() const;

 private:
  friend struct detail::ServerImpl;
  explicit RequestHandle(std::shared_ptr<detail::RequestState> state);
  std::shared_ptr<detail::RequestState> state_;
};

/// Synchronous answer of StencilServer::submit: the admission verdict is
/// decided at the call site (load shedding is explicit and immediate, not
/// a timeout), the handle resolves later.
struct SubmitResult {
  Verdict verdict = Verdict::kShed;
  ShedReason reason = ShedReason::kShuttingDown;
  RequestHandle handle;

  bool admitted() const { return verdict == Verdict::kAdmitted; }
};

/// Mutex-consistent totals of the service (tenant breakdown via
/// tenant_stats).
struct ServeStats {
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t shed = 0;
  std::int64_t completed = 0;  ///< resolved ok
  std::int64_t cancelled = 0;
  std::int64_t failed = 0;
  std::int64_t groups = 0;           ///< dispatch groups formed
  std::int64_t design_switches = 0;  ///< pinned-design changes
  std::size_t queued = 0;
  std::size_t in_flight = 0;
};

struct TenantStats {
  std::int64_t submitted = 0;
  std::int64_t shed = 0;
  std::int64_t completed = 0;  ///< resolved (ok, failed or cancelled)
  std::size_t queued = 0;
  std::size_t in_flight = 0;
};

/// Long-lived multi-tenant serving front-end over one FrameEngine: turns
/// the fixed-N batch loop of `stencilcc --serve` into a service. Clients
/// (in-process ServeClient, or the line protocol of serve::ServeEndpoint)
/// submit (kernel, seed) requests under a tenant identity; admission
/// applies per-tenant quotas and global bounds with explicit kShed
/// verdicts; a dispatcher thread drains the queues in weighted-fair order
/// with design-affinity batching -- requests of one canonical design are
/// grouped, the group's tile designs are pinned in the engine's cache,
/// and the whole group is admitted atomically under max_frames_in_flight,
/// so the engine switches designs once per group instead of once per
/// frame.
///
/// Thread safety: every method is safe to call concurrently.
class StencilServer {
 public:
  explicit StencilServer(ServeOptions options = {});
  ~StencilServer();  // shutdown() if still running

  StencilServer(const StencilServer&) = delete;
  StencilServer& operator=(const StencilServer&) = delete;

  /// Registers a kernel under program.name(); submits refer to it by that
  /// name. Tiles the program (plan reused across frames); compilation is
  /// deferred to the first dispatch. Re-registering a name replaces it.
  void add_kernel(const stencil::StencilProgram& program);

  std::vector<std::string> kernels() const;

  /// Registers (or re-quotas) a tenant. Unregistered tenants are
  /// auto-registered with the default quota on first submit.
  void register_tenant(const std::string& tenant, TenantQuota quota);

  /// Admission decision + future for one frame request. Never blocks on
  /// the engine: over-quota submits shed immediately. Throws Error for an
  /// unknown kernel.
  SubmitResult submit(const std::string& tenant, const std::string& kernel,
                      std::uint64_t seed);

  /// Tenant went away: every queued request resolves as cancelled, every
  /// running frame is cancelled at the engine. The tenant may submit
  /// again afterwards (the registration and quota survive).
  void disconnect(const std::string& tenant);

  ServeStats stats() const;
  TenantStats tenant_stats(const std::string& tenant) const;

  /// The embedded engine (for cache/engine stats in tests and benches).
  runtime::FrameEngine& engine();

  /// Stops the dispatcher and the engine: queued requests resolve as
  /// cancelled, dispatched frames drain, design pins are dropped.
  /// Idempotent; submit() sheds with kShuttingDown afterwards.
  void shutdown();

 private:
  std::shared_ptr<detail::ServerImpl> impl_;
};

}  // namespace nup::serve
