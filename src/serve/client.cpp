#include "serve/client.hpp"

namespace nup::serve {

ServeClient::ServeClient(StencilServer& server, std::string tenant,
                         TenantQuota quota)
    : server_(&server), tenant_(std::move(tenant)) {
  server_->register_tenant(tenant_, quota);
}

SubmitResult ServeClient::submit(const std::string& kernel,
                                 std::uint64_t seed) {
  SubmitResult result = server_->submit(tenant_, kernel, seed);
  if (result.admitted()) handles_.push_back(result.handle);
  return result;
}

std::size_t ServeClient::wait_all() {
  std::size_t ok = 0;
  for (RequestHandle& h : handles_) {
    if (h.wait().ok()) ++ok;
  }
  handles_.clear();
  return ok;
}

void ServeClient::disconnect() { server_->disconnect(tenant_); }

}  // namespace nup::serve
