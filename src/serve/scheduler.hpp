#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "serve/tenant.hpp"

namespace nup::serve {

/// One queued request as the scheduler sees it: an opaque id (the server
/// maps it back to the full request state), the owning tenant and the
/// canonical design key (runtime::DesignCache::fingerprint) used for
/// affinity grouping.
struct SchedItem {
  std::uint64_t id = 0;
  std::string tenant;
  std::uint64_t design_key = 0;
};

struct SchedulerOptions {
  /// Quota applied to tenants the server auto-registers on first submit.
  TenantQuota default_quota;

  /// Total queued requests across all tenants before submits shed with
  /// kGlobalQueueFull. 0 removes the bound.
  std::size_t global_queue_limit = 256;

  Policy policy = Policy::kAffinity;
};

/// Pure admission + dispatch-order state machine of the serving layer: no
/// threads, no locks, no engine -- every decision is a deterministic
/// function of the call sequence, which is what makes shed verdicts and
/// group composition unit-testable. StencilServer serializes access under
/// its own mutex.
///
/// Fairness is stride scheduling: each tenant carries a virtual pass,
/// advanced by 1/weight per dispatched request; the eligible tenant with
/// the minimum pass goes next (registration order breaks ties). A tenant
/// going idle does not bank credit: on its next submit the pass is pulled
/// forward to the current virtual time.
class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options = {});

  /// Registers (or re-quotas) a tenant. Queued work is kept on re-quota;
  /// the new limits apply from the next decision.
  void register_tenant(const std::string& tenant, TenantQuota quota);

  bool has_tenant(const std::string& tenant) const;

  /// Admission decision for one request. kAdmitted appends the item to
  /// its tenant's queue; kShed drops it (the reason says which bound was
  /// hit). An unknown tenant is auto-registered with the default quota.
  Verdict submit(const SchedItem& item, ShedReason* reason = nullptr);

  /// True when some tenant could start a request right now (work queued
  /// and in-flight below its max_in_flight) -- the dispatcher's wake
  /// predicate.
  bool has_eligible() const;

  /// Dequeues the next dispatch group, at most max_size requests, and
  /// counts each against its tenant's in-flight quota (pair every item
  /// with a later complete()). The group leader is the WFQ pick; under
  /// kAffinity the rest of the group is gathered -- still in WFQ order,
  /// still quota-bounded -- from every tenant's earliest queued request
  /// with the leader's design key, so one group compiles one design.
  /// Under kRoundRobin grouping is design-blind (pure WFQ order). Empty
  /// when nothing is eligible.
  std::vector<SchedItem> next_group(std::size_t max_size);

  /// One dispatched request of the tenant finished (ok, failed or
  /// cancelled): releases its in-flight slot.
  void complete(const std::string& tenant);

  /// Drops every *queued* request of the tenant (a disconnect): returns
  /// the dropped items so the server can resolve their handles as
  /// cancelled. In-flight requests are untouched -- the server cancels
  /// those at the engine and their complete() arrives through the normal
  /// resolution path.
  std::vector<SchedItem> drop_tenant(const std::string& tenant);

  std::size_t queued() const { return queued_total_; }
  std::size_t queued(const std::string& tenant) const;
  std::size_t in_flight(const std::string& tenant) const;
  std::vector<std::string> tenants() const;

 private:
  struct Tenant {
    std::string name;
    TenantQuota quota;
    std::deque<SchedItem> queue;
    std::size_t in_flight = 0;
    double pass = 0.0;  ///< stride virtual time consumed
  };

  /// Index of the min-pass tenant that can start a request now, or npos.
  std::size_t pick_eligible() const;
  /// Charges one dispatch to the tenant: pass advance + in-flight count.
  SchedItem take(Tenant& t, std::size_t queue_pos);

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  SchedulerOptions options_;
  std::vector<Tenant> tenants_;  // registration order (WFQ tie-break)
  std::size_t queued_total_ = 0;
  double virtual_time_ = 0.0;  ///< pass of the most recent dispatch
};

}  // namespace nup::serve
