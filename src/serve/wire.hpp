#pragma once

#include <memory>
#include <string>

#include "serve/server.hpp"

namespace nup::serve {

struct ServeEndpointOptions {
  /// Loopback port to listen on; 0 binds an ephemeral port (read it back
  /// from port()).
  int port = 0;
};

/// Line-protocol front-end of a StencilServer on a loopback socket (the
/// same dependency-free plumbing as obs::MetricsServer, shared through
/// util::LoopbackListener). One thread per connection; one connection is
/// one tenant session.
///
/// Protocol (one '\n'-terminated command per line, one reply line each):
///
///   HELLO <tenant>      -> OK <tenant>          (registers the tenant)
///   SUBMIT <kernel> <seed> -> OK <id> | SHED <reason>
///   WAIT <id>           -> DONE <id> <ok|cancelled|failed> <outputs>
///                          <checksum>           (blocks until resolved)
///   KERNELS             -> OK <name>...
///   STATS               -> OK submitted=<n> completed=<n> shed=<n>
///                          queued=<n> inflight=<n>
///   QUIT                -> OK bye               (graceful close)
///
/// Anything malformed answers `ERR <reason>` and keeps the connection.
/// `checksum` is the FNV-1a hash of the frame's output bit patterns
/// (serve::output_checksum), so a remote client can verify bit-identity
/// against a local golden run without shipping the frame.
///
/// A connection that drops without QUIT is a tenant disconnect: its
/// queued requests resolve as cancelled and its running frames are
/// cancelled (StencilServer::disconnect). QUIT leaves outstanding work
/// running.
class ServeEndpoint {
 public:
  explicit ServeEndpoint(StencilServer& server,
                         ServeEndpointOptions options = {});
  ~ServeEndpoint();  // stop() if still running

  ServeEndpoint(const ServeEndpoint&) = delete;
  ServeEndpoint& operator=(const ServeEndpoint&) = delete;

  /// False when the bind failed; error() names the port that was taken.
  bool ok() const;
  const std::string& error() const;

  /// The bound port (the requested one, or the ephemeral pick for 0).
  int port() const;

  /// Closes the listener and every open connection, then joins the
  /// connection threads. A thread blocked in WAIT returns once the
  /// server resolves the request (server shutdown resolves everything),
  /// so stop after -- or concurrently with -- StencilServer::shutdown.
  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// FNV-1a 64-bit hash over the output doubles' bit patterns: the frame
/// identity the wire protocol ships instead of the frame.
std::uint64_t output_checksum(const std::vector<double>& outputs);

}  // namespace nup::serve
