#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/server.hpp"
#include "serve/tenant.hpp"

namespace nup::serve {

/// In-process tenant session over a StencilServer: the same submit /
/// wait / disconnect surface a remote client gets from the line protocol
/// (serve::ServeEndpoint), without sockets -- tests, benches and the CLI
/// drive the service through this. Construction registers the tenant;
/// destruction does NOT disconnect (outstanding handles stay valid) --
/// call disconnect() to model a tenant vanishing mid-flight.
///
/// Not thread-safe per instance (one session == one logical client);
/// distinct clients of one server may run concurrently.
class ServeClient {
 public:
  ServeClient(StencilServer& server, std::string tenant,
              TenantQuota quota = {});

  const std::string& tenant() const { return tenant_; }

  /// Submits one frame request; the verdict is synchronous (kShed never
  /// blocks). Outstanding admitted handles are tracked so wait_all() and
  /// disconnect() cover them.
  SubmitResult submit(const std::string& kernel, std::uint64_t seed);

  /// Waits for every outstanding admitted request and forgets the
  /// handles; returns how many resolved ok.
  std::size_t wait_all();

  /// Models the tenant vanishing: queued requests resolve cancelled,
  /// running frames are cancelled. Outstanding handles stay usable (they
  /// resolve as cancelled or with whatever completed first).
  void disconnect();

  /// Outstanding admitted requests (handles not yet consumed by
  /// wait_all).
  const std::vector<RequestHandle>& outstanding() const {
    return handles_;
  }

 private:
  StencilServer* server_;
  std::string tenant_;
  std::vector<RequestHandle> handles_;
};

}  // namespace nup::serve
