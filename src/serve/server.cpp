#include "serve/server.hpp"

#include <algorithm>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "runtime/design_cache.hpp"
#include "runtime/tiler.hpp"
#include "util/error.hpp"

namespace nup::serve {

namespace detail {

namespace {

std::int64_t elapsed_us(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Dispatch groups under an unbounded window are still finite: the
/// scheduler re-gathers on the next turn, so a cap only bounds how long
/// the dispatcher runs between scheduling decisions.
constexpr std::size_t kUnboundedGroupCap = 64;

}  // namespace

/// One request's lifecycle state. Lock order: ServerImpl::mu may be held
/// while taking RequestState::mu, never the reverse.
struct RequestState {
  std::uint64_t id = 0;
  std::string tenant;
  std::string kernel;
  std::uint64_t seed = 0;
  std::uint64_t design_key = 0;
  std::shared_ptr<const runtime::TilePlan> plan;
  std::chrono::steady_clock::time_point t_submit;
  std::weak_ptr<ServerImpl> server;

  std::mutex mu;
  std::condition_variable cv;
  enum class State {
    kQueued,    ///< admitted, waiting for dispatch
    kRunning,   ///< engine frame submitted (`frame` valid)
    kResolved,  ///< resolved locally without an engine frame (`local`)
  };
  State state = State::kQueued;
  /// Cancellation noticed while the request sat between scheduler
  /// dequeue and engine submit: the dispatcher resolves it locally.
  bool cancel_requested = false;
  runtime::FrameHandle frame;   ///< immutable once set (state kRunning)
  runtime::FrameResult local;   ///< the result when never dispatched
  std::int64_t queue_us = -1;
};

struct ServerImpl : std::enable_shared_from_this<ServerImpl> {
  ServeOptions options;
  obs::Registry* registry = nullptr;
  std::string prefix;  ///< "serve." or "serve.<name>."
  std::unique_ptr<runtime::FrameEngine> engine;

  struct Kernel {
    stencil::StencilProgram program;
    std::shared_ptr<const runtime::TilePlan> plan;
    std::uint64_t design_key = 0;
  };

  struct TenantEntry {
    obs::Counter* submitted = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* completed = nullptr;
    obs::Gauge* queued = nullptr;
    obs::Gauge* inflight = nullptr;
    TenantStats totals;
  };

  mutable std::mutex mu;
  std::condition_variable work_cv;
  bool stopping = false;
  bool shutdown_started = false;
  Scheduler sched;
  std::map<std::string, Kernel> kernel_map;
  std::unordered_map<std::uint64_t, std::shared_ptr<RequestState>> requests;
  std::uint64_t next_id = 1;
  std::size_t window = 0;      ///< 0 = unbounded
  std::size_t slots_free = 0;  ///< meaningful when window != 0
  ServeStats totals;
  std::map<std::string, TenantEntry> tenant_entries;

  /// Designs currently pinned in the engine's cache, dispatcher-owned:
  /// touched only from the dispatcher thread and (after the join) from
  /// shutdown, so it needs no lock of its own.
  std::map<std::uint64_t, std::shared_ptr<const runtime::TilePlan>> pinned;

  obs::Counter* c_submitted = nullptr;
  obs::Counter* c_admitted = nullptr;
  obs::Counter* c_shed = nullptr;
  obs::Counter* c_completed = nullptr;
  obs::Counter* c_cancelled = nullptr;
  obs::Counter* c_failed = nullptr;
  obs::Counter* c_groups = nullptr;
  obs::Counter* c_switches = nullptr;
  obs::Gauge* g_queued = nullptr;
  obs::Gauge* g_inflight = nullptr;
  obs::Histogram* h_queue_us = nullptr;
  obs::Histogram* h_frame_us = nullptr;
  obs::Histogram* h_group_size = nullptr;

  std::thread dispatcher;

  explicit ServerImpl(ServeOptions opts)
      : options(std::move(opts)),
        sched(SchedulerOptions{options.default_quota,
                               options.global_queue_limit,
                               options.policy}) {
    registry = options.metrics != nullptr ? options.metrics
                                          : &obs::Registry::global();
    prefix = options.name.empty() ? std::string("serve.")
                                  : "serve." + options.name + ".";
    window = options.max_frames_in_flight;
    slots_free = window;

    c_submitted = &registry->counter(prefix + "submitted");
    c_admitted = &registry->counter(prefix + "admitted");
    c_shed = &registry->counter(prefix + "shed");
    c_completed = &registry->counter(prefix + "completed");
    c_cancelled = &registry->counter(prefix + "cancelled");
    c_failed = &registry->counter(prefix + "failed");
    c_groups = &registry->counter(prefix + "groups");
    c_switches = &registry->counter(prefix + "design_switches");
    g_queued = &registry->gauge(prefix + "queue_depth");
    g_inflight = &registry->gauge(prefix + "inflight");
    h_queue_us = &registry->histogram(prefix + "queue_us");
    h_frame_us = &registry->histogram(prefix + "frame_us");
    h_group_size = &registry->histogram(prefix + "group_size");

    runtime::EngineOptions eo = options.engine;
    eo.name = options.name;
    eo.metrics = registry;
    eo.journal = options.journal;
    engine = std::make_unique<runtime::FrameEngine>(std::move(eo));
  }

  TenantEntry& ensure_tenant_locked(const std::string& tenant) {
    auto it = tenant_entries.find(tenant);
    if (it != tenant_entries.end()) return it->second;
    TenantEntry e;
    const std::string base = prefix + "tenant." + tenant + ".";
    e.submitted = &registry->counter(base + "submitted");
    e.shed = &registry->counter(base + "shed");
    e.completed = &registry->counter(base + "completed");
    e.queued = &registry->gauge(base + "queued");
    e.inflight = &registry->gauge(base + "inflight");
    return tenant_entries.emplace(tenant, e).first->second;
  }

  std::size_t total_in_flight_locked() const {
    std::size_t n = 0;
    for (const std::string& t : sched.tenants()) n += sched.in_flight(t);
    return n;
  }

  void update_gauges_locked() {
    g_queued->set(static_cast<std::int64_t>(sched.queued()));
    g_inflight->set(static_cast<std::int64_t>(total_in_flight_locked()));
    for (auto& [name, e] : tenant_entries) {
      e.queued->set(static_cast<std::int64_t>(sched.queued(name)));
      e.inflight->set(static_cast<std::int64_t>(sched.in_flight(name)));
      e.totals.queued = sched.queued(name);
      e.totals.in_flight = sched.in_flight(name);
    }
  }

  SubmitResult submit(const std::string& tenant, const std::string& kernel,
                      std::uint64_t seed) {
    std::lock_guard<std::mutex> lock(mu);
    const auto kit = kernel_map.find(kernel);
    if (kit == kernel_map.end()) {
      throw Error("StencilServer::submit: unknown kernel '" + kernel + "'");
    }
    TenantEntry& te = ensure_tenant_locked(tenant);
    ++totals.submitted;
    c_submitted->inc();
    ++te.totals.submitted;
    te.submitted->inc();

    SubmitResult result;
    if (stopping) {
      result.verdict = Verdict::kShed;
      result.reason = ShedReason::kShuttingDown;
      ++totals.shed;
      c_shed->inc();
      ++te.totals.shed;
      te.shed->inc();
      return result;
    }

    const std::uint64_t id = next_id++;
    SchedItem item{id, tenant, kit->second.design_key};
    ShedReason reason = ShedReason::kNone;
    if (sched.submit(item, &reason) == Verdict::kShed) {
      result.verdict = Verdict::kShed;
      result.reason = reason;
      ++totals.shed;
      c_shed->inc();
      ++te.totals.shed;
      te.shed->inc();
      return result;
    }

    auto st = std::make_shared<RequestState>();
    st->id = id;
    st->tenant = tenant;
    st->kernel = kernel;
    st->seed = seed;
    st->design_key = kit->second.design_key;
    st->plan = kit->second.plan;
    st->t_submit = std::chrono::steady_clock::now();
    st->server = weak_from_this();
    requests.emplace(id, st);

    ++totals.admitted;
    c_admitted->inc();
    update_gauges_locked();
    work_cv.notify_all();

    result.verdict = Verdict::kAdmitted;
    result.reason = ShedReason::kNone;
    result.handle = RequestHandle(std::move(st));
    return result;
  }

  /// Resolves a request that never reached the engine as cancelled.
  static void resolve_local_cancelled(RequestState& st) {
    std::lock_guard<std::mutex> lock(st.mu);
    if (st.state != RequestState::State::kQueued) return;
    st.local.seed = st.seed;
    st.local.cancelled = true;
    st.state = RequestState::State::kResolved;
    st.cv.notify_all();
  }

  /// Accounting for a request resolved without an engine frame. The item
  /// was dequeued by next_group iff in_group (then its in-flight slot and
  /// window reservation must be released here).
  void account_local_cancel_locked(const RequestState& st, bool in_group) {
    if (in_group) {
      sched.complete(st.tenant);
      if (window != 0) ++slots_free;
    }
    ++totals.cancelled;
    c_cancelled->inc();
    auto it = tenant_entries.find(st.tenant);
    if (it != tenant_entries.end()) {
      ++it->second.totals.completed;
      it->second.completed->inc();
    }
    requests.erase(st.id);
    update_gauges_locked();
    work_cv.notify_all();
  }

  /// Engine frame resolved (ok, failed or cancelled): free the window
  /// slot and the tenant's in-flight slot, record the SLO observations.
  void finish(const std::shared_ptr<RequestState>& st,
              const runtime::FrameResult& fr) {
    const std::int64_t total_us = elapsed_us(st->t_submit);
    {
      std::lock_guard<std::mutex> lock(mu);
      sched.complete(st->tenant);
      if (window != 0) ++slots_free;
      if (!fr.error.empty()) {
        ++totals.failed;
        c_failed->inc();
      } else if (fr.cancelled) {
        ++totals.cancelled;
        c_cancelled->inc();
      } else {
        ++totals.completed;
        c_completed->inc();
      }
      auto it = tenant_entries.find(st->tenant);
      if (it != tenant_entries.end()) {
        ++it->second.totals.completed;
        it->second.completed->inc();
      }
      requests.erase(st->id);
      update_gauges_locked();
      work_cv.notify_all();
    }
    h_frame_us->observe(total_us);
    {
      // Resolution is serve-authoritative: handles waiting on the request
      // are released only now, after the accounting above, so stats() is
      // consistent the moment any wait() returns.
      std::lock_guard<std::mutex> lock(st->mu);
      if (!st->frame.valid()) {
        // The frame resolved before the dispatcher handed the handle to
        // the request (a very fast frame): keep the result reachable.
        st->local = fr;
      }
      st->state = RequestState::State::kResolved;
      st->cv.notify_all();
    }
  }

  /// Re-points the pinned designs at the group's LEAD design (the first
  /// item: the WFQ leader that seeded the group). The accelerator holds
  /// one configured design set at a time -- pinning exactly one models
  /// that: the previous design is unpinned (rejoining LRU eviction), the
  /// new one is pinned per tile, compiling on a cache miss. That compile
  /// is the design-switch cost the affinity policy amortizes over the
  /// whole group; a design-blind group pays it for every off-design
  /// member, whose tiles contend for whatever capacity the pinned design
  /// left. Dispatcher thread only.
  void adjust_pins(
      const std::vector<std::shared_ptr<RequestState>>& group) {
    std::map<std::uint64_t, std::shared_ptr<const runtime::TilePlan>> need;
    need.emplace(group.front()->design_key, group.front()->plan);
    std::size_t switches = 0;
    for (auto it = pinned.begin(); it != pinned.end();) {
      if (need.count(it->first) != 0) {
        ++it;
        continue;
      }
      for (const runtime::Tile& tile : it->second->tiles) {
        engine->cache().unpin(*tile.program, options.engine.build);
      }
      it = pinned.erase(it);
    }
    for (const auto& [key, plan] : need) {
      if (pinned.count(key) != 0) continue;
      for (const runtime::Tile& tile : plan->tiles) {
        engine->cache().pin(*tile.program, options.engine.build);
      }
      pinned.emplace(key, plan);
      ++switches;
    }
    if (switches != 0) {
      std::lock_guard<std::mutex> lock(mu);
      totals.design_switches += static_cast<std::int64_t>(switches);
      for (std::size_t i = 0; i < switches; ++i) c_switches->inc();
    }
  }

  void dispatch_one(const std::shared_ptr<RequestState>& st) {
    bool cancelled = false;
    {
      std::lock_guard<std::mutex> lock(st->mu);
      cancelled = st->cancel_requested;
    }
    if (cancelled) {
      // Accounting first, resolution second (like finish()): stats() is
      // consistent the moment the handle's wait() returns.
      {
        std::lock_guard<std::mutex> lock(mu);
        account_local_cancel_locked(*st, /*in_group=*/true);
      }
      resolve_local_cancelled(*st);
      return;
    }

    runtime::SubmitOptions so;
    std::weak_ptr<ServerImpl> weak = weak_from_this();
    std::shared_ptr<RequestState> req = st;
    so.on_frame = [weak, req](const runtime::FrameResult& fr) {
      if (std::shared_ptr<ServerImpl> impl = weak.lock()) {
        impl->finish(req, fr);
      }
    };
    // The queue time is fixed before the frame is handed to the engine:
    // a fast frame can resolve (and release waiters) before the
    // dispatcher regains control, and queue_us() must be set by then.
    const std::int64_t queue_us = elapsed_us(st->t_submit);
    {
      std::lock_guard<std::mutex> lock(st->mu);
      st->queue_us = queue_us;
    }
    h_queue_us->observe(queue_us);
    runtime::FrameHandle fh = engine->submit(st->plan, st->seed,
                                             std::move(so));
    bool cancel_now = false;
    {
      std::lock_guard<std::mutex> lock(st->mu);
      st->frame = fh;
      // A cancel() that raced the submit saw no frame handle yet and
      // could only set the flag; it is honoured here.
      cancel_now = st->cancel_requested;
      // finish() may already have run (a fast frame can resolve before
      // the dispatcher reaches this line): never regress kResolved.
      if (st->state == RequestState::State::kQueued) {
        st->state = RequestState::State::kRunning;
      }
      st->cv.notify_all();
    }
    if (cancel_now) fh.cancel();
  }

  void dispatch_loop() {
    for (;;) {
      std::vector<std::shared_ptr<RequestState>> group;
      {
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock, [&] {
          return stopping ||
                 ((window == 0 || slots_free > 0) && sched.has_eligible());
        });
        if (stopping) return;
        const std::size_t max_size =
            window == 0 ? kUnboundedGroupCap : slots_free;
        const std::vector<SchedItem> items = sched.next_group(max_size);
        if (items.empty()) continue;
        if (window != 0) slots_free -= items.size();
        // Drain before a design switch: the accelerator is reconfigured
        // only between groups, so frames of the outgoing design must
        // leave the window before its tile designs are unpinned (an
        // in-flight frame losing its design to eviction would recompile
        // it mid-group). Same-design groups pipeline without a bubble.
        // On shutdown the wait is abandoned and the group dispatches
        // anyway -- the engine drains it, so no handle is stranded.
        if (window != 0 && !pinned.empty() &&
            pinned.count(items.front().design_key) == 0) {
          work_cv.wait(lock, [&] {
            return stopping || slots_free + items.size() == window;
          });
        }
        ++totals.groups;
        c_groups->inc();
        h_group_size->observe(static_cast<std::int64_t>(items.size()));
        group.reserve(items.size());
        for (const SchedItem& item : items) {
          group.push_back(requests.at(item.id));
        }
        update_gauges_locked();
      }
      adjust_pins(group);
      for (const std::shared_ptr<RequestState>& st : group) {
        dispatch_one(st);
      }
    }
  }

  void cancel_running_locked(const std::string& tenant,
                             std::vector<runtime::FrameHandle>* frames) {
    for (auto& [id, st] : requests) {
      if (st->tenant != tenant) continue;
      std::lock_guard<std::mutex> st_lock(st->mu);
      if (st->frame.valid()) {
        frames->push_back(st->frame);
      } else {
        // Queued, or in the dispatch window between dequeue and engine
        // submit: the dispatcher resolves it as cancelled.
        st->cancel_requested = true;
      }
    }
  }

  void disconnect(const std::string& tenant) {
    std::vector<std::shared_ptr<RequestState>> local;
    std::vector<runtime::FrameHandle> frames;
    {
      std::lock_guard<std::mutex> lock(mu);
      for (const SchedItem& item : sched.drop_tenant(tenant)) {
        auto it = requests.find(item.id);
        if (it != requests.end()) local.push_back(it->second);
      }
      cancel_running_locked(tenant, &frames);
    }
    for (const std::shared_ptr<RequestState>& st : local) {
      {
        std::lock_guard<std::mutex> lock(mu);
        account_local_cancel_locked(*st, /*in_group=*/false);
      }
      resolve_local_cancelled(*st);
    }
    for (runtime::FrameHandle& fh : frames) fh.cancel();
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (shutdown_started) return;
      shutdown_started = true;
      stopping = true;
      work_cv.notify_all();
    }
    if (dispatcher.joinable()) dispatcher.join();

    // Drain the queues: whatever never dispatched resolves as cancelled.
    std::vector<std::shared_ptr<RequestState>> local;
    {
      std::lock_guard<std::mutex> lock(mu);
      for (const std::string& tenant : sched.tenants()) {
        for (const SchedItem& item : sched.drop_tenant(tenant)) {
          auto it = requests.find(item.id);
          if (it != requests.end()) local.push_back(it->second);
        }
      }
    }
    for (const std::shared_ptr<RequestState>& st : local) {
      {
        std::lock_guard<std::mutex> lock(mu);
        account_local_cancel_locked(*st, /*in_group=*/false);
      }
      resolve_local_cancelled(*st);
    }

    // In-flight frames drain; their finish() callbacks release the last
    // in-flight slots through the normal path.
    engine->shutdown(runtime::FrameEngine::Drain::kDrainAll);

    // Drop the design pins: after shutdown the cache reports zero pinned
    // entries whatever mix of groups, disconnects and cancels ran.
    for (const auto& [key, plan] : pinned) {
      for (const runtime::Tile& tile : plan->tiles) {
        engine->cache().unpin(*tile.program, options.engine.build);
      }
    }
    pinned.clear();
    std::lock_guard<std::mutex> lock(mu);
    update_gauges_locked();
  }
};

}  // namespace detail

// ---- RequestHandle -----------------------------------------------------

RequestHandle::RequestHandle(std::shared_ptr<detail::RequestState> state)
    : state_(std::move(state)) {}

std::uint64_t RequestHandle::id() const {
  return state_ ? state_->id : 0;
}

const std::string& RequestHandle::tenant() const {
  static const std::string empty;
  return state_ ? state_->tenant : empty;
}

const runtime::FrameResult& RequestHandle::wait() {
  if (!state_) throw Error("RequestHandle::wait on an empty handle");
  detail::RequestState& st = *state_;
  std::unique_lock<std::mutex> lock(st.mu);
  // kResolved is set by the server after its accounting ran, so a caller
  // observing wait() return sees consistent stats()/metrics.
  st.cv.wait(lock, [&] {
    return st.state == detail::RequestState::State::kResolved;
  });
  if (st.frame.valid()) {
    runtime::FrameHandle frame = st.frame;
    lock.unlock();
    return frame.wait();  // already resolved: returns immediately
  }
  return st.local;
}

bool RequestHandle::wait_for(std::chrono::milliseconds timeout) {
  if (!state_) throw Error("RequestHandle::wait_for on an empty handle");
  detail::RequestState& st = *state_;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(st.mu);
  return st.cv.wait_until(lock, deadline, [&] {
    return st.state == detail::RequestState::State::kResolved;
  });
}

bool RequestHandle::wait_admitted() {
  if (!state_) return false;
  detail::RequestState& st = *state_;
  std::unique_lock<std::mutex> lock(st.mu);
  st.cv.wait(lock, [&] {
    return st.state != detail::RequestState::State::kQueued;
  });
  return st.frame.valid();
}

bool RequestHandle::done() const {
  if (!state_) return false;
  detail::RequestState& st = *state_;
  std::lock_guard<std::mutex> lock(st.mu);
  return st.state == detail::RequestState::State::kResolved;
}

void RequestHandle::cancel() {
  if (!state_) return;
  detail::RequestState& st = *state_;
  runtime::FrameHandle frame;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    if (st.frame.valid()) {
      frame = st.frame;
    } else {
      // Still queued (or mid-dispatch): the dispatcher notices the flag
      // and resolves the request as cancelled without an engine frame.
      st.cancel_requested = true;
    }
  }
  if (frame.valid()) frame.cancel();
}

std::int64_t RequestHandle::queue_us() const {
  if (!state_) return -1;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->queue_us;
}

// ---- StencilServer -----------------------------------------------------

StencilServer::StencilServer(ServeOptions options)
    : impl_(std::make_shared<detail::ServerImpl>(std::move(options))) {
  detail::ServerImpl* impl = impl_.get();
  impl_->dispatcher = std::thread([impl] { impl->dispatch_loop(); });
}

StencilServer::~StencilServer() {
  if (impl_) impl_->shutdown();
}

void StencilServer::add_kernel(const stencil::StencilProgram& program) {
  detail::ServerImpl::Kernel k{
      program, impl_->engine->plan_for(program),
      runtime::DesignCache::fingerprint(program,
                                        impl_->options.engine.build)};
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->kernel_map.insert_or_assign(program.name(), std::move(k));
}

std::vector<std::string> StencilServer::kernels() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::string> names;
  names.reserve(impl_->kernel_map.size());
  for (const auto& [name, k] : impl_->kernel_map) names.push_back(name);
  return names;
}

void StencilServer::register_tenant(const std::string& tenant,
                                    TenantQuota quota) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->sched.register_tenant(tenant, quota);
  impl_->ensure_tenant_locked(tenant);
}

SubmitResult StencilServer::submit(const std::string& tenant,
                                   const std::string& kernel,
                                   std::uint64_t seed) {
  return impl_->submit(tenant, kernel, seed);
}

void StencilServer::disconnect(const std::string& tenant) {
  impl_->disconnect(tenant);
}

ServeStats StencilServer::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  ServeStats s = impl_->totals;
  s.queued = impl_->sched.queued();
  s.in_flight = impl_->total_in_flight_locked();
  return s;
}

TenantStats StencilServer::tenant_stats(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->tenant_entries.find(tenant);
  TenantStats s;
  if (it != impl_->tenant_entries.end()) s = it->second.totals;
  s.queued = impl_->sched.queued(tenant);
  s.in_flight = impl_->sched.in_flight(tenant);
  return s;
}

runtime::FrameEngine& StencilServer::engine() { return *impl_->engine; }

void StencilServer::shutdown() { impl_->shutdown(); }

}  // namespace nup::serve
