#pragma once

#include "arch/design.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace nup::runtime {

/// Publishes one simulation run's telemetry into `registry`:
///
///   fifo.high_water.<array>.<k>   gauge (max over runs) -- observed peak
///                                 occupancy of uncut FIFO k of <array>
///   fifo.depth.<array>.<k>        gauge (max over runs) -- designed depth
///                                 (the max reuse distance, Eq. 2)
///   fifo.depth_violations         counter -- runs where an observed peak
///                                 exceeded its designed depth (always 0
///                                 while the sizing theorem holds)
///   filter.stall_cycles.<array>.<k> counter -- accumulated stall cycles
///   sim.runs / sim.cycles         counters
///   sim.datapath_cycles           counter -- W-wide machine cycles
///   sim.fill_latency_cycles       histogram (first-fire latency)
///   sim.steady_ii_milli           histogram (steady II x 1000)
///
/// On designs with datapath_width W > 1 two word-level gauges are added
/// per uncut FIFO -- fifo.word_depth.<array>.<k> (ceil(depth / W), the
/// Eq. 2 / W rescaled bound) and fifo.high_water_words.<array>.<k>
/// (observed peak occupancy in W-element words) -- and a word-level bound
/// violation counts into fifo.depth_violations like an element-level one.
///
/// Per-design the invariant high_water <= depth holds pointwise, so the
/// max-aggregated gauges preserve it across heterogeneous tile designs.
/// Returns the number of depth violations in this run (0 in a correct
/// build; the frame engine also surfaces it through the counter above).
///
/// When `first_violation` is non-null and the run violated a bound, it is
/// filled with the first offending FIFO (array, index, designed depth vs
/// observed high-water, element- or word-level) so the frame engine can
/// name it in the post-mortem bundle.
int publish_sim_telemetry(obs::Registry& registry,
                          const arch::AcceleratorDesign& design,
                          const sim::SimResult& result,
                          obs::FifoDetail* first_violation = nullptr);

}  // namespace nup::runtime
