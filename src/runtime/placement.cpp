#include "runtime/placement.hpp"

#include <algorithm>

namespace nup::runtime {

double PlacementPlan::imbalance() const {
  if (node_bytes.empty()) return 1.0;
  std::int64_t total = 0, peak = 0;
  for (const std::int64_t b : node_bytes) {
    total += b;
    peak = std::max(peak, b);
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(node_bytes.size());
  return static_cast<double>(peak) / mean;
}

std::string PlacementPlan::describe() const {
  std::string out;
  for (std::size_t n = 0; n < node_bytes.size(); ++n) {
    std::size_t tiles = 0;
    for (const int v : node_of) {
      if (v == static_cast<int>(n)) ++tiles;
    }
    if (!out.empty()) out += ", ";
    out += "node" + std::to_string(n) + ": " + std::to_string(tiles) +
           " tiles / " + std::to_string(node_bytes[n] >> 10) + " KiB";
  }
  return out;
}

PlacementPlan plan_placement(const TilePlan& plan, std::size_t node_count,
                             NumaMode mode) {
  PlacementPlan p;
  const std::size_t tiles = plan.tiles.size();
  if (node_count == 0) node_count = 1;
  p.node_of.assign(tiles, 0);
  p.node_bytes.assign(node_count, 0);

  const auto tile_bytes = [&](std::size_t t) {
    // streamed elements are doubles; never let a tile weigh 0 or the cut
    // positions collapse on degenerate plans.
    return std::max<std::int64_t>(plan.tiles[t].streamed_elements * 8, 1);
  };

  if (node_count == 1 || tiles == 0 || mode == NumaMode::kOff) {
    for (std::size_t t = 0; t < tiles; ++t) p.node_bytes[0] += tile_bytes(t);
    return p;
  }

  if (mode == NumaMode::kInterleave) {
    for (std::size_t t = 0; t < tiles; ++t) {
      const int n = static_cast<int>(t % node_count);
      p.node_of[t] = n;
      p.node_bytes[n] += tile_bytes(t);
    }
    return p;
  }

  // kAuto: contiguous prefix-sum cut. Tile t goes to the node whose ideal
  // byte range contains the midpoint of t's own byte span -- monotone in t
  // (so runs stay contiguous) and each node ends up within one tile of the
  // ideal total/node_count share.
  std::int64_t total = 0;
  for (std::size_t t = 0; t < tiles; ++t) total += tile_bytes(t);
  std::int64_t prefix = 0;
  for (std::size_t t = 0; t < tiles; ++t) {
    const std::int64_t bytes = tile_bytes(t);
    const std::int64_t mid = prefix + bytes / 2;
    std::size_t n = static_cast<std::size_t>(
        (static_cast<__int128>(mid) * node_count) / total);
    n = std::min(n, node_count - 1);
    p.node_of[t] = static_cast<int>(n);
    p.node_bytes[n] += bytes;
    prefix += bytes;
  }
  return p;
}

}  // namespace nup::runtime
