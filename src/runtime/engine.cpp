#include "runtime/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "obs/trace.hpp"
#include "runtime/telemetry.hpp"
#include "sim/fast.hpp"
#include "util/error.hpp"

namespace nup::runtime {

namespace detail {

/// Shared state of one submitted frame. Workers write outputs lock-free at
/// the disjoint ranks the tiler precomputed; the tile countdown
/// (acquire-release) publishes those writes to whichever worker resolves
/// the frame, and the result mutex publishes them to waiters.
struct FrameState {
  std::shared_ptr<const TilePlan> plan;
  /// Tile->node map the engine dispatches this frame with; null when the
  /// engine runs single-node (every tile on node 0).
  std::shared_ptr<const PlacementPlan> placement;
  std::uint64_t seed = 0;
  SubmitOptions options;  ///< per-frame hooks (empty for plain submits)
  std::chrono::steady_clock::time_point submitted_at;

  std::atomic<bool> cancelled{false};
  std::atomic<std::int64_t> remaining{0};
  std::atomic<std::int64_t> executed{0};
  std::atomic<std::int64_t> skipped{0};

  std::mutex mu;
  std::condition_variable cv;
  bool resolved = false;
  FrameResult result;

  std::mutex error_mu;
  std::string error;  // first failure wins

  /// Returns true for the first failure only (its caller owns the
  /// post-mortem dump; later tile failures of the same frame are noise).
  bool fail(const std::string& what) {
    bool first = false;
    {
      std::lock_guard<std::mutex> lock(error_mu);
      if (error.empty()) {
        error = what;
        first = true;
      }
    }
    cancelled.store(true, std::memory_order_relaxed);  // skip the rest
    return first;
  }
};

}  // namespace detail

using detail::FrameState;

// ---- FrameHandle -------------------------------------------------------

FrameHandle::FrameHandle(std::shared_ptr<FrameState> state)
    : state_(std::move(state)) {}

const FrameResult& FrameHandle::wait() {
  if (!state_) throw Error("FrameHandle::wait on an empty handle");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->resolved; });
  return state_->result;
}

bool FrameHandle::wait_for(std::chrono::milliseconds timeout) {
  if (!state_) throw Error("FrameHandle::wait_for on an empty handle");
  std::unique_lock<std::mutex> lock(state_->mu);
  return state_->cv.wait_for(lock, timeout,
                             [&] { return state_->resolved; });
}

bool FrameHandle::done() const {
  if (!state_) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->resolved;
}

void FrameHandle::cancel() {
  if (state_) state_->cancelled.store(true, std::memory_order_relaxed);
}

// ---- FrameEngine -------------------------------------------------------

namespace {

struct Job {
  std::shared_ptr<FrameState> frame;
  std::size_t tile = 0;
};

/// Kernel-visible thread name ("nup-w<node>.<i>", 15-char limit) so
/// traces, postmortem bundles and TSan reports attribute work to the
/// right pool.
void set_os_thread_name(const std::string& name) {
#if defined(__linux__)
  pthread_setname_np(pthread_self(), name.substr(0, 15).c_str());
#else
  (void)name;
#endif
}

/// Pins the calling worker to its node's CPU set. Best-effort: an empty
/// set or a failing syscall (containers often mask CPUs) leaves the
/// thread unpinned rather than failing the engine.
void pin_to_cpus(const std::vector<int>& cpus) {
#if defined(__linux__)
  if (cpus.empty()) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE) CPU_SET(c, &set);
  }
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)cpus;
#endif
}

std::int64_t elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// Default tile shape: split outer dimensions until there are about four
/// tiles per worker (load balance without drowning in halo), keeping the
/// innermost dimension whole so the reuse FIFOs keep their row-buffer
/// shape and tiles stay wide enough to pipeline.
poly::IntVec auto_tile_shape(const stencil::StencilProgram& program,
                             std::size_t threads) {
  poly::IntVec lo, hi;
  domain_bounding_box(program.iteration(), &lo, &hi);
  const std::size_t dim = program.dim();
  poly::IntVec extent(dim), shape(dim);
  for (std::size_t d = 0; d < dim; ++d) {
    extent[d] = hi[d] - lo[d] + 1;
    shape[d] = extent[d];
  }
  const std::size_t splittable = dim > 1 ? dim - 1 : dim;
  const std::int64_t target =
      4 * static_cast<std::int64_t>(std::max<std::size_t>(threads, 1));
  const auto tile_count = [&] {
    std::int64_t n = 1;
    for (std::size_t d = 0; d < dim; ++d) {
      n *= (extent[d] + shape[d] - 1) / shape[d];
    }
    return n;
  };
  while (tile_count() < target) {
    std::size_t best = dim;  // largest outer dim still worth halving
    for (std::size_t d = 0; d < splittable; ++d) {
      if (shape[d] >= 8 && (best == dim || shape[d] > shape[best])) best = d;
    }
    if (best == dim) break;
    shape[best] = (shape[best] + 1) / 2;
  }
  return shape;
}

/// Worker->node assignment: weighted round-robin by node CPU count, so a
/// node with twice the CPUs gets about twice the workers (plain
/// round-robin on a symmetric topology). With fewer threads than nodes
/// some nodes get no worker; their tiles still run, via steals.
std::vector<std::size_t> worker_nodes(std::size_t threads,
                                      const Topology& topo) {
  const std::size_t nodes = topo.node_count();
  std::vector<std::size_t> out;
  out.reserve(threads);
  if (nodes <= 1) {
    out.assign(threads, 0);
    return out;
  }
  const double total =
      static_cast<double>(std::max<std::size_t>(topo.cpu_count(), 1));
  std::vector<double> share(nodes), got(nodes, 0.0);
  for (std::size_t n = 0; n < nodes; ++n) {
    share[n] =
        std::max<double>(static_cast<double>(topo.node(n).cpus.size()), 0.5) /
        total;
  }
  for (std::size_t i = 0; i < threads; ++i) {
    std::size_t best = 0;
    double best_lag = -1.0;
    for (std::size_t n = 0; n < nodes; ++n) {
      const double lag = share[n] * static_cast<double>(i + 1) - got[n];
      if (lag > best_lag) {
        best_lag = lag;
        best = n;
      }
    }
    out.push_back(best);
    got[best] += 1.0;
  }
  return out;
}

}  // namespace

struct FrameEngine::Impl {
  EngineOptions options;
  std::string prefix;  ///< "engine." or "engine.<name>." (metric namespace)
  std::size_t thread_count = 1;
  obs::Registry* registry = nullptr;
  obs::Journal* journal = nullptr;
  std::uint32_t jname = 0;  ///< this engine's interned journal name
  DesignCache cache;

  /// Scheduling topology: exactly one node with --numa off (the queues
  /// vector then degenerates to the historical single run queue), the
  /// discovered (or NUP_FAKE_TOPOLOGY-simulated) layout otherwise.
  Topology topo;

  mutable std::mutex qmu;
  std::condition_variable not_empty;  // workers wait for jobs
  std::condition_variable not_full;   // submitters wait for space
  /// One run queue per node; a tile is enqueued on its placed node and
  /// stolen cross-node only by idle workers. Each queue is bounded by
  /// options.queue_capacity.
  std::vector<std::deque<Job>> queues;
  bool accepting = true;
  bool stopping = false;
  std::size_t max_queue_depth = 0;

  std::mutex plans_mu;
  std::unordered_map<std::string, std::shared_ptr<const TilePlan>> plans;
  /// Placement per registered plan (keyed by plan identity; computed once,
  /// shared with the pipeline executor via placement_for).
  std::unordered_map<const TilePlan*, std::shared_ptr<const PlacementPlan>>
      placements;

  std::mutex join_mu;  // serializes shutdown calls
  std::vector<std::thread> workers;

  /// Frame/tile counters behind one mutex: stats() reads them as a group,
  /// so a frame resolving concurrently never yields a snapshot where
  /// completed + cancelled + failed exceeds submitted. (Lock ordering:
  /// stats_mu is a leaf -- never acquired while holding qmu, and nothing
  /// is acquired while holding it.)
  mutable std::mutex stats_mu;
  struct Counts {
    std::int64_t frames_submitted = 0;
    std::int64_t frames_completed = 0;
    std::int64_t frames_cancelled = 0;
    std::int64_t frames_failed = 0;
    std::int64_t tiles_executed = 0;
    std::int64_t tiles_skipped = 0;
    std::int64_t tiles_stolen = 0;
  } counts;

  /// Dispatch totals feeding the placement.local_fraction gauge (relaxed:
  /// the gauge is a monitoring ratio, not a synchronization point).
  std::atomic<std::int64_t> dispatched{0};
  std::atomic<std::int64_t> stolen{0};

  // Registry metrics (pointers stay valid across Registry::reset()).
  obs::Gauge* m_queue_depth = nullptr;
  obs::Gauge* m_queue_depth_max = nullptr;
  obs::Histogram* m_backpressure_us = nullptr;
  obs::Histogram* m_tile_latency_us = nullptr;
  obs::Histogram* m_frame_latency_us = nullptr;
  obs::Counter* m_tiles_executed = nullptr;
  obs::Counter* m_tiles_skipped = nullptr;
  obs::Counter* m_frames_submitted = nullptr;
  obs::Counter* m_frames_completed = nullptr;
  obs::Counter* m_frames_cancelled = nullptr;
  obs::Counter* m_frames_failed = nullptr;
  // Per-node dispatch series (engine.node.<n>.*) plus the locality ratio.
  // The gauge is int64, so the fraction is published in permille
  // (0..1000); see docs/OBSERVABILITY.md.
  std::vector<obs::Counter*> m_node_tiles;
  std::vector<obs::Counter*> m_node_steals;
  std::vector<obs::Counter*> m_node_remote_bytes;
  obs::Gauge* m_local_fraction = nullptr;

  explicit Impl(EngineOptions opts)
      : options(std::move(opts)),
        prefix(options.name.empty() ? std::string("engine.")
                                    : "engine." + options.name + "."),
        registry(options.metrics ? options.metrics
                                 : &obs::Registry::global()),
        journal(options.journal ? options.journal
                                : &obs::Journal::global()),
        cache(options.cache_capacity, registry, options.name) {
    topo = options.numa == NumaMode::kOff ? Topology::single_node()
                                          : Topology::discover();
    queues.resize(topo.node_count());
    jname = journal->intern(options.name.empty() ? "engine" : options.name);
    m_queue_depth = &registry->gauge(prefix + "queue_depth");
    m_queue_depth_max = &registry->gauge(prefix + "queue_depth_max");
    m_backpressure_us = &registry->histogram(prefix + "backpressure_wait_us");
    m_tile_latency_us = &registry->histogram(prefix + "tile_latency_us");
    m_frame_latency_us = &registry->histogram(prefix + "frame_latency_us");
    m_tiles_executed = &registry->counter(prefix + "tiles_executed");
    m_tiles_skipped = &registry->counter(prefix + "tiles_skipped");
    m_frames_submitted = &registry->counter(prefix + "frames_submitted");
    m_frames_completed = &registry->counter(prefix + "frames_completed");
    m_frames_cancelled = &registry->counter(prefix + "frames_cancelled");
    m_frames_failed = &registry->counter(prefix + "frames_failed");
    for (std::size_t n = 0; n < topo.node_count(); ++n) {
      const std::string npfx = prefix + "node." + std::to_string(n) + ".";
      m_node_tiles.push_back(&registry->counter(npfx + "tiles"));
      m_node_steals.push_back(&registry->counter(npfx + "steals"));
      m_node_remote_bytes.push_back(&registry->counter(npfx + "remote_bytes"));
    }
    m_local_fraction =
        &registry->gauge(prefix + "placement.local_fraction");
    m_local_fraction->set(1000);  // no dispatches yet == fully local
  }

  /// Sum of all node queues; call under qmu.
  std::size_t total_depth_locked() const {
    std::size_t depth = 0;
    for (const std::deque<Job>& q : queues) depth += q.size();
    return depth;
  }

  /// Tile->node placement for a registered plan; computed once per plan.
  /// Null when the engine schedules a single node (numa off / one-node
  /// host): the placement is then trivially "everything on node 0".
  std::shared_ptr<const PlacementPlan> placement_for(
      const std::shared_ptr<const TilePlan>& plan) {
    if (!plan || topo.node_count() <= 1 ||
        options.numa == NumaMode::kOff) {
      return nullptr;
    }
    std::lock_guard<std::mutex> lock(plans_mu);
    const auto found = placements.find(plan.get());
    if (found != placements.end()) return found->second;
    std::shared_ptr<const PlacementPlan> placement;
    if (options.place_tile) {
      auto p = std::make_shared<PlacementPlan>();
      p->node_of.resize(plan->tiles.size());
      p->node_bytes.assign(topo.node_count(), 0);
      for (std::size_t t = 0; t < plan->tiles.size(); ++t) {
        int n = options.place_tile(plan->tiles[t], t, topo.node_count());
        n = std::clamp(n, 0, static_cast<int>(topo.node_count()) - 1);
        p->node_of[t] = n;
        p->node_bytes[n] +=
            std::max<std::int64_t>(plan->tiles[t].streamed_elements * 8, 1);
      }
      placement = std::move(p);
    } else {
      placement = std::make_shared<const PlacementPlan>(
          plan_placement(*plan, topo.node_count(), options.numa));
    }
    placements.emplace(plan.get(), placement);
    return placement;
  }

  /// Records one dispatched tile for the locality series: `node` is the
  /// executing worker's node, `stolen_job` whether the tile came off
  /// another node's queue.
  void note_dispatch(std::size_t node, bool stolen_job,
                     std::int64_t streamed_bytes) {
    m_node_tiles[node]->inc();
    if (stolen_job) {
      m_node_steals[node]->inc();
      m_node_remote_bytes[node]->add(streamed_bytes);
      stolen.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(stats_mu);
        ++counts.tiles_stolen;
      }
    }
    const std::int64_t total =
        dispatched.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::int64_t remote = stolen.load(std::memory_order_relaxed);
    m_local_fraction->set(1000 * (total - remote) / total);
  }

  /// Sets the live queue-depth gauge and mirrors it as a Chrome counter
  /// track; call with the size observed under qmu (after a push or pop).
  void note_queue_depth(std::size_t depth) {
    m_queue_depth->set(static_cast<std::int64_t>(depth));
    m_queue_depth_max->update_max(static_cast<std::int64_t>(depth));
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      tracer.counter(prefix + "queue_depth",
                     static_cast<std::int64_t>(depth));
    }
  }

  void resolve(FrameState& frame) {
    {
      std::lock_guard<std::mutex> lock(frame.error_mu);
      frame.result.error = frame.error;
    }
    frame.result.cancelled =
        frame.result.error.empty() &&
        frame.cancelled.load(std::memory_order_relaxed);
    frame.result.tiles_executed =
        frame.executed.load(std::memory_order_relaxed);
    frame.result.tiles_skipped =
        frame.skipped.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(stats_mu);
      if (!frame.result.error.empty()) {
        ++counts.frames_failed;
      } else if (frame.result.cancelled) {
        ++counts.frames_cancelled;
      } else {
        ++counts.frames_completed;
      }
    }
    if (!frame.result.error.empty()) {
      m_frames_failed->inc();
    } else if (frame.result.cancelled) {
      m_frames_cancelled->inc();
    } else {
      m_frames_completed->inc();
    }
    const std::int64_t frame_us = elapsed_us(frame.submitted_at);
    m_frame_latency_us->observe(frame_us);
    journal->record(!frame.result.error.empty()
                        ? obs::JournalKind::kFrameFailed
                    : frame.result.cancelled
                        ? obs::JournalKind::kFrameCancelled
                        : obs::JournalKind::kFrameCompleted,
                    frame.options.frame_id, frame.options.stage, -1,
                    frame_us, 0, jname);
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      tracer.instant(
          !frame.result.error.empty()
              ? "frame.failed"
              : frame.result.cancelled ? "frame.cancelled"
                                       : "frame.completed",
          "engine");
      if (frame.options.own_frame_events) {
        tracer.flow_end("frame", "frame", frame.options.frame_id);
        tracer.async_end("frame", "frame", frame.options.frame_id);
      }
    }
    if (frame.result.cancelled && frame.options.own_frame_events) {
      // Failure post-mortems are dumped at the failing tile (where the
      // design and FIFO detail live); cancellation has no tile, so the
      // frame's owner dumps it here.
      obs::PostmortemInfo pm;
      pm.reason = "frame_cancelled";
      pm.detail = "frame " + std::to_string(frame.options.frame_id) +
                  " cancelled after " +
                  std::to_string(frame.result.tiles_executed) + " of " +
                  std::to_string(frame.result.tiles_total) + " tiles";
      pm.frame = frame.options.frame_id;
      pm.stage = frame.options.stage;
      journal->dump_postmortem(pm, registry);
    }
    {
      std::lock_guard<std::mutex> lock(frame.mu);
      frame.resolved = true;
    }
    frame.cv.notify_all();
    if (frame.options.on_frame) frame.options.on_frame(frame.result);
  }

  /// Counts one tile down; the worker that brings the count to zero
  /// resolves the frame (acquire pairs with every other worker's release,
  /// so all stitched outputs are visible).
  void finish_tiles(FrameState& frame, std::int64_t n) {
    if (frame.remaining.fetch_sub(n, std::memory_order_acq_rel) == n) {
      resolve(frame);
    }
  }

  void run_tile(FrameState& frame, const Tile& tile, std::size_t tile_idx,
                obs::Counter& worker_busy_us, obs::Counter& worker_tiles) {
    obs::Tracer& tracer = obs::Tracer::global();
    if (frame.cancelled.load(std::memory_order_relaxed)) {
      frame.skipped.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(stats_mu);
        ++counts.tiles_skipped;
      }
      m_tiles_skipped->inc();
      journal->record(obs::JournalKind::kTileSkipped,
                      frame.options.frame_id, frame.options.stage,
                      static_cast<std::int64_t>(tile_idx), 0, 0, jname);
      // Skipped tiles leave no open span behind: a zero-duration instant
      // marks them so a trace of a cancelled frame still accounts for
      // every tile.
      if (tracer.enabled()) tracer.instant("tile.skipped", "engine");
      if (frame.options.on_tile) {
        frame.options.on_tile(tile_idx, nullptr, false);
      }
      return;
    }
    frame.executed.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(stats_mu);
      ++counts.tiles_executed;
    }
    m_tiles_executed->inc();

    std::string span_args;
    if (tracer.enabled()) {
      span_args = "{\"seed\":" + std::to_string(frame.seed) +
                  ",\"tile\":" + std::to_string(tile_idx) + ",\"program\":\"" +
                  tile.program->name() + "\"}";
    }
    // RAII span: closes on every exit path (including a tile that throws),
    // so cancelled or failed frames never leave a dangling span.
    obs::Span span(tracer, "tile", "engine", std::move(span_args));
    const auto t0 = std::chrono::steady_clock::now();
    bool ok = true;
    try {
      // Steady-state path: a pre-resolved design (pinned by the pipeline
      // executor at construction) skips the cache lookup entirely.
      std::shared_ptr<const CachedDesign> entry;
      if (frame.options.designs &&
          tile_idx < frame.options.designs->size()) {
        entry = (*frame.options.designs)[tile_idx];
      }
      if (!entry) {
        entry = cache.get_or_compile(*tile.program, options.build);
      }
      sim::SimOptions so = options.sim;
      so.backend = sim::SimBackend::kFast;
      so.seed = frame.seed;
      so.record_outputs = false;
      so.trace_cycles = 0;
      sim::FastSim sim(*tile.program, entry->design, entry->plan, so);
      if (frame.options.feed) {
        for (std::size_t a = 0; a < entry->design.systems.size(); ++a) {
          const std::size_t segments =
              entry->design.systems[a].stream_count();
          for (std::size_t s = 0; s < segments; ++s) {
            if (std::shared_ptr<sim::ExternalFeed> feed =
                    frame.options.feed(tile, tile_idx, a, s)) {
              sim.set_feed(a, s, std::move(feed));
            }
          }
        }
      }
      double* const outputs = frame.result.outputs.data();
      const std::int64_t* const ranks = tile.output_ranks.data();
      std::size_t k = 0;
      sim.set_output_callback(
          [outputs, ranks, &k](const poly::IntVec&, double value) {
            outputs[ranks[k++]] = value;
          });
      const sim::SimResult r = sim.run();
      // Emitted while the tile span is open, so the frame's flow arrow
      // binds to this tile slice in Perfetto.
      if (tracer.enabled()) {
        tracer.flow_step("frame", "frame", frame.options.frame_id);
      }
      obs::FifoDetail violation;
      const int violations =
          publish_sim_telemetry(*registry, entry->design, r, &violation);
      // The first failing tile owns the frame's post-mortem: it records
      // the verdict event (so the bundle's log names frame, stage, tile
      // and FIFO) and dumps the bundle with the offending design's
      // describe() while both are still in hand.
      if (r.deadlocked) {
        ok = false;
        const std::string what = tile.program->name() + " deadlocked: " +
                                 r.deadlock_detail;
        if (frame.fail(what)) {
          journal->record(obs::JournalKind::kDeadlock,
                          frame.options.frame_id, frame.options.stage,
                          static_cast<std::int64_t>(tile_idx), r.cycles, 0,
                          jname);
          obs::PostmortemInfo pm;
          pm.reason = "deadlock";
          pm.detail = what;
          pm.frame = frame.options.frame_id;
          pm.stage = frame.options.stage;
          pm.tile = static_cast<std::int64_t>(tile_idx);
          pm.design = arch::describe(entry->design);
          journal->dump_postmortem(pm, registry);
        }
      } else if (r.kernel_fires != tile.outputs()) {
        ok = false;
        const std::string what =
            tile.program->name() + " produced " +
            std::to_string(r.kernel_fires) + " of " +
            std::to_string(tile.outputs()) + " outputs";
        if (frame.fail(what)) {
          obs::PostmortemInfo pm;
          pm.reason = "frame_failed";
          pm.detail = what;
          pm.frame = frame.options.frame_id;
          pm.stage = frame.options.stage;
          pm.tile = static_cast<std::int64_t>(tile_idx);
          pm.design = arch::describe(entry->design);
          journal->dump_postmortem(pm, registry);
        }
      } else if (violations > 0) {
        ok = false;
        const std::string what = tile.program->name() + ": " +
                                 std::to_string(violations) +
                                 " FIFO(s) exceeded their designed depth";
        if (frame.fail(what)) {
          journal->record(obs::JournalKind::kDepthViolation,
                          frame.options.frame_id, frame.options.stage,
                          static_cast<std::int64_t>(tile_idx),
                          violation.high_water, violation.depth, jname);
          obs::PostmortemInfo pm;
          pm.reason = "depth_violation";
          pm.detail = what;
          pm.frame = frame.options.frame_id;
          pm.stage = frame.options.stage;
          pm.tile = static_cast<std::int64_t>(tile_idx);
          pm.design = arch::describe(entry->design);
          pm.has_fifo = true;
          pm.fifo = violation;
          journal->dump_postmortem(pm, registry);
        }
      }
    } catch (const std::exception& e) {
      ok = false;
      const std::string what = tile.program->name() + ": " + e.what();
      if (frame.fail(what)) {
        obs::PostmortemInfo pm;
        pm.reason = "frame_failed";
        pm.detail = what;
        pm.frame = frame.options.frame_id;
        pm.stage = frame.options.stage;
        pm.tile = static_cast<std::int64_t>(tile_idx);
        journal->dump_postmortem(pm, registry);
      }
    }
    const std::int64_t us = elapsed_us(t0);
    m_tile_latency_us->observe(us);
    worker_busy_us.add(us);
    worker_tiles.inc();
    journal->record(obs::JournalKind::kTileExecuted, frame.options.frame_id,
                    frame.options.stage,
                    static_cast<std::int64_t>(tile_idx), us,
                    ok ? 1 : 0, jname);
    if (frame.options.on_tile) {
      frame.options.on_tile(tile_idx,
                            ok ? frame.result.outputs.data() : nullptr, ok);
    }
  }

  void worker_loop(std::size_t worker, std::size_t node,
                   std::size_t node_slot) {
    set_os_thread_name("nup-w" + std::to_string(node) + "." +
                       std::to_string(node_slot));
    obs::Tracer::global().set_thread_name(
        (options.name.empty() ? std::string() : options.name + ".") +
        "worker-" + std::to_string(worker));
    if (options.numa != NumaMode::kOff) pin_to_cpus(topo.node(node).cpus);
    obs::Counter& busy_us = registry->counter(
        prefix + "worker." + std::to_string(worker) + ".busy_us");
    obs::Counter& worker_tiles = registry->counter(
        prefix + "worker." + std::to_string(worker) + ".tiles");
    const std::size_t nodes = queues.size();
    for (;;) {
      Job job;
      bool stolen_job = false;
      std::size_t depth = 0;
      {
        std::unique_lock<std::mutex> lock(qmu);
        not_empty.wait(lock,
                       [&] { return total_depth_locked() != 0 || stopping; });
        // Sticky dispatch: drain the own node's queue first (FIFO, like
        // the historical single queue) ...
        std::size_t src = node;
        if (queues[node].empty()) {
          // ... and only an idle worker scans the other nodes, starting
          // after its own so steal pressure spreads instead of all
          // landing on node 0.
          for (std::size_t k = 1; k < nodes; ++k) {
            const std::size_t cand = (node + k) % nodes;
            if (!queues[cand].empty()) {
              src = cand;
              break;
            }
          }
          if (queues[src].empty()) return;  // stopping and drained
        }
        if (src == node) {
          job = std::move(queues[src].front());
          queues[src].pop_front();
        } else {
          // Steal from the back: the owner keeps its FIFO front, the
          // thief takes the tile that would have waited longest.
          job = std::move(queues[src].back());
          queues[src].pop_back();
          stolen_job = true;
        }
        depth = total_depth_locked();
      }
      note_queue_depth(depth);
      not_full.notify_all();
      const Tile& tile = job.frame->plan->tiles[job.tile];
      note_dispatch(node, stolen_job, tile.streamed_elements * 8);
      run_tile(*job.frame, tile, job.tile, busy_us, worker_tiles);
      finish_tiles(*job.frame, 1);
    }
  }

  /// Enqueues one tile on its placed node's queue, blocking while that
  /// queue is full (backpressure). Returns false when shutdown raced the
  /// push. Observes the backpressure wait and notifies a worker.
  bool push_job(Job job, std::size_t node) {
    std::size_t depth = 0;
    const auto w0 = std::chrono::steady_clock::now();
    {
      std::unique_lock<std::mutex> lock(qmu);
      not_full.wait(lock, [&] {
        return queues[node].size() < options.queue_capacity || !accepting;
      });
      if (!accepting) return false;
      queues[node].push_back(std::move(job));
      const std::size_t total = total_depth_locked();
      max_queue_depth = std::max(max_queue_depth, total);
      depth = total;
    }
    m_backpressure_us->observe(elapsed_us(w0));
    note_queue_depth(depth);
    not_empty.notify_one();
    return true;
  }

  /// Node a tile of this frame is placed on (0 when single-node).
  std::size_t node_of(const FrameState& frame, std::size_t tile_idx) const {
    if (!frame.placement || tile_idx >= frame.placement->node_of.size()) {
      return 0;
    }
    return static_cast<std::size_t>(frame.placement->node_of[tile_idx]);
  }
};

FrameEngine::FrameEngine(EngineOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {
  Impl& im = *impl_;
  im.thread_count =
      im.options.threads != 0
          ? im.options.threads
          : std::max(1u, std::thread::hardware_concurrency());
  if (im.options.queue_capacity == 0) im.options.queue_capacity = 1;
  im.workers.reserve(im.thread_count);
  const std::vector<std::size_t> nodes =
      worker_nodes(im.thread_count, im.topo);
  std::vector<std::size_t> slots(im.topo.node_count(), 0);
  for (std::size_t t = 0; t < im.thread_count; ++t) {
    const std::size_t node = nodes[t];
    const std::size_t slot = slots[node]++;
    im.workers.emplace_back(
        [&im, t, node, slot] { im.worker_loop(t, node, slot); });
  }
}

FrameEngine::~FrameEngine() { shutdown(Drain::kCancelPending); }

std::shared_ptr<const TilePlan> FrameEngine::plan_for(
    const stencil::StencilProgram& program) {
  Impl& im = *impl_;
  TilerOptions topts;
  topts.tile_shape = im.options.tile_shape.empty()
                         ? auto_tile_shape(program, im.thread_count)
                         : im.options.tile_shape;
  // Unlike the design cache, plans must NOT be shared across programs
  // that differ only in kernel: plan_tiles embeds the kernel in every
  // tile's program, so two same-shaped stencils with different kernels
  // (jacobi vs denoise) need distinct plans. The name stands in for the
  // kernel identity (a std::function has none).
  std::string key = program.name() + "|";
  key += DesignCache::canonical_key(program, im.options.build);
  key += "|tile=";
  for (const std::int64_t s : topts.tile_shape) {
    key += std::to_string(s) + ",";
  }

  std::lock_guard<std::mutex> lock(im.plans_mu);
  const auto found = im.plans.find(key);
  if (found != im.plans.end()) return found->second;
  auto plan = std::make_shared<const TilePlan>(plan_tiles(program, topts));
  // Pre-compile every tile design now, in the submitting thread: workers
  // then run on cache hits and the first frame costs the same as the rest.
  for (const Tile& tile : plan->tiles) {
    im.cache.get_or_compile(*tile.program, im.options.build);
  }
  im.plans.emplace(std::move(key), plan);
  return plan;
}

FrameHandle FrameEngine::submit(const stencil::StencilProgram& program,
                                std::uint64_t seed) {
  return submit(program, seed, SubmitOptions{});
}

FrameHandle FrameEngine::submit(const stencil::StencilProgram& program,
                                std::uint64_t seed, SubmitOptions options) {
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.qmu);
    if (!im.accepting) throw Error("FrameEngine::submit after shutdown");
  }
  return submit(plan_for(program), seed, std::move(options));
}

FrameHandle FrameEngine::submit(std::shared_ptr<const TilePlan> plan,
                                std::uint64_t seed, SubmitOptions options) {
  Impl& im = *impl_;
  if (!plan) throw Error("FrameEngine::submit: null tile plan");
  {
    std::lock_guard<std::mutex> lock(im.qmu);
    if (!im.accepting) throw Error("FrameEngine::submit after shutdown");
  }

  auto frame = std::make_shared<FrameState>();
  frame->plan = plan;
  frame->placement = im.placement_for(plan);
  frame->seed = seed;
  frame->options = std::move(options);
  if (frame->options.frame_id == 0) {
    frame->options.frame_id = obs::next_frame_id();
  }
  frame->submitted_at = std::chrono::steady_clock::now();
  frame->result.seed = seed;
  frame->result.tiles_total =
      static_cast<std::int64_t>(plan->tiles.size());
  frame->result.outputs.assign(
      static_cast<std::size_t>(plan->total_outputs), 0.0);
  frame->remaining.store(static_cast<std::int64_t>(plan->tiles.size()),
                         std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(im.stats_mu);
    ++im.counts.frames_submitted;
  }
  im.m_frames_submitted->inc();
  im.journal->record(obs::JournalKind::kFrameAdmitted,
                     frame->options.frame_id, frame->options.stage, -1, 0,
                     static_cast<std::int64_t>(plan->tiles.size()),
                     im.jname);
  obs::Tracer& tracer = obs::Tracer::global();
  if (frame->options.own_frame_events && tracer.enabled()) {
    tracer.async_begin("frame", "frame", frame->options.frame_id,
                       "{\"seed\":" + std::to_string(seed) + "}");
    tracer.flow_start("frame", "frame", frame->options.frame_id);
  }
  if (frame->options.deferred) {
    // The caller releases tiles itself (release_tile) as dependencies
    // resolve; nothing is enqueued here.
    return FrameHandle(frame);
  }

  std::size_t pushed = 0;
  for (std::size_t t = 0; t < plan->tiles.size(); ++t) {
    // Sticky dispatch: the tile lands on its placed node's queue.
    // push_job blocks while that queue is full (backpressure, observed in
    // the histogram on every push so it stays a wait distribution) and
    // fails only when shutdown raced this submission.
    if (!im.push_job(Job{frame, t}, im.node_of(*frame, t))) break;
    ++pushed;
  }
  if (pushed < plan->tiles.size()) {
    const std::int64_t n =
        static_cast<std::int64_t>(plan->tiles.size() - pushed);
    frame->cancelled.store(true, std::memory_order_relaxed);
    frame->skipped.fetch_add(n, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(im.stats_mu);
      im.counts.tiles_skipped += n;
    }
    im.m_tiles_skipped->add(n);
    im.finish_tiles(*frame, n);
  }
  return FrameHandle(frame);
}

void FrameEngine::release_tile(const FrameHandle& frame,
                               std::size_t tile_idx) {
  Impl& im = *impl_;
  if (!frame.state_) {
    throw Error("FrameEngine::release_tile on an empty handle");
  }
  FrameState& state = *frame.state_;
  if (tile_idx >= state.plan->tiles.size()) {
    throw Error("FrameEngine::release_tile: tile " +
                std::to_string(tile_idx) + " out of range");
  }

  if (im.push_job(Job{frame.state_, tile_idx},
                  im.node_of(state, tile_idx))) {
    return;
  }

  // Shutdown raced the release: the tile resolves as skipped so the
  // deferred frame still terminates (mirrors submit()'s truncation path).
  state.cancelled.store(true, std::memory_order_relaxed);
  state.skipped.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(im.stats_mu);
    ++im.counts.tiles_skipped;
  }
  im.m_tiles_skipped->inc();
  im.journal->record(obs::JournalKind::kTileSkipped,
                     state.options.frame_id, state.options.stage,
                     static_cast<std::int64_t>(tile_idx), 0, 0, im.jname);
  if (state.options.on_tile) state.options.on_tile(tile_idx, nullptr, false);
  im.finish_tiles(state, 1);
}

void FrameEngine::skip_tile(const FrameHandle& frame,
                            std::size_t tile_idx) {
  Impl& im = *impl_;
  if (!frame.state_) {
    throw Error("FrameEngine::skip_tile on an empty handle");
  }
  FrameState& state = *frame.state_;
  if (tile_idx >= state.plan->tiles.size()) {
    throw Error("FrameEngine::skip_tile: tile " + std::to_string(tile_idx) +
                " out of range");
  }
  state.cancelled.store(true, std::memory_order_relaxed);
  state.skipped.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(im.stats_mu);
    ++im.counts.tiles_skipped;
  }
  im.m_tiles_skipped->inc();
  im.journal->record(obs::JournalKind::kTileSkipped,
                     state.options.frame_id, state.options.stage,
                     static_cast<std::int64_t>(tile_idx), 0, 0, im.jname);
  if (state.options.on_tile) state.options.on_tile(tile_idx, nullptr, false);
  im.finish_tiles(state, 1);
}

DesignCache& FrameEngine::cache() { return impl_->cache; }

const Topology& FrameEngine::topology() const { return impl_->topo; }

std::shared_ptr<const PlacementPlan> FrameEngine::placement_for(
    const std::shared_ptr<const TilePlan>& plan) {
  return impl_->placement_for(plan);
}

void FrameEngine::shutdown(Drain mode) {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> join_lock(im.join_mu);
  {
    std::lock_guard<std::mutex> lock(im.qmu);
    im.accepting = false;
    if (mode == Drain::kCancelPending) {
      for (const std::deque<Job>& queue : im.queues) {
        for (const Job& job : queue) {
          job.frame->cancelled.store(true, std::memory_order_relaxed);
        }
      }
    }
    im.stopping = true;
  }
  im.not_empty.notify_all();
  im.not_full.notify_all();
  for (std::thread& worker : im.workers) {
    if (worker.joinable()) worker.join();
  }
  im.workers.clear();
}

EngineStats FrameEngine::stats() const {
  const Impl& im = *impl_;
  EngineStats s;
  {
    std::lock_guard<std::mutex> lock(im.stats_mu);
    s.frames_submitted = im.counts.frames_submitted;
    s.frames_completed = im.counts.frames_completed;
    s.frames_cancelled = im.counts.frames_cancelled;
    s.frames_failed = im.counts.frames_failed;
    s.tiles_executed = im.counts.tiles_executed;
    s.tiles_skipped = im.counts.tiles_skipped;
    s.tiles_stolen = im.counts.tiles_stolen;
  }
  s.nodes = im.topo.node_count();
  {
    std::lock_guard<std::mutex> lock(im.qmu);
    s.max_queue_depth = im.max_queue_depth;
  }
  s.cache = im.cache.stats();
  return s;
}

}  // namespace nup::runtime
