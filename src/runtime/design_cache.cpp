#include "runtime/design_cache.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace nup::runtime {

namespace {

void append_constraint(std::ostringstream& out, const poly::Constraint& c) {
  for (std::size_t d = 0; d < c.expr.coeffs.size(); ++d) {
    out << (d > 0 ? "," : "") << c.expr.coeffs[d];
  }
  out << ':' << c.expr.constant;
}

/// Order-insensitive serialization of one polyhedron: constraint strings
/// sorted, so the same set written in a different order keys identically.
std::string piece_key(const poly::Polyhedron& piece) {
  std::vector<std::string> parts;
  parts.reserve(piece.constraints().size());
  for (const poly::Constraint& c : piece.constraints()) {
    std::ostringstream one;
    append_constraint(one, c);
    parts.push_back(one.str());
  }
  std::sort(parts.begin(), parts.end());
  std::ostringstream out;
  out << '{';
  for (const std::string& p : parts) out << p << ';';
  out << '}';
  return out.str();
}

}  // namespace

std::string DesignCache::canonical_key(const stencil::StencilProgram& program,
                                       const arch::BuildOptions& build) {
  std::ostringstream out;
  out << "v1|d=" << program.dim() << "|b=" << build.exact_sizing << ','
      << build.exact_streaming << ',' << build.register_max_depth << ','
      << build.shift_register_max_depth << "|D=";
  // Pieces sorted by serialized form: a union written in a different piece
  // order is the same domain for every downstream consumer.
  std::vector<std::string> pieces;
  pieces.reserve(program.iteration().pieces().size());
  for (const poly::Polyhedron& piece : program.iteration().pieces()) {
    pieces.push_back(piece_key(piece));
  }
  std::sort(pieces.begin(), pieces.end());
  for (const std::string& p : pieces) out << p;
  // Inputs and references stay in source order: the flattened reference
  // order is the kernel's argument order, which ref_order maps onto.
  out << "|A=";
  for (const stencil::InputArray& input : program.inputs()) {
    out << '[';
    for (const stencil::ArrayReference& ref : input.refs) {
      out << '(';
      for (std::size_t d = 0; d < ref.offset.size(); ++d) {
        out << (d > 0 ? "," : "") << ref.offset[d];
      }
      out << ')';
    }
    out << ']';
  }
  return out.str();
}

std::uint64_t DesignCache::fingerprint(const stencil::StencilProgram& program,
                                       const arch::BuildOptions& build) {
  const std::string key = canonical_key(program, build);
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

DesignCache::DesignCache(std::size_t capacity, obs::Registry* registry)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  obs::Registry& reg = registry ? *registry : obs::Registry::global();
  m_hits_ = &reg.counter("cache.hits");
  m_misses_ = &reg.counter("cache.misses");
  m_inserts_ = &reg.counter("cache.inserts");
  m_evictions_ = &reg.counter("cache.evictions");
  m_compile_us_ = &reg.histogram("cache.compile_us");
}

std::shared_ptr<const CachedDesign> DesignCache::get_or_compile(
    const stencil::StencilProgram& program,
    const arch::BuildOptions& build) {
  std::string key = canonical_key(program, build);
  std::lock_guard<std::mutex> lock(mu_);
  const auto found = index_.find(key);
  if (found != index_.end()) {
    ++stats_.hits;
    m_hits_->inc();
    lru_.splice(lru_.begin(), lru_, found->second);  // mark most recent
    return found->second->value;
  }

  ++stats_.misses;
  m_misses_->inc();
  auto entry = std::make_shared<CachedDesign>();
  entry->fingerprint = fingerprint(program, build);

  // Miss path: microarchitecture generation + row-program compilation,
  // recorded as one "design-compile" span and a latency observation.
  obs::Tracer& tracer = obs::Tracer::global();
  std::string span_args;
  if (tracer.enabled()) {
    span_args = "{\"fingerprint\":" + std::to_string(entry->fingerprint) +
                ",\"program\":\"" + program.name() + "\"}";
  }
  obs::Span span(tracer, "design-compile", "cache", std::move(span_args));
  const auto t0 = std::chrono::steady_clock::now();
  entry->design = arch::build_design(program, build);
  entry->plan = sim::compile_fast_plan(program, entry->design);
  const auto t1 = std::chrono::steady_clock::now();
  span.end();
  m_compile_us_->observe(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
          .count());

  ++stats_.inserts;
  m_inserts_->inc();
  lru_.push_front(Entry{key, entry});
  index_.emplace(std::move(key), lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
    m_evictions_->inc();
  }
  stats_.entries = lru_.size();
  return entry;
}

DesignCacheStats DesignCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DesignCacheStats s = stats_;
  s.entries = lru_.size();
  return s;
}

void DesignCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_.entries = 0;
}

}  // namespace nup::runtime
