#include "runtime/design_cache.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace nup::runtime {

namespace {

void append_constraint(std::ostringstream& out, const poly::Constraint& c) {
  for (std::size_t d = 0; d < c.expr.coeffs.size(); ++d) {
    out << (d > 0 ? "," : "") << c.expr.coeffs[d];
  }
  out << ':' << c.expr.constant;
}

/// Order-insensitive serialization of one polyhedron: constraint strings
/// sorted, so the same set written in a different order keys identically.
std::string piece_key(const poly::Polyhedron& piece) {
  std::vector<std::string> parts;
  parts.reserve(piece.constraints().size());
  for (const poly::Constraint& c : piece.constraints()) {
    std::ostringstream one;
    append_constraint(one, c);
    parts.push_back(one.str());
  }
  std::sort(parts.begin(), parts.end());
  std::ostringstream out;
  out << '{';
  for (const std::string& p : parts) out << p << ';';
  out << '}';
  return out.str();
}

}  // namespace

std::string DesignCache::canonical_key(const stencil::StencilProgram& program,
                                       const arch::BuildOptions& build) {
  std::ostringstream out;
  // v2: datapath_width joined the build section -- a W=8 plan must never
  // alias a W=1 plan of the same program (the designs differ in padding,
  // physical mapping and the simulator's batch width).
  out << "v2|d=" << program.dim() << "|b=" << build.exact_sizing << ','
      << build.exact_streaming << ',' << build.register_max_depth << ','
      << build.shift_register_max_depth << ','
      << build.datapath_width << "|D=";
  // Pieces sorted by serialized form: a union written in a different piece
  // order is the same domain for every downstream consumer.
  std::vector<std::string> pieces;
  pieces.reserve(program.iteration().pieces().size());
  for (const poly::Polyhedron& piece : program.iteration().pieces()) {
    pieces.push_back(piece_key(piece));
  }
  std::sort(pieces.begin(), pieces.end());
  for (const std::string& p : pieces) out << p;
  // Inputs and references stay in source order: the flattened reference
  // order is the kernel's argument order, which ref_order maps onto.
  out << "|A=";
  for (const stencil::InputArray& input : program.inputs()) {
    out << '[';
    for (const stencil::ArrayReference& ref : input.refs) {
      out << '(';
      for (std::size_t d = 0; d < ref.offset.size(); ++d) {
        out << (d > 0 ? "," : "") << ref.offset[d];
      }
      out << ')';
    }
    out << ']';
  }
  return out.str();
}

std::uint64_t DesignCache::fingerprint(const stencil::StencilProgram& program,
                                       const arch::BuildOptions& build) {
  const std::string key = canonical_key(program, build);
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

DesignCache::DesignCache(std::size_t capacity, obs::Registry* registry,
                         const std::string& label)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  obs::Registry& reg = registry ? *registry : obs::Registry::global();
  const std::string prefix =
      label.empty() ? std::string("cache.") : "cache." + label + ".";
  m_hits_ = &reg.counter(prefix + "hits");
  m_misses_ = &reg.counter(prefix + "misses");
  m_inserts_ = &reg.counter(prefix + "inserts");
  m_evictions_ = &reg.counter(prefix + "evictions");
  m_eviction_skips_ = &reg.counter(prefix + "eviction_skips");
  m_pins_ = &reg.counter(prefix + "pins");
  m_unpins_ = &reg.counter(prefix + "unpins");
  m_pinned_ = &reg.gauge(prefix + "pinned");
  m_entries_ = &reg.gauge(prefix + "entries");
  m_compile_us_ = &reg.histogram(prefix + "compile_us");
}

std::list<DesignCache::Entry>::iterator
DesignCache::lookup_or_compile_locked(const stencil::StencilProgram& program,
                                      const arch::BuildOptions& build) {
  std::string key = canonical_key(program, build);
  const auto found = index_.find(key);
  if (found != index_.end()) {
    ++stats_.hits;
    m_hits_->inc();
    lru_.splice(lru_.begin(), lru_, found->second);  // mark most recent
    return found->second;
  }

  ++stats_.misses;
  m_misses_->inc();
  auto entry = std::make_shared<CachedDesign>();
  entry->fingerprint = fingerprint(program, build);

  // Miss path: microarchitecture generation + row-program compilation,
  // recorded as one "design-compile" span and a latency observation.
  obs::Tracer& tracer = obs::Tracer::global();
  std::string span_args;
  if (tracer.enabled()) {
    span_args = "{\"fingerprint\":" + std::to_string(entry->fingerprint) +
                ",\"program\":\"" + program.name() + "\"}";
  }
  obs::Span span(tracer, "design-compile", "cache", std::move(span_args));
  const auto t0 = std::chrono::steady_clock::now();
  entry->design = arch::build_design(program, build);
  entry->plan = sim::compile_fast_plan(program, entry->design);
  const auto t1 = std::chrono::steady_clock::now();
  span.end();
  m_compile_us_->observe(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
          .count());

  ++stats_.inserts;
  m_inserts_->inc();
  lru_.push_front(Entry{key, std::move(entry), 0});
  index_.emplace(std::move(key), lru_.begin());
  evict_locked();
  stats_.entries = lru_.size();
  m_entries_->set(static_cast<std::int64_t>(lru_.size()));
  return lru_.begin();
}

void DesignCache::evict_locked() {
  while (lru_.size() > capacity_) {
    // LRU sweep from the tail; pinned entries are stepped over (and the
    // skip counted) rather than dropped. All-pinned means the cache is
    // allowed to exceed capacity -- that is the pin contract.
    auto victim = lru_.end();
    for (auto it = std::prev(lru_.end()); it != lru_.begin(); --it) {
      if (it->pins == 0) {
        victim = it;
        break;
      }
      ++stats_.eviction_skips;
      m_eviction_skips_->inc();
    }
    if (victim == lru_.end()) break;  // every entry pinned
    index_.erase(victim->key);
    lru_.erase(victim);
    ++stats_.evictions;
    m_evictions_->inc();
  }
}

std::shared_ptr<const CachedDesign> DesignCache::get_or_compile(
    const stencil::StencilProgram& program,
    const arch::BuildOptions& build) {
  std::lock_guard<std::mutex> lock(mu_);
  return lookup_or_compile_locked(program, build)->value;
}

std::shared_ptr<const CachedDesign> DesignCache::pin(
    const stencil::StencilProgram& program,
    const arch::BuildOptions& build) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = lookup_or_compile_locked(program, build);
  ++stats_.pins;
  m_pins_->inc();
  if (it->pins++ == 0) {
    ++stats_.pinned;
    m_pinned_->set(static_cast<std::int64_t>(stats_.pinned));
  }
  return it->value;
}

void DesignCache::unpin(const stencil::StencilProgram& program,
                        const arch::BuildOptions& build) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto found = index_.find(canonical_key(program, build));
  if (found == index_.end() || found->second->pins == 0) return;
  ++stats_.unpins;
  m_unpins_->inc();
  if (--found->second->pins == 0) {
    --stats_.pinned;
    m_pinned_->set(static_cast<std::int64_t>(stats_.pinned));
    evict_locked();  // pressure deferred by the pin applies now
    stats_.entries = lru_.size();
    m_entries_->set(static_cast<std::int64_t>(lru_.size()));
  }
}

DesignCacheStats DesignCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DesignCacheStats s = stats_;
  s.entries = lru_.size();
  return s;
}

void DesignCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_.entries = 0;
  stats_.pinned = 0;
  m_pinned_->set(0);
  m_entries_->set(0);
}

}  // namespace nup::runtime
