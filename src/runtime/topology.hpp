#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nup::runtime {

/// Locality policy for the frame engine / pipeline executor (the
/// `stencilcc --numa` flag). kOff is the default and reduces the engine to
/// one node and one run queue -- bit-identical to the pre-locality
/// scheduler.
enum class NumaMode {
  kOff,         ///< single queue, no pinning, no placement
  kAuto,        ///< streamed-bytes-balanced contiguous placement
  kInterleave,  ///< round-robin tile->node (bandwidth over locality)
};

const char* to_string(NumaMode mode);

/// Parses "off" / "auto" / "interleave" (the --numa flag values).
std::optional<NumaMode> numa_mode_from_string(std::string_view text);

/// One memory node (NUMA node or faked cache domain) and the CPUs local
/// to it.
struct TopologyNode {
  int id = 0;              ///< kernel node id (or fake index)
  std::vector<int> cpus;   ///< cpu ids local to this node
};

/// Host memory topology: which CPUs sit next to which memory node.
///
/// Discovery order:
///   1. `NUP_FAKE_TOPOLOGY=<n>` partitions the host's CPUs into n fake
///      nodes, so tests / CI / benchmarks exercise multi-node scheduling
///      on any machine (n may exceed the CPU count; CPUs are then shared
///      round-robin).
///   2. `/sys/devices/system/node/node<k>/cpulist` on Linux.
///   3. Single-node fallback (every CPU on node 0).
class Topology {
 public:
  /// Every CPU on one node; what `--numa off` always uses.
  static Topology single_node();

  /// Discovers the host topology (see class comment). Reads the
  /// NUP_FAKE_TOPOLOGY environment variable at call time, so a test can
  /// setenv() before constructing an engine.
  static Topology discover();

  std::size_t node_count() const { return nodes_.size(); }
  const std::vector<TopologyNode>& nodes() const { return nodes_; }
  const TopologyNode& node(std::size_t i) const { return nodes_[i]; }

  /// True when the layout came from NUP_FAKE_TOPOLOGY (affinity pinning
  /// still targets the real CPU ids of each fake partition).
  bool faked() const { return faked_; }

  /// Total CPUs across all nodes.
  std::size_t cpu_count() const;

  /// "2 nodes (node0: cpu 0-3, node1: cpu 4-7)" -- for logs / banners.
  std::string describe() const;

  /// Parses the kernel cpulist format ("0-3,8,10-11") into cpu ids.
  /// Malformed chunks are skipped; never throws.
  static std::vector<int> parse_cpulist(const std::string& text);

 private:
  std::vector<TopologyNode> nodes_;
  bool faked_ = false;
};

}  // namespace nup::runtime
