#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "poly/domain.hpp"
#include "poly/int_vec.hpp"
#include "stencil/program.hpp"

namespace nup::runtime {

struct TilerOptions {
  /// Requested tile extents per iteration dimension. Empty means one tile
  /// covering the whole domain; entries <= 0 mean "full extent" along that
  /// dimension. The innermost dimension is usually left whole: splitting it
  /// shrinks the reuse FIFOs but multiplies the halo refetch.
  poly::IntVec tile_shape;
};

/// One spatial tile of a frame: a rectangular window of the iteration
/// domain (clipped to it), the derived per-tile stencil program, and the
/// precomputed positions its outputs occupy in the full-frame result.
struct Tile {
  poly::IntVec lo, hi;  ///< clipped tile box corners (iteration coords)

  /// The tile as a stencil program: the original window and kernel over
  /// the intersected iteration domain. Compiling this program yields a
  /// memory system whose streamed input hull is exactly the tile box grown
  /// by the window's reuse offsets -- the halo region. Shared and immutable
  /// (its lazy polyhedral caches are forced at plan time), so concurrent
  /// frames can simulate the same tile object.
  std::shared_ptr<const stencil::StencilProgram> program;

  /// Streamed input hull per input array: the tile's bounding box grown by
  /// the array's minimum/maximum reference offsets per dimension. Equals
  /// what build_design streams for `program`.
  std::vector<poly::Domain> input_hulls;

  /// Full-frame output position of the tile's k-th kernel output. Tile
  /// outputs arrive in lexicographic order of the tile domain, which is the
  /// order of this table; writing output k to output_ranks[k] stitches the
  /// frame bit-identically to an untiled run.
  std::vector<std::int64_t> output_ranks;

  /// End-to-end maximum reuse distance summed over arrays (Definition 9 on
  /// the tile's streamed hull): the on-chip buffering the tile's chain
  /// needs. Shrinks with the tile's row width -- the lever the tile-shape
  /// sweep in bench_runtime measures.
  std::int64_t reuse_footprint = 0;

  /// Total streamed elements across arrays (hull sizes, halo included).
  std::int64_t streamed_elements = 0;

  std::int64_t outputs() const {
    return static_cast<std::int64_t>(output_ranks.size());
  }
};

/// A frame decomposed into halo tiles. Valid for every frame of the same
/// program (frames differ only in their data seed).
struct TilePlan {
  poly::IntVec tile_shape;  ///< effective shape after clamping
  std::vector<Tile> tiles;  ///< non-empty tiles, in tile-grid lex order
  std::int64_t total_outputs = 0;  ///< == iteration domain size

  /// Per-array window growth: input hull = tile box + [lo, hi] per dim.
  std::vector<poly::IntVec> window_lo, window_hi;

  /// Σ streamed elements over tiles, and the untiled baseline; the
  /// difference is the halo refetch overhead of this tile shape.
  std::int64_t streamed_elements = 0;
  std::int64_t untiled_streamed_elements = 0;
};

/// Bounding box of a domain: per-axis hull over the pieces' (conservative)
/// axis ranges. Used by the tiler's grid and the engine's automatic
/// tile-shape heuristic.
void domain_bounding_box(const poly::Domain& domain, poly::IntVec* lo,
                         poly::IntVec* hi);

/// Partitions the program's iteration domain into rectangular tiles of the
/// requested shape (clipped to the domain; empty intersections are
/// dropped, so sheared and triangular domains tile correctly) and
/// precomputes everything a worker needs to execute and stitch a tile.
/// Per-tile outputs are bit-identical to the corresponding slice of
/// stencil::run_golden because every tile streams the same synthetic
/// values at the same absolute grid coordinates.
TilePlan plan_tiles(const stencil::StencilProgram& program,
                    const TilerOptions& options = {});

}  // namespace nup::runtime
