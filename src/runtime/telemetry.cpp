#include "runtime/telemetry.hpp"

#include <string>

namespace nup::runtime {

int publish_sim_telemetry(obs::Registry& registry,
                          const arch::AcceleratorDesign& design,
                          const sim::SimResult& result,
                          obs::FifoDetail* first_violation) {
  int violations = 0;
  const auto note_violation = [&](const std::string& array, std::size_t k,
                                  std::int64_t depth, std::int64_t high,
                                  bool word_level) {
    ++violations;
    if (first_violation != nullptr && violations == 1) {
      first_violation->array = array;
      first_violation->fifo = k;
      first_violation->depth = depth;
      first_violation->high_water = high;
      first_violation->word_level = word_level;
    }
  };
  for (std::size_t s = 0; s < design.systems.size(); ++s) {
    const arch::MemorySystem& ms = design.systems[s];
    const std::string array = ms.array;
    for (std::size_t k = 0; k < ms.fifos.size(); ++k) {
      if (ms.fifos[k].cut) continue;  // no on-chip storage to watch
      if (s >= result.fifo_max_fill.size() ||
          k >= result.fifo_max_fill[s].size()) {
        continue;
      }
      const std::int64_t high_water = result.fifo_max_fill[s][k];
      const std::int64_t depth = ms.fifos[k].depth;
      const std::string suffix = array + "." + std::to_string(k);
      registry.gauge("fifo.high_water." + suffix).update_max(high_water);
      registry.gauge("fifo.depth." + suffix).update_max(depth);
      if (high_water > depth) {
        note_violation(array, k, depth, high_water, /*word_level=*/false);
      }
      if (design.datapath_width > 1) {
        // Word-level view of the wide datapath: occupancy in W-element
        // words must stay within the Eq. 2 / W rescaled bound.
        const std::int64_t w = design.datapath_width;
        const std::int64_t word_depth = ms.fifos[k].word_depth(w);
        const std::int64_t high_water_words = (high_water + w - 1) / w;
        registry.gauge("fifo.word_depth." + suffix).update_max(word_depth);
        registry.gauge("fifo.high_water_words." + suffix)
            .update_max(high_water_words);
        if (high_water_words > word_depth) {
          note_violation(array, k, word_depth, high_water_words,
                         /*word_level=*/true);
        }
      }
    }
    if (s < result.filter_stall_cycles.size()) {
      for (std::size_t k = 0; k < result.filter_stall_cycles[s].size();
           ++k) {
        const std::int64_t stalls = result.filter_stall_cycles[s][k];
        if (stalls > 0) {
          registry
              .counter("filter.stall_cycles." + array + "." +
                       std::to_string(k))
              .add(stalls);
        }
      }
    }
  }
  if (violations > 0) {
    registry.counter("fifo.depth_violations").add(violations);
  }
  registry.counter("sim.runs").inc();
  registry.counter("sim.cycles").add(result.cycles);
  if (result.datapath_cycles > 0) {
    registry.counter("sim.datapath_cycles").add(result.datapath_cycles);
  }
  if (result.kernel_fires > 0) {
    registry.histogram("sim.fill_latency_cycles")
        .observe(result.fill_latency);
  }
  if (result.kernel_fires >= 2) {
    registry.histogram("sim.steady_ii_milli")
        .observe(static_cast<std::int64_t>(result.steady_ii * 1000.0));
  }
  if (result.drain_start > 0) {
    // Cycles past the last off-chip consumption: 0 on completed runs
    // (every fire streams), and the width of the post-wedge spin on
    // deadlocked ones.
    registry.histogram("sim.drain_cycles")
        .observe(result.cycles - result.drain_start);
  }
  return violations;
}

}  // namespace nup::runtime
