#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "arch/builder.hpp"
#include "arch/design.hpp"
#include "obs/metrics.hpp"
#include "sim/fast.hpp"
#include "stencil/program.hpp"

namespace nup::runtime {

/// One memoized compilation: the non-uniform microarchitecture plus the
/// fast-backend row programs. Immutable after insertion; entries are handed
/// out as shared_ptr so an evicted design stays alive for as long as any
/// in-flight simulation still uses it.
struct CachedDesign {
  std::uint64_t fingerprint = 0;
  arch::AcceleratorDesign design;
  std::shared_ptr<const sim::FastPlan> plan;
};

/// Mutex-consistent view of one cache's activity: read in one critical
/// section, so hits + misses always equals the lookups issued so far and
/// inserts - evictions always equals entries.
struct DesignCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t inserts = 0;    ///< compiled entries added (== misses)
  std::int64_t evictions = 0;  ///< LRU entries dropped at capacity
  /// Pinned entries the LRU sweep stepped over while looking for a
  /// victim. A busy pipeline run under cache pressure grows this instead
  /// of evicting a stage's hot design.
  std::int64_t eviction_skips = 0;
  std::int64_t pins = 0;    ///< pin() calls (nested pins each count)
  std::int64_t unpins = 0;  ///< unpin() calls that actually dropped a pin
  std::size_t entries = 0;
  std::size_t pinned = 0;  ///< entries currently pin()ned (pin count > 0)
};

/// Memoizes `arch::build_design` + `sim::compile_fast_plan` keyed by a
/// canonicalized stencil program, with LRU eviction.
///
/// Canonicalization (see canonical_key): the program and array names, the
/// output name and the kernel function are *excluded* -- two programs that
/// differ only in naming share one microarchitecture. The kernel is always
/// applied fresh from the request's program (the design and the row
/// programs are kernel-independent), so memoization never changes computed
/// values. Reference order is part of the key: it fixes the kernel
/// argument order the design's ref_order maps onto.
///
/// Thread safety: every method is safe to call concurrently. Misses are
/// compiled while holding the cache lock, which both serializes duplicate
/// compilations of the same key and protects the lazily-cached polyhedral
/// state inside the program object being compiled.
class DesignCache {
 public:
  /// `registry` receives the cache.* metrics (hits/misses/inserts/
  /// evictions/eviction_skips/pins/unpins counters, pinned/entries
  /// gauges, compile-latency histogram);
  /// nullptr selects the process-wide obs::Registry::global(). A non-empty
  /// `label` namespaces the metrics as cache.<label>.* so several caches
  /// (one per pipeline stage engine) publish distinct series.
  explicit DesignCache(std::size_t capacity = 64,
                       obs::Registry* registry = nullptr,
                       const std::string& label = {});

  /// Returns the memoized design for the canonicalized program, compiling
  /// (and inserting) it on first use. Never returns nullptr.
  std::shared_ptr<const CachedDesign> get_or_compile(
      const stencil::StencilProgram& program,
      const arch::BuildOptions& build = {});

  /// get_or_compile + marks the entry pinned: a pinned entry is never the
  /// LRU victim, so a pipeline stage's designs stay hot for the whole run
  /// regardless of what else churns through the cache. Pins nest (each
  /// pin() needs one unpin()). Pinned entries still count against
  /// capacity; when every entry is pinned the cache grows past capacity
  /// rather than evict (counted in eviction_skips).
  std::shared_ptr<const CachedDesign> pin(
      const stencil::StencilProgram& program,
      const arch::BuildOptions& build = {});

  /// Drops one pin; at zero the entry rejoins normal LRU eviction. No-op
  /// when the entry is absent or not pinned.
  void unpin(const stencil::StencilProgram& program,
             const arch::BuildOptions& build = {});

  DesignCacheStats stats() const;
  void clear();

  /// Canonical serialization of (program, build options); equal strings ==
  /// one cache entry. Stable across runs.
  static std::string canonical_key(const stencil::StencilProgram& program,
                                   const arch::BuildOptions& build = {});

  /// FNV-1a 64-bit hash of canonical_key (compact identity for logs and
  /// cross-map keying; the cache itself keys on the full string).
  static std::uint64_t fingerprint(const stencil::StencilProgram& program,
                                   const arch::BuildOptions& build = {});

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CachedDesign> value;
    int pins = 0;  ///< > 0 excludes the entry from LRU eviction
  };

  /// Looks up / compiles under mu_ (callers hold the lock).
  std::list<Entry>::iterator lookup_or_compile_locked(
      const stencil::StencilProgram& program,
      const arch::BuildOptions& build);
  void evict_locked();

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  DesignCacheStats stats_;

  // Registry metrics (resolved once; updates are lock-free).
  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_inserts_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Counter* m_eviction_skips_ = nullptr;
  obs::Counter* m_pins_ = nullptr;
  obs::Counter* m_unpins_ = nullptr;
  obs::Gauge* m_pinned_ = nullptr;
  obs::Gauge* m_entries_ = nullptr;
  obs::Histogram* m_compile_us_ = nullptr;
};

}  // namespace nup::runtime
