#include "runtime/topology.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

namespace nup::runtime {

const char* to_string(NumaMode mode) {
  switch (mode) {
    case NumaMode::kOff:
      return "off";
    case NumaMode::kAuto:
      return "auto";
    case NumaMode::kInterleave:
      return "interleave";
  }
  return "off";
}

std::optional<NumaMode> numa_mode_from_string(std::string_view text) {
  if (text == "off") return NumaMode::kOff;
  if (text == "auto") return NumaMode::kAuto;
  if (text == "interleave") return NumaMode::kInterleave;
  return std::nullopt;
}

namespace {

std::size_t host_cpu_count() {
  return std::max(1u, std::thread::hardware_concurrency());
}

/// NUP_FAKE_TOPOLOGY parsed and clamped to a sane node count, or 0 when
/// unset / not a positive integer.
std::size_t fake_node_count() {
  const char* env = std::getenv("NUP_FAKE_TOPOLOGY");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long n = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || n <= 0) return 0;
  return static_cast<std::size_t>(std::min<long>(n, 64));
}

}  // namespace

Topology Topology::single_node() {
  Topology t;
  TopologyNode n;
  n.id = 0;
  const std::size_t cpus = host_cpu_count();
  n.cpus.reserve(cpus);
  for (std::size_t c = 0; c < cpus; ++c) n.cpus.push_back(static_cast<int>(c));
  t.nodes_.push_back(std::move(n));
  return t;
}

std::vector<int> Topology::parse_cpulist(const std::string& text) {
  std::vector<int> cpus;
  std::stringstream ss(text);
  std::string chunk;
  while (std::getline(ss, chunk, ',')) {
    // Trim whitespace (the sysfs file ends with a newline).
    while (!chunk.empty() && std::isspace(static_cast<unsigned char>(
                                 chunk.back()))) {
      chunk.pop_back();
    }
    std::size_t start = 0;
    while (start < chunk.size() &&
           std::isspace(static_cast<unsigned char>(chunk[start]))) {
      ++start;
    }
    if (start > 0) chunk.erase(0, start);
    if (chunk.empty()) continue;
    const std::size_t dash = chunk.find('-');
    char* end = nullptr;
    if (dash == std::string::npos) {
      const long v = std::strtol(chunk.c_str(), &end, 10);
      if (end != chunk.c_str() && *end == '\0' && v >= 0) {
        cpus.push_back(static_cast<int>(v));
      }
      continue;
    }
    const std::string lo_s = chunk.substr(0, dash);
    const std::string hi_s = chunk.substr(dash + 1);
    const long lo = std::strtol(lo_s.c_str(), &end, 10);
    if (end == lo_s.c_str() || *end != '\0' || lo < 0) continue;
    const long hi = std::strtol(hi_s.c_str(), &end, 10);
    if (end == hi_s.c_str() || *end != '\0' || hi < lo) continue;
    for (long v = lo; v <= hi && v - lo < 4096; ++v) {
      cpus.push_back(static_cast<int>(v));
    }
  }
  return cpus;
}

Topology Topology::discover() {
  // 1. Simulated layout: partition the host CPUs into n contiguous fake
  //    nodes. With fewer CPUs than nodes the CPUs are shared round-robin,
  //    so a 1-CPU CI runner still gets n schedulable nodes.
  if (const std::size_t fake = fake_node_count(); fake > 1) {
    Topology t;
    t.faked_ = true;
    const std::size_t cpus = host_cpu_count();
    t.nodes_.resize(fake);
    for (std::size_t n = 0; n < fake; ++n) {
      t.nodes_[n].id = static_cast<int>(n);
    }
    if (cpus >= fake) {
      // Contiguous partition: node k owns cpus [k*C/N, (k+1)*C/N).
      for (std::size_t n = 0; n < fake; ++n) {
        const std::size_t lo = n * cpus / fake;
        const std::size_t hi = (n + 1) * cpus / fake;
        for (std::size_t c = lo; c < hi; ++c) {
          t.nodes_[n].cpus.push_back(static_cast<int>(c));
        }
      }
    } else {
      for (std::size_t n = 0; n < fake; ++n) {
        t.nodes_[n].cpus.push_back(static_cast<int>(n % cpus));
      }
    }
    return t;
  }

  // 2. Real sysfs topology. Node ids may be sparse (node0, node8) so scan
  //    a fixed id range instead of stopping at the first gap.
  Topology t;
#if defined(__linux__)
  for (int id = 0; id < 256; ++id) {
    const std::string path = "/sys/devices/system/node/node" +
                             std::to_string(id) + "/cpulist";
    std::ifstream in(path);
    if (!in) continue;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::vector<int> cpus = parse_cpulist(text);
    if (cpus.empty()) continue;  // memory-only node: nothing to schedule on
    TopologyNode node;
    node.id = id;
    node.cpus = std::move(cpus);
    t.nodes_.push_back(std::move(node));
  }
#endif

  // 3. Fallback (non-Linux, unreadable sysfs, or a true single-node box).
  if (t.nodes_.empty()) return single_node();
  return t;
}

std::size_t Topology::cpu_count() const {
  std::size_t n = 0;
  for (const TopologyNode& node : nodes_) n += node.cpus.size();
  return n;
}

std::string Topology::describe() const {
  std::string out = std::to_string(nodes_.size()) +
                    (nodes_.size() == 1 ? " node (" : " nodes (");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i != 0) out += ", ";
    const TopologyNode& n = nodes_[i];
    out += "node" + std::to_string(n.id) + ": ";
    if (n.cpus.empty()) {
      out += "no cpus";
      continue;
    }
    // Compress runs: "cpu 0-3,8".
    out += "cpu ";
    std::size_t i0 = 0;
    for (std::size_t j = 1; j <= n.cpus.size(); ++j) {
      if (j < n.cpus.size() && n.cpus[j] == n.cpus[j - 1] + 1) continue;
      if (i0 != 0) out += ",";
      out += std::to_string(n.cpus[i0]);
      if (j - 1 > i0) out += "-" + std::to_string(n.cpus[j - 1]);
      i0 = j;
    }
  }
  out += faked_ ? "; faked)" : ")";
  return out;
}

}  // namespace nup::runtime
