#include "runtime/tiler.hpp"

#include <algorithm>
#include <string>

#include "poly/polyhedron.hpp"
#include "poly/reuse.hpp"
#include "util/error.hpp"

namespace nup::runtime {

void domain_bounding_box(const poly::Domain& domain, poly::IntVec* lo,
                         poly::IntVec* hi) {
  const std::size_t dim = domain.dim();
  lo->assign(dim, 0);
  hi->assign(dim, -1);
  bool first = true;
  for (const poly::Polyhedron& piece : domain.pieces()) {
    for (std::size_t d = 0; d < dim; ++d) {
      const poly::Interval range = piece.axis_range(d);
      if (range.empty()) continue;
      if (first || range.lo < (*lo)[d]) (*lo)[d] = range.lo;
      if (first || range.hi > (*hi)[d]) (*hi)[d] = range.hi;
    }
    first = false;
  }
  if (first) {
    throw Error("domain_bounding_box: domain has no pieces");
  }
}

TilePlan plan_tiles(const stencil::StencilProgram& program,
                    const TilerOptions& options) {
  const poly::Domain& domain = program.iteration();
  const std::size_t dim = program.dim();
  if (!options.tile_shape.empty() && options.tile_shape.size() != dim) {
    throw Error("plan_tiles: tile shape has " +
                std::to_string(options.tile_shape.size()) +
                " dimensions for a " + std::to_string(dim) +
                "-dimensional program");
  }

  poly::IntVec bb_lo, bb_hi;
  domain_bounding_box(domain, &bb_lo, &bb_hi);

  TilePlan plan;
  plan.tile_shape.resize(dim);
  poly::IntVec cells(dim);  // tile-grid extent per dimension
  for (std::size_t d = 0; d < dim; ++d) {
    const std::int64_t extent = bb_hi[d] - bb_lo[d] + 1;
    std::int64_t shape =
        options.tile_shape.empty() ? 0 : options.tile_shape[d];
    if (shape <= 0 || shape > extent) shape = extent;
    plan.tile_shape[d] = shape;
    cells[d] = (extent + shape - 1) / shape;
  }

  // Per-array window growth: the halo the input hull grows by.
  for (const stencil::InputArray& input : program.inputs()) {
    poly::IntVec wlo(dim, 0), whi(dim, 0);
    for (const stencil::ArrayReference& ref : input.refs) {
      for (std::size_t d = 0; d < dim; ++d) {
        wlo[d] = std::min(wlo[d], ref.offset[d]);
        whi[d] = std::max(whi[d], ref.offset[d]);
      }
    }
    plan.window_lo.push_back(std::move(wlo));
    plan.window_hi.push_back(std::move(whi));
  }

  // Enumerate tile-grid cells in lex order; keep the non-empty ones.
  std::int64_t cell_count = 1;
  for (std::size_t d = 0; d < dim; ++d) cell_count *= cells[d];
  std::vector<std::int64_t> tile_of_cell(
      static_cast<std::size_t>(cell_count), -1);

  for (std::int64_t cell = 0; cell < cell_count; ++cell) {
    poly::IntVec tlo(dim), thi(dim);
    std::int64_t rest = cell;
    for (std::size_t d = dim; d-- > 0;) {
      const std::int64_t c = rest % cells[d];
      rest /= cells[d];
      tlo[d] = bb_lo[d] + c * plan.tile_shape[d];
      thi[d] = std::min(tlo[d] + plan.tile_shape[d] - 1, bb_hi[d]);
    }
    const poly::Polyhedron box = poly::Polyhedron::box(tlo, thi);
    poly::Domain tile_domain;
    for (const poly::Polyhedron& piece : domain.pieces()) {
      tile_domain.add_piece(piece.intersected(box));
    }
    if (tile_domain.empty()) continue;

    auto tile_program = std::make_shared<stencil::StencilProgram>(
        program.name() + "_t" + std::to_string(plan.tiles.size()),
        std::move(tile_domain));
    for (const stencil::InputArray& input : program.inputs()) {
      std::vector<poly::IntVec> offsets;
      offsets.reserve(input.refs.size());
      for (const stencil::ArrayReference& ref : input.refs) {
        offsets.push_back(ref.offset);
      }
      tile_program->add_input(input.name, std::move(offsets));
    }
    tile_program->set_output(program.output_name());
    // Copying the kernel forces the parent's lazy default to materialize
    // here, while planning is single-threaded; the tile program is
    // immutable (and its kernel a pure read) from now on. Weighted-sum
    // structure is preserved so tiles stay eligible for the vector path.
    if (!program.weighted_sum_weights().empty()) {
      tile_program->set_weighted_sum(program.weighted_sum_weights());
    } else {
      tile_program->set_kernel(program.kernel());
    }

    Tile tile;
    tile.lo = std::move(tlo);
    tile.hi = std::move(thi);
    for (std::size_t a = 0; a < program.inputs().size(); ++a) {
      poly::Domain hull = tile_program->data_domain_hull(a);
      tile.streamed_elements += hull.count();
      // End-to-end maximum reuse distance over the tile's streamed hull:
      // from the lexicographically greatest (earliest-streamed) reference
      // to the least (Definition 9) -- the chain's total on-chip buffering.
      const stencil::InputArray& input = program.inputs()[a];
      poly::IntVec f_from = input.refs.front().offset;
      poly::IntVec f_to = f_from;
      for (const stencil::ArrayReference& ref : input.refs) {
        if (poly::lex_less(f_from, ref.offset)) f_from = ref.offset;
        if (poly::lex_less(ref.offset, f_to)) f_to = ref.offset;
      }
      tile.reuse_footprint +=
          poly::max_reuse_distance(tile_program->iteration(), hull, f_from,
                                   f_to)
              .max_distance;
      tile.input_hulls.push_back(std::move(hull));
    }
    tile.output_ranks.reserve(
        static_cast<std::size_t>(tile_program->iteration().count()));
    tile.program = std::move(tile_program);

    tile_of_cell[static_cast<std::size_t>(cell)] =
        static_cast<std::int64_t>(plan.tiles.size());
    plan.streamed_elements += tile.streamed_elements;
    plan.tiles.push_back(std::move(tile));
  }

  // One pass over the full domain assigns every output its frame rank. The
  // subsequence of frame points falling in one tile is lex-sorted, and the
  // tile's own lexicographic execution order sorts the same set the same
  // way, so appending here yields exactly the tile's emission order.
  std::int64_t rank = 0;
  domain.for_each([&](const poly::IntVec& p) {
    std::int64_t cell = 0;
    for (std::size_t d = 0; d < dim; ++d) {
      cell = cell * cells[d] + (p[d] - bb_lo[d]) / plan.tile_shape[d];
    }
    const std::int64_t t = tile_of_cell[static_cast<std::size_t>(cell)];
    if (t < 0) {
      throw Error("plan_tiles: domain point " + poly::to_string(p) +
                  " fell into a cell whose tile intersection was empty");
    }
    plan.tiles[static_cast<std::size_t>(t)].output_ranks.push_back(rank++);
  });
  plan.total_outputs = rank;

  for (std::size_t a = 0; a < program.inputs().size(); ++a) {
    plan.untiled_streamed_elements += program.data_domain_hull(a).count();
  }
  return plan;
}

}  // namespace nup::runtime
