#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/builder.hpp"
#include "obs/metrics.hpp"
#include "poly/int_vec.hpp"
#include "runtime/design_cache.hpp"
#include "runtime/tiler.hpp"
#include "sim/simulator.hpp"
#include "stencil/program.hpp"

namespace nup::runtime {

namespace detail {
struct FrameState;
}

struct EngineOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency (min 1).
  std::size_t threads = 0;

  /// Bound of the tile submission queue. submit() blocks (backpressure)
  /// while the queue is full; workers drain it one tile at a time.
  std::size_t queue_capacity = 64;

  /// Tile extents per dimension; empty selects an automatic shape that
  /// splits outer dimensions into about 4 tiles per worker thread.
  poly::IntVec tile_shape;

  /// Microarchitecture generation options (part of the design-cache key).
  arch::BuildOptions build;

  /// Capacity of the embedded design cache (distinct tile designs).
  std::size_t cache_capacity = 256;

  /// Metrics registry receiving the engine.*, cache.*, sim.* and fifo.*
  /// metrics (see docs/OBSERVABILITY.md); nullptr selects the process-wide
  /// obs::Registry::global().
  obs::Registry* metrics = nullptr;

  /// Base simulator options for tile execution. The engine always runs the
  /// compiled fast backend, overrides the seed per frame and disables
  /// per-tile output recording (outputs are stitched into the frame).
  sim::SimOptions sim;
};

/// The assembled result of one frame request.
struct FrameResult {
  std::uint64_t seed = 0;
  /// Kernel outputs in full-frame lexicographic iteration order;
  /// bit-identical to stencil::run_golden(program, seed). Partially filled
  /// when the frame was cancelled or failed.
  std::vector<double> outputs;
  bool cancelled = false;
  std::string error;  ///< non-empty when a tile simulation failed
  std::int64_t tiles_total = 0;
  std::int64_t tiles_executed = 0;
  std::int64_t tiles_skipped = 0;

  bool ok() const { return !cancelled && error.empty(); }
};

/// Future of a submitted frame. Handles are cheap shared references; the
/// result is resolved exactly once, even across cancellation and engine
/// shutdown, so wait() never blocks forever.
class FrameHandle {
 public:
  FrameHandle() = default;

  bool valid() const { return state_ != nullptr; }

  /// Blocks until the frame resolves; the reference stays valid for the
  /// lifetime of the handle.
  const FrameResult& wait();

  /// True when the frame resolved within the timeout.
  bool wait_for(std::chrono::milliseconds timeout);

  bool done() const;

  /// Requests cancellation: tiles not yet started are skipped (the tile
  /// currently executing, if any, completes). Idempotent; a frame that
  /// already finished is unaffected.
  void cancel();

 private:
  friend class FrameEngine;
  explicit FrameHandle(std::shared_ptr<detail::FrameState> state);
  std::shared_ptr<detail::FrameState> state_;
};

/// Mutex-consistent snapshot of the engine's activity: the frame counters
/// are read in one critical section (a resolving frame updates them
/// atomically as a group, so completed + cancelled + failed never
/// transiently exceeds submitted), and `cache` is one consistent
/// DesignCache snapshot.
struct EngineStats {
  std::int64_t frames_submitted = 0;
  std::int64_t frames_completed = 0;  ///< resolved ok
  std::int64_t frames_cancelled = 0;
  std::int64_t frames_failed = 0;
  std::int64_t tiles_executed = 0;
  std::int64_t tiles_skipped = 0;
  std::size_t max_queue_depth = 0;
  DesignCacheStats cache;
};

/// Multi-threaded tiled serving engine: turns the one-shot compiler into a
/// frame service. A submitted (program, seed) pair is tiled by the halo
/// tiler, each tile's microarchitecture is fetched from the design cache
/// (compiled once, then served from memory), and a fixed pool of workers
/// executes the tiles on the compiled fast simulator backend and stitches
/// the outputs into the frame.
class FrameEngine {
 public:
  enum class Drain {
    kDrainAll,        ///< finish every queued tile before stopping
    kCancelPending,   ///< finish in-flight tiles, cancel queued frames
  };

  explicit FrameEngine(EngineOptions options = {});
  ~FrameEngine();  // shutdown(kCancelPending) if still running

  FrameEngine(const FrameEngine&) = delete;
  FrameEngine& operator=(const FrameEngine&) = delete;

  /// Enqueues one frame. First use of a program tiles it and pre-compiles
  /// every tile design into the cache (in the calling thread); subsequent
  /// frames reuse both. Blocks while the tile queue is full; throws Error
  /// after shutdown.
  FrameHandle submit(const stencil::StencilProgram& program,
                     std::uint64_t seed);

  /// Tile plan the engine uses for this program (registering it if new).
  std::shared_ptr<const TilePlan> plan_for(
      const stencil::StencilProgram& program);

  /// Stops the workers. kDrainAll completes all queued work first;
  /// kCancelPending resolves queued frames as cancelled after the tiles
  /// already executing finish. Idempotent; submit() fails afterwards.
  void shutdown(Drain mode = Drain::kDrainAll);

  EngineStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nup::runtime
