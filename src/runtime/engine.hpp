#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <functional>

#include "arch/builder.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "poly/int_vec.hpp"
#include "runtime/design_cache.hpp"
#include "runtime/placement.hpp"
#include "runtime/tiler.hpp"
#include "runtime/topology.hpp"
#include "sim/feed.hpp"
#include "sim/simulator.hpp"
#include "stencil/program.hpp"

namespace nup::runtime {

namespace detail {
struct FrameState;
}

struct EngineOptions {
  /// Instance label. Empty keeps the historical flat metric names
  /// (engine.queue_depth, cache.hits, ...); non-empty namespaces them as
  /// engine.<name>.* / cache.<name>.* so several engines in one process
  /// (a pipeline of per-stage engines) publish distinct series instead of
  /// aggregating into one.
  std::string name;

  /// Worker threads; 0 means std::thread::hardware_concurrency (min 1).
  std::size_t threads = 0;

  /// Bound of the tile submission queue. submit() blocks (backpressure)
  /// while the queue is full; workers drain it one tile at a time.
  std::size_t queue_capacity = 64;

  /// Tile extents per dimension; empty selects an automatic shape that
  /// splits outer dimensions into about 4 tiles per worker thread.
  poly::IntVec tile_shape;

  /// Microarchitecture generation options (part of the design-cache key).
  arch::BuildOptions build;

  /// Capacity of the embedded design cache (distinct tile designs).
  std::size_t cache_capacity = 256;

  /// Metrics registry receiving the engine.*, cache.*, sim.* and fifo.*
  /// metrics (see docs/OBSERVABILITY.md); nullptr selects the process-wide
  /// obs::Registry::global().
  obs::Registry* metrics = nullptr;

  /// Flight recorder receiving frame/tile lifecycle events and post-mortem
  /// dumps (see docs/OBSERVABILITY.md); nullptr selects
  /// obs::Journal::global().
  obs::Journal* journal = nullptr;

  /// Base simulator options for tile execution. The engine always runs the
  /// compiled fast backend, overrides the seed per frame and disables
  /// per-tile output recording (outputs are stitched into the frame).
  sim::SimOptions sim;

  /// Locality policy. kOff (default) keeps one run queue and no affinity
  /// pinning -- bit-identical to the pre-locality scheduler. kAuto /
  /// kInterleave discover the host topology (honouring NUP_FAKE_TOPOLOGY),
  /// pin per-node worker pools, and dispatch each tile to its placed
  /// node's queue; idle workers steal cross-node (see docs/RUNTIME.md,
  /// "Locality").
  NumaMode numa = NumaMode::kOff;

  /// Test hook overriding the placement cost model: returns the node
  /// (clamped to [0, node_count)) for a tile. The steal-path regression
  /// uses it to pile every tile onto one node and assert the other nodes'
  /// workers steal. Null uses plan_placement.
  std::function<int(const Tile& tile, std::size_t tile_idx,
                    std::size_t node_count)>
      place_tile;
};

struct FrameResult;

/// Per-frame hooks used by the pipeline executor (src/pipeline); plain
/// submit(program, seed) is the empty default.
struct SubmitOptions {
  /// Replaces the off-chip feed of one chain segment: called once per
  /// (tile, input array, segment) before the tile simulates; a non-null
  /// return is installed via FastSim::set_feed, nullptr keeps the
  /// synthetic DRAM. Called in the executing worker thread.
  std::function<std::shared_ptr<sim::ExternalFeed>(
      const Tile& tile, std::size_t tile_idx, std::size_t array_idx,
      std::size_t segment)>
      feed;

  /// Tile-resolution hook, called in the executing worker thread after the
  /// tile's outputs are stitched into the frame (ok == true) or after the
  /// tile was skipped / failed (ok == false). `outputs` points at the
  /// frame's full output vector; only this tile's output_ranks entries are
  /// safe to read (other tiles may still be written concurrently). It is
  /// nullptr for skipped tiles. The hook may block (e.g. releasing a
  /// downstream tile against a full queue): it runs before the tile is
  /// counted done, so the frame resolves only after every hook returned.
  std::function<void(std::size_t tile_idx, const double* outputs, bool ok)>
      on_tile;

  /// Frame-resolution hook, called exactly once in the resolving worker
  /// thread after the result is assembled and waiters have been released.
  /// The reference stays valid as long as any FrameHandle to the frame is
  /// alive. The multi-tenant serving layer uses it as its submit-side
  /// completion signal (free an admission slot, update per-tenant SLOs)
  /// without parking a waiter thread per frame. Must not throw.
  std::function<void(const FrameResult&)> on_frame;

  /// When true, submit() registers the frame but enqueues no tiles; the
  /// caller feeds them to the workers one by one with release_tile() as
  /// their dependencies resolve. Every tile must eventually be released
  /// (cancellation included -- released tiles of a cancelled frame resolve
  /// as skipped), or the frame never resolves.
  bool deferred = false;

  /// Pre-resolved per-tile designs, indexed like the plan's tiles. When
  /// set, workers use the entry directly instead of a design-cache lookup
  /// per tile -- the pipeline executor passes the designs it pinned at
  /// construction, so re-arming a frame on a live engine touches no cache
  /// key at all. Null (or short) entries fall back to the cache.
  std::shared_ptr<const std::vector<std::shared_ptr<const CachedDesign>>>
      designs;

  /// Causal identity of the frame across the whole pipeline: journal
  /// events and Perfetto flow events carry it, so one frame's admission,
  /// per-stage tiles and retirement stitch into a single lane. 0 (the
  /// default) allocates a fresh process-wide id (obs::next_frame_id).
  std::uint64_t frame_id = 0;

  /// Pipeline stage index recorded with the frame's journal events; -1
  /// outside a pipeline.
  std::int32_t stage = -1;

  /// When false this frame is one stage of a larger pipelined frame: the
  /// owner (pipeline executor / temporal runner) emits the frame-level
  /// async lane, flow start/end, and post-mortem on cancellation; the
  /// engine then only records per-stage lifecycle and tile events.
  bool own_frame_events = true;
};

/// The assembled result of one frame request.
struct FrameResult {
  std::uint64_t seed = 0;
  /// Kernel outputs in full-frame lexicographic iteration order;
  /// bit-identical to stencil::run_golden(program, seed). Partially filled
  /// when the frame was cancelled or failed.
  std::vector<double> outputs;
  bool cancelled = false;
  std::string error;  ///< non-empty when a tile simulation failed
  std::int64_t tiles_total = 0;
  std::int64_t tiles_executed = 0;
  std::int64_t tiles_skipped = 0;

  bool ok() const { return !cancelled && error.empty(); }
};

/// Future of a submitted frame. Handles are cheap shared references; the
/// result is resolved exactly once, even across cancellation and engine
/// shutdown, so wait() never blocks forever.
class FrameHandle {
 public:
  FrameHandle() = default;

  bool valid() const { return state_ != nullptr; }

  /// Blocks until the frame resolves; the reference stays valid for the
  /// lifetime of the handle.
  const FrameResult& wait();

  /// True when the frame resolved within the timeout.
  bool wait_for(std::chrono::milliseconds timeout);

  bool done() const;

  /// Requests cancellation: tiles not yet started are skipped (the tile
  /// currently executing, if any, completes). Idempotent; a frame that
  /// already finished is unaffected.
  void cancel();

 private:
  friend class FrameEngine;
  explicit FrameHandle(std::shared_ptr<detail::FrameState> state);
  std::shared_ptr<detail::FrameState> state_;
};

/// Mutex-consistent snapshot of the engine's activity: the frame counters
/// are read in one critical section (a resolving frame updates them
/// atomically as a group, so completed + cancelled + failed never
/// transiently exceeds submitted), and `cache` is one consistent
/// DesignCache snapshot.
struct EngineStats {
  std::int64_t frames_submitted = 0;
  std::int64_t frames_completed = 0;  ///< resolved ok
  std::int64_t frames_cancelled = 0;
  std::int64_t frames_failed = 0;
  std::int64_t tiles_executed = 0;
  std::int64_t tiles_skipped = 0;
  /// Tiles a worker dequeued from another node's queue (always 0 with
  /// --numa off or on a single-node topology).
  std::int64_t tiles_stolen = 0;
  std::size_t max_queue_depth = 0;
  std::size_t nodes = 1;  ///< scheduling nodes (1 unless numa is on)
  DesignCacheStats cache;
};

/// Multi-threaded tiled serving engine: turns the one-shot compiler into a
/// frame service. A submitted (program, seed) pair is tiled by the halo
/// tiler, each tile's microarchitecture is fetched from the design cache
/// (compiled once, then served from memory), and a fixed pool of workers
/// executes the tiles on the compiled fast simulator backend and stitches
/// the outputs into the frame.
class FrameEngine {
 public:
  enum class Drain {
    kDrainAll,        ///< finish every queued tile before stopping
    kCancelPending,   ///< finish in-flight tiles, cancel queued frames
  };

  explicit FrameEngine(EngineOptions options = {});
  ~FrameEngine();  // shutdown(kCancelPending) if still running

  FrameEngine(const FrameEngine&) = delete;
  FrameEngine& operator=(const FrameEngine&) = delete;

  /// Enqueues one frame. First use of a program tiles it and pre-compiles
  /// every tile design into the cache (in the calling thread); subsequent
  /// frames reuse both. Blocks while the tile queue is full; throws Error
  /// after shutdown.
  FrameHandle submit(const stencil::StencilProgram& program,
                     std::uint64_t seed);

  /// submit with per-frame hooks (custom feeds, tile-resolution callback,
  /// deferred tile release). See SubmitOptions.
  FrameHandle submit(const stencil::StencilProgram& program,
                     std::uint64_t seed, SubmitOptions options);

  /// Re-arms a frame over an already-registered tile plan (as returned by
  /// plan_for): no canonicalization, no plan lookup, no compilation --
  /// the steady-state path for callers that pump many frames of the same
  /// program through a live engine.
  FrameHandle submit(std::shared_ptr<const TilePlan> plan,
                     std::uint64_t seed, SubmitOptions options = {});

  /// Hands one tile of a deferred frame to the workers (see
  /// SubmitOptions::deferred). Blocks while the tile queue is full
  /// (cross-stage backpressure when called from an upstream engine's
  /// worker). After shutdown the tile resolves as skipped instead of
  /// enqueuing, so a deferred frame still terminates. Releasing the same
  /// tile twice is the caller's bug; the engine does not dedupe.
  void release_tile(const FrameHandle& frame, std::size_t tile_idx);

  /// Resolves one tile of a deferred frame as skipped without touching the
  /// queue. Never blocks -- the cancellation path of a pipeline abort uses
  /// it from worker threads, where blocking on a full queue of the same
  /// engine would self-deadlock. Marks the frame cancelled.
  void skip_tile(const FrameHandle& frame, std::size_t tile_idx);

  /// The embedded design cache (for pinning a pipeline stage's designs).
  DesignCache& cache();

  /// Tile plan the engine uses for this program (registering it if new).
  std::shared_ptr<const TilePlan> plan_for(
      const stencil::StencilProgram& program);

  /// Node topology the engine schedules over. One node with --numa off.
  const Topology& topology() const;

  /// Tile->node placement the engine uses for this plan (computed once per
  /// plan, cached). Null when the engine runs single-node (numa off or a
  /// one-node topology) -- every tile is then on node 0. The pipeline
  /// executor hands the returned map to StageBuffers so edge slabs recycle
  /// through the producer tile's arena.
  std::shared_ptr<const PlacementPlan> placement_for(
      const std::shared_ptr<const TilePlan>& plan);

  /// Stops the workers. kDrainAll completes all queued work first;
  /// kCancelPending resolves queued frames as cancelled after the tiles
  /// already executing finish. Idempotent; submit() fails afterwards.
  void shutdown(Drain mode = Drain::kDrainAll);

  EngineStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nup::runtime
