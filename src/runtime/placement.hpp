#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/tiler.hpp"
#include "runtime/topology.hpp"

namespace nup::runtime {

/// Tile -> memory-node assignment for one TilePlan. The non-uniform
/// partitioning idea one level up from the paper's reuse buffers: every
/// tile's working set (frame-buffer slice, slabs, FIFO state) should live
/// on the memory node of the worker that touches it.
struct PlacementPlan {
  /// Node index per tile, parallel to TilePlan::tiles.
  std::vector<int> node_of;

  /// Streamed bytes assigned per node (the cost the partition balances).
  std::vector<std::int64_t> node_bytes;

  std::size_t node_count() const { return node_bytes.size(); }

  /// max(node_bytes) / mean(node_bytes); 1.0 is a perfect balance.
  double imbalance() const;

  /// "tiles 0-7 -> node0 (1.2 MiB), tiles 8-15 -> node1 (1.2 MiB)" style
  /// summary for logs.
  std::string describe() const;
};

/// Assigns the plan's tiles to `node_count` memory nodes.
///
/// kAuto cuts the tile list -- which plan_tiles emits in tile-grid
/// lexicographic order -- into contiguous runs balanced by per-tile
/// streamed bytes (halo included). Contiguity is the locality half of the
/// cost model: lex-adjacent tiles share halo rows, so keeping a run on one
/// node keeps the shared reuse state co-resident; the prefix-sum cut is
/// the balance half. kInterleave round-robins tiles across nodes --
/// better when per-tile cost varies so wildly that contiguous runs would
/// idle a node. kOff (or a single node) places everything on node 0.
PlacementPlan plan_placement(const TilePlan& plan, std::size_t node_count,
                             NumaMode mode);

}  // namespace nup::runtime
