#include "core/rtl_verify.hpp"

#include <cctype>

#include "codegen/verilog.hpp"
#include "poly/reuse.hpp"
#include "util/error.hpp"
#include "vsim/interp.hpp"

namespace nup::core {

namespace {

std::string sanitized_prefix(const std::string& name) {
  std::string out;
  for (char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c))
                      ? static_cast<char>(std::tolower(
                            static_cast<unsigned char>(c)))
                      : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), 'm');
  }
  return out;
}

}  // namespace

RtlVerification verify_rtl(const stencil::StencilProgram& program,
                           const arch::AcceleratorDesign& design,
                           const RtlVerifyOptions& options) {
  RtlVerification result;
  const std::int64_t total = program.iteration().count();
  if (total > options.max_iterations) {
    result.detail = "skipped: " + std::to_string(total) +
                    " iterations exceed the interpreted-RTL budget";
    return result;
  }
  result.ran = true;

  const std::string rtl = codegen::emit_verilog(program, design);
  vsim::VerilogSim sim(rtl, sanitized_prefix(program.name()) + "_top");

  // One rank oracle and one stream-sequence counter per (array, segment).
  struct Stream {
    std::string name;
    std::uint64_t seq = 0;
    bool advance = false;
  };
  std::vector<poly::RankOracle> oracles;
  std::vector<Stream> streams;
  oracles.reserve(design.systems.size());
  for (std::size_t a = 0; a < design.systems.size(); ++a) {
    oracles.emplace_back(design.systems[a].input_domain);
    const std::size_t segments = design.systems[a].segment_heads().size();
    for (std::size_t s = 0; s < segments; ++s) {
      std::string name = "s";
      name.append(std::to_string(a)).append("_stream");
      name.append(std::to_string(s));
      streams.push_back(Stream{std::move(name), 0, false});
    }
  }

  sim.poke("rst", 1);
  sim.poke("kernel_ready", 1);
  for (const Stream& stream : streams) {
    sim.poke(stream.name + "_valid", 1);
    sim.poke(stream.name + "_data", 0);
  }
  sim.step_clock();
  sim.step_clock();
  sim.poke("rst", 0);

  poly::Domain::LexCursor iter(program.iteration());
  while (result.fires < total && result.cycles < options.max_cycles) {
    for (const Stream& stream : streams) {
      sim.poke(stream.name + "_data", stream.seq);
    }
    sim.eval();
    if (sim.peek("kernel_fire") != 0) {
      const poly::IntVec& i = iter.point();
      for (std::size_t a = 0; a < design.systems.size(); ++a) {
        const arch::MemorySystem& sys = design.systems[a];
        for (std::size_t k = 0; k < sys.filter_count(); ++k) {
          const std::uint64_t expected = static_cast<std::uint64_t>(
              oracles[a].rank(poly::add(i, sys.ordered_offsets[k])));
          const std::uint64_t got = sim.peek(
              "port_s" + std::to_string(a) + "_f" + std::to_string(k));
          if (got != expected) {
            result.detail =
                "array " + sys.array + " port " + std::to_string(k) +
                " at iteration " + poly::to_string(i) +
                ": RTL delivered element " + std::to_string(got) +
                ", expected " + std::to_string(expected);
            return result;
          }
        }
      }
      iter.advance();
      ++result.fires;
    }
    for (Stream& stream : streams) {
      stream.advance = sim.peek(stream.name + "_ready") != 0;
    }
    sim.step_clock();
    ++result.cycles;
    for (Stream& stream : streams) {
      if (stream.advance) ++stream.seq;
    }
  }
  result.passed = result.fires == total;
  if (!result.passed && result.detail.empty()) {
    result.detail = "RTL produced only " + std::to_string(result.fires) +
                    " of " + std::to_string(total) + " outputs in " +
                    std::to_string(result.cycles) + " cycles";
  }
  return result;
}

}  // namespace nup::core
