#pragma once

#include <string>
#include <vector>

#include "arch/builder.hpp"
#include "arch/design.hpp"
#include "arch/verify.hpp"
#include "core/rtl_verify.hpp"
#include "hls/device.hpp"
#include "hls/estimate.hpp"
#include "sim/simulator.hpp"
#include "stencil/program.hpp"

namespace nup::core {

/// Options of the end-to-end design automation flow (Fig 11).
struct CompileOptions {
  arch::BuildOptions build;

  /// Run the cycle-accurate simulation and compare every kernel output
  /// against the golden software execution before signing the design off.
  bool verify_by_simulation = true;
  sim::SimOptions sim;

  bool emit_rtl = true;
  bool emit_kernel_code = true;

  /// Additionally execute the generated Verilog in the built-in RTL
  /// interpreter and check it against the analytical port expectation.
  /// Skipped automatically for programs above rtl_verify.max_iterations.
  bool verify_rtl = false;
  RtlVerifyOptions rtl_verify;

  hls::DeviceModel device = hls::virtex7_485t();
  hls::EstimateOptions estimate;
};

/// Everything the flow produces for one stencil program: the
/// microarchitecture, its static checks, the verification run, resource
/// estimates and the generated code.
struct AcceleratorPackage {
  stencil::StencilProgram program;
  arch::AcceleratorDesign design;
  std::vector<arch::ConditionCheck> checks;  ///< one per memory system

  bool verified = false;  ///< simulation matched the golden execution
  sim::SimResult verification;

  /// Result of executing the generated Verilog (when requested).
  RtlVerification rtl_verification;

  hls::ResourceUsage resources;

  std::string rtl;                 ///< Verilog of the memory systems
  std::string testbench;           ///< Verilog testbench
  std::string kernel_code;         ///< transformed HLS C++ (Fig 4)
  std::string integration_header;  ///< C++ port/stream description

  /// Human-readable flow summary.
  std::string summary() const;
};

/// Runs the full flow on an in-memory stencil program. Throws
/// SimulationError if verification is enabled and the simulated outputs
/// diverge from the golden execution.
AcceleratorPackage compile(const stencil::StencilProgram& program,
                           const CompileOptions& options = {});

/// Frontend entry: parses mini-C stencil source (Fig 1 style) first.
AcceleratorPackage compile_source(const std::string& source,
                                  const std::string& name,
                                  const CompileOptions& options = {});

}  // namespace nup::core
