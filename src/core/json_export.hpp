#pragma once

#include <string>

#include "core/compiler.hpp"

namespace nup::core {

/// Serializes the compiled accelerator package -- design structure, static
/// checks, verification statistics and resource estimates -- as a JSON
/// document, for consumption by scripts and report generators downstream
/// of the flow. Generated source texts are summarized by size only.
std::string to_json(const AcceleratorPackage& package);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& text);

}  // namespace nup::core
