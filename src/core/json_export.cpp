#include "core/json_export.hpp"

#include <cstdio>
#include <sstream>

namespace nup::core {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

void append_offsets(std::ostringstream& out, const poly::IntVec& offset) {
  out << "[";
  for (std::size_t d = 0; d < offset.size(); ++d) {
    out << (d > 0 ? "," : "") << offset[d];
  }
  out << "]";
}

}  // namespace

std::string to_json(const AcceleratorPackage& package) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"name\": \"" << json_escape(package.program.name()) << "\",\n";
  out << "  \"dimensions\": " << package.program.dim() << ",\n";
  out << "  \"iterations\": " << package.program.iteration().count()
      << ",\n";
  out << "  \"original_ii\": " << package.program.total_references()
      << ",\n";

  out << "  \"memory_systems\": [\n";
  for (std::size_t s = 0; s < package.design.systems.size(); ++s) {
    const arch::MemorySystem& sys = package.design.systems[s];
    out << "    {\n";
    out << "      \"array\": \"" << json_escape(sys.array) << "\",\n";
    out << "      \"filters\": [";
    for (std::size_t k = 0; k < sys.ordered_offsets.size(); ++k) {
      if (k > 0) out << ",";
      append_offsets(out, sys.ordered_offsets[k]);
    }
    out << "],\n";
    out << "      \"fifos\": [";
    for (std::size_t k = 0; k < sys.fifos.size(); ++k) {
      const arch::ReuseFifo& fifo = sys.fifos[k];
      if (k > 0) out << ",";
      out << "{\"depth\":" << fifo.depth << ",\"impl\":\""
          << arch::to_string(fifo.impl) << "\",\"cut\":"
          << (fifo.cut ? "true" : "false") << "}";
    }
    out << "],\n";
    out << "      \"banks\": " << sys.bank_count() << ",\n";
    out << "      \"total_elements\": " << sys.total_buffer_size() << ",\n";
    out << "      \"offchip_streams\": " << sys.stream_count() << "\n";
    out << "    }" << (s + 1 < package.design.systems.size() ? "," : "")
        << "\n";
  }
  out << "  ],\n";

  out << "  \"checks\": [";
  for (std::size_t s = 0; s < package.checks.size(); ++s) {
    const arch::ConditionCheck& check = package.checks[s];
    if (s > 0) out << ",";
    out << "{\"ordering\":" << (check.ordering_descending ? "true" : "false")
        << ",\"sizing\":" << (check.sizing_sufficient ? "true" : "false")
        << ",\"banks_minimum\":" << (check.banks_minimum ? "true" : "false")
        << ",\"size_minimum\":" << (check.size_minimum ? "true" : "false")
        << ",\"detail\":\"" << json_escape(check.detail) << "\"}";
  }
  out << "],\n";

  out << "  \"verification\": {\"verified\": "
      << (package.verified ? "true" : "false")
      << ", \"cycles\": " << package.verification.cycles
      << ", \"outputs\": " << package.verification.kernel_fires
      << ", \"fill_latency\": " << package.verification.fill_latency
      << ", \"steady_ii\": " << package.verification.steady_ii << "},\n";

  out << "  \"resources\": {\"bram18k\": " << package.resources.bram18k
      << ", \"slices\": " << package.resources.slices
      << ", \"dsp48\": " << package.resources.dsp48
      << ", \"clock_period_ns\": " << package.resources.clock_period_ns
      << "},\n";

  out << "  \"artifacts\": {\"rtl_bytes\": " << package.rtl.size()
      << ", \"testbench_bytes\": " << package.testbench.size()
      << ", \"kernel_code_bytes\": " << package.kernel_code.size() << "}\n";
  out << "}\n";
  return out.str();
}

}  // namespace nup::core
