#pragma once

#include <cstdint>
#include <string>

#include "arch/design.hpp"
#include "stencil/program.hpp"

namespace nup::core {

/// Result of executing the generated Verilog in the built-in RTL
/// interpreter against the analytical expectation (each kernel port must
/// deliver the stream-rank of the grid point its reference needs, at every
/// fire).
struct RtlVerification {
  bool ran = false;
  bool passed = false;
  std::int64_t cycles = 0;
  std::int64_t fires = 0;
  std::string detail;  ///< first mismatch or abort reason
};

struct RtlVerifyOptions {
  /// Programs with more iterations than this are skipped (interpreted RTL
  /// is ~1000x slower than the C++ model).
  std::int64_t max_iterations = 20'000;
  std::int64_t max_cycles = 2'000'000;
};

/// Emits the memory-system RTL for `design`, elaborates it in the vsim
/// interpreter, streams ramp data through it and checks every kernel port
/// at every fire. Self-contained (re-emits the RTL) so it can run even
/// when the caller skipped codegen.
RtlVerification verify_rtl(const stencil::StencilProgram& program,
                           const arch::AcceleratorDesign& design,
                           const RtlVerifyOptions& options = {});

}  // namespace nup::core
