#include "core/compiler.hpp"

#include <cmath>
#include <sstream>

#include "codegen/hls_cpp.hpp"
#include "codegen/verilog.hpp"
#include "frontend/sema.hpp"
#include "stencil/golden.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace nup::core {

std::string AcceleratorPackage::summary() const {
  std::ostringstream out;
  out << "=== accelerator package: " << program.name() << " ===\n";
  out << describe(design);
  for (std::size_t s = 0; s < checks.size(); ++s) {
    out << "  memory system " << s << " checks: "
        << (checks[s].all_ok() ? "optimal (banks = n-1, size = max reuse "
                                 "distance, deadlock-free conditions hold)"
                               : "FAILED: " + checks[s].detail)
        << "\n";
  }
  if (verification.cycles > 0) {
    out << "  verification: "
        << (verified ? "outputs match golden execution" : "NOT verified")
        << ", " << verification.kernel_fires << " outputs in "
        << verification.cycles << " cycles (fill latency "
        << verification.fill_latency << ", steady II "
        << format_fixed(verification.steady_ii, 3) << ")\n";
  }
  if (rtl_verification.ran) {
    out << "  RTL co-simulation: "
        << (rtl_verification.passed ? "passed" : "FAILED") << " ("
        << rtl_verification.fires << " fires in " << rtl_verification.cycles
        << " cycles)\n";
  }
  out << "  resources: " << resources.bram18k << " BRAM18K, "
      << resources.slices << " slices, " << resources.dsp48 << " DSP48, CP "
      << format_fixed(resources.clock_period_ns, 2) << " ns\n";
  if (!rtl.empty()) {
    out << "  generated: " << rtl.size() << " bytes RTL, "
        << testbench.size() << " bytes testbench, " << kernel_code.size()
        << " bytes kernel C++\n";
  }
  return out.str();
}

AcceleratorPackage compile(const stencil::StencilProgram& program,
                           const CompileOptions& options) {
  AcceleratorPackage package{program,
                             arch::build_design(program, options.build),
                             {},
                             false,
                             {},
                             {},
                             {},
                             "",
                             "",
                             "",
                             ""};

  for (const arch::MemorySystem& system : package.design.systems) {
    package.checks.push_back(
        arch::verify_design(program, system, options.build));
  }

  if (options.verify_by_simulation) {
    package.verification = sim::simulate(program, package.design,
                                         options.sim);
    if (package.verification.deadlocked) {
      throw SimulationError("verification deadlocked: " +
                            package.verification.deadlock_detail);
    }
    const stencil::GoldenRun golden =
        stencil::run_golden(program, options.sim.seed);
    if (golden.outputs.size() != package.verification.outputs.size()) {
      throw SimulationError(
          "verification produced " +
          std::to_string(package.verification.outputs.size()) +
          " outputs, golden execution " +
          std::to_string(golden.outputs.size()));
    }
    for (std::size_t i = 0; i < golden.outputs.size(); ++i) {
      if (golden.outputs[i] != package.verification.outputs[i]) {
        throw SimulationError("verification mismatch at output " +
                              std::to_string(i));
      }
    }
    package.verified = true;
  }

  if (options.verify_rtl) {
    package.rtl_verification =
        verify_rtl(program, package.design, options.rtl_verify);
    if (package.rtl_verification.ran && !package.rtl_verification.passed) {
      throw SimulationError("RTL verification failed: " +
                            package.rtl_verification.detail);
    }
  }

  package.resources = hls::estimate_streaming(package.design, program,
                                              options.device,
                                              options.estimate);

  if (options.emit_rtl) {
    package.rtl = codegen::emit_verilog(program, package.design);
    package.testbench = codegen::emit_testbench(program, package.design);
    const std::string lint = codegen::lint_verilog(package.rtl);
    if (!lint.empty()) {
      throw Error("generated RTL failed lint: " + lint);
    }
  }
  if (options.emit_kernel_code) {
    package.kernel_code = codegen::emit_transformed_kernel(program);
    package.integration_header =
        codegen::emit_integration_header(program, package.design);
  }

  log_info() << "compiled " << program.name() << ": "
             << package.design.total_bank_count() << " banks, "
             << package.design.total_buffer_size() << " elements";
  return package;
}

AcceleratorPackage compile_source(const std::string& source,
                                  const std::string& name,
                                  const CompileOptions& options) {
  return compile(frontend::parse_stencil(source, name), options);
}

}  // namespace nup::core
