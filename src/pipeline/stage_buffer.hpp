#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "pipeline/dependency.hpp"
#include "pipeline/slab_pool.hpp"
#include "poly/int_vec.hpp"
#include "runtime/placement.hpp"
#include "runtime/tiler.hpp"
#include "sim/feed.hpp"
#include "stencil/boundary.hpp"

namespace nup::pipeline {

/// A dense row-major block of producer output over an axis-aligned box:
/// the stitched input of one consumer tile. Data is shared and immutable
/// once built, so the feed object and the buffer can both hold it without
/// copying; when the storage came from a SlabPool lease, dropping the last
/// reference recycles it for a later tile.
struct Slice {
  std::shared_ptr<const std::vector<double>> data;
  poly::IntVec lo, hi;  ///< inclusive box corners (grid coordinates)
};

/// ExternalFeed serving a stitched Slice: always available (the data is
/// resident by construction -- the consumer tile was only released after
/// every covering producer tile resolved), values looked up row-major.
/// Points outside the slice box read 0.0; they can only be hull padding
/// the consumer's data filters discard, never kernel inputs.
class SliceFeed final : public sim::ExternalFeed {
 public:
  explicit SliceFeed(Slice slice);

  bool available(const poly::IntVec&) override { return true; }
  double read(const poly::IntVec& h) override;
  /// Slice data is resident and immutable for the tile's whole run, so the
  /// fast backend may batch wide steps over this feed.
  bool time_invariant() const override { return true; }

 private:
  Slice slice_;
  std::vector<std::int64_t> strides_;
};

/// Wraps another feed with a boundary policy over the producer's domain
/// box [lo, hi]: coordinates inside the box pass through, coordinates
/// outside are clamped / wrapped into it (then served by the inner feed)
/// or answered with a constant. This is how an edge whose consumer shares
/// the producer's iteration domain -- a temporal replica reading the
/// previous generation -- defines the reads its halo makes past the grid
/// edge. Mapped clamp coordinates always land inside the consumer tile's
/// clipped hull, so the stitched slice already holds them; wrap reaches
/// the opposite side of the grid and therefore requires the inner slice
/// to span the whole producer domain (the temporal runner forces
/// whole-frame tiles for wrap edges).
class BoundaryFeed final : public sim::ExternalFeed {
 public:
  BoundaryFeed(std::shared_ptr<sim::ExternalFeed> inner, poly::IntVec lo,
               poly::IntVec hi, stencil::BoundaryPolicy policy,
               double constant_value);

  bool available(const poly::IntVec&) override { return true; }
  double read(const poly::IntVec& h) override;
  bool time_invariant() const override { return inner_->time_invariant(); }

 private:
  std::shared_ptr<sim::ExternalFeed> inner_;
  poly::IntVec lo_, hi_;
  stencil::BoundaryPolicy policy_;
  double constant_;
};

/// Per-edge, per-frame staging buffer between a producer and a consumer
/// stage. Producer workers admit() finished tile slabs; when a consumer
/// tile's covering set is complete, stitch() assembles its input slice and
/// retires every producer slab whose last consumer has been served -- so
/// steady-state occupancy is the band of producer rows the consumer halo
/// still needs, not the frame. Slab and slice storage comes from the
/// edge's SlabPool, shared by every frame of the pipeline: successive
/// frames recycle retired storage instead of reallocating it, making the
/// steady-state admit/stitch/retire cycle allocation-free. Thread-safe
/// (engine workers of both stages call in concurrently).
class StageBuffer {
 public:
  struct Occupancy {
    std::int64_t tiles = 0;         ///< producer slabs currently resident
    std::int64_t elements = 0;      ///< doubles currently resident
    std::int64_t max_tiles = 0;     ///< high-water marks over the frame
    std::int64_t max_elements = 0;
    std::int64_t retired = 0;       ///< slabs freed before frame end
  };

  /// `label` names the pipeline.edge.<label>.* metric series; the map must
  /// come from map_tile_dependencies over the same two plans. `pool` is
  /// the edge's cross-frame slab arena; a null pool gets the buffer a
  /// private one (single-frame uses, tests). A non-empty `expand_lo` /
  /// `expand_hi` box is unioned into every stitched slice box: wrap edges
  /// pass the producer's domain here, because a wrapped halo read maps to
  /// the opposite edge of the grid, which a one-sided window's hull does
  /// not cover. `producer_nodes` / `consumer_nodes` (optional) are the
  /// engines' tile placements: admit/retire then route a producer tile's
  /// slab through its placed node's pool arena and stitch leases from the
  /// consumer tile's arena, keeping steady-state slab recycling
  /// node-local. Null placements use arena 0.
  StageBuffer(std::shared_ptr<const runtime::TilePlan> producer_plan,
              std::shared_ptr<const runtime::TilePlan> consumer_plan,
              std::shared_ptr<const EdgeTileMap> map,
              std::size_t input_index, obs::Registry& metrics,
              const std::string& label,
              std::shared_ptr<SlabPool> pool = nullptr,
              poly::IntVec expand_lo = {}, poly::IntVec expand_hi = {},
              std::shared_ptr<const runtime::PlacementPlan> producer_nodes =
                  nullptr,
              std::shared_ptr<const runtime::PlacementPlan> consumer_nodes =
                  nullptr);
  ~StageBuffer();

  StageBuffer(const StageBuffer&) = delete;
  StageBuffer& operator=(const StageBuffer&) = delete;

  /// Copies producer tile `tile_idx`'s outputs out of the frame vector
  /// (called from the worker that just wrote them -- only this tile's
  /// output_ranks entries are read). A tile no consumer covers is dropped
  /// immediately.
  void admit(std::size_t tile_idx, const double* frame_outputs);

  /// Assembles consumer tile `tile_idx`'s input slice over its streamed
  /// hull box from the covering producer slabs (all admitted by
  /// construction), then retires slabs whose consumers are all served.
  Slice stitch(std::size_t tile_idx);

  /// Drops consumer tile `tile_idx` from every covering producer slab's
  /// pending count without stitching -- the abort path calls this for
  /// consumer tiles skipped mid-frame, so slabs those tiles were holding
  /// retire (and recycle) instead of lingering until teardown. Must be
  /// called at most once per consumer tile, and never after stitch() for
  /// the same tile.
  void release_consumer(std::size_t tile_idx);

  Occupancy occupancy() const;

 private:
  void retire_locked(std::size_t producer_tile);
  std::size_t producer_arena(std::size_t tile_idx) const;
  std::size_t consumer_arena(std::size_t tile_idx) const;

  std::shared_ptr<const runtime::TilePlan> producer_plan_;
  std::shared_ptr<const runtime::TilePlan> consumer_plan_;
  std::shared_ptr<const EdgeTileMap> map_;
  std::size_t input_index_;
  std::shared_ptr<SlabPool> pool_;
  std::shared_ptr<const runtime::PlacementPlan> producer_nodes_;
  std::shared_ptr<const runtime::PlacementPlan> consumer_nodes_;
  poly::IntVec expand_lo_, expand_hi_;  ///< empty = no expansion

  mutable std::mutex mu_;
  std::vector<std::vector<double>> slabs_;     // per producer tile
  std::vector<std::int64_t> pending_;          // consumers left per slab
  Occupancy occ_;

  obs::Gauge* g_tiles_ = nullptr;
  obs::Gauge* g_elements_ = nullptr;
  obs::Gauge* g_max_tiles_ = nullptr;
  obs::Gauge* g_max_elements_ = nullptr;
  obs::Counter* c_retired_ = nullptr;
};

}  // namespace nup::pipeline
