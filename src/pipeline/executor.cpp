#include "pipeline/executor.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "obs/trace.hpp"
#include "pipeline/dependency.hpp"
#include "util/error.hpp"

namespace nup::pipeline {

namespace {

std::int64_t elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

void atomic_max(std::atomic<std::int64_t>& a, std::int64_t v) {
  std::int64_t cur = a.load(std::memory_order_relaxed);
  while (cur < v && !a.compare_exchange_weak(cur, v)) {
  }
}

}  // namespace

namespace detail {

/// Shared state of one pipelined frame: one deferred engine frame per
/// stage plus the scheduling state threading them together. Slices are
/// written by the thread that readied the tile and read by the worker that
/// executes it; the engine queue lock orders the two, so no slice is ever
/// touched concurrently. Several frames coexist (the admission window);
/// each has its own buffers and countdowns, sharing only the executor's
/// tracker, engines, and slab pools.
struct FrameCtx {
  std::weak_ptr<PipelineExecutor::Impl> impl;
  std::uint64_t seed = 0;
  FrameOptions frame_options;
  std::uint64_t frame_id = 0;  ///< tracker frame id (unique while armed)
  std::uint64_t trace_id = 0;  ///< causal id threaded through every stage
  bool own_events = true;      ///< pipeline owns the frame's trace lane
  std::chrono::steady_clock::time_point t0;
  std::vector<std::string> stage_names;

  std::vector<runtime::FrameHandle> handles;          // per stage
  std::vector<std::unique_ptr<StageBuffer>> buffers;  // per edge

  /// slices[stage][tile][input]: stitched inputs of one tile (empty Slice
  /// for external inputs). Freed by the tile's on_tile.
  std::vector<std::vector<std::vector<Slice>>> slices;

  std::mutex mu;  ///< guards released (handing a tile to its engine)
  std::vector<std::vector<char>> released;  // per (stage, tile)
  std::atomic<bool> aborted{false};

  /// Tiles not yet resolved, over all stages. Every tile passes through
  /// on_tile exactly once -- executed, failed, or skipped -- and
  /// decrements this at the end; the thread that reaches zero runs
  /// frame_done (retire the tracker slot, open the admission window).
  std::atomic<std::int64_t> tiles_left{0};

  std::vector<std::atomic<std::int64_t>> first_us;  // per stage, -1 = none
  std::vector<std::atomic<std::int64_t>> last_us;
  std::atomic<std::int64_t> last_event_us{0};

  std::mutex result_mu;
  bool assembled = false;
  PipelineResult result;
};

}  // namespace detail

using detail::FrameCtx;

struct PipelineExecutor::Impl
    : std::enable_shared_from_this<PipelineExecutor::Impl> {
  StageGraph graph;
  PipelineOptions options;
  obs::Registry* registry = nullptr;
  obs::Journal* journal = nullptr;
  std::uint32_t jname = 0;

  std::vector<std::unique_ptr<runtime::FrameEngine>> engines;  // per stage
  std::vector<std::shared_ptr<const runtime::TilePlan>> plans;
  std::vector<std::size_t> tiles_per_stage;
  std::vector<std::shared_ptr<const EdgeTileMap>> maps;  // per edge
  std::vector<std::string> edge_labels;                  // per edge
  /// Per-edge slab arenas, shared by every frame crossing the edge: the
  /// storage retired by frame f is what frame f+1 admits into, which is
  /// what makes the steady-state hot path allocation-free.
  std::vector<std::shared_ptr<SlabPool>> pools;
  /// Per-edge tile placements of the producer / consumer stage engines
  /// (null when running single-node): handed to every frame's
  /// StageBuffers so slabs route through the owning node's pool arena.
  std::vector<std::shared_ptr<const runtime::PlacementPlan>> edge_prod_place;
  std::vector<std::shared_ptr<const runtime::PlacementPlan>> edge_cons_place;
  /// Per-stage tile designs, pinned (and kept alive) for the executor's
  /// lifetime and handed to every frame via SubmitOptions::designs:
  /// steady-state frames never recompile or even look up a cache key.
  /// Unpinned at shutdown so the caches report zero pins afterwards.
  std::vector<
      std::shared_ptr<const std::vector<
          std::shared_ptr<const runtime::CachedDesign>>>>
      stage_designs;
  /// One tracker for all frames: arm()/resolve()/retire() with the frame
  /// id selecting the slot, so concurrent frames never share countdowns.
  std::unique_ptr<DependencyTracker> tracker;

  std::vector<obs::Histogram*> h_ready;  // per edge: readiness latency
  obs::Counter* c_submitted = nullptr;
  obs::Counter* c_completed = nullptr;
  obs::Counter* c_failed = nullptr;
  obs::Counter* c_cancelled = nullptr;
  obs::Counter* c_released = nullptr;
  obs::Gauge* g_inflight = nullptr;
  obs::Gauge* g_inflight_max = nullptr;
  obs::Histogram* h_overlap = nullptr;
  obs::Histogram* h_admission = nullptr;

  std::mutex mu;
  std::condition_variable window_cv;  ///< submitters wait for window space
  bool accepting = true;
  bool unpinned = false;  ///< shutdown already dropped the design pins
  std::uint64_t next_frame_id = 0;
  std::size_t frames_active = 0;  ///< admitted, not yet fully resolved
  std::vector<std::shared_ptr<FrameCtx>> inflight;
  /// Completion time of the frame that resolved last, for the interleave
  /// overlap histogram: a finishing frame that started before its
  /// predecessor completed overlapped it by (predecessor done - t0).
  std::chrono::steady_clock::time_point last_done;
  bool have_last_done = false;

  Impl(StageGraph g, PipelineOptions opts)
      : graph(std::move(g)), options(std::move(opts)) {
    registry = options.metrics ? options.metrics : &obs::Registry::global();
    journal = options.journal ? options.journal : &obs::Journal::global();
    jname = journal->intern(
        options.name.empty() ? "pipeline" : options.name);
    if (graph.stage_count() == 0) {
      throw Error("PipelineExecutor: empty stage graph");
    }
    graph.schedule();  // rejects cyclic graphs up front

    const std::string pfx =
        "pipeline." +
        (options.name.empty() ? std::string() : options.name + ".");
    c_submitted = &registry->counter(pfx + "frames_submitted");
    c_completed = &registry->counter(pfx + "frames_completed");
    c_failed = &registry->counter(pfx + "frames_failed");
    c_cancelled = &registry->counter(pfx + "frames_cancelled");
    c_released = &registry->counter(pfx + "tiles_released");
    g_inflight = &registry->gauge(pfx + "frames_in_flight");
    g_inflight_max = &registry->gauge(pfx + "frames_in_flight_max");
    h_overlap = &registry->histogram(pfx + "frame_interleave_overlap_us");
    h_admission = &registry->histogram(pfx + "admission_wait_us");

    std::size_t threads = options.threads_per_stage;
    if (threads == 0) {
      const std::size_t hw =
          std::max(1u, std::thread::hardware_concurrency());
      threads = std::max<std::size_t>(1, hw / graph.stage_count());
    }
    for (std::size_t s = 0; s < graph.stage_count(); ++s) {
      runtime::EngineOptions eo;
      eo.name = (options.name.empty() ? std::string() : options.name + ".") +
                "s" + std::to_string(s);
      eo.threads = threads;
      eo.queue_capacity = options.queue_capacity;
      eo.tile_shape = options.tile_shape;
      eo.build = options.build;
      eo.cache_capacity = options.cache_capacity;
      eo.metrics = registry;
      eo.journal = journal;
      eo.sim = options.sim;
      eo.numa = options.numa;
      engines.push_back(std::make_unique<runtime::FrameEngine>(eo));
      plans.push_back(
          engines.back()->plan_for(graph.stages()[s].program));
      tiles_per_stage.push_back(plans.back()->tiles.size());
      auto designs = std::make_shared<
          std::vector<std::shared_ptr<const runtime::CachedDesign>>>();
      designs->reserve(plans.back()->tiles.size());
      for (const runtime::Tile& tile : plans.back()->tiles) {
        designs->push_back(
            engines.back()->cache().pin(*tile.program, options.build));
      }
      stage_designs.push_back(std::move(designs));
    }
    for (const StageEdge& edge : graph.edges()) {
      maps.push_back(std::make_shared<const EdgeTileMap>(
          map_tile_dependencies(*plans[edge.producer], *plans[edge.consumer],
                                edge.input)));
      edge_labels.push_back(
          (options.name.empty() ? std::string() : options.name + ".") +
          edge.label);
      const std::string epfx = "pipeline.edge." + edge_labels.back() + ".";
      h_ready.push_back(&registry->histogram(epfx + "ready_us"));
      edge_prod_place.push_back(
          engines[edge.producer]->placement_for(plans[edge.producer]));
      edge_cons_place.push_back(
          engines[edge.consumer]->placement_for(plans[edge.consumer]));
      // One arena per scheduling node of the edge's engines (both see the
      // same process topology; 1 with numa off), so slabs recycle through
      // the arena of the node that first-touched them.
      const std::size_t arenas =
          std::max(engines[edge.producer]->topology().node_count(),
                   engines[edge.consumer]->topology().node_count());
      auto pool = std::make_shared<SlabPool>(arenas);
      pool->bind_metrics(&registry->counter(epfx + "slab_allocated"),
                         &registry->counter(epfx + "slab_recycled"));
      pool->bind_resident_gauge(&registry->gauge(
          "pool." + edge_labels.back() + ".resident_bytes"));
      pool->bind_journal(journal, journal->intern(edge_labels.back()));
      pools.push_back(std::move(pool));
    }
    tracker = std::make_unique<DependencyTracker>(
        graph, maps, tiles_per_stage, options.barrier);
  }

  /// Hands one ready tile to its stage engine: stitch its edge-fed input
  /// slices, then enqueue. Called exactly once per tile by the tracker
  /// (source tiles from submit(), the rest from producer workers); the
  /// released flag only arbitrates against abort().
  void make_ready(const std::shared_ptr<FrameCtx>& ctx, std::size_t stage,
                  std::size_t tile) {
    FrameCtx& c = *ctx;
    {
      std::lock_guard<std::mutex> lock(c.mu);
      if (c.released[stage][tile]) return;  // abort() got here first
      c.released[stage][tile] = 1;
    }
    const std::int64_t us = elapsed_us(c.t0);
    for (const std::size_t e : graph.stages()[stage].in_edges) {
      const StageEdge& edge = graph.edges()[e];
      c.slices[stage][tile][edge.input] = c.buffers[e]->stitch(tile);
      h_ready[e]->observe(us);
    }
    c_released->inc();
    journal->record(obs::JournalKind::kDepResolved, c.trace_id,
                    static_cast<std::int32_t>(stage),
                    static_cast<std::int64_t>(tile), us, 0, jname);
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      tracer.instant("pipeline.release", "pipeline",
                     "{\"stage\":" + std::to_string(stage) +
                         ",\"tile\":" + std::to_string(tile) + "}");
    }
    // Outside c.mu: this can block on the consumer queue (backpressure).
    engines[stage]->release_tile(c.handles[stage], tile);
  }

  /// Tile-resolution hook (runs in the executing stage's worker thread).
  /// Every tile of a frame -- executed, failed, or skipped -- comes
  /// through here exactly once, so the trailing countdown is the frame's
  /// completion barrier.
  void on_tile(const std::shared_ptr<FrameCtx>& ctx, std::size_t stage,
               std::size_t tile, const double* outputs, bool ok) {
    FrameCtx& c = *ctx;
    const std::int64_t us = elapsed_us(c.t0);
    atomic_max(c.last_event_us, us);
    for (Slice& slice : c.slices[stage][tile]) slice = Slice{};
    if (!ok) {
      abort(ctx);
    } else {
      std::int64_t expected = -1;
      c.first_us[stage].compare_exchange_strong(expected, us);
      atomic_max(c.last_us[stage], us);
      if (!c.aborted.load(std::memory_order_relaxed)) {
        for (const std::size_t e : graph.stages()[stage].out_edges) {
          c.buffers[e]->admit(tile, outputs);
        }
        for (const DependencyTracker::Ready r :
             tracker->resolve(c.frame_id, stage, tile)) {
          make_ready(ctx, r.stage, r.tile);
        }
      }
    }
    if (c.tiles_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      frame_done(ctx);
    }
  }

  /// Runs once per frame, in whichever thread resolved its last tile:
  /// frees the tracker slot (the storage the next arm() recycles) and
  /// opens the admission window.
  void frame_done(const std::shared_ptr<FrameCtx>& ctx) {
    FrameCtx& c = *ctx;
    tracker->retire(c.frame_id);
    const auto now = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(mu);
      --frames_active;
      g_inflight->set(static_cast<std::int64_t>(frames_active));
      std::int64_t overlap_us = 0;
      if (have_last_done && last_done > c.t0) {
        overlap_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         last_done - c.t0)
                         .count();
      }
      h_overlap->observe(overlap_us);
      last_done = now;
      have_last_done = true;
      // The ctx stays in `inflight` until the next submit() prunes it (or
      // shutdown() drains): callers hold PipelineResult references
      // obtained through temporary handles, which stay valid until the
      // executor moves on.
    }
    window_cv.notify_all();
  }

  /// Cancels every stage frame and resolves every tile not yet handed to
  /// a worker as skipped (never blocking -- skip_tile bypasses the
  /// queues), so deferred frames terminate and waiters wake. Claimed
  /// consumer tiles are also dropped from their in-edge buffers, so the
  /// slabs they were holding retire into the pool instead of lingering
  /// until teardown. Idempotent.
  void abort(const std::shared_ptr<FrameCtx>& ctx) {
    FrameCtx& c = *ctx;
    if (c.aborted.exchange(true)) return;
    for (runtime::FrameHandle& handle : c.handles) handle.cancel();
    for (std::size_t s = 0; s < tiles_per_stage.size(); ++s) {
      for (std::size_t t = 0; t < tiles_per_stage[s]; ++t) {
        bool mine = false;
        {
          std::lock_guard<std::mutex> lock(c.mu);
          if (!c.released[s][t]) {
            c.released[s][t] = 1;
            mine = true;
          }
        }
        if (!mine) continue;  // released (and stitched) or claimed already
        for (const std::size_t e : graph.stages()[s].in_edges) {
          c.buffers[e]->release_consumer(t);
        }
        engines[s]->skip_tile(c.handles[s], t);
      }
    }
  }

  void shutdown(Drain mode) {
    std::vector<std::shared_ptr<FrameCtx>> frames;
    {
      std::lock_guard<std::mutex> lock(mu);
      accepting = false;
      frames.swap(inflight);
    }
    window_cv.notify_all();
    if (mode == Drain::kCancelPending) {
      for (const std::shared_ptr<FrameCtx>& f : frames) abort(f);
    }
    for (const std::shared_ptr<FrameCtx>& f : frames) {
      for (runtime::FrameHandle& h : f->handles) h.wait();
      assemble(*f);
    }
    // All frames resolved: no callback can still be running, so the
    // engines can stop in any order.
    for (std::unique_ptr<runtime::FrameEngine>& engine : engines) {
      engine->shutdown(runtime::FrameEngine::Drain::kDrainAll);
    }
    // Drop the design pins (once): the executor is the only pinner of its
    // stage caches, so after shutdown every cache reports zero pinned
    // entries whatever path -- drain, cancel, or mid-frame abort -- got
    // here. The designs stay alive through stage_designs regardless.
    bool drop = false;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (!unpinned) {
        unpinned = true;
        drop = true;
      }
    }
    if (drop) {
      for (std::size_t s = 0; s < plans.size(); ++s) {
        for (const runtime::Tile& tile : plans[s]->tiles) {
          engines[s]->cache().unpin(*tile.program, options.build);
        }
      }
    }
  }

  /// Builds the PipelineResult (once) after all stage frames resolved.
  const PipelineResult& assemble(FrameCtx& c) {
    std::lock_guard<std::mutex> lock(c.result_mu);
    if (c.assembled) return c.result;
    PipelineResult r;
    r.seed = c.seed;
    for (std::size_t s = 0; s < c.handles.size(); ++s) {
      const runtime::FrameResult& fr = c.handles[s].wait();
      r.stages.push_back(fr);
      if (fr.cancelled) r.cancelled = true;
      if (!fr.error.empty() && r.error.empty()) {
        r.error = c.stage_names[s] + ": " + fr.error;
      }
      StageTiming t;
      t.first_tile_us = c.first_us[s].load(std::memory_order_relaxed);
      t.last_tile_us = c.last_us[s].load(std::memory_order_relaxed);
      r.timing.push_back(t);
    }
    for (const std::unique_ptr<StageBuffer>& b : c.buffers) {
      r.edges.push_back(b->occupancy());
    }
    r.total_us = c.last_event_us.load(std::memory_order_relaxed);
    if (!r.error.empty()) {
      c_failed->inc();
    } else if (r.cancelled) {
      c_cancelled->inc();
    } else {
      c_completed->inc();
    }
    const obs::JournalKind kind =
        !r.error.empty() ? obs::JournalKind::kFrameFailed
        : r.cancelled    ? obs::JournalKind::kFrameCancelled
                         : obs::JournalKind::kFrameCompleted;
    journal->record(kind, c.trace_id, -1, -1, r.total_us, 0, jname);
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      tracer.instant(!r.error.empty()
                         ? "pipeline.frame.failed"
                         : r.cancelled ? "pipeline.frame.cancelled"
                                       : "pipeline.frame.completed",
                     "pipeline");
      if (c.own_events) {
        tracer.flow_end("frame", "pipeline", c.trace_id);
        tracer.async_end("pipeline.frame", "pipeline", c.trace_id);
      }
    }
    if (r.cancelled && r.error.empty() && c.own_events) {
      obs::PostmortemInfo pm;
      pm.reason = "frame_cancelled";
      pm.detail = "pipeline frame " + std::to_string(c.trace_id) +
                  " (seed " + std::to_string(c.seed) + ") cancelled";
      pm.frame = c.trace_id;
      journal->dump_postmortem(pm, registry);
    }
    c.result = std::move(r);
    c.assembled = true;
    return c.result;
  }
};

// ---- PipelineHandle ----------------------------------------------------

PipelineHandle::PipelineHandle(std::shared_ptr<FrameCtx> ctx)
    : ctx_(std::move(ctx)) {}

const PipelineResult& PipelineHandle::wait() {
  if (!ctx_) throw Error("PipelineHandle::wait on an empty handle");
  for (runtime::FrameHandle& h : ctx_->handles) h.wait();
  if (std::shared_ptr<PipelineExecutor::Impl> impl = ctx_->impl.lock()) {
    return impl->assemble(*ctx_);
  }
  // Executor already gone: shutdown() assembled the result.
  std::lock_guard<std::mutex> lock(ctx_->result_mu);
  return ctx_->result;
}

bool PipelineHandle::wait_for(std::chrono::milliseconds timeout) {
  if (!ctx_) throw Error("PipelineHandle::wait_for on an empty handle");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (runtime::FrameHandle& h : ctx_->handles) {
    const auto now = std::chrono::steady_clock::now();
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    if (!h.wait_for(std::max(left, std::chrono::milliseconds(0)))) {
      return false;
    }
  }
  return true;
}

bool PipelineHandle::done() const {
  if (!ctx_) return false;
  for (const runtime::FrameHandle& h : ctx_->handles) {
    if (!h.done()) return false;
  }
  return true;
}

void PipelineHandle::cancel() {
  if (!ctx_) return;
  if (std::shared_ptr<PipelineExecutor::Impl> impl = ctx_->impl.lock()) {
    impl->abort(ctx_);
  } else {
    for (runtime::FrameHandle& h : ctx_->handles) h.cancel();
  }
}

// ---- PipelineExecutor --------------------------------------------------

PipelineExecutor::PipelineExecutor(StageGraph graph, PipelineOptions options)
    : impl_(std::make_shared<Impl>(std::move(graph), std::move(options))) {}

PipelineExecutor::~PipelineExecutor() {
  if (impl_) impl_->shutdown(Drain::kCancelPending);
}

const StageGraph& PipelineExecutor::graph() const { return impl_->graph; }

runtime::FrameEngine& PipelineExecutor::engine(std::size_t stage) {
  if (stage >= impl_->engines.size()) {
    throw Error("PipelineExecutor::engine: stage out of range");
  }
  return *impl_->engines[stage];
}

PipelineHandle PipelineExecutor::submit(std::uint64_t seed) {
  return submit(seed, FrameOptions{});
}

PipelineHandle PipelineExecutor::submit(std::uint64_t seed,
                                        FrameOptions frame) {
  return submit_internal(seed, std::move(frame), /*reserved=*/false);
}

std::vector<PipelineHandle> PipelineExecutor::submit_group(
    const std::vector<std::uint64_t>& seeds,
    std::vector<FrameOptions> frames) {
  Impl& im = *impl_;
  if (!frames.empty() && frames.size() != seeds.size()) {
    throw Error("PipelineExecutor::submit_group: frames/seeds size mismatch");
  }
  if (seeds.empty()) return {};
  const std::size_t n = seeds.size();
  const std::size_t window = im.options.max_frames_in_flight;
  if (window != 0 && n > window) {
    throw Error("PipelineExecutor::submit_group: group of " +
                std::to_string(n) +
                " frames exceeds max_frames_in_flight " +
                std::to_string(window));
  }
  {
    // Reserve the whole group in one critical section: concurrent
    // submitters see the window shrink by n at once, so no foreign frame
    // can land between two frames of the group.
    std::unique_lock<std::mutex> lock(im.mu);
    im.window_cv.wait(lock, [&] {
      return !im.accepting || window == 0 || im.frames_active + n <= window;
    });
    if (!im.accepting) {
      throw Error("PipelineExecutor::submit_group after shutdown");
    }
    im.frames_active += n;
    im.g_inflight->set(static_cast<std::int64_t>(im.frames_active));
    im.g_inflight_max->update_max(
        static_cast<std::int64_t>(im.frames_active));
  }
  std::vector<PipelineHandle> handles;
  handles.reserve(n);
  try {
    for (std::size_t i = 0; i < n; ++i) {
      handles.push_back(submit_internal(
          seeds[i], frames.empty() ? FrameOptions{} : std::move(frames[i]),
          /*reserved=*/true));
    }
  } catch (...) {
    // Release the reservations no frame ever claimed, so the window is
    // not leaked (admitted frames release theirs through frame_done).
    {
      std::lock_guard<std::mutex> lock(im.mu);
      im.frames_active -= n - handles.size();
      im.g_inflight->set(static_cast<std::int64_t>(im.frames_active));
    }
    im.window_cv.notify_all();
    throw;
  }
  return handles;
}

PipelineHandle PipelineExecutor::submit_internal(std::uint64_t seed,
                                                 FrameOptions frame,
                                                 bool reserved) {
  Impl& im = *impl_;
  auto ctx = std::make_shared<FrameCtx>();
  ctx->impl = im.weak_from_this();
  ctx->seed = seed;
  ctx->frame_options = std::move(frame);
  ctx->trace_id = ctx->frame_options.frame_id != 0
                      ? ctx->frame_options.frame_id
                      : obs::next_frame_id();
  ctx->own_events = ctx->frame_options.own_frame_events;

  const std::size_t stages = im.graph.stage_count();
  ctx->buffers.reserve(im.graph.edges().size());
  for (std::size_t e = 0; e < im.graph.edges().size(); ++e) {
    const StageEdge& edge = im.graph.edges()[e];
    // A wrapped halo read maps to the opposite edge of the producer's
    // grid; stitch the whole producer domain into the slice so the mapped
    // coordinate is always resident (wrap runs on whole-frame tiles).
    const bool wrap =
        edge.policy.boundary == stencil::BoundaryPolicy::kWrap;
    ctx->buffers.push_back(std::make_unique<StageBuffer>(
        im.plans[edge.producer], im.plans[edge.consumer], im.maps[e],
        edge.input, *im.registry, im.edge_labels[e], im.pools[e],
        wrap ? edge.producer_lo : poly::IntVec{},
        wrap ? edge.producer_hi : poly::IntVec{}, im.edge_prod_place[e],
        im.edge_cons_place[e]));
  }
  ctx->slices.resize(stages);
  ctx->released.resize(stages);
  ctx->first_us = std::vector<std::atomic<std::int64_t>>(stages);
  ctx->last_us = std::vector<std::atomic<std::int64_t>>(stages);
  std::int64_t total_tiles = 0;
  for (std::size_t s = 0; s < stages; ++s) {
    const stencil::StencilProgram& program = im.graph.stages()[s].program;
    ctx->stage_names.push_back(program.name());
    ctx->slices[s].assign(
        im.tiles_per_stage[s],
        std::vector<Slice>(program.inputs().size()));
    ctx->released[s].assign(im.tiles_per_stage[s], 0);
    ctx->first_us[s].store(-1, std::memory_order_relaxed);
    ctx->last_us[s].store(-1, std::memory_order_relaxed);
    total_tiles += static_cast<std::int64_t>(im.tiles_per_stage[s]);
  }
  ctx->tiles_left.store(total_tiles, std::memory_order_relaxed);

  const auto admit_t0 = std::chrono::steady_clock::now();
  {
    // Admission window: wait until fewer than max_frames_in_flight frames
    // are unresolved (frame_done signals). Frame ids are assigned at
    // admission, so armed ids are always distinct.
    std::unique_lock<std::mutex> lock(im.mu);
    if (!reserved) {
      im.window_cv.wait(lock, [&] {
        return !im.accepting || im.options.max_frames_in_flight == 0 ||
               im.frames_active < im.options.max_frames_in_flight;
      });
    }
    if (!im.accepting) {
      throw Error("PipelineExecutor::submit after shutdown");
    }
    ctx->frame_id = im.next_frame_id++;
    if (!reserved) {
      // A group submit already claimed its slots in submit_group.
      ++im.frames_active;
      im.g_inflight->set(static_cast<std::int64_t>(im.frames_active));
      im.g_inflight_max->update_max(
          static_cast<std::int64_t>(im.frames_active));
    }
    // Prune frames that already resolved; keep live ones reachable for
    // shutdown() even when the caller drops its handle.
    std::erase_if(im.inflight, [](const std::shared_ptr<FrameCtx>& f) {
      for (const runtime::FrameHandle& h : f->handles) {
        if (!h.done()) return false;
      }
      return true;
    });
    im.inflight.push_back(ctx);
  }
  const std::int64_t admit_us = elapsed_us(admit_t0);
  im.h_admission->observe(admit_us);
  im.c_submitted->inc();
  ctx->t0 = std::chrono::steady_clock::now();
  im.journal->record(obs::JournalKind::kFrameAdmitted, ctx->trace_id, -1, -1,
                     admit_us, total_tiles, im.jname);
  obs::Tracer& tracer = obs::Tracer::global();
  if (ctx->own_events && tracer.enabled()) {
    tracer.async_begin("pipeline.frame", "pipeline", ctx->trace_id,
                       "{\"seed\":" + std::to_string(seed) + "}");
    tracer.flow_start("frame", "pipeline", ctx->trace_id);
  }

  // Register every stage frame (deferred: nothing enqueues) before any
  // tile is released, so a fast producer can never resolve into a stage
  // whose frame does not exist yet. Frames are re-armed over the plans
  // and pinned designs resolved at construction: no canonical key, no
  // cache lookup, per frame or per tile.
  std::weak_ptr<FrameCtx> weak = ctx;
  Impl* imp = &im;
  for (std::size_t s = 0; s < stages; ++s) {
    runtime::SubmitOptions so;
    so.deferred = true;
    so.frame_id = ctx->trace_id;
    so.stage = static_cast<std::int32_t>(s);
    so.own_frame_events = false;
    so.designs = im.stage_designs[s];
    so.feed = [imp, weak, s](const runtime::Tile& tile, std::size_t tile_idx,
                             std::size_t array_idx, std::size_t)
        -> std::shared_ptr<sim::ExternalFeed> {
      std::shared_ptr<FrameCtx> c = weak.lock();
      if (!c) return nullptr;
      const std::size_t e = imp->graph.edge_into(s, array_idx);
      if (e == StageGraph::npos) {
        // External input: the frame's override, else the synthetic DRAM.
        if (c->frame_options.external_feed) {
          return c->frame_options.external_feed(s, array_idx, tile);
        }
        return nullptr;
      }
      auto slice = std::make_shared<SliceFeed>(
          c->slices[s][tile_idx][array_idx]);
      const StageEdge& edge = imp->graph.edges()[e];
      if (stencil::is_containment_policy(edge.policy.boundary)) {
        return slice;
      }
      // Value-defining boundary policy: reads past the producer's domain
      // box are clamped / wrapped into it or served a constant.
      return std::make_shared<BoundaryFeed>(
          std::move(slice), edge.producer_lo, edge.producer_hi,
          edge.policy.boundary, edge.policy.constant_value);
    };
    so.on_tile = [imp, weak, s](std::size_t tile_idx, const double* outputs,
                                bool ok) {
      if (std::shared_ptr<FrameCtx> c = weak.lock()) {
        imp->on_tile(c, s, tile_idx, outputs, ok);
      }
    };
    ctx->handles.push_back(
        im.engines[s]->submit(im.plans[s], seed, std::move(so)));
  }

  for (const DependencyTracker::Ready r : im.tracker->arm(ctx->frame_id)) {
    im.make_ready(ctx, r.stage, r.tile);
  }
  return PipelineHandle(ctx);
}

void PipelineExecutor::shutdown(Drain mode) { impl_->shutdown(mode); }

}  // namespace nup::pipeline
