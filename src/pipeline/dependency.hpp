#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "pipeline/stage_graph.hpp"
#include "runtime/tiler.hpp"

namespace nup::pipeline {

/// The static tile-dependency structure of one edge: which producer tiles
/// each consumer tile's streamed input hull touches. Computed once per
/// (producer plan, consumer plan) pair and shared by every frame.
struct EdgeTileMap {
  /// producers_of[c] = producer tile indices whose iteration domain
  /// intersects consumer tile c's input hull (ascending). The minimal
  /// covering set: a producer tile outside it contributes no element the
  /// consumer streams, and hull elements no producer computes are padding
  /// the consumer's data filters discard.
  std::vector<std::vector<std::size_t>> producers_of;
  /// Transpose: consumers_of[p] = consumer tiles depending on producer
  /// tile p. A producer tile with no consumers (its rows lie outside every
  /// consumer halo) retires the moment it resolves.
  std::vector<std::vector<std::size_t>> consumers_of;
};

/// Maps each consumer tile to the minimal set of producer tiles covering
/// its halo, using the tiler's hull geometry: consumer tile hulls are the
/// tile box grown by the edge's window (Tile::input_hulls), and a producer
/// tile covers the hull when its clipped iteration domain intersects the
/// hull box -- exact also for sheared and triangular producer domains,
/// where the bounding boxes may overlap while the domains do not.
EdgeTileMap map_tile_dependencies(const runtime::TilePlan& producer_plan,
                                  const runtime::TilePlan& consumer_plan,
                                  std::size_t input_index);

/// Readiness state over the whole graph with a frame dimension: one
/// countdown per (frame, stage, tile) of unresolved covering producer
/// tiles summed over the stage's in-edges. Frames of the same graph are
/// data-independent, so the tracker never links tiles across frames --
/// the frame id only selects which frame's countdowns a resolution
/// decrements, which is what lets frame f+1's source tiles run in idle
/// workers while frame f's sink tiles drain.
///
/// Frames are armed into recycled slots sized once at construction:
/// arm() after the first few frames copies baseline countdowns into
/// retired storage and allocates nothing. resolve() is called from engine
/// worker threads as producer tiles finish; tiles whose countdown reaches
/// zero are returned exactly once per frame. Thread-safe.
class DependencyTracker {
 public:
  struct Ready {
    std::uint64_t frame = 0;
    std::size_t stage = 0;
    std::size_t tile = 0;
  };

  /// `edge_maps[e]` is the tile map of graph edge e. When `barrier` is
  /// set, every consumer tile depends on every producer tile of each
  /// in-edge instead of its covering set: the frame-level barrier
  /// baseline, executed by the same machinery.
  DependencyTracker(const StageGraph& graph,
                    const std::vector<std::shared_ptr<const EdgeTileMap>>&
                        edge_maps,
                    const std::vector<std::size_t>& tiles_per_stage,
                    bool barrier = false);

  /// Admits one frame (ids must be distinct among the armed frames) and
  /// returns its dependency-free tiles (source-stage tiles): ready the
  /// moment the frame is armed. Reuses a retired frame's slot when one is
  /// free.
  std::vector<Ready> arm(std::uint64_t frame);

  /// Marks one producer tile of an armed frame resolved; returns the
  /// consumer tiles of the same frame that became ready as a result.
  std::vector<Ready> resolve(std::uint64_t frame, std::size_t stage,
                             std::size_t tile);

  /// Retires an armed frame, releasing its slot for the next arm(). The
  /// caller guarantees no further resolve() for this frame id.
  void retire(std::uint64_t frame);

  /// Frames currently armed (for tests and occupancy assertions).
  std::size_t frames_armed() const;

 private:
  struct FrameSlot {
    std::uint64_t frame = 0;
    bool active = false;
    std::vector<std::vector<std::int64_t>> waits;   // per (stage, tile)
    std::vector<std::int64_t> producer_left;        // barrier mode, per edge
  };

  FrameSlot& slot_locked(std::uint64_t frame);

  const StageGraph* graph_;
  std::vector<std::shared_ptr<const EdgeTileMap>> maps_;
  bool barrier_;
  /// Initial countdowns, computed once; arm() copies them into a slot.
  std::vector<std::vector<std::int64_t>> baseline_waits_;
  std::vector<std::int64_t> baseline_producer_left_;
  mutable std::mutex mu_;
  std::vector<FrameSlot> slots_;
};

}  // namespace nup::pipeline
