#include "pipeline/slab_pool.hpp"

#include <algorithm>

namespace nup::pipeline {

std::vector<double> SlabPool::take(std::size_t n) {
  std::vector<double> out;
  bool fresh = true;
  std::function<void(std::size_t)> hook;
  obs::Journal* journal = nullptr;
  std::uint32_t jname = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Prefer the smallest free vector that still fits: large slabs stay
    // available for large requests instead of being burned on small ones.
    std::size_t best = free_.size();
    for (std::size_t k = 0; k < free_.size(); ++k) {
      if (free_[k].capacity() < n) continue;
      if (best == free_.size() ||
          free_[k].capacity() < free_[best].capacity()) {
        best = k;
      }
    }
    if (best < free_.size()) {
      out = std::move(free_[best]);
      free_[best] = std::move(free_.back());
      free_.pop_back();
      fresh = false;
      ++stats_.reused;
    } else {
      ++stats_.allocated;
      if (m_allocated_) m_allocated_->inc();
    }
    if (!fresh && m_reused_) m_reused_->inc();
    ++stats_.outstanding;
    if (fresh) hook = alloc_hook_;
    journal = journal_;
    jname = jname_;
  }
  out.resize(n);  // within capacity on the reuse path: no allocation
  if (journal) {
    journal->record(obs::JournalKind::kSlabLeased, 0, -1, -1,
                    static_cast<std::int64_t>(n), fresh ? 1 : 0, jname);
  }
  if (hook) hook(n);
  return out;
}

void SlabPool::give(std::vector<double>&& v) {
  if (v.capacity() == 0) return;
  const std::size_t n = v.size();
  obs::Journal* journal = nullptr;
  std::uint32_t jname = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --stats_.outstanding;
    free_.push_back(std::move(v));
    journal = journal_;
    jname = jname_;
  }
  if (journal) {
    journal->record(obs::JournalKind::kSlabRecycled, 0, -1, -1,
                    static_cast<std::int64_t>(n), 0, jname);
  }
}

std::shared_ptr<std::vector<double>> SlabPool::lease(std::size_t n) {
  std::shared_ptr<std::vector<double>> out;
  bool fresh = true;
  std::function<void(std::size_t)> hook;
  obs::Journal* journal = nullptr;
  std::uint32_t jname = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A leased buffer is recyclable once the pool holds the only
    // reference. use_count can only have decayed to one -- nobody but the
    // pool can mint new references -- so the test is race-free: a stale
    // reading merely skips a buffer that becomes reusable next time.
    std::size_t best = leased_.size();
    for (std::size_t k = 0; k < leased_.size(); ++k) {
      if (leased_[k].use_count() != 1 || leased_[k]->capacity() < n) {
        continue;
      }
      if (best == leased_.size() ||
          leased_[k]->capacity() < leased_[best]->capacity()) {
        best = k;
      }
    }
    if (best < leased_.size()) {
      out = leased_[best];
      fresh = false;
      ++stats_.reused;
    } else {
      out = std::make_shared<std::vector<double>>();
      out->reserve(n);
      leased_.push_back(out);
      ++stats_.allocated;
      if (m_allocated_) m_allocated_->inc();
    }
    if (!fresh && m_reused_) m_reused_->inc();
    if (fresh) hook = alloc_hook_;
    journal = journal_;
    jname = jname_;
  }
  out->assign(n, 0.0);  // within capacity on the reuse path
  if (journal) {
    journal->record(obs::JournalKind::kSlabLeased, 0, -1, -1,
                    static_cast<std::int64_t>(n), fresh ? 1 : 0, jname);
  }
  if (hook) hook(n);
  return out;
}

SlabPool::Stats SlabPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  for (const std::shared_ptr<std::vector<double>>& v : leased_) {
    if (v.use_count() > 1) ++s.outstanding;
  }
  return s;
}

void SlabPool::set_alloc_hook(std::function<void(std::size_t)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  alloc_hook_ = std::move(hook);
}

void SlabPool::bind_metrics(obs::Counter* allocated, obs::Counter* reused) {
  std::lock_guard<std::mutex> lock(mu_);
  m_allocated_ = allocated;
  m_reused_ = reused;
}

void SlabPool::bind_journal(obs::Journal* journal, std::uint32_t name_id) {
  std::lock_guard<std::mutex> lock(mu_);
  journal_ = journal;
  jname_ = name_id;
}

}  // namespace nup::pipeline
