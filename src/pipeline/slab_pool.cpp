#include "pipeline/slab_pool.hpp"

#include <algorithm>

namespace nup::pipeline {

namespace {

std::int64_t capacity_bytes(const std::vector<double>& v) {
  return static_cast<std::int64_t>(v.capacity()) *
         static_cast<std::int64_t>(sizeof(double));
}

}  // namespace

SlabPool::SlabPool(std::size_t arenas)
    : arenas_(std::max<std::size_t>(arenas, 1)),
      free_(arenas_),
      leased_(arenas_) {}

std::vector<double> SlabPool::take(std::size_t n, std::size_t arena) {
  std::vector<double> out;
  bool fresh = true;
  std::function<void(std::size_t)> hook;
  obs::Gauge* resident = nullptr;
  std::int64_t resident_now = 0;
  obs::Journal* journal = nullptr;
  std::uint32_t jname = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::vector<double>>& free = free_[clamp_arena(arena)];
    // Prefer the smallest free vector that still fits: large slabs stay
    // available for large requests instead of being burned on small ones.
    std::size_t best = free.size();
    for (std::size_t k = 0; k < free.size(); ++k) {
      if (free[k].capacity() < n) continue;
      if (best == free.size() ||
          free[k].capacity() < free[best].capacity()) {
        best = k;
      }
    }
    if (best < free.size()) {
      out = std::move(free[best]);
      free[best] = std::move(free.back());
      free.pop_back();
      resident_bytes_ -= capacity_bytes(out);
      fresh = false;
      ++stats_.reused;
    } else {
      ++stats_.allocated;
      if (m_allocated_) m_allocated_->inc();
    }
    if (!fresh && m_reused_) m_reused_->inc();
    ++stats_.outstanding;
    if (fresh) hook = alloc_hook_;
    resident = m_resident_;
    resident_now = resident_bytes_;
    journal = journal_;
    jname = jname_;
  }
  out.resize(n);  // within capacity on the reuse path: no allocation
  if (resident) resident->set(resident_now);
  if (journal) {
    journal->record(obs::JournalKind::kSlabLeased, 0, -1, -1,
                    static_cast<std::int64_t>(n), fresh ? 1 : 0, jname);
  }
  if (hook) hook(n);
  return out;
}

void SlabPool::give(std::vector<double>&& v, std::size_t arena) {
  if (v.capacity() == 0) return;
  const std::size_t n = v.size();
  obs::Gauge* resident = nullptr;
  std::int64_t resident_now = 0;
  obs::Journal* journal = nullptr;
  std::uint32_t jname = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --stats_.outstanding;
    resident_bytes_ += capacity_bytes(v);
    free_[clamp_arena(arena)].push_back(std::move(v));
    resident = m_resident_;
    resident_now = resident_bytes_;
    journal = journal_;
    jname = jname_;
  }
  if (resident) resident->set(resident_now);
  if (journal) {
    journal->record(obs::JournalKind::kSlabRecycled, 0, -1, -1,
                    static_cast<std::int64_t>(n), 0, jname);
  }
}

std::shared_ptr<std::vector<double>> SlabPool::lease(std::size_t n,
                                                     std::size_t arena) {
  std::shared_ptr<std::vector<double>> out;
  bool fresh = true;
  std::function<void(std::size_t)> hook;
  obs::Gauge* resident = nullptr;
  std::int64_t resident_now = 0;
  obs::Journal* journal = nullptr;
  std::uint32_t jname = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::shared_ptr<std::vector<double>>>& leased =
        leased_[clamp_arena(arena)];
    // A leased buffer is recyclable once the pool holds the only
    // reference. use_count can only have decayed to one -- nobody but the
    // pool can mint new references -- so the test is race-free: a stale
    // reading merely skips a buffer that becomes reusable next time.
    std::size_t best = leased.size();
    for (std::size_t k = 0; k < leased.size(); ++k) {
      if (leased[k].use_count() != 1 || leased[k]->capacity() < n) {
        continue;
      }
      if (best == leased.size() ||
          leased[k]->capacity() < leased[best]->capacity()) {
        best = k;
      }
    }
    if (best < leased.size()) {
      out = leased[best];
      fresh = false;
      ++stats_.reused;
    } else {
      out = std::make_shared<std::vector<double>>();
      out->reserve(n);
      resident_bytes_ += capacity_bytes(*out);
      leased.push_back(out);
      ++stats_.allocated;
      if (m_allocated_) m_allocated_->inc();
    }
    if (!fresh && m_reused_) m_reused_->inc();
    if (fresh) hook = alloc_hook_;
    resident = m_resident_;
    resident_now = resident_bytes_;
    journal = journal_;
    jname = jname_;
  }
  out->assign(n, 0.0);  // within capacity on the reuse path
  if (resident) resident->set(resident_now);
  if (journal) {
    journal->record(obs::JournalKind::kSlabLeased, 0, -1, -1,
                    static_cast<std::int64_t>(n), fresh ? 1 : 0, jname);
  }
  if (hook) hook(n);
  return out;
}

SlabPool::Stats SlabPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  for (const auto& leased : leased_) {
    for (const std::shared_ptr<std::vector<double>>& v : leased) {
      if (v.use_count() > 1) ++s.outstanding;
    }
  }
  return s;
}

std::int64_t SlabPool::live_slabs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t n = stats_.outstanding;
  for (const auto& free : free_) {
    n += static_cast<std::int64_t>(free.size());
  }
  for (const auto& leased : leased_) {
    n += static_cast<std::int64_t>(leased.size());
  }
  return n;
}

std::int64_t SlabPool::bytes_resident() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

void SlabPool::bind_resident_gauge(obs::Gauge* gauge) {
  std::lock_guard<std::mutex> lock(mu_);
  m_resident_ = gauge;
}

void SlabPool::set_alloc_hook(std::function<void(std::size_t)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  alloc_hook_ = std::move(hook);
}

void SlabPool::bind_metrics(obs::Counter* allocated, obs::Counter* reused) {
  std::lock_guard<std::mutex> lock(mu_);
  m_allocated_ = allocated;
  m_reused_ = reused;
}

void SlabPool::bind_journal(obs::Journal* journal, std::uint32_t name_id) {
  std::lock_guard<std::mutex> lock(mu_);
  journal_ = journal;
  jname_ = name_id;
}

}  // namespace nup::pipeline
