#include "pipeline/dependency.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nup::pipeline {

namespace {

bool boxes_overlap(const poly::IntVec& alo, const poly::IntVec& ahi,
                   const poly::IntVec& blo, const poly::IntVec& bhi) {
  for (std::size_t d = 0; d < alo.size(); ++d) {
    if (ahi[d] < blo[d] || bhi[d] < alo[d]) return false;
  }
  return true;
}

/// True when the producer tile's clipped iteration domain meets the hull
/// box. The tile box test is the common-case answer (rectangular domains
/// tile into boxes); only sheared/triangular tiles pay for the polyhedral
/// intersection.
bool tile_covers(const runtime::Tile& producer, const poly::IntVec& hull_lo,
                 const poly::IntVec& hull_hi) {
  if (!boxes_overlap(producer.lo, producer.hi, hull_lo, hull_hi)) {
    return false;
  }
  const poly::Domain& domain = producer.program->iteration();
  {
    poly::IntVec lo, hi;
    if (domain.as_single_box(&lo, &hi)) return true;  // box test was exact
  }
  const poly::Polyhedron hull = poly::Polyhedron::box(hull_lo, hull_hi);
  for (const poly::Polyhedron& piece : domain.pieces()) {
    if (!poly::Domain(piece.intersected(hull)).empty()) return true;
  }
  return false;
}

}  // namespace

EdgeTileMap map_tile_dependencies(const runtime::TilePlan& producer_plan,
                                  const runtime::TilePlan& consumer_plan,
                                  std::size_t input_index) {
  EdgeTileMap map;
  map.producers_of.resize(consumer_plan.tiles.size());
  map.consumers_of.resize(producer_plan.tiles.size());

  for (std::size_t c = 0; c < consumer_plan.tiles.size(); ++c) {
    const runtime::Tile& consumer = consumer_plan.tiles[c];
    if (input_index >= consumer.input_hulls.size()) {
      throw Error("map_tile_dependencies: input index out of range");
    }
    poly::IntVec hull_lo, hull_hi;
    if (!consumer.input_hulls[input_index].as_single_box(&hull_lo,
                                                         &hull_hi)) {
      throw Error("map_tile_dependencies: consumer hull is not a box");
    }
    for (std::size_t p = 0; p < producer_plan.tiles.size(); ++p) {
      if (tile_covers(producer_plan.tiles[p], hull_lo, hull_hi)) {
        map.producers_of[c].push_back(p);
        map.consumers_of[p].push_back(c);
      }
    }
  }
  return map;
}

DependencyTracker::DependencyTracker(
    const StageGraph& graph,
    const std::vector<std::shared_ptr<const EdgeTileMap>>& edge_maps,
    const std::vector<std::size_t>& tiles_per_stage, bool barrier)
    : graph_(&graph), maps_(edge_maps), barrier_(barrier) {
  if (maps_.size() != graph.edges().size() ||
      tiles_per_stage.size() != graph.stage_count()) {
    throw Error("DependencyTracker: size mismatch with graph");
  }
  waits_.resize(graph.stage_count());
  for (std::size_t s = 0; s < graph.stage_count(); ++s) {
    waits_[s].assign(tiles_per_stage[s], 0);
  }
  if (barrier_) {
    // Every consumer tile waits for each in-edge's producer frame as a
    // whole: one unit per in-edge, decremented when the edge's last
    // producer tile resolves.
    producer_left_.resize(graph.edges().size());
    for (std::size_t e = 0; e < graph.edges().size(); ++e) {
      const StageEdge& edge = graph.edges()[e];
      producer_left_[e].assign(
          1, static_cast<std::int64_t>(tiles_per_stage[edge.producer]));
      for (std::int64_t& w : waits_[edge.consumer]) ++w;
    }
  } else {
    for (std::size_t e = 0; e < graph.edges().size(); ++e) {
      const StageEdge& edge = graph.edges()[e];
      const EdgeTileMap& map = *maps_[e];
      for (std::size_t c = 0; c < map.producers_of.size(); ++c) {
        waits_[edge.consumer][c] +=
            static_cast<std::int64_t>(map.producers_of[c].size());
      }
    }
  }
}

std::vector<DependencyTracker::Ready> DependencyTracker::initially_ready()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Ready> ready;
  for (std::size_t s = 0; s < waits_.size(); ++s) {
    for (std::size_t t = 0; t < waits_[s].size(); ++t) {
      if (waits_[s][t] == 0) ready.push_back(Ready{s, t});
    }
  }
  return ready;
}

std::vector<DependencyTracker::Ready> DependencyTracker::resolve(
    std::size_t stage, std::size_t tile) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Ready> ready;
  for (const std::size_t e : graph_->stages()[stage].out_edges) {
    const StageEdge& edge = graph_->edges()[e];
    if (barrier_) {
      if (--producer_left_[e][0] > 0) continue;
      for (std::size_t c = 0; c < waits_[edge.consumer].size(); ++c) {
        if (--waits_[edge.consumer][c] == 0) {
          ready.push_back(Ready{edge.consumer, c});
        }
      }
    } else {
      for (const std::size_t c : maps_[e]->consumers_of[tile]) {
        if (--waits_[edge.consumer][c] == 0) {
          ready.push_back(Ready{edge.consumer, c});
        }
      }
    }
  }
  return ready;
}

}  // namespace nup::pipeline
