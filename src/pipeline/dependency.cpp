#include "pipeline/dependency.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nup::pipeline {

namespace {

bool boxes_overlap(const poly::IntVec& alo, const poly::IntVec& ahi,
                   const poly::IntVec& blo, const poly::IntVec& bhi) {
  for (std::size_t d = 0; d < alo.size(); ++d) {
    if (ahi[d] < blo[d] || bhi[d] < alo[d]) return false;
  }
  return true;
}

/// True when the producer tile's clipped iteration domain meets the hull
/// box. The tile box test is the common-case answer (rectangular domains
/// tile into boxes); only sheared/triangular tiles pay for the polyhedral
/// intersection.
bool tile_covers(const runtime::Tile& producer, const poly::IntVec& hull_lo,
                 const poly::IntVec& hull_hi) {
  if (!boxes_overlap(producer.lo, producer.hi, hull_lo, hull_hi)) {
    return false;
  }
  const poly::Domain& domain = producer.program->iteration();
  {
    poly::IntVec lo, hi;
    if (domain.as_single_box(&lo, &hi)) return true;  // box test was exact
  }
  const poly::Polyhedron hull = poly::Polyhedron::box(hull_lo, hull_hi);
  for (const poly::Polyhedron& piece : domain.pieces()) {
    if (!poly::Domain(piece.intersected(hull)).empty()) return true;
  }
  return false;
}

}  // namespace

EdgeTileMap map_tile_dependencies(const runtime::TilePlan& producer_plan,
                                  const runtime::TilePlan& consumer_plan,
                                  std::size_t input_index) {
  EdgeTileMap map;
  map.producers_of.resize(consumer_plan.tiles.size());
  map.consumers_of.resize(producer_plan.tiles.size());

  for (std::size_t c = 0; c < consumer_plan.tiles.size(); ++c) {
    const runtime::Tile& consumer = consumer_plan.tiles[c];
    if (input_index >= consumer.input_hulls.size()) {
      throw Error("map_tile_dependencies: input index out of range");
    }
    poly::IntVec hull_lo, hull_hi;
    if (!consumer.input_hulls[input_index].as_single_box(&hull_lo,
                                                         &hull_hi)) {
      throw Error("map_tile_dependencies: consumer hull is not a box");
    }
    for (std::size_t p = 0; p < producer_plan.tiles.size(); ++p) {
      if (tile_covers(producer_plan.tiles[p], hull_lo, hull_hi)) {
        map.producers_of[c].push_back(p);
        map.consumers_of[p].push_back(c);
      }
    }
  }
  return map;
}

DependencyTracker::DependencyTracker(
    const StageGraph& graph,
    const std::vector<std::shared_ptr<const EdgeTileMap>>& edge_maps,
    const std::vector<std::size_t>& tiles_per_stage, bool barrier)
    : graph_(&graph), maps_(edge_maps), barrier_(barrier) {
  if (maps_.size() != graph.edges().size() ||
      tiles_per_stage.size() != graph.stage_count()) {
    throw Error("DependencyTracker: size mismatch with graph");
  }
  baseline_waits_.resize(graph.stage_count());
  for (std::size_t s = 0; s < graph.stage_count(); ++s) {
    baseline_waits_[s].assign(tiles_per_stage[s], 0);
  }
  if (barrier_) {
    // Every consumer tile waits for each in-edge's producer frame as a
    // whole: one unit per in-edge, decremented when the edge's last
    // producer tile resolves.
    baseline_producer_left_.resize(graph.edges().size());
    for (std::size_t e = 0; e < graph.edges().size(); ++e) {
      const StageEdge& edge = graph.edges()[e];
      baseline_producer_left_[e] =
          static_cast<std::int64_t>(tiles_per_stage[edge.producer]);
      for (std::int64_t& w : baseline_waits_[edge.consumer]) ++w;
    }
  } else {
    for (std::size_t e = 0; e < graph.edges().size(); ++e) {
      const StageEdge& edge = graph.edges()[e];
      const EdgeTileMap& map = *maps_[e];
      for (std::size_t c = 0; c < map.producers_of.size(); ++c) {
        baseline_waits_[edge.consumer][c] +=
            static_cast<std::int64_t>(map.producers_of[c].size());
      }
    }
  }
}

DependencyTracker::FrameSlot& DependencyTracker::slot_locked(
    std::uint64_t frame) {
  for (FrameSlot& slot : slots_) {
    if (slot.active && slot.frame == frame) return slot;
  }
  throw Error("DependencyTracker: frame " + std::to_string(frame) +
              " is not armed");
}

std::vector<DependencyTracker::Ready> DependencyTracker::arm(
    std::uint64_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  FrameSlot* slot = nullptr;
  for (FrameSlot& s : slots_) {
    if (s.active && s.frame == frame) {
      throw Error("DependencyTracker: frame " + std::to_string(frame) +
                  " armed twice");
    }
    if (!s.active && !slot) slot = &s;
  }
  if (!slot) {
    slots_.emplace_back();
    slot = &slots_.back();
    slot->waits.resize(baseline_waits_.size());
  }
  slot->frame = frame;
  slot->active = true;
  // Slot reuse keeps the countdown storage: assign() into equal-sized
  // vectors copies values without touching the heap.
  for (std::size_t s = 0; s < baseline_waits_.size(); ++s) {
    slot->waits[s].assign(baseline_waits_[s].begin(),
                          baseline_waits_[s].end());
  }
  slot->producer_left.assign(baseline_producer_left_.begin(),
                             baseline_producer_left_.end());

  std::vector<Ready> ready;
  for (std::size_t s = 0; s < slot->waits.size(); ++s) {
    for (std::size_t t = 0; t < slot->waits[s].size(); ++t) {
      if (slot->waits[s][t] == 0) ready.push_back(Ready{frame, s, t});
    }
  }
  return ready;
}

std::vector<DependencyTracker::Ready> DependencyTracker::resolve(
    std::uint64_t frame, std::size_t stage, std::size_t tile) {
  std::lock_guard<std::mutex> lock(mu_);
  FrameSlot& slot = slot_locked(frame);
  std::vector<Ready> ready;
  for (const std::size_t e : graph_->stages()[stage].out_edges) {
    const StageEdge& edge = graph_->edges()[e];
    if (barrier_) {
      if (--slot.producer_left[e] > 0) continue;
      for (std::size_t c = 0; c < slot.waits[edge.consumer].size(); ++c) {
        if (--slot.waits[edge.consumer][c] == 0) {
          ready.push_back(Ready{frame, edge.consumer, c});
        }
      }
    } else {
      for (const std::size_t c : maps_[e]->consumers_of[tile]) {
        if (--slot.waits[edge.consumer][c] == 0) {
          ready.push_back(Ready{frame, edge.consumer, c});
        }
      }
    }
  }
  return ready;
}

void DependencyTracker::retire(std::uint64_t frame) {
  std::lock_guard<std::mutex> lock(mu_);
  slot_locked(frame).active = false;
}

std::size_t DependencyTracker::frames_armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::size_t>(
      std::count_if(slots_.begin(), slots_.end(),
                    [](const FrameSlot& s) { return s.active; }));
}

}  // namespace nup::pipeline
