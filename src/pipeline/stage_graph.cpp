#include "pipeline/stage_graph.hpp"

#include <algorithm>
#include <deque>

#include "stencil/fuse.hpp"
#include "util/error.hpp"

namespace nup::pipeline {

std::size_t StageGraph::add_stage(stencil::StencilProgram program) {
  stages_.push_back(Stage{std::move(program), {}, {}});
  return stages_.size() - 1;
}

std::size_t StageGraph::add_edge(std::size_t producer, std::size_t consumer,
                                 std::size_t input) {
  return add_edge(producer, consumer, input, EdgePolicy{});
}

std::size_t StageGraph::add_edge(std::size_t producer, std::size_t consumer,
                                 std::size_t input, EdgePolicy policy) {
  if (producer >= stages_.size() || consumer >= stages_.size()) {
    throw Error("StageGraph::add_edge: stage id out of range");
  }
  if (producer == consumer) {
    throw Error("StageGraph::add_edge: stage '" +
                stages_[producer].program.name() + "' cannot feed itself");
  }
  const stencil::StencilProgram& cp = stages_[consumer].program;
  if (input >= cp.inputs().size()) {
    throw Error("StageGraph::add_edge: stage '" + cp.name() + "' has no "
                "input " + std::to_string(input));
  }
  if (edge_into(consumer, input) != npos) {
    throw Error("StageGraph::add_edge: input " + std::to_string(input) +
                " of stage '" + cp.name() + "' is already fed");
  }

  StageEdge edge;
  edge.policy = policy;
  const stencil::StencilProgram& pp = stages_[producer].program;
  if (stencil::is_containment_policy(policy.boundary)) {
    stencil::check_stage_window(pp, cp, input);
  } else {
    if (pp.dim() != cp.dim()) {
      throw stencil::FuseDimensionError(
          "StageGraph::add_edge: stage '" + pp.name() + "' is " +
          std::to_string(pp.dim()) + "-D but '" + cp.name() + "' is " +
          std::to_string(cp.dim()) + "-D");
    }
    if (!pp.iteration().as_single_box(&edge.producer_lo,
                                      &edge.producer_hi)) {
      throw stencil::FuseDomainError(
          "StageGraph::add_edge: boundary policy '" +
          std::string(stencil::to_string(policy.boundary)) +
          "' needs producer '" + pp.name() +
          "' to iterate an axis-aligned box, got " +
          pp.iteration().to_string());
    }
  }
  edge.producer = producer;
  edge.consumer = consumer;
  edge.input = input;
  edge.label =
      "s" + std::to_string(producer) + "_to_s" + std::to_string(consumer);
  const std::size_t dim = cp.dim();
  edge.window_lo.assign(dim, 0);
  edge.window_hi.assign(dim, 0);
  for (const stencil::ArrayReference& ref : cp.inputs()[input].refs) {
    for (std::size_t d = 0; d < dim; ++d) {
      edge.window_lo[d] = std::min(edge.window_lo[d], ref.offset[d]);
      edge.window_hi[d] = std::max(edge.window_hi[d], ref.offset[d]);
    }
  }

  const std::size_t id = edges_.size();
  edges_.push_back(std::move(edge));
  stages_[producer].out_edges.push_back(id);
  stages_[consumer].in_edges.push_back(id);
  return id;
}

StageGraph StageGraph::chain(
    std::span<const stencil::StencilProgram> stages) {
  if (stages.empty()) throw Error("StageGraph::chain: no stages");
  StageGraph graph;
  for (const stencil::StencilProgram& stage : stages) {
    if (stage.inputs().size() != 1) {
      throw stencil::FuseArityError(
          "StageGraph::chain: stage '" + stage.name() + "' reads " +
          std::to_string(stage.inputs().size()) +
          " arrays; only single-input stages chain");
    }
    graph.add_stage(stage);
  }
  for (std::size_t k = 0; k + 1 < stages.size(); ++k) {
    graph.add_edge(k, k + 1, 0);
  }
  return graph;
}

std::vector<std::size_t> StageGraph::schedule() const {
  std::vector<std::size_t> in_degree(stages_.size(), 0);
  for (const StageEdge& edge : edges_) ++in_degree[edge.consumer];

  std::deque<std::size_t> frontier;
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    if (in_degree[s] == 0) frontier.push_back(s);
  }
  std::vector<std::size_t> order;
  order.reserve(stages_.size());
  while (!frontier.empty()) {
    const std::size_t s = frontier.front();
    frontier.pop_front();
    order.push_back(s);
    for (const std::size_t e : stages_[s].out_edges) {
      if (--in_degree[edges_[e].consumer] == 0) {
        frontier.push_back(edges_[e].consumer);
      }
    }
  }
  if (order.size() != stages_.size()) {
    for (std::size_t s = 0; s < stages_.size(); ++s) {
      if (in_degree[s] > 0) {
        throw Error("StageGraph::schedule: cycle through stage '" +
                    stages_[s].program.name() + "'");
      }
    }
  }
  return order;
}

std::vector<std::size_t> StageGraph::sinks() const {
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    if (stages_[s].out_edges.empty()) out.push_back(s);
  }
  return out;
}

std::size_t StageGraph::edge_into(std::size_t stage,
                                  std::size_t input) const {
  for (const std::size_t e : stages_[stage].in_edges) {
    if (edges_[e].input == input) return e;
  }
  return npos;
}

}  // namespace nup::pipeline
