#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/builder.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "pipeline/stage_buffer.hpp"
#include "pipeline/stage_graph.hpp"
#include "poly/int_vec.hpp"
#include "runtime/engine.hpp"
#include "sim/simulator.hpp"

namespace nup::pipeline {

namespace detail {
struct FrameCtx;
}

struct PipelineOptions {
  /// Instance label: stage engines publish as engine.<name>.s<k>.*, edge
  /// buffers as pipeline.edge.<name>.<label>.*. Empty uses engine.s<k>.*
  /// and pipeline.edge.<label>.* (one anonymous pipeline per process).
  std::string name;

  /// Worker threads per stage engine; 0 divides the hardware threads
  /// evenly over the stages (at least 1 each).
  std::size_t threads_per_stage = 0;

  /// Tile queue bound of each stage engine: the cross-stage backpressure
  /// window. An upstream worker releasing into a full consumer queue
  /// blocks until the consumer drains.
  std::size_t queue_capacity = 16;

  poly::IntVec tile_shape;       ///< per-stage tiler shape (empty = auto)
  arch::BuildOptions build;      ///< microarchitecture generation options
  std::size_t cache_capacity = 256;  ///< per-stage design cache capacity
  obs::Registry* metrics = nullptr;  ///< nullptr = obs::Registry::global()
  /// Flight recorder the pipeline (and its stage engines, edge slab
  /// pools) journals into; nullptr = obs::Journal::global().
  obs::Journal* journal = nullptr;
  sim::SimOptions sim;

  /// Frame-barrier baseline: every consumer tile waits for the producer
  /// frame to finish. Same engines, buffers, and stitching -- only the
  /// dependency structure changes -- so benchmarks compare scheduling
  /// policies, not implementations.
  bool barrier = false;

  /// Cross-frame admission window: how many pipelined frames may be in
  /// flight at once. submit() blocks while the window is full, so a
  /// caller pumping frames in a loop overlaps frame f+1's source tiles
  /// with frame f's drain -- the source stage never idles between frames.
  /// 1 is frame-serial (a frame is admitted only after the previous one
  /// fully resolves); 0 removes the bound (every submitted frame is
  /// admitted immediately -- unbounded buffer occupancy, use with care).
  std::size_t max_frames_in_flight = 4;

  /// Locality policy handed to every stage engine (see
  /// runtime::EngineOptions::numa). When on, each edge's SlabPool is
  /// split into per-node arenas and StageBuffers route slabs through the
  /// producer tile's arena, so inter-stage storage recycles node-locally.
  runtime::NumaMode numa = runtime::NumaMode::kOff;
};

/// Per-submit hooks of one pipelined frame. The empty default reproduces
/// submit(seed) exactly: external inputs stream synthetic data derived
/// from the seed.
struct FrameOptions {
  /// Replaces the off-chip feed of one external (edge-less) stage input:
  /// called per tile from the executing worker thread; a non-null return
  /// is installed instead of the synthetic DRAM. This is how the temporal
  /// runner chains passes -- pass p+1's first replica streams pass p's
  /// sink output instead of fresh synthetic data. Edge-fed inputs are
  /// never offered (their data comes from the stage buffers).
  std::function<std::shared_ptr<sim::ExternalFeed>(
      std::size_t stage, std::size_t input, const runtime::Tile& tile)>
      external_feed;

  /// Causal trace identity of the frame; 0 allocates a fresh process-wide
  /// id (obs::next_frame_id). The temporal runner passes one id through
  /// every pass of an iterative frame so the whole chain renders as a
  /// single flow lane.
  std::uint64_t frame_id = 0;

  /// When true (default) the pipeline owns the frame's trace lane
  /// (async begin/end, flow start/end) and the cancellation post-mortem.
  /// The temporal runner sets false and owns both at frame granularity.
  bool own_frame_events = true;
};

/// Milestones of one stage within a pipelined frame, relative to submit.
struct StageTiming {
  std::int64_t first_tile_us = -1;  ///< first tile resolved ok (-1 = none)
  std::int64_t last_tile_us = -1;   ///< last tile resolved ok
};

/// The assembled result of one pipelined frame.
struct PipelineResult {
  std::uint64_t seed = 0;
  bool cancelled = false;
  std::string error;  ///< first stage error, prefixed with the stage name

  /// Per-stage frame results, in stage-id order. Outputs of stage k are
  /// bit-identical to running the stage alone on its stitched inputs;
  /// sink-stage outputs are the pipeline's results.
  std::vector<runtime::FrameResult> stages;
  std::vector<StageTiming> timing;            ///< per stage
  std::vector<StageBuffer::Occupancy> edges;  ///< per edge, frame totals
  std::int64_t total_us = 0;  ///< submit to last tile resolution

  bool ok() const { return !cancelled && error.empty(); }
};

/// Future of a submitted pipelined frame (cheap shared reference).
class PipelineHandle {
 public:
  PipelineHandle() = default;

  bool valid() const { return ctx_ != nullptr; }

  /// Blocks until every stage resolves, then assembles (once) and returns
  /// the result; never blocks forever (cancellation and executor shutdown
  /// resolve all stages).
  const PipelineResult& wait();

  bool wait_for(std::chrono::milliseconds timeout);
  bool done() const;

  /// Aborts the frame: all stage frames are cancelled and every tile not
  /// yet handed to a worker resolves as skipped. Idempotent.
  void cancel();

 private:
  friend class PipelineExecutor;
  explicit PipelineHandle(std::shared_ptr<detail::FrameCtx> ctx);
  std::shared_ptr<detail::FrameCtx> ctx_;
};

/// Tile-granular dataflow scheduler over a StageGraph: one FrameEngine per
/// stage (its tile designs pinned in the stage's cache), one deferred
/// frame per stage per submitted seed, and a DependencyTracker releasing
/// each consumer tile the moment the producer tiles covering its halo have
/// resolved. Stage k+1 starts consuming while stage k is still producing;
/// inter-stage data moves through bounded StageBuffers that retire
/// producer tiles as soon as their last consumer is served.
///
/// Successive frames pipeline across the same engines: frames are
/// data-independent, so while frame f's sink tiles drain, frame f+1's
/// source tiles already run in whatever workers go idle, up to
/// max_frames_in_flight frames at once (the admission window -- submit()
/// blocks while it is full). Steady state re-arms live engines over the
/// plans and pinned designs resolved at construction and recycles all
/// inter-stage slab storage through per-edge SlabPools, so pumping frames
/// performs no per-tile heap allocation and no design-cache lookups.
class PipelineExecutor {
 public:
  enum class Drain {
    kDrainAll,       ///< finish every in-flight frame before stopping
    kCancelPending,  ///< abort in-flight frames, then stop
  };

  explicit PipelineExecutor(StageGraph graph, PipelineOptions options = {});
  ~PipelineExecutor();  // shutdown(kCancelPending) if still running

  PipelineExecutor(const PipelineExecutor&) = delete;
  PipelineExecutor& operator=(const PipelineExecutor&) = delete;

  /// Starts one frame: every external input array streams synthetic data
  /// derived from `seed` (exactly as a standalone engine frame would), and
  /// edge-fed inputs stream upstream output. Source-stage tiles are
  /// released immediately; the rest follow their dependencies. Throws
  /// Error after shutdown.
  PipelineHandle submit(std::uint64_t seed);

  /// submit with per-frame hooks (external-input feed override); see
  /// FrameOptions.
  PipelineHandle submit(std::uint64_t seed, FrameOptions frame);

  /// Atomically admits a whole group of frames under the admission window:
  /// blocks until frames_active + seeds.size() fits, reserves every slot
  /// in one critical section, then submits the seeds back-to-back -- no
  /// concurrent submitter can interleave its frame between two frames of
  /// the group. The serving layer admits a design-affinity batch this way,
  /// so the batch occupies the window as a unit and drains together.
  /// `frames` supplies per-frame hooks positionally (empty = defaults; any
  /// other size mismatch throws). Throws Error when a non-zero window is
  /// smaller than the group (it could never be admitted) or after
  /// shutdown. An empty group returns no handles without blocking.
  std::vector<PipelineHandle> submit_group(
      const std::vector<std::uint64_t>& seeds,
      std::vector<FrameOptions> frames = {});

  const StageGraph& graph() const;

  /// The per-stage engine (for stats; stage id = graph stage id).
  runtime::FrameEngine& engine(std::size_t stage);

  void shutdown(Drain mode = Drain::kDrainAll);

 private:
  friend class PipelineHandle;
  friend struct detail::FrameCtx;
  /// Shared submit path; `reserved` marks a window slot already claimed by
  /// submit_group (the admission wait and frames_active increment are
  /// skipped).
  PipelineHandle submit_internal(std::uint64_t seed, FrameOptions frame,
                                 bool reserved);
  struct Impl;
  std::shared_ptr<Impl> impl_;  ///< shared: aborts may outlive shutdown
};

}  // namespace nup::pipeline
