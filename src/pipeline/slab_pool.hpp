#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"

namespace nup::pipeline {

/// Free-list arena for the double buffers the inter-stage machinery churns
/// through: producer output slabs (exclusively owned by a StageBuffer
/// until retirement) and stitched consumer slices (shared with the
/// executing tile's SliceFeed until the tile resolves). One pool per edge,
/// shared by every frame crossing that edge, so after the first frame has
/// warmed the free lists the steady state performs zero heap allocations
/// per tile -- the property the cross-frame pipeline's zero-allocation hot
/// path rests on, asserted through the allocation-counting hook.
///
/// Thread-safe: producer and consumer stage workers of any number of
/// in-flight frames call in concurrently.
///
/// Arenas: the pool is optionally split into per-node free lists
/// (`SlabPool(nodes)`), one per memory node of the engine's topology.
/// take/give/lease then carry the arena index of the tile's placed node,
/// so a slab allocated (first-touched) by a node's worker recycles only
/// through that node's arena and steady-state reuse stays node-local.
/// The default single arena is the pre-locality behavior.
class SlabPool {
 public:
  /// Allocation / reuse tallies. `allocated` counts fresh heap
  /// allocations (vector storage created or grown), `reused` counts
  /// acquisitions served entirely from recycled storage; in steady state
  /// only `reused` moves.
  struct Stats {
    std::int64_t allocated = 0;
    std::int64_t reused = 0;
    std::int64_t outstanding = 0;  ///< buffers currently handed out
  };

  /// `arenas` is the number of independent free-list arenas (one per
  /// memory node); 0 is treated as 1. Out-of-range arena indices on
  /// take/give/lease clamp to the last arena.
  explicit SlabPool(std::size_t arenas = 1);
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  std::size_t arena_count() const { return arenas_; }

  /// Takes an exclusively-owned buffer of exactly `n` elements from
  /// `arena`, zero cost when a recycled vector's capacity already covers
  /// it. The contents are unspecified (callers overwrite every element).
  std::vector<double> take(std::size_t n, std::size_t arena = 0);

  /// Returns an exclusively-owned buffer to `arena`'s free list.
  void give(std::vector<double>&& v, std::size_t arena = 0);

  /// Leases a shared buffer of exactly `n` elements from `arena`,
  /// zero-filled. The pool keeps one reference; the buffer is recycled
  /// automatically once every other holder (the frame's slice table, the
  /// tile's SliceFeed) has dropped theirs -- lease() scans for entries
  /// whose use_count has fallen back to one. No control block is
  /// allocated on reuse: the shared_ptr itself is recycled with its
  /// storage.
  std::shared_ptr<std::vector<double>> lease(std::size_t n,
                                             std::size_t arena = 0);

  Stats stats() const;

  /// Buffers alive across all arenas: free-list entries, leased entries
  /// (recyclable or handed out), and exclusively-owned take() buffers not
  /// yet given back.
  std::int64_t live_slabs() const;

  /// Bytes of slab storage resident in the pool across all arenas
  /// (free-list capacity plus leased capacity). What the placement cost
  /// model charges an edge with; exposed per edge as the
  /// pool.<edge>.resident_bytes gauge.
  std::int64_t bytes_resident() const;

  /// Mirrors bytes_resident() into a registry gauge on every mutation.
  /// May be null; bind before concurrent use.
  void bind_resident_gauge(obs::Gauge* gauge);

  /// Test hook: called (outside the pool lock) with the element count of
  /// every fresh heap allocation take()/lease() performs. Install before
  /// handing the pool to concurrent users; the steady-state allocation
  /// tests install a hook that fails the test when it fires.
  void set_alloc_hook(std::function<void(std::size_t)> hook);

  /// Mirrors the allocation/reuse tallies into registry counters (the
  /// executor binds pipeline.edge.<label>.slab_{allocated,recycled}).
  /// Either pointer may be null; bind before concurrent use.
  void bind_metrics(obs::Counter* allocated, obs::Counter* reused);

  /// Journals every acquisition (kSlabLeased, a = elements, b = 1 when it
  /// hit the heap) and recycling (kSlabRecycled) under `name_id` (the
  /// executor interns its edge label). Bind before concurrent use.
  void bind_journal(obs::Journal* journal, std::uint32_t name_id);

 private:
  std::size_t clamp_arena(std::size_t arena) const {
    return arena < arenas_ ? arena : arenas_ - 1;
  }

  std::size_t arenas_ = 1;
  mutable std::mutex mu_;
  // Indexed [arena]: exclusively-owned free lists and leased entries.
  std::vector<std::vector<std::vector<double>>> free_;
  std::vector<std::vector<std::shared_ptr<std::vector<double>>>> leased_;
  Stats stats_;
  std::int64_t resident_bytes_ = 0;  ///< capacity held by free_ + leased_
  std::function<void(std::size_t)> alloc_hook_;
  obs::Counter* m_allocated_ = nullptr;
  obs::Counter* m_reused_ = nullptr;
  obs::Gauge* m_resident_ = nullptr;
  obs::Journal* journal_ = nullptr;
  std::uint32_t jname_ = 0;
};

}  // namespace nup::pipeline
