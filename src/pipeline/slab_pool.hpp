#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"

namespace nup::pipeline {

/// Free-list arena for the double buffers the inter-stage machinery churns
/// through: producer output slabs (exclusively owned by a StageBuffer
/// until retirement) and stitched consumer slices (shared with the
/// executing tile's SliceFeed until the tile resolves). One pool per edge,
/// shared by every frame crossing that edge, so after the first frame has
/// warmed the free lists the steady state performs zero heap allocations
/// per tile -- the property the cross-frame pipeline's zero-allocation hot
/// path rests on, asserted through the allocation-counting hook.
///
/// Thread-safe: producer and consumer stage workers of any number of
/// in-flight frames call in concurrently.
class SlabPool {
 public:
  /// Allocation / reuse tallies. `allocated` counts fresh heap
  /// allocations (vector storage created or grown), `reused` counts
  /// acquisitions served entirely from recycled storage; in steady state
  /// only `reused` moves.
  struct Stats {
    std::int64_t allocated = 0;
    std::int64_t reused = 0;
    std::int64_t outstanding = 0;  ///< buffers currently handed out
  };

  SlabPool() = default;
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// Takes an exclusively-owned buffer of exactly `n` elements, zero
  /// cost when a recycled vector's capacity already covers it. The
  /// contents are unspecified (callers overwrite every element).
  std::vector<double> take(std::size_t n);

  /// Returns an exclusively-owned buffer to the free list.
  void give(std::vector<double>&& v);

  /// Leases a shared buffer of exactly `n` elements, zero-filled. The
  /// pool keeps one reference; the buffer is recycled automatically once
  /// every other holder (the frame's slice table, the tile's SliceFeed)
  /// has dropped theirs -- lease() scans for entries whose use_count has
  /// fallen back to one. No control block is allocated on reuse: the
  /// shared_ptr itself is recycled with its storage.
  std::shared_ptr<std::vector<double>> lease(std::size_t n);

  Stats stats() const;

  /// Test hook: called (outside the pool lock) with the element count of
  /// every fresh heap allocation take()/lease() performs. Install before
  /// handing the pool to concurrent users; the steady-state allocation
  /// tests install a hook that fails the test when it fires.
  void set_alloc_hook(std::function<void(std::size_t)> hook);

  /// Mirrors the allocation/reuse tallies into registry counters (the
  /// executor binds pipeline.edge.<label>.slab_{allocated,recycled}).
  /// Either pointer may be null; bind before concurrent use.
  void bind_metrics(obs::Counter* allocated, obs::Counter* reused);

  /// Journals every acquisition (kSlabLeased, a = elements, b = 1 when it
  /// hit the heap) and recycling (kSlabRecycled) under `name_id` (the
  /// executor interns its edge label). Bind before concurrent use.
  void bind_journal(obs::Journal* journal, std::uint32_t name_id);

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<double>> free_;                    // take()/give()
  std::vector<std::shared_ptr<std::vector<double>>> leased_; // lease()
  Stats stats_;
  std::function<void(std::size_t)> alloc_hook_;
  obs::Counter* m_allocated_ = nullptr;
  obs::Counter* m_reused_ = nullptr;
  obs::Journal* journal_ = nullptr;
  std::uint32_t jname_ = 0;
};

}  // namespace nup::pipeline
