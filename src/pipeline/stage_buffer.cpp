#include "pipeline/stage_buffer.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nup::pipeline {

namespace {

std::vector<std::int64_t> row_major_strides(const poly::IntVec& lo,
                                            const poly::IntVec& hi) {
  std::vector<std::int64_t> strides(lo.size(), 1);
  for (std::size_t d = lo.size(); d-- > 1;) {
    strides[d - 1] = strides[d] * (hi[d] - lo[d] + 1);
  }
  return strides;
}

std::int64_t box_index(const poly::IntVec& point, const poly::IntVec& lo,
                       const std::vector<std::int64_t>& strides) {
  std::int64_t idx = 0;
  for (std::size_t d = 0; d < point.size(); ++d) {
    idx += (point[d] - lo[d]) * strides[d];
  }
  return idx;
}

bool in_box(const poly::IntVec& point, const poly::IntVec& lo,
            const poly::IntVec& hi) {
  for (std::size_t d = 0; d < point.size(); ++d) {
    if (point[d] < lo[d] || point[d] > hi[d]) return false;
  }
  return true;
}

}  // namespace

SliceFeed::SliceFeed(Slice slice)
    : slice_(std::move(slice)),
      strides_(row_major_strides(slice_.lo, slice_.hi)) {}

double SliceFeed::read(const poly::IntVec& h) {
  if (!in_box(h, slice_.lo, slice_.hi)) return 0.0;
  return (*slice_.data)[static_cast<std::size_t>(
      box_index(h, slice_.lo, strides_))];
}

BoundaryFeed::BoundaryFeed(std::shared_ptr<sim::ExternalFeed> inner,
                           poly::IntVec lo, poly::IntVec hi,
                           stencil::BoundaryPolicy policy,
                           double constant_value)
    : inner_(std::move(inner)),
      lo_(std::move(lo)),
      hi_(std::move(hi)),
      policy_(policy),
      constant_(constant_value) {}

double BoundaryFeed::read(const poly::IntVec& h) {
  if (in_box(h, lo_, hi_)) return inner_->read(h);
  switch (policy_) {
    case stencil::BoundaryPolicy::kConstant:
      return constant_;
    case stencil::BoundaryPolicy::kClamp:
    case stencil::BoundaryPolicy::kWrap:
      return inner_->read(stencil::map_into_box(h, lo_, hi_, policy_));
    default:
      // Containment policies never read past the box; any such read is
      // hull padding the consumer's data filters discard.
      return 0.0;
  }
}

StageBuffer::StageBuffer(
    std::shared_ptr<const runtime::TilePlan> producer_plan,
    std::shared_ptr<const runtime::TilePlan> consumer_plan,
    std::shared_ptr<const EdgeTileMap> map, std::size_t input_index,
    obs::Registry& metrics, const std::string& label,
    std::shared_ptr<SlabPool> pool, poly::IntVec expand_lo,
    poly::IntVec expand_hi,
    std::shared_ptr<const runtime::PlacementPlan> producer_nodes,
    std::shared_ptr<const runtime::PlacementPlan> consumer_nodes)
    : producer_plan_(std::move(producer_plan)),
      consumer_plan_(std::move(consumer_plan)),
      map_(std::move(map)),
      input_index_(input_index),
      pool_(pool ? std::move(pool) : std::make_shared<SlabPool>()),
      producer_nodes_(std::move(producer_nodes)),
      consumer_nodes_(std::move(consumer_nodes)),
      expand_lo_(std::move(expand_lo)),
      expand_hi_(std::move(expand_hi)) {
  slabs_.resize(producer_plan_->tiles.size());
  pending_.resize(producer_plan_->tiles.size());
  for (std::size_t p = 0; p < pending_.size(); ++p) {
    pending_[p] = static_cast<std::int64_t>(map_->consumers_of[p].size());
  }
  const std::string prefix = "pipeline.edge." + label + ".";
  g_tiles_ = &metrics.gauge(prefix + "buffer_tiles");
  g_elements_ = &metrics.gauge(prefix + "buffer_elements");
  g_max_tiles_ = &metrics.gauge(prefix + "buffer_tiles_max");
  g_max_elements_ = &metrics.gauge(prefix + "buffer_elements_max");
  c_retired_ = &metrics.counter(prefix + "tiles_retired");
}

StageBuffer::~StageBuffer() {
  // Hand whatever an aborted frame left resident back to the pool and
  // drop it from the shared gauges.
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t p = 0; p < slabs_.size(); ++p) {
    if (!slabs_[p].empty()) {
      pool_->give(std::move(slabs_[p]), producer_arena(p));
    }
  }
  g_tiles_->add(-occ_.tiles);
  g_elements_->add(-occ_.elements);
}

// A slab lives in the arena of the node its producer tile was placed on
// (the worker that admitted it first-touched the storage there); stitched
// slices lease from the consumer tile's node for the same reason.
std::size_t StageBuffer::producer_arena(std::size_t tile_idx) const {
  if (!producer_nodes_ || tile_idx >= producer_nodes_->node_of.size()) {
    return 0;
  }
  return static_cast<std::size_t>(producer_nodes_->node_of[tile_idx]);
}

std::size_t StageBuffer::consumer_arena(std::size_t tile_idx) const {
  if (!consumer_nodes_ || tile_idx >= consumer_nodes_->node_of.size()) {
    return 0;
  }
  return static_cast<std::size_t>(consumer_nodes_->node_of[tile_idx]);
}

void StageBuffer::admit(std::size_t tile_idx, const double* frame_outputs) {
  const runtime::Tile& tile = producer_plan_->tiles[tile_idx];
  std::vector<double> slab =
      pool_->take(tile.output_ranks.size(), producer_arena(tile_idx));
  for (std::size_t k = 0; k < slab.size(); ++k) {
    slab[k] = frame_outputs[tile.output_ranks[k]];
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (pending_[tile_idx] == 0) {  // no consumer covers (or all skipped)
    pool_->give(std::move(slab), producer_arena(tile_idx));
    return;
  }
  const std::int64_t elems = static_cast<std::int64_t>(slab.size());
  slabs_[tile_idx] = std::move(slab);
  occ_.tiles += 1;
  occ_.elements += elems;
  occ_.max_tiles = std::max(occ_.max_tiles, occ_.tiles);
  occ_.max_elements = std::max(occ_.max_elements, occ_.elements);
  g_tiles_->add(1);
  g_elements_->add(elems);
  g_max_tiles_->update_max(occ_.max_tiles);
  g_max_elements_->update_max(occ_.max_elements);
}

Slice StageBuffer::stitch(std::size_t tile_idx) {
  const runtime::Tile& consumer = consumer_plan_->tiles[tile_idx];
  Slice slice;
  if (!consumer.input_hulls[input_index_].as_single_box(&slice.lo,
                                                        &slice.hi)) {
    throw Error("StageBuffer::stitch: consumer hull is not a box");
  }
  for (std::size_t d = 0; d < expand_lo_.size(); ++d) {
    slice.lo[d] = std::min(slice.lo[d], expand_lo_[d]);
    slice.hi[d] = std::max(slice.hi[d], expand_hi_[d]);
  }
  const std::vector<std::int64_t> strides =
      row_major_strides(slice.lo, slice.hi);
  std::int64_t total = 1;
  for (std::size_t d = 0; d < slice.lo.size(); ++d) {
    total *= slice.hi[d] - slice.lo[d] + 1;
  }
  const std::shared_ptr<std::vector<double>> data = pool_->lease(
      static_cast<std::size_t>(total), consumer_arena(tile_idx));

  std::lock_guard<std::mutex> lock(mu_);
  for (const std::size_t p : map_->producers_of[tile_idx]) {
    const runtime::Tile& producer = producer_plan_->tiles[p];
    const std::vector<double>& slab = slabs_[p];
    std::size_t k = 0;
    producer.program->iteration().for_each([&](const poly::IntVec& point) {
      if (in_box(point, slice.lo, slice.hi)) {
        (*data)[static_cast<std::size_t>(
            box_index(point, slice.lo, strides))] = slab[k];
      }
      ++k;
    });
  }
  for (const std::size_t p : map_->producers_of[tile_idx]) {
    if (--pending_[p] == 0) retire_locked(p);
  }
  slice.data = data;
  return slice;
}

void StageBuffer::release_consumer(std::size_t tile_idx) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::size_t p : map_->producers_of[tile_idx]) {
    if (--pending_[p] == 0) retire_locked(p);
  }
}

void StageBuffer::retire_locked(std::size_t producer_tile) {
  std::vector<double>& slab = slabs_[producer_tile];
  const std::int64_t elems = static_cast<std::int64_t>(slab.size());
  if (elems == 0) return;  // skipped producer: nothing was admitted
  pool_->give(std::move(slab), producer_arena(producer_tile));
  slab = {};
  occ_.tiles -= 1;
  occ_.elements -= elems;
  occ_.retired += 1;
  g_tiles_->add(-1);
  g_elements_->add(-elems);
  c_retired_->inc();
}

StageBuffer::Occupancy StageBuffer::occupancy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return occ_;
}

}  // namespace nup::pipeline
