#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "poly/int_vec.hpp"
#include "stencil/boundary.hpp"
#include "stencil/program.hpp"

namespace nup::pipeline {

/// One node of a stage DAG: a complete stencil program. Inputs that no
/// edge feeds stream synthetic off-chip data (they are the DAG's external
/// arrays); the stage's output either feeds downstream edges or is a sink
/// result.
struct Stage {
  stencil::StencilProgram program;
  std::vector<std::size_t> in_edges;   ///< edge ids feeding this stage
  std::vector<std::size_t> out_edges;  ///< edge ids this stage feeds
};

/// Boundary handling of one dataflow edge. The default (kNone) keeps the
/// classic containment contract: every consumer read stays inside the
/// producer's domain, validated at add_edge. The other policies let a
/// consumer share the producer's iteration domain -- the iterative-solver
/// shape, where generation t+1 covers the same grid as generation t -- by
/// defining the out-of-domain reads instead of forbidding them: the
/// executor wraps the edge's stitched-slice feed in a BoundaryFeed that
/// clamps/wraps coordinates into the producer's domain box or serves a
/// constant.
struct EdgePolicy {
  stencil::BoundaryPolicy boundary = stencil::BoundaryPolicy::kNone;
  double constant_value = 0.0;  ///< kConstant's Dirichlet value
};

/// One producer->consumer dataflow edge, carrying the window algebra the
/// scheduler needs: the consumer's reference window over the producer's
/// output, reduced to per-dimension halo growth (the same geometry
/// stencil::fuse sums and runtime::plan_tiles grows tile hulls by).
struct StageEdge {
  std::size_t producer = 0;
  std::size_t consumer = 0;
  /// Index of the consumer input array this edge feeds.
  std::size_t input = 0;
  /// Per-dimension min/max reference offset of the consumer's window on
  /// this input: consumer tile [lo, hi] needs producer rows
  /// [lo + window_lo, hi + window_hi].
  poly::IntVec window_lo, window_hi;
  /// Stable label ("s0_to_s1") naming the edge's metrics and trace events.
  std::string label;
  /// Boundary handling (see EdgePolicy). Containment policies carry no
  /// extra state; the others also record the producer's domain box, the
  /// region boundary coordinates map into.
  EdgePolicy policy;
  poly::IntVec producer_lo, producer_hi;  ///< box when policy remaps
};

/// The IR of a fused-stage workload: a DAG of stencil stages with
/// validated inter-stage window algebra. Stages are added first, then
/// edges; add_edge re-uses stencil::check_stage_window, so a consumer
/// reference escaping its producer's iteration domain fails at graph
/// construction with a typed FuseDomainError rather than at execution.
class StageGraph {
 public:
  /// Appends a stage; returns its id (dense, in insertion order).
  std::size_t add_stage(stencil::StencilProgram program);

  /// Connects producer's output to one input array of consumer; returns
  /// the edge id. Validates: ids in range, producer != consumer (and no
  /// path back -- cycles are rejected by schedule()), input index in
  /// range and not already fed, dimensionality match and window
  /// containment (stencil::check_stage_window).
  std::size_t add_edge(std::size_t producer, std::size_t consumer,
                       std::size_t input = 0);

  /// add_edge with explicit boundary handling. Containment policies
  /// (kNone/kShrink) behave exactly like the plain overload; the
  /// value-defining policies (kClamp/kWrap/kConstant) skip the window
  /// containment check -- out-of-domain reads are defined by the policy --
  /// but require the producer's iteration domain to be a single
  /// axis-aligned box (the region boundary coordinates map into), throwing
  /// FuseDomainError otherwise.
  std::size_t add_edge(std::size_t producer, std::size_t consumer,
                       std::size_t input, EdgePolicy policy);

  /// Builds the linear chain s0 -> s1 -> ... -> sn-1 (each stage
  /// single-input, validated like fuse_chain).
  static StageGraph chain(std::span<const stencil::StencilProgram> stages);

  const std::vector<Stage>& stages() const { return stages_; }
  const std::vector<StageEdge>& edges() const { return edges_; }
  std::size_t stage_count() const { return stages_.size(); }

  /// Topological execution order (Kahn). Throws Error when the graph has
  /// a cycle, naming a stage on it.
  std::vector<std::size_t> schedule() const;

  /// Stages with no out-edges: the DAG's results.
  std::vector<std::size_t> sinks() const;

  /// Edge id feeding (consumer stage, input array), or npos when that
  /// input is external (synthetic off-chip data).
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t edge_into(std::size_t stage, std::size_t input) const;

 private:
  std::vector<Stage> stages_;
  std::vector<StageEdge> edges_;
};

}  // namespace nup::pipeline
