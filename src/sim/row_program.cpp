#include "sim/row_program.hpp"

namespace nup::sim {

namespace {

void compile_level(const poly::Domain& domain, RowProgram& prog,
                   poly::IntVec& prefix, std::size_t level) {
  if (level + 1 == prog.dim) {
    std::vector<poly::Interval> row = domain.row_intervals(prefix);
    if (!row.empty()) prog.rows.push_back({prefix, std::move(row)});
    return;
  }
  const poly::Interval hull = domain.level_hull(prefix, level);
  if (hull.empty()) return;
  prefix.push_back(0);
  for (std::int64_t v = hull.lo; v <= hull.hi; ++v) {
    prefix.back() = v;
    compile_level(domain, prog, prefix, level + 1);
  }
  prefix.pop_back();
}

}  // namespace

RowProgram RowProgram::compile(const poly::Domain& domain) {
  RowProgram prog;
  if (!domain.has_pieces()) return prog;
  prog.dim = domain.dim();
  poly::IntVec prefix;
  prefix.reserve(prog.dim);
  compile_level(domain, prog, prefix, 0);
  return prog;
}

}  // namespace nup::sim
