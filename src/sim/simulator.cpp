#include "sim/simulator.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

#include "sim/fast.hpp"
#include "util/error.hpp"

namespace nup::sim {

namespace {

struct Token {
  poly::IntVec point;
  double value = 0.0;
};

struct FifoSim {
  std::int64_t capacity = 0;
  bool cut = false;
  std::deque<Token> tokens;
  std::int64_t max_fill = 0;
};

struct SourceSim {
  std::optional<poly::Domain::LexCursor> cursor;  // over the input domain
  std::shared_ptr<ExternalFeed> feed;
};

struct FilterSim {
  poly::Domain out_domain;  // D_Ax in filter order
  std::optional<poly::Domain::LexCursor> out_cursor;
  /// Index into SystemSim::sources when this filter heads a chain segment.
  std::optional<std::size_t> segment;
};

struct SystemSim {
  const arch::MemorySystem* design = nullptr;
  poly::Domain input_domain;
  std::vector<SourceSim> sources;
  std::vector<FifoSim> fifos;
  std::vector<FilterSim> filters;

  // Per-cycle scratch, indexed by filter.
  std::vector<bool> avail;
  std::vector<bool> match;
  std::vector<bool> advance;
  std::vector<const poly::IntVec*> cand_point;
  std::vector<Token> moved;  // token consumed by each advancing filter
};

}  // namespace

struct AcceleratorSim::Impl {
  const stencil::StencilProgram* program = nullptr;
  const arch::AcceleratorDesign* design = nullptr;
  SimOptions options;

  poly::Domain iteration;
  std::optional<poly::Domain::LexCursor> kernel_cursor;
  std::int64_t total_iterations = 0;

  std::vector<SystemSim> systems;
  std::vector<std::vector<Token>> ports;  // [system][filter] forwarded token

  std::function<void(const poly::IntVec&, double)> output_callback;

  SimResult result;
  /// Stream point presented at segment 0 of system 0 this cycle, captured
  /// before commits so traces show the element entering the chain
  /// (Table 3's "data in stream" column).
  std::string stream_point_this_cycle;
  std::int64_t cycle = 0;
  std::int64_t stall_cycles = 0;
  std::int64_t last_fire_cycle = 0;
  bool finished_reported = false;
  std::vector<double> gathered;  // kernel argument scratch

  bool done() const { return result.kernel_fires == total_iterations; }

  void prepare_cycle();
  bool evaluate_fire(SystemSim& sys) const;
  void commit_advances(SystemSim& sys, bool fire);
  void commit_kernel();
  void record_trace(bool fire);
  std::string describe_stall() const;
  bool step();
};

AcceleratorSim::AcceleratorSim(const stencil::StencilProgram& program,
                               const arch::AcceleratorDesign& design,
                               SimOptions options)
    : impl_(std::make_unique<Impl>()) {
  Impl& im = *impl_;
  im.program = &program;
  im.design = &design;
  im.options = options;
  im.iteration = program.iteration();
  im.total_iterations = im.iteration.count();

  if (design.systems.size() != program.inputs().size()) {
    throw SimulationError("design has " +
                          std::to_string(design.systems.size()) +
                          " memory systems for " +
                          std::to_string(program.inputs().size()) +
                          " input arrays");
  }

  // First pass: build all containers so nothing moves afterwards.
  im.systems.resize(design.systems.size());
  im.ports.resize(design.systems.size());
  for (std::size_t s = 0; s < design.systems.size(); ++s) {
    const arch::MemorySystem& ms = design.systems[s];
    SystemSim& sys = im.systems[s];
    sys.design = &ms;
    sys.input_domain = ms.input_domain;

    const std::size_t n = ms.filter_count();
    sys.filters.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      sys.filters[k].out_domain =
          program.iteration().translated(ms.ordered_offsets[k]);
    }
    sys.fifos.resize(ms.fifos.size());
    for (std::size_t k = 0; k < ms.fifos.size(); ++k) {
      sys.fifos[k].capacity = ms.fifos[k].depth;
      sys.fifos[k].cut = ms.fifos[k].cut;
    }
    const std::vector<std::size_t> heads = ms.segment_heads();
    sys.sources.resize(heads.size());
    for (std::size_t seg = 0; seg < heads.size(); ++seg) {
      sys.filters[heads[seg]].segment = seg;
      sys.sources[seg].feed =
          std::make_shared<SyntheticFeed>(options.seed, ms.array_index);
    }
    sys.avail.assign(n, false);
    sys.match.assign(n, false);
    sys.advance.assign(n, false);
    sys.cand_point.assign(n, nullptr);
    sys.moved.resize(n);
    im.ports[s].resize(n);
  }

  // Second pass: create cursors now that every Domain has its final
  // address.
  im.kernel_cursor.emplace(im.iteration);
  for (SystemSim& sys : im.systems) {
    for (SourceSim& src : sys.sources) {
      src.cursor.emplace(sys.input_domain);
    }
    for (FilterSim& filter : sys.filters) {
      filter.out_cursor.emplace(filter.out_domain);
    }
  }

  im.result.fifo_max_fill.resize(design.systems.size());
  im.result.filter_stall_cycles.resize(design.systems.size());
  for (std::size_t s = 0; s < design.systems.size(); ++s) {
    im.result.fifo_max_fill[s].assign(design.systems[s].fifos.size(), 0);
    im.result.filter_stall_cycles[s].assign(
        design.systems[s].filter_count(), 0);
  }
  im.gathered.resize(program.total_references());
}

AcceleratorSim::~AcceleratorSim() = default;

void AcceleratorSim::set_feed(std::size_t array_idx, std::size_t segment,
                              std::shared_ptr<ExternalFeed> feed) {
  impl_->systems.at(array_idx).sources.at(segment).feed = std::move(feed);
}

void AcceleratorSim::set_output_callback(
    std::function<void(const poly::IntVec&, double)> callback) {
  impl_->output_callback = std::move(callback);
}

bool AcceleratorSim::done() const { return impl_->done(); }

void AcceleratorSim::Impl::prepare_cycle() {
  for (SystemSim& sys : systems) {
    for (SourceSim& src : sys.sources) src.feed->tick();
  }
  stream_point_this_cycle.clear();
  if (!systems.empty() && !systems.front().sources.empty()) {
    const SourceSim& src = systems.front().sources.front();
    if (src.cursor->valid()) {
      stream_point_this_cycle = poly::to_string(src.cursor->point());
    }
  }
  for (SystemSim& sys : systems) {
    const std::size_t n = sys.filters.size();
    for (std::size_t k = 0; k < n; ++k) {
      sys.avail[k] = false;
      sys.match[k] = false;
      sys.advance[k] = false;
      sys.cand_point[k] = nullptr;
      FilterSim& filter = sys.filters[k];
      if (!filter.out_cursor->valid()) continue;  // done forwarding
      if (filter.segment.has_value()) {
        SourceSim& src = sys.sources[*filter.segment];
        if (src.cursor->valid() && src.feed->available(src.cursor->point())) {
          sys.avail[k] = true;
          sys.cand_point[k] = &src.cursor->point();
        }
      } else {
        FifoSim& fifo = sys.fifos[k - 1];
        if (!fifo.tokens.empty()) {
          sys.avail[k] = true;
          sys.cand_point[k] = &fifo.tokens.front().point;
        }
      }
      sys.match[k] = sys.avail[k] &&
                     *sys.cand_point[k] == filter.out_cursor->point();
    }
  }
}

/// Under the hypothesis that the kernel fires this cycle (so every filter
/// consumes its candidate), checks whether every filter can in fact forward:
/// available candidate, downstream FIFO space (with same-cycle flow-through)
/// and a matching point.
bool AcceleratorSim::Impl::evaluate_fire(SystemSim& sys) const {
  const std::size_t n = sys.filters.size();
  bool fire = true;
  bool downstream_advances = true;  // filter n-1 has no downstream FIFO
  for (std::size_t k = n; k-- > 0;) {
    bool space = true;
    if (k + 1 < n && !sys.fifos[k].cut) {
      const FifoSim& fifo = sys.fifos[k];
      space = static_cast<std::int64_t>(fifo.tokens.size()) < fifo.capacity ||
              downstream_advances;
    }
    const bool advances = sys.avail[k] && space;
    fire = fire && advances && sys.match[k];
    downstream_advances = advances;
  }
  return fire;
}

void AcceleratorSim::Impl::commit_advances(SystemSim& sys, bool fire) {
  const std::size_t n = sys.filters.size();
  // Decide advances bottom-up so same-cycle FIFO flow-through is honoured.
  bool downstream_advances = true;
  for (std::size_t k = n; k-- > 0;) {
    bool space = true;
    if (k + 1 < n && !sys.fifos[k].cut) {
      const FifoSim& fifo = sys.fifos[k];
      space = static_cast<std::int64_t>(fifo.tokens.size()) < fifo.capacity ||
              downstream_advances;
    }
    const bool consumes = sys.match[k] ? fire : true;
    sys.advance[k] = sys.avail[k] && space && consumes;
    downstream_advances = sys.advance[k];
  }
  // Pops first.
  for (std::size_t k = 0; k < n; ++k) {
    if (!sys.advance[k]) continue;
    FilterSim& filter = sys.filters[k];
    if (filter.segment.has_value()) {
      SourceSim& src = sys.sources[*filter.segment];
      sys.moved[k].point = src.cursor->point();
      sys.moved[k].value = src.feed->read(src.cursor->point());
      src.cursor->advance();
    } else {
      FifoSim& fifo = sys.fifos[k - 1];
      sys.moved[k] = std::move(fifo.tokens.front());
      fifo.tokens.pop_front();
    }
  }
  // Then pushes and forwards.
  for (std::size_t k = 0; k < n; ++k) {
    if (!sys.advance[k]) continue;
    if (k + 1 < n && !sys.fifos[k].cut) {
      FifoSim& fifo = sys.fifos[k];
      fifo.tokens.push_back(sys.moved[k]);
      fifo.max_fill = std::max(
          fifo.max_fill, static_cast<std::int64_t>(fifo.tokens.size()));
    }
    if (sys.match[k]) {
      sys.filters[k].out_cursor->advance();
    }
  }
}

void AcceleratorSim::Impl::commit_kernel() {
  const poly::IntVec& i = kernel_cursor->point();
  std::size_t base = 0;
  for (std::size_t s = 0; s < systems.size(); ++s) {
    SystemSim& sys = systems[s];
    for (std::size_t k = 0; k < sys.filters.size(); ++k) {
      const Token& token = sys.moved[k];
      if (options.validate) {
        const poly::IntVec expected =
            poly::add(i, sys.design->ordered_offsets[k]);
        if (token.point != expected) {
          throw SimulationError(
              "kernel port mismatch at iteration " + poly::to_string(i) +
              ": filter " + std::to_string(k) + " of array " +
              sys.design->array + " delivered " +
              poly::to_string(token.point) + ", expected " +
              poly::to_string(expected));
        }
      }
      gathered[base + sys.design->ref_order[k]] = token.value;
    }
    base += sys.filters.size();
  }
  const double output = program->kernel()(gathered);
  if (options.record_outputs) result.outputs.push_back(output);
  if (output_callback) output_callback(i, output);
  kernel_cursor->advance();
  ++result.kernel_fires;
  if (result.kernel_fires == 1) result.fill_latency = cycle;
  last_fire_cycle = cycle;
}

void AcceleratorSim::Impl::record_trace(bool fire) {
  CycleTrace trace;
  trace.cycle = cycle;
  const SystemSim& sys = systems.front();
  trace.stream_point = stream_point_this_cycle;
  trace.filters.reserve(sys.filters.size());
  for (std::size_t k = 0; k < sys.filters.size(); ++k) {
    FilterStatus status = FilterStatus::kStalled;
    if (!sys.filters[k].out_cursor->valid()) {
      status = FilterStatus::kDone;
    } else if (sys.advance[k]) {
      status = (fire && sys.match[k]) ? FilterStatus::kForward
                                      : FilterStatus::kDiscard;
    }
    trace.filters.push_back(status);
  }
  for (const FifoSim& fifo : sys.fifos) {
    trace.fifo_fill.push_back(static_cast<std::int64_t>(fifo.tokens.size()));
  }
  result.trace.push_back(std::move(trace));
}

std::string AcceleratorSim::Impl::describe_stall() const {
  std::ostringstream out;
  out << "no progress at cycle " << cycle << ";";
  for (std::size_t s = 0; s < systems.size(); ++s) {
    const SystemSim& sys = systems[s];
    out << " array " << sys.design->array << ": filters[";
    for (std::size_t k = 0; k < sys.filters.size(); ++k) {
      if (!sys.filters[k].out_cursor->valid()) {
        out << '.';
      } else if (sys.match[k]) {
        out << 'F';  // wants to forward
      } else if (sys.avail[k]) {
        out << 'd';
      } else {
        out << 's';
      }
    }
    out << "] fifo_fill[";
    for (std::size_t k = 0; k < sys.fifos.size(); ++k) {
      if (k > 0) out << ',';
      out << sys.fifos[k].tokens.size() << '/' << sys.fifos[k].capacity;
    }
    out << "]";
  }
  return out.str();
}

bool AcceleratorSim::Impl::step() {
  ++cycle;
  prepare_cycle();

  bool fire = kernel_cursor->valid();
  for (SystemSim& sys : systems) fire = fire && evaluate_fire(sys);

  bool progress = fire;
  bool consumed_off_chip = false;
  for (std::size_t s = 0; s < systems.size(); ++s) {
    SystemSim& sys = systems[s];
    commit_advances(sys, fire);
    for (std::size_t k = 0; k < sys.filters.size(); ++k) {
      if (sys.advance[k]) {
        progress = true;
        // A segment head advancing consumes one off-chip element (forward
        // or discard alike), so this is still a streaming cycle: the drain
        // boundary keeps moving forward as long as any head is live.
        consumed_off_chip =
            consumed_off_chip || sys.filters[k].segment.has_value();
      } else if (sys.filters[k].out_cursor->valid()) {
        // A filter stalls when its output counter is still live but it
        // could not advance (no upstream token, or no downstream space).
        ++result.filter_stall_cycles[s][k];
      }
    }
  }
  if (fire) commit_kernel();
  if (consumed_off_chip) result.drain_start = cycle;

  if (options.trace_cycles > 0 && cycle <= options.trace_cycles) {
    record_trace(fire);
  }
  if (progress) {
    stall_cycles = 0;
  } else {
    ++stall_cycles;
  }
  return progress;
}

bool AcceleratorSim::step() { return impl_->step(); }

std::int64_t AcceleratorSim::cycle() const { return impl_->cycle; }

std::int64_t AcceleratorSim::kernel_fires() const {
  return impl_->result.kernel_fires;
}

std::int64_t AcceleratorSim::fifo_fill(std::size_t system,
                                       std::size_t fifo) const {
  return static_cast<std::int64_t>(
      impl_->systems.at(system).fifos.at(fifo).tokens.size());
}

SimResult AcceleratorSim::run() {
  Impl& im = *impl_;
  while (!im.done() && im.cycle < im.options.max_cycles) {
    im.step();
    if (im.stall_cycles >= im.options.stall_limit) {
      im.result.deadlocked = true;
      im.result.deadlock_detail = im.describe_stall();
      break;
    }
  }
  im.result.cycles = im.cycle;
  im.result.datapath_cycles = im.cycle;  // the reference machine is scalar
  if (im.result.kernel_fires >= 2) {
    im.result.steady_ii =
        static_cast<double>(im.last_fire_cycle - im.result.fill_latency) /
        static_cast<double>(im.result.kernel_fires - 1);
  }
  for (std::size_t s = 0; s < im.systems.size(); ++s) {
    for (std::size_t k = 0; k < im.systems[s].fifos.size(); ++k) {
      im.result.fifo_max_fill[s][k] = im.systems[s].fifos[k].max_fill;
    }
  }
  return im.result;
}

SimResult simulate(const stencil::StencilProgram& program,
                   const arch::AcceleratorDesign& design,
                   const SimOptions& options) {
  if (options.backend == SimBackend::kFast) {
    FastSim sim(program, design, options);
    return sim.run();
  }
  AcceleratorSim sim(program, design, options);
  return sim.run();
}

}  // namespace nup::sim
