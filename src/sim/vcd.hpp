#pragma once

#include <string>

#include "arch/design.hpp"
#include "sim/simulator.hpp"

namespace nup::sim {

/// Renders the recorded per-cycle trace (filter statuses, FIFO occupancy,
/// kernel fire) of memory system 0 as a Value Change Dump, viewable in
/// GTKWave & friends next to the generated RTL. One VCD time unit per
/// clock cycle. Requires the simulation to have run with
/// SimOptions::trace_cycles > 0.
std::string trace_to_vcd(const SimResult& result,
                         const arch::AcceleratorDesign& design,
                         const std::string& top_name = "accelerator");

/// trace_to_vcd + write to `path`. Returns false if the file cannot be
/// written.
bool write_vcd(const std::string& path, const SimResult& result,
               const arch::AcceleratorDesign& design,
               const std::string& top_name = "accelerator");

}  // namespace nup::sim
