#include "sim/prefetch.hpp"

#include "util/error.hpp"

namespace nup::sim {

PrefetchFeed::PrefetchFeed(std::shared_ptr<ExternalFeed> backing,
                           Config config)
    : backing_(std::move(backing)), config_(config) {
  if (!backing_) throw SimulationError("PrefetchFeed: null backing feed");
  if (config_.latency_cycles < 0 || config_.words_per_cycle < 1 ||
      config_.buffer_depth < 1) {
    throw SimulationError("PrefetchFeed: invalid configuration");
  }
}

void PrefetchFeed::tick() {
  ++now_;
  // Complete arrived words.
  while (!in_flight_.empty() && in_flight_.front() <= now_) {
    in_flight_.pop_front();
    ++ready_;
  }
  // Issue new burst requests while the window has room.
  for (std::int64_t k = 0; k < config_.words_per_cycle; ++k) {
    if (static_cast<std::int64_t>(in_flight_.size()) + ready_ >=
        config_.buffer_depth) {
      break;
    }
    in_flight_.push_back(now_ + config_.latency_cycles);
  }
}

bool PrefetchFeed::available(const poly::IntVec& h) {
  return ready_ > 0 && backing_->available(h);
}

double PrefetchFeed::read(const poly::IntVec& h) {
  if (ready_ <= 0) {
    throw SimulationError("PrefetchFeed::read with empty buffer at " +
                          poly::to_string(h));
  }
  --ready_;
  return backing_->read(h);
}

}  // namespace nup::sim
