#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "poly/domain.hpp"
#include "poly/int_vec.hpp"

namespace nup::sim {

/// Sentinel stream position: "this point is not a stream element".
inline constexpr std::int64_t kNeverMatches =
    std::numeric_limits<std::int64_t>::max();

/// Compiled lexicographic enumeration of a Domain: one entry per non-empty
/// row (fixed outer coordinates), in prefix lex order, with the row's
/// merged disjoint innermost intervals. Built once so no Fourier-Motzkin
/// bound or interval merge ever runs inside a cycle loop. Immutable after
/// compile(), hence safe to share between threads (the design cache hands
/// one compiled program to every concurrent FastSim of the same design).
struct RowProgram {
  struct Row {
    poly::IntVec prefix;                    // outer coords, size dim-1
    std::vector<poly::Interval> intervals;  // sorted, disjoint, non-empty
  };

  std::size_t dim = 0;
  std::vector<Row> rows;

  static RowProgram compile(const poly::Domain& domain);
};

/// O(1) incremental cursor over a RowProgram; visits exactly the point
/// sequence of Domain::LexCursor, but with no per-advance allocation or
/// bound recomputation.
struct RowCursor {
  const RowProgram* prog = nullptr;
  std::size_t row = 0;
  std::size_t ivl = 0;
  bool is_valid = false;
  poly::IntVec pt;  // preallocated, size dim

  void reset(const RowProgram& p) {
    prog = &p;
    row = 0;
    is_valid = !p.rows.empty();
    if (is_valid) {
      pt.resize(p.dim);
      load_row();
    }
  }

  bool valid() const { return is_valid; }
  const poly::IntVec& point() const { return pt; }

  void advance() {
    const RowProgram::Row& r = prog->rows[row];
    if (pt.back() < r.intervals[ivl].hi) {
      ++pt.back();
      return;
    }
    if (++ivl < r.intervals.size()) {
      pt.back() = r.intervals[ivl].lo;
      return;
    }
    if (++row == prog->rows.size()) {
      is_valid = false;
      return;
    }
    load_row();
  }

  /// Number of consecutive points left in the current interval, counting
  /// the current point: the contiguous span a W-wide step may retire
  /// without crossing an interval/row boundary. 0 when invalid.
  std::int64_t remaining_in_interval() const {
    if (!is_valid) return 0;
    return prog->rows[row].intervals[ivl].hi - pt.back() + 1;
  }

  /// Advances `n` points; the first n-1 must stay inside the current
  /// interval (n <= remaining_in_interval()), so only the final step can
  /// roll over -- keeping the wide path O(1) per batch.
  void advance_by(std::int64_t n) {
    if (n <= 0) return;
    pt.back() += n - 1;
    advance();
  }

 private:
  void load_row() {
    const RowProgram::Row& r = prog->rows[row];
    std::copy(r.prefix.begin(), r.prefix.end(), pt.begin());
    ivl = 0;
    pt.back() = r.intervals.front().lo;
  }
};

/// Forward-only rank finder over a RowProgram: maps lexicographically
/// increasing target points to their 0-based position in the enumeration.
/// This turns a per-cycle grid-point comparison into a single integer
/// equality: a filter matches exactly when its consumed-token count reaches
/// the rank of its output counter's point in the segment stream. Amortized
/// O(1) per query (one pass over the row table across the whole run).
struct MatchScanner {
  const RowProgram* prog = nullptr;
  std::size_t row = 0;
  std::size_t ivl = 0;
  std::int64_t pos = 0;  // stream position of intervals[ivl].lo
  /// After a successful seek: length of the contiguous stream run starting
  /// at the returned rank (the matched interval's tail, target inclusive).
  /// Consecutive output points in the same interval then occupy consecutive
  /// stream ranks, which is what lets a W-wide step match W outputs against
  /// W inputs with one scan. 0 after a kNeverMatches result.
  std::int64_t run = 0;

  void reset(const RowProgram& p) {
    prog = &p;
    row = 0;
    ivl = 0;
    pos = 0;
    run = 0;
  }

  /// Position of `t` in the enumeration; kNeverMatches when `t` is not a
  /// stream element (the filter can then never match -- exactly the
  /// reference backend's behaviour when the needed point is absent from the
  /// stream). Targets must be queried in lexicographically increasing
  /// order.
  std::int64_t seek(const poly::IntVec& t) {
    run = 0;
    const std::size_t dim = prog->dim;
    while (row < prog->rows.size()) {
      const RowProgram::Row& r = prog->rows[row];
      int cmp = 0;
      for (std::size_t d = 0; d + 1 < dim; ++d) {
        if (r.prefix[d] != t[d]) {
          cmp = r.prefix[d] < t[d] ? -1 : 1;
          break;
        }
      }
      if (cmp < 0) {  // stream row before the target's: skip it whole
        for (; ivl < r.intervals.size(); ++ivl) {
          pos += r.intervals[ivl].size();
        }
        ++row;
        ivl = 0;
        continue;
      }
      if (cmp > 0) return kNeverMatches;  // target's row: no stream elements
      const std::int64_t ti = t[dim - 1];
      for (; ivl < r.intervals.size(); ++ivl) {
        const poly::Interval& iv = r.intervals[ivl];
        if (iv.hi < ti) {
          pos += iv.size();
          continue;
        }
        if (iv.lo > ti) return kNeverMatches;  // target in a row gap
        run = iv.hi - ti + 1;
        return pos + (ti - iv.lo);
      }
      ++row;  // target beyond the row's last interval
      ivl = 0;
    }
    return kNeverMatches;
  }
};

}  // namespace nup::sim
