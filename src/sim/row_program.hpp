#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "poly/domain.hpp"
#include "poly/int_vec.hpp"

namespace nup::sim {

/// Sentinel stream position: "this point is not a stream element".
inline constexpr std::int64_t kNeverMatches =
    std::numeric_limits<std::int64_t>::max();

/// Compiled lexicographic enumeration of a Domain: one entry per non-empty
/// row (fixed outer coordinates), in prefix lex order, with the row's
/// merged disjoint innermost intervals. Built once so no Fourier-Motzkin
/// bound or interval merge ever runs inside a cycle loop. Immutable after
/// compile(), hence safe to share between threads (the design cache hands
/// one compiled program to every concurrent FastSim of the same design).
struct RowProgram {
  struct Row {
    poly::IntVec prefix;                    // outer coords, size dim-1
    std::vector<poly::Interval> intervals;  // sorted, disjoint, non-empty
  };

  std::size_t dim = 0;
  std::vector<Row> rows;

  static RowProgram compile(const poly::Domain& domain);
};

/// O(1) incremental cursor over a RowProgram; visits exactly the point
/// sequence of Domain::LexCursor, but with no per-advance allocation or
/// bound recomputation.
struct RowCursor {
  const RowProgram* prog = nullptr;
  std::size_t row = 0;
  std::size_t ivl = 0;
  bool is_valid = false;
  poly::IntVec pt;  // preallocated, size dim

  void reset(const RowProgram& p) {
    prog = &p;
    row = 0;
    is_valid = !p.rows.empty();
    if (is_valid) {
      pt.resize(p.dim);
      load_row();
    }
  }

  bool valid() const { return is_valid; }
  const poly::IntVec& point() const { return pt; }

  void advance() {
    const RowProgram::Row& r = prog->rows[row];
    if (pt.back() < r.intervals[ivl].hi) {
      ++pt.back();
      return;
    }
    if (++ivl < r.intervals.size()) {
      pt.back() = r.intervals[ivl].lo;
      return;
    }
    if (++row == prog->rows.size()) {
      is_valid = false;
      return;
    }
    load_row();
  }

 private:
  void load_row() {
    const RowProgram::Row& r = prog->rows[row];
    std::copy(r.prefix.begin(), r.prefix.end(), pt.begin());
    ivl = 0;
    pt.back() = r.intervals.front().lo;
  }
};

/// Forward-only rank finder over a RowProgram: maps lexicographically
/// increasing target points to their 0-based position in the enumeration.
/// This turns a per-cycle grid-point comparison into a single integer
/// equality: a filter matches exactly when its consumed-token count reaches
/// the rank of its output counter's point in the segment stream. Amortized
/// O(1) per query (one pass over the row table across the whole run).
struct MatchScanner {
  const RowProgram* prog = nullptr;
  std::size_t row = 0;
  std::size_t ivl = 0;
  std::int64_t pos = 0;  // stream position of intervals[ivl].lo

  void reset(const RowProgram& p) {
    prog = &p;
    row = 0;
    ivl = 0;
    pos = 0;
  }

  /// Position of `t` in the enumeration; kNeverMatches when `t` is not a
  /// stream element (the filter can then never match -- exactly the
  /// reference backend's behaviour when the needed point is absent from the
  /// stream). Targets must be queried in lexicographically increasing
  /// order.
  std::int64_t seek(const poly::IntVec& t) {
    const std::size_t dim = prog->dim;
    while (row < prog->rows.size()) {
      const RowProgram::Row& r = prog->rows[row];
      int cmp = 0;
      for (std::size_t d = 0; d + 1 < dim; ++d) {
        if (r.prefix[d] != t[d]) {
          cmp = r.prefix[d] < t[d] ? -1 : 1;
          break;
        }
      }
      if (cmp < 0) {  // stream row before the target's: skip it whole
        for (; ivl < r.intervals.size(); ++ivl) {
          pos += r.intervals[ivl].size();
        }
        ++row;
        ivl = 0;
        continue;
      }
      if (cmp > 0) return kNeverMatches;  // target's row: no stream elements
      const std::int64_t ti = t[dim - 1];
      for (; ivl < r.intervals.size(); ++ivl) {
        const poly::Interval& iv = r.intervals[ivl];
        if (iv.hi < ti) {
          pos += iv.size();
          continue;
        }
        if (iv.lo > ti) return kNeverMatches;  // target in a row gap
        return pos + (ti - iv.lo);
      }
      ++row;  // target beyond the row's last interval
      ivl = 0;
    }
    return kNeverMatches;
  }
};

}  // namespace nup::sim
