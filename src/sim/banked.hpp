#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baseline/partition.hpp"
#include "stencil/program.hpp"

namespace nup::sim {

/// Cycle-accurate model of the *uniform* banked architecture the paper
/// compares against ([5]/[8]): a centralized controller fills a line
/// buffer partitioned over N banks by the modulo scheme, then slides the
/// window at II=1, reading the n references through the bank crossbar each
/// cycle. One write port services the incoming stream. Bank conflicts --
/// two reads hitting one bank in a cycle -- are detected and reported, so
/// an *invalid* partition visibly fails here rather than silently reading
/// stale data.
struct BankedSimResult {
  bool completed = false;
  bool bank_conflict = false;
  std::string conflict_detail;
  std::int64_t cycles = 0;
  std::int64_t outputs = 0;
  std::int64_t fill_latency = 0;
  double steady_ii = 0.0;
  std::vector<double> values;  ///< kernel outputs in iteration order
};

struct BankedSimOptions {
  std::uint64_t seed = 1;
  bool record_outputs = true;
  std::int64_t max_cycles = 500'000'000;
};

/// Simulates the uniform design for array 0 of `program` with the given
/// partition. The window must be conflict-free under the partition's
/// scheme; outputs are bit-identical to the golden execution when it is.
BankedSimResult simulate_banked(const stencil::StencilProgram& program,
                                const baseline::UniformPartition& partition,
                                const BankedSimOptions& options = {});

}  // namespace nup::sim
