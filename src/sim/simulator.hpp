#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arch/design.hpp"
#include "poly/domain.hpp"
#include "sim/feed.hpp"
#include "stencil/program.hpp"

namespace nup::sim {

/// Which simulator implementation executes the design. Both are
/// cycle-accurate and agree decision-for-decision (enforced by
/// tests/sim/differential_test.cpp); `kReference` is the semantics
/// DESIGN.md's invariants are stated against, `kFast` is the compiled
/// fast lane (src/sim/fast.hpp) for large sweeps.
enum class SimBackend { kReference, kFast };

struct SimOptions {
  SimBackend backend = SimBackend::kReference;
  std::uint64_t seed = 1;            ///< synthetic-data seed
  std::int64_t max_cycles = 500'000'000;
  /// Cycles without any module progress before declaring deadlock.
  std::int64_t stall_limit = 100'000;
  /// Record per-cycle traces for the first N cycles (Table 3).
  std::int64_t trace_cycles = 0;
  /// Validate every kernel port against the expected grid point and value.
  bool validate = true;
  /// Keep all kernel outputs in the result (memory-heavy for big grids).
  bool record_outputs = true;
  /// Allow the fast backend to retire up to design.datapath_width scalar
  /// micro-cycles per wide step (see SimResult::datapath_cycles). Never
  /// changes any scalar-cycle observable; disable to force the scalar path
  /// even on wide designs (useful when isolating vector-path bugs).
  bool vectorize = true;
};

/// Per-cycle status of one data filter (Table 3's f/d/s columns).
enum class FilterStatus : char {
  kForward = 'f',
  kDiscard = 'd',
  kStalled = 's',
  kDone = '.',
};

struct CycleTrace {
  std::int64_t cycle = 0;  ///< 1-based, matching Table 3
  /// Grid point entering the chain at segment 0 of system 0 ("data in
  /// stream" column); empty when the stream is exhausted.
  std::string stream_point;
  std::vector<FilterStatus> filters;      ///< system 0 filters
  std::vector<std::int64_t> fifo_fill;    ///< system 0 FIFO occupancy
};

struct SimResult {
  std::int64_t cycles = 0;
  std::int64_t kernel_fires = 0;
  /// Machine cycles of the W-wide datapath: the number of wide steps it
  /// took to retire `cycles` scalar micro-cycles. Equals `cycles` for W=1
  /// (and for the reference backend, which is scalar by definition); for
  /// W>1 on the fast backend this is what Fig 14's cycles-per-frame axis
  /// measures -- throughput in frames/s scales with cycles/datapath_cycles.
  std::int64_t datapath_cycles = 0;
  std::int64_t fill_latency = 0;  ///< cycle of the first kernel fire
  /// Steady-state initiation interval: average cycles between kernel fires
  /// after the pipeline filled (1.0 = fully pipelined).
  double steady_ii = 0.0;
  bool deadlocked = false;
  std::string deadlock_detail;
  /// Max observed occupancy of every (system, fifo); never exceeds the
  /// design depth, and equals it where the sizing is tight.
  std::vector<std::vector<std::int64_t>> fifo_max_fill;
  /// Cycles each (system, filter) spent unable to advance while its output
  /// counter was still live (waiting on upstream data or downstream FIFO
  /// space). Identical across backends; checked by run_differential.
  std::vector<std::vector<std::int64_t>> filter_stall_cycles;
  /// Last cycle on which a segment-head filter consumed an off-chip
  /// element (forward or discard). The run's phases are fill =
  /// [1, fill_latency], steady = (fill_latency, drain_start], drain =
  /// (drain_start, cycles]. Every fire consumes fresh off-chip data at
  /// each head (same-cycle flow-through), so a completed run has
  /// drain_start == cycles -- the drain tail is degenerate under Table 3's
  /// idealized latencies. On a deadlocked or truncated run the boundary
  /// marks the last cycle data still streamed in, which is the first
  /// thing to read when diagnosing a wedge. 0 when nothing was ever
  /// streamed. Identical across backends; checked by run_differential.
  std::int64_t drain_start = 0;
  std::vector<CycleTrace> trace;
  std::vector<double> outputs;  ///< kernel outputs in iteration order
};

/// Cycle-accurate simulation of the generated microarchitecture: autonomous
/// data-path splitters, non-uniform reuse FIFOs, polyhedral data filters
/// (Fig 10's input/output counter switch) and a fully-pipelined computation
/// kernel, with the stall semantics of Section 3.3. Module latencies are
/// idealized away exactly as in Table 3.
class AcceleratorSim {
 public:
  AcceleratorSim(const stencil::StencilProgram& program,
                 const arch::AcceleratorDesign& design,
                 SimOptions options = {});
  ~AcceleratorSim();

  AcceleratorSim(const AcceleratorSim&) = delete;
  AcceleratorSim& operator=(const AcceleratorSim&) = delete;

  /// Replaces the off-chip feed of one chain segment (default: synthetic).
  void set_feed(std::size_t array_idx, std::size_t segment,
                std::shared_ptr<ExternalFeed> feed);

  /// Invoked with every kernel output, in iteration order.
  void set_output_callback(
      std::function<void(const poly::IntVec&, double)> callback);

  /// Advances one clock cycle. Returns true if any module made progress.
  bool step();

  bool done() const;

  /// Runs until completion, deadlock, or the cycle limit; the outcome is in
  /// the returned result (no exception on deadlock -- tests inject them on
  /// purpose). Throws SimulationError only on validation failures, which
  /// indicate a functionally wrong design.
  SimResult run();

  // Lockstep observers (used by the differential checker).
  std::int64_t cycle() const;
  std::int64_t kernel_fires() const;
  std::int64_t fifo_fill(std::size_t system, std::size_t fifo) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience wrapper: build-free simulation of a program with a design,
/// dispatched to options.backend.
SimResult simulate(const stencil::StencilProgram& program,
                   const arch::AcceleratorDesign& design,
                   const SimOptions& options = {});

}  // namespace nup::sim
