#pragma once

#include <cstdint>
#include <deque>
#include <utility>

#include "poly/int_vec.hpp"

namespace nup::sim {

/// Produces the off-chip data stream for one chain segment. The consumer
/// (the segment's source module) asks for grid points in lexicographic
/// order of the streamed input domain; a feed may refuse a point this cycle
/// (back-pressure from a slower producer, e.g. a chained accelerator).
class ExternalFeed {
 public:
  virtual ~ExternalFeed() = default;

  /// Called once per simulation cycle per attachment, before any
  /// availability query, so timed feeds (PrefetchFeed) can advance their
  /// internal state. Untimed feeds ignore it.
  virtual void tick() {}

  /// True when the element at grid point `h` can be delivered this cycle.
  virtual bool available(const poly::IntVec& h) = 0;

  /// Value of the element at `h`. Called at most once per point, only after
  /// available(h) returned true in the same cycle.
  virtual double read(const poly::IntVec& h) = 0;

  /// True when availability and values do not depend on the cycle the
  /// queries happen on: available(h) never flips back to false and read(h)
  /// is pure. The fast backend only batches W micro-cycles into one wide
  /// step when every live feed is time-invariant -- a timed feed
  /// (PrefetchFeed) or a mid-run producer (QueueFeed) could change state
  /// between the batched micro-cycles, which must stay observable.
  virtual bool time_invariant() const { return false; }
};

/// Deterministic synthetic DRAM: always ready, values from
/// stencil::synthetic_value. Models the burst prefetcher of Fig 13(b),
/// which hides bus latency behind a small buffer.
class SyntheticFeed final : public ExternalFeed {
 public:
  SyntheticFeed(std::uint64_t seed, std::size_t array_index)
      : seed_(seed), array_index_(array_index) {}

  bool available(const poly::IntVec&) override { return true; }
  double read(const poly::IntVec& h) override;
  bool time_invariant() const override { return true; }

 private:
  std::uint64_t seed_;
  std::size_t array_index_;
};

/// In-order queue feed for accelerator chaining (Fig 13c): a producer
/// pushes (point, value) pairs in lexicographic order; the consumer is
/// stalled until the point it needs arrives at the front.
class QueueFeed final : public ExternalFeed {
 public:
  void push(poly::IntVec point, double value) {
    queue_.emplace_back(std::move(point), value);
  }

  bool available(const poly::IntVec& h) override {
    return !queue_.empty() && queue_.front().first == h;
  }

  double read(const poly::IntVec& h) override;

  std::size_t pending() const { return queue_.size(); }

 private:
  std::deque<std::pair<poly::IntVec, double>> queue_;
};

}  // namespace nup::sim
