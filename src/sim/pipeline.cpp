#include "sim/pipeline.hpp"

#include <algorithm>
#include <deque>

#include "arch/builder.hpp"
#include "sim/feed.hpp"
#include "util/error.hpp"

namespace nup::sim {

namespace {

bool domains_equal(const poly::Domain& a, const poly::Domain& b) {
  if (a.count() != b.count()) return false;
  bool equal = true;
  a.for_each([&](const poly::IntVec& p) {
    if (equal && !b.contains(p)) equal = false;
  });
  return equal;
}

}  // namespace

struct Pipeline::Impl {
  struct Stage {
    stencil::StencilProgram program;
    arch::AcceleratorDesign design;
    std::unique_ptr<AcceleratorSim> sim;
    std::shared_ptr<QueueFeed> input_wire;  // null for the first stage
    StageResult result;

    Stage(stencil::StencilProgram p, arch::AcceleratorDesign d)
        : program(std::move(p)), design(std::move(d)) {}
  };

  SimOptions options;
  std::deque<Stage> stages;
  std::vector<double> final_outputs;
};

Pipeline::Pipeline(SimOptions options) : impl_(std::make_unique<Impl>()) {
  // Stages legitimately wait on upstream ramp-up; the pipeline applies its
  // own global cycle limit instead.
  options.stall_limit = std::max<std::int64_t>(options.stall_limit,
                                               10'000'000);
  impl_->options = options;
}

Pipeline::~Pipeline() = default;

void Pipeline::add_stage(const stencil::StencilProgram& program,
                         const arch::AcceleratorDesign& design) {
  if (!impl_->stages.empty()) {
    if (program.inputs().size() != 1) {
      throw Error(
          "Pipeline: chained stages must read a single input array");
    }
    const Impl::Stage& prev = impl_->stages.back();
    if (!domains_equal(design.systems[0].input_domain,
                       prev.program.iteration())) {
      throw Error(
          "Pipeline: stage '" + program.name() +
          "' does not consume exactly the stream its predecessor '" +
          prev.program.name() +
          "' produces; align the domains (e.g. with a loop "
          "transformation, Fig 13c) first");
    }
  }

  impl_->stages.emplace_back(program, design);
  Impl::Stage& stage = impl_->stages.back();
  stage.sim = std::make_unique<AcceleratorSim>(stage.program, stage.design,
                                               impl_->options);

  if (impl_->stages.size() > 1) {
    Impl::Stage& prev = impl_->stages[impl_->stages.size() - 2];
    stage.input_wire = std::make_shared<QueueFeed>();
    stage.sim->set_feed(0, 0, stage.input_wire);
    auto wire = stage.input_wire;
    prev.sim->set_output_callback(
        [wire](const poly::IntVec& i, double v) { wire->push(i, v); });
  }
}

void Pipeline::add_stage(const stencil::StencilProgram& program) {
  add_stage(program, arch::build_design(program));
}

Pipeline::Result Pipeline::run(std::int64_t max_cycles) {
  if (impl_->stages.empty()) throw Error("Pipeline: no stages");

  Impl::Stage& last = impl_->stages.back();
  impl_->final_outputs.clear();
  auto* outputs = &impl_->final_outputs;
  std::int64_t* counter = &last.result.outputs;
  last.sim->set_output_callback(
      [outputs, counter](const poly::IntVec&, double v) {
        outputs->push_back(v);
        ++*counter;
      });
  // Count intermediate stage outputs too (their callbacks already feed the
  // wires; wrap by counting wire pushes via max fill sampling below).

  Result result;
  result.stages.resize(impl_->stages.size());
  std::int64_t cycle = 0;
  while (!impl_->stages.back().sim->done() && cycle < max_cycles) {
    for (std::size_t k = 0; k < impl_->stages.size(); ++k) {
      impl_->stages[k].sim->step();
      if (k + 1 < impl_->stages.size()) {
        Impl::Stage& next = impl_->stages[k + 1];
        next.result.max_wire_fill = std::max(
            next.result.max_wire_fill,
            static_cast<std::int64_t>(next.input_wire->pending()));
      }
    }
    ++cycle;
  }

  result.completed = impl_->stages.back().sim->done();
  result.cycles = cycle;
  for (std::size_t k = 0; k < impl_->stages.size(); ++k) {
    result.stages[k] = impl_->stages[k].result;
  }
  result.stages.back().outputs = impl_->stages.back().result.outputs;
  result.outputs = impl_->final_outputs;
  return result;
}

}  // namespace nup::sim
