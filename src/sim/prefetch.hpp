#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "sim/feed.hpp"

namespace nup::sim {

/// Off-chip DRAM timing model behind a burst prefetcher (Appendix 9.3,
/// Fig 13b): the prefetcher issues sequential burst requests ahead of the
/// accelerator and a small buffer hides the access latency. A word becomes
/// ready `latency_cycles` ticks after its request; at most
/// `words_per_cycle` requests issue per cycle, and requests outstanding
/// plus words buffered never exceed `buffer_depth`.
///
/// Timing and data are decoupled: because the accelerator consumes one
/// lexicographic stream, the prefetcher only needs to stay ahead of the
/// read pointer; values come from the backing feed at read time. This is
/// exactly the simplification the paper's integration section highlights.
class PrefetchFeed final : public ExternalFeed {
 public:
  struct Config {
    std::int64_t latency_cycles = 40;  ///< request-to-data latency
    std::int64_t words_per_cycle = 1;  ///< off-chip bandwidth
    std::int64_t buffer_depth = 64;    ///< prefetch window (outstanding+ready)
  };

  PrefetchFeed(std::shared_ptr<ExternalFeed> backing, Config config);

  /// Advances the DRAM/prefetcher model by one cycle.
  void tick() override;

  bool available(const poly::IntVec& h) override;
  double read(const poly::IntVec& h) override;

  /// Words ready in the prefetch buffer (diagnostics).
  std::int64_t buffered() const { return ready_; }

 private:
  std::shared_ptr<ExternalFeed> backing_;
  Config config_;
  std::int64_t now_ = 0;
  std::deque<std::int64_t> in_flight_;  ///< completion times, oldest first
  std::int64_t ready_ = 0;              ///< words arrived, not yet consumed
};

}  // namespace nup::sim
