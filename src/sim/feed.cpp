#include "sim/feed.hpp"

#include "stencil/golden.hpp"
#include "util/error.hpp"

namespace nup::sim {

double SyntheticFeed::read(const poly::IntVec& h) {
  return stencil::synthetic_value(seed_, array_index_, h);
}

double QueueFeed::read(const poly::IntVec& h) {
  if (!available(h)) {
    throw SimulationError("QueueFeed::read of unavailable point " +
                          poly::to_string(h));
  }
  const double value = queue_.front().second;
  queue_.pop_front();
  return value;
}

}  // namespace nup::sim
