#include "sim/fast.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "stencil/golden.hpp"
#include "util/error.hpp"

#if defined(__x86_64__) && !defined(NUP_DISABLE_AVX2)
#define NUP_HAVE_AVX2 1
#include <immintrin.h>
#else
#define NUP_HAVE_AVX2 0
#endif

namespace nup::sim {

namespace {

constexpr std::int64_t kNever = kNeverMatches;

/// Ring buffer of data values only: the point of the token at the head is
/// recovered from the consumer filter's stream position, so tokens shrink
/// to one double.
struct FastFifo {
  std::vector<double> values;
  std::size_t head = 0;
  std::int64_t count = 0;
  std::int64_t capacity = 0;
  bool cut = false;
  std::int64_t max_fill = 0;

  void init(std::int64_t depth, bool is_cut) {
    capacity = depth;
    cut = is_cut;
    values.assign(static_cast<std::size_t>(std::max<std::int64_t>(depth, 1)),
                  0.0);
  }

  void push(double v) {
    std::size_t tail = head + static_cast<std::size_t>(count);
    if (tail >= values.size()) tail -= values.size();
    values[tail] = v;
    ++count;
    if (count > max_fill) max_fill = count;
  }

  double pop() {
    const double v = values[head];
    if (++head == values.size()) head = 0;
    --count;
    return v;
  }

  /// Pops the `n` oldest values into dst (ring-split into at most two
  /// memcpy segments). Requires n <= count.
  void pop_block(std::int64_t n, double* dst) {
    const std::size_t cap = values.size();
    const std::size_t first =
        std::min<std::size_t>(static_cast<std::size_t>(n), cap - head);
    std::memcpy(dst, values.data() + head, first * sizeof(double));
    std::memcpy(dst + first, values.data(),
                (static_cast<std::size_t>(n) - first) * sizeof(double));
    head += static_cast<std::size_t>(n);
    if (head >= cap) head -= cap;
    count -= n;
  }

  /// Pushes `n` values from src. Requires count + n <= capacity. The wide
  /// path pops before pushing (like the scalar firing cycle), so occupancy
  /// never exceeds the value it had entering the batch and max_fill is
  /// untouched -- a batch is only entered at steady occupancy.
  void push_block(const double* src, std::int64_t n) {
    const std::size_t cap = values.size();
    std::size_t tail = head + static_cast<std::size_t>(count);
    if (tail >= cap) tail -= cap;
    const std::size_t first =
        std::min<std::size_t>(static_cast<std::size_t>(n), cap - tail);
    std::memcpy(values.data() + tail, src, first * sizeof(double));
    std::memcpy(values.data(), src + first,
                (static_cast<std::size_t>(n) - first) * sizeof(double));
    count += n;
    if (count > max_fill) max_fill = count;
  }
};

struct FastFilter {
  const RowProgram* out_prog = nullptr;  // D_Ax in filter order (plan-owned)
  RowCursor out;        // output counter (Fig 10)
  /// Segment heads only: the grid point of the next stream element (needed
  /// to address the external feed). Non-head filters carry no points at
  /// all -- only `in_pos` below.
  RowCursor in;
  MatchScanner scanner;       // over the segment's input program
  std::int64_t in_pos = 0;    // stream elements consumed so far
  std::int64_t next_match = kNever;  // stream position of out's point
  /// Contiguous stream ranks starting at next_match (scanner run length):
  /// >= W means the next W output points match W consecutive stream
  /// elements, one of the wide-step preconditions.
  std::int64_t match_run = 0;
  int segment = -1;           // feed index when this filter heads a segment

  void reseek() {
    next_match = out.valid() ? scanner.seek(out.point()) : kNever;
    match_run = next_match == kNever ? 0 : scanner.run;
  }
};

/// True when `out` enumerates exactly `iter` shifted by `offset`: then the
/// kernel-port check "filter k delivers A[i + f_k] on every fire" holds by
/// construction (both counters advance in lockstep from rank 0) and the
/// per-fire validation loop can be skipped entirely.
bool aligned_with_iteration(const RowProgram& iter, const RowProgram& out,
                            const poly::IntVec& offset) {
  if (iter.dim != out.dim || iter.rows.size() != out.rows.size()) {
    return false;
  }
  const std::int64_t inner = offset.empty() ? 0 : offset.back();
  for (std::size_t r = 0; r < iter.rows.size(); ++r) {
    const RowProgram::Row& a = iter.rows[r];
    const RowProgram::Row& b = out.rows[r];
    for (std::size_t d = 0; d + 1 < iter.dim; ++d) {
      if (b.prefix[d] != a.prefix[d] + offset[d]) return false;
    }
    if (a.intervals.size() != b.intervals.size()) return false;
    for (std::size_t v = 0; v < a.intervals.size(); ++v) {
      if (b.intervals[v].lo != a.intervals[v].lo + inner ||
          b.intervals[v].hi != a.intervals[v].hi + inner) {
        return false;
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// W-wide weighted-sum kernel. All variants evaluate, for every lane l,
//   out[l] = sum_k weights[k] * lanes[k*width + l]
// in ascending k with one multiply-accumulate per term -- the same
// per-lane operation sequence as make_weighted_sum's scalar loop. Whether
// the scalar loop compiled to separate mul+add or to fused fma depends on
// the build's contraction rules, so FastSim picks the variant at
// construction by probing each candidate against the program's actual
// KernelFn on random vectors and falls back to per-lane kernel calls when
// none is bit-identical. Correctness therefore never depends on compiler
// flags; only the fast path's speed does.

enum class VecKernelMode { kPerLane, kScalarMulAdd, kScalarFma, kAvx2 };

void weighted_sum_muladd(const double* lanes, const double* weights,
                         std::size_t refs, std::int64_t width, double* out) {
  for (std::int64_t l = 0; l < width; ++l) {
    double acc = 0.0;
    for (std::size_t k = 0; k < refs; ++k) {
      const double prod = weights[k] * lanes[k * width + l];
      acc += prod;
    }
    out[l] = acc;
  }
}

void weighted_sum_fma(const double* lanes, const double* weights,
                      std::size_t refs, std::int64_t width, double* out) {
  for (std::int64_t l = 0; l < width; ++l) {
    double acc = 0.0;
    for (std::size_t k = 0; k < refs; ++k) {
      acc = std::fma(weights[k], lanes[k * width + l], acc);
    }
    out[l] = acc;
  }
}

#if NUP_HAVE_AVX2
/// 4 lanes per iteration with fused multiply-add; remainder lanes use
/// std::fma so every lane sees the identical fma-contracted sequence.
__attribute__((target("avx2,fma"))) void weighted_sum_avx2(
    const double* lanes, const double* weights, std::size_t refs,
    std::int64_t width, double* out) {
  std::int64_t l = 0;
  for (; l + 4 <= width; l += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t k = 0; k < refs; ++k) {
      const __m256d v = _mm256_loadu_pd(lanes + k * width + l);
      acc = _mm256_fmadd_pd(_mm256_set1_pd(weights[k]), v, acc);
    }
    _mm256_storeu_pd(out + l, acc);
  }
  for (; l < width; ++l) {
    double acc = 0.0;
    for (std::size_t k = 0; k < refs; ++k) {
      acc = std::fma(weights[k], lanes[k * width + l], acc);
    }
    out[l] = acc;
  }
}

bool avx2_supported() {
  static const bool supported = __builtin_cpu_supports("avx2") &&
                                __builtin_cpu_supports("fma");
  return supported;
}
#endif

void run_vec_kernel(VecKernelMode mode, const double* lanes,
                    const double* weights, std::size_t refs,
                    std::int64_t width, double* out) {
  switch (mode) {
#if NUP_HAVE_AVX2
    case VecKernelMode::kAvx2:
      weighted_sum_avx2(lanes, weights, refs, width, out);
      return;
#endif
    case VecKernelMode::kScalarFma:
      weighted_sum_fma(lanes, weights, refs, width, out);
      return;
    default:
      weighted_sum_muladd(lanes, weights, refs, width, out);
      return;
  }
}

/// Picks the fastest vector variant that is bit-identical to `kernel` on
/// deterministic pseudo-random probes (64 lanes' worth of values per
/// variant); kPerLane when none is -- e.g. a kernel compiled with an
/// association the candidates do not reproduce.
VecKernelMode probe_vec_kernel(const stencil::KernelFn& kernel,
                               const std::vector<double>& weights,
                               std::int64_t width) {
  const std::size_t refs = weights.size();
  if (refs == 0 || width <= 1) return VecKernelMode::kPerLane;
  // The probe is a safety net on top of the structural guarantee (the
  // canonical kernel is itself an fma chain, see make_weighted_sum): a
  // candidate that differs from the kernel anywhere is overwhelmingly
  // unlikely to match all of these lanes bit-for-bit.
  const std::int64_t probe_lanes = std::max<std::int64_t>(width, 256);
  std::vector<double> lanes(refs * static_cast<std::size_t>(probe_lanes));
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (double& v : lanes) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    v = static_cast<double>(state >> 11) * 0x1.0p-53;  // [0, 1)
  }
  std::vector<double> expected(static_cast<std::size_t>(probe_lanes));
  std::vector<double> values(refs);
  for (std::int64_t l = 0; l < probe_lanes; ++l) {
    for (std::size_t k = 0; k < refs; ++k) {
      values[k] = lanes[k * static_cast<std::size_t>(probe_lanes) +
                        static_cast<std::size_t>(l)];
    }
    expected[static_cast<std::size_t>(l)] = kernel(values);
  }
  std::vector<double> got(static_cast<std::size_t>(probe_lanes));
  std::vector<VecKernelMode> candidates;
#if NUP_HAVE_AVX2
  if (avx2_supported()) candidates.push_back(VecKernelMode::kAvx2);
#endif
  candidates.push_back(VecKernelMode::kScalarFma);
  candidates.push_back(VecKernelMode::kScalarMulAdd);
  for (VecKernelMode mode : candidates) {
    run_vec_kernel(mode, lanes.data(), weights.data(), refs, probe_lanes,
                   got.data());
    if (std::memcmp(got.data(), expected.data(),
                    got.size() * sizeof(double)) == 0) {
      return mode;
    }
  }
  return VecKernelMode::kPerLane;
}

struct FastSystem {
  const arch::MemorySystem* design = nullptr;
  const RowProgram* input_prog = nullptr;  // streamed hull (plan-owned)
  std::vector<std::shared_ptr<ExternalFeed>> feeds;  // one per segment
  /// Nonzero while a segment still uses the constructor-installed
  /// SyntheticFeed: tick/available are no-ops and read devirtualizes to
  /// stencil::synthetic_value.
  std::vector<unsigned char> synthetic;
  std::vector<FastFifo> fifos;
  std::vector<FastFilter> filters;
  /// lane_slot[k]: row of filter k's W-element block in the Impl's lane
  /// matrix = the kernel's reference slot (arrays then refs, source order).
  std::vector<std::size_t> lane_slot;

  // Per-cycle scratch, indexed by filter.
  std::vector<unsigned char> avail;
  std::vector<unsigned char> match;
  std::vector<unsigned char> advance;
  std::vector<double> moved;  // value consumed by each advancing filter
};

}  // namespace

struct FastSim::Impl {
  const stencil::StencilProgram* program = nullptr;
  const arch::AcceleratorDesign* design = nullptr;
  std::shared_ptr<const FastPlan> plan;  // owns every RowProgram below
  SimOptions options;

  RowCursor kernel_cursor;
  std::int64_t total_iterations = 0;

  std::vector<FastSystem> systems;
  /// Every output counter proved to track kernel_cursor + offset at plan
  /// compile time; the per-fire port validation is then a no-op.
  bool ports_structurally_valid = false;

  std::function<void(const poly::IntVec&, double)> output_callback;

  SimResult result;
  std::string stream_point_this_cycle;  // only filled while tracing
  std::int64_t cycle = 0;
  std::int64_t stall_cycles = 0;
  std::int64_t last_fire_cycle = 0;
  std::vector<double> gathered;  // kernel argument scratch

  // W-wide execution state (inert when width == 1).
  std::int64_t width = 1;       ///< micro-cycles a wide step may retire
  std::int64_t last_width = 1;  ///< micro-cycles the last step() retired
  std::int64_t datapath_cycles = 0;  ///< step() invocations (machine cycles)
  VecKernelMode vec_mode = VecKernelMode::kPerLane;
  std::vector<double> weights;   ///< slot order; empty -> per-lane kernel
  std::vector<double> lane_vals;  ///< refs x width lane matrix, slot-major
  std::vector<double> lane_out;   ///< width kernel outputs
  poly::IntVec lane_point;        ///< per-lane point scratch

  bool done() const { return result.kernel_fires == total_iterations; }

  double read_source(FastSystem& sys, FastFilter& filter);
  void tick_feeds();
  bool hypothesize(const FastSystem& sys) const;
  void fill_scratch(FastSystem& sys);
  void commit_fire(FastSystem& sys);
  void commit_stalled(FastSystem& sys);
  void validate_ports() const;
  void commit_kernel();
  void record_trace(bool fire);
  std::string describe_stall() const;
  bool batch_ready(FastSystem& sys);
  bool try_wide_step();
  bool step();
};

std::shared_ptr<const FastPlan> compile_fast_plan(
    const stencil::StencilProgram& program,
    const arch::AcceleratorDesign& design) {
  if (design.systems.size() != program.inputs().size()) {
    throw SimulationError("design has " +
                          std::to_string(design.systems.size()) +
                          " memory systems for " +
                          std::to_string(program.inputs().size()) +
                          " input arrays");
  }
  auto plan = std::make_shared<FastPlan>();
  plan->iteration = RowProgram::compile(program.iteration());
  plan->total_iterations = program.iteration().count();
  plan->ports_structurally_valid = true;
  plan->systems.resize(design.systems.size());
  for (std::size_t s = 0; s < design.systems.size(); ++s) {
    const arch::MemorySystem& ms = design.systems[s];
    FastPlan::SystemPlan& sys = plan->systems[s];
    sys.input = RowProgram::compile(ms.input_domain);
    sys.filter_out.resize(ms.filter_count());
    for (std::size_t k = 0; k < ms.filter_count(); ++k) {
      sys.filter_out[k] = RowProgram::compile(
          program.iteration().translated(ms.ordered_offsets[k]));
      plan->ports_structurally_valid =
          plan->ports_structurally_valid &&
          aligned_with_iteration(plan->iteration, sys.filter_out[k],
                                 ms.ordered_offsets[k]);
    }
  }
  // Force the lazy default kernel now, while we are still single-threaded
  // with respect to this program object; kernel() is then a pure read for
  // every concurrent simulation that shares the plan.
  (void)program.kernel();
  plan->lanes.width = std::max<std::int64_t>(1, design.datapath_width);
  plan->lanes.min_row_span = std::numeric_limits<std::int64_t>::max();
  for (const RowProgram::Row& row : plan->iteration.rows) {
    for (const poly::Interval& iv : row.intervals) {
      plan->lanes.min_row_span =
          std::min(plan->lanes.min_row_span, iv.hi - iv.lo + 1);
    }
  }
  if (plan->iteration.rows.empty()) plan->lanes.min_row_span = 0;
  plan->lanes.weights = program.weighted_sum_weights();
  if (plan->lanes.weights.size() != program.total_references()) {
    plan->lanes.weights.clear();
  }
  return plan;
}

FastSim::FastSim(const stencil::StencilProgram& program,
                 const arch::AcceleratorDesign& design, SimOptions options)
    : FastSim(program, design, compile_fast_plan(program, design),
              std::move(options)) {}

FastSim::FastSim(const stencil::StencilProgram& program,
                 const arch::AcceleratorDesign& design,
                 std::shared_ptr<const FastPlan> plan, SimOptions options)
    : impl_(std::make_unique<Impl>()) {
  Impl& im = *impl_;
  im.program = &program;
  im.design = &design;
  im.plan = std::move(plan);
  im.options = options;

  if (!im.plan || im.plan->systems.size() != design.systems.size()) {
    throw SimulationError("fast plan does not match the design");
  }
  im.total_iterations = im.plan->total_iterations;
  im.kernel_cursor.reset(im.plan->iteration);
  im.ports_structurally_valid = im.plan->ports_structurally_valid;

  im.systems.resize(design.systems.size());
  for (std::size_t s = 0; s < design.systems.size(); ++s) {
    const arch::MemorySystem& ms = design.systems[s];
    const FastPlan::SystemPlan& sp = im.plan->systems[s];
    FastSystem& sys = im.systems[s];
    sys.design = &ms;
    sys.input_prog = &sp.input;

    const std::size_t n = ms.filter_count();
    if (sp.filter_out.size() != n) {
      throw SimulationError("fast plan does not match the design");
    }
    sys.filters.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      FastFilter& filter = sys.filters[k];
      filter.out_prog = &sp.filter_out[k];
      filter.out.reset(*filter.out_prog);
      filter.scanner.reset(*sys.input_prog);
      filter.reseek();
    }
    sys.fifos.resize(ms.fifos.size());
    for (std::size_t k = 0; k < ms.fifos.size(); ++k) {
      sys.fifos[k].init(ms.fifos[k].depth, ms.fifos[k].cut);
    }
    const std::vector<std::size_t> heads = ms.segment_heads();
    sys.feeds.resize(heads.size());
    sys.synthetic.assign(heads.size(), true);
    for (std::size_t seg = 0; seg < heads.size(); ++seg) {
      FastFilter& head = sys.filters[heads[seg]];
      head.segment = static_cast<int>(seg);
      head.in.reset(*sys.input_prog);
      sys.feeds[seg] =
          std::make_shared<SyntheticFeed>(options.seed, ms.array_index);
    }
    sys.avail.assign(n, 0);
    sys.match.assign(n, 0);
    sys.advance.assign(n, 0);
    sys.moved.assign(n, 0.0);
  }

  im.width = options.vectorize
                 ? std::max<std::int64_t>(1, design.datapath_width)
                 : 1;
  if (im.width > 1) {
    const std::size_t refs = program.total_references();
    std::size_t base = 0;
    for (std::size_t s = 0; s < im.systems.size(); ++s) {
      FastSystem& sys = im.systems[s];
      sys.lane_slot.resize(sys.filters.size());
      for (std::size_t k = 0; k < sys.filters.size(); ++k) {
        sys.lane_slot[k] = base + sys.design->ref_order[k];
      }
      base += sys.filters.size();
    }
    im.lane_vals.assign(refs * static_cast<std::size_t>(im.width), 0.0);
    im.lane_out.assign(static_cast<std::size_t>(im.width), 0.0);
    im.weights = im.plan->lanes.weights;
    if (im.weights.size() == refs && refs > 0) {
      im.vec_mode = probe_vec_kernel(program.kernel(), im.weights, im.width);
    }
    if (im.vec_mode == VecKernelMode::kPerLane) im.weights.clear();
  }

  im.result.fifo_max_fill.resize(design.systems.size());
  im.result.filter_stall_cycles.resize(design.systems.size());
  for (std::size_t s = 0; s < design.systems.size(); ++s) {
    im.result.fifo_max_fill[s].assign(design.systems[s].fifos.size(), 0);
    im.result.filter_stall_cycles[s].assign(
        design.systems[s].filter_count(), 0);
  }
  im.gathered.resize(program.total_references());
}

FastSim::~FastSim() = default;

void FastSim::set_feed(std::size_t array_idx, std::size_t segment,
                       std::shared_ptr<ExternalFeed> feed) {
  FastSystem& sys = impl_->systems.at(array_idx);
  sys.feeds.at(segment) = std::move(feed);
  sys.synthetic[segment] = false;  // back to the generic virtual protocol
}

void FastSim::set_output_callback(
    std::function<void(const poly::IntVec&, double)> callback) {
  impl_->output_callback = std::move(callback);
}

bool FastSim::done() const { return impl_->done(); }

std::int64_t FastSim::cycle() const { return impl_->cycle; }

std::int64_t FastSim::kernel_fires() const {
  return impl_->result.kernel_fires;
}

std::int64_t FastSim::fifo_fill(std::size_t system, std::size_t fifo) const {
  return impl_->systems.at(system).fifos.at(fifo).count;
}

std::int64_t FastSim::last_step_width() const { return impl_->last_width; }

double FastSim::Impl::read_source(FastSystem& sys, FastFilter& filter) {
  if (sys.synthetic[filter.segment]) {
    return stencil::synthetic_value(options.seed, sys.design->array_index,
                                    filter.in.point());
  }
  return sys.feeds[filter.segment]->read(filter.in.point());
}

void FastSim::Impl::tick_feeds() {
  for (FastSystem& sys : systems) {
    for (std::size_t seg = 0; seg < sys.feeds.size(); ++seg) {
      if (!sys.synthetic[seg]) sys.feeds[seg]->tick();
    }
  }
}

/// Same downstream-to-upstream hypothesis resolution as the reference
/// backend (and the generated RTL's advance logic), fused with the
/// availability/match evaluation so the common firing cycle touches no
/// scratch state at all. Side-effect free; ExternalFeed::available is pure
/// by contract so re-evaluating it on a stall cycle is safe.
bool FastSim::Impl::hypothesize(const FastSystem& sys) const {
  const std::size_t n = sys.filters.size();
  bool fire = true;
  bool downstream_advances = true;  // filter n-1 has no downstream FIFO
  for (std::size_t k = n; k-- > 0;) {
    const FastFilter& filter = sys.filters[k];
    bool avail = false;
    if (filter.out.is_valid) {  // else: done forwarding
      if (filter.segment >= 0) {
        avail = filter.in.is_valid &&
                (sys.synthetic[filter.segment] != 0 ||
                 sys.feeds[filter.segment]->available(filter.in.point()));
      } else {
        avail = sys.fifos[k - 1].count > 0;
      }
    }
    bool space = true;
    if (k + 1 < n && !sys.fifos[k].cut) {
      const FastFifo& fifo = sys.fifos[k];
      space = fifo.count < fifo.capacity || downstream_advances;
    }
    const bool advances = avail && space;
    fire = fire && advances && filter.in_pos == filter.next_match;
    downstream_advances = advances;
  }
  return fire;
}

/// Materializes per-filter avail/match flags -- only needed on stall
/// cycles (for the hold-vs-discard commit and the deadlock diagnostic) and
/// on traced cycles.
void FastSim::Impl::fill_scratch(FastSystem& sys) {
  const std::size_t n = sys.filters.size();
  for (std::size_t k = 0; k < n; ++k) {
    FastFilter& filter = sys.filters[k];
    bool avail = false;
    if (filter.out.is_valid) {
      if (filter.segment >= 0) {
        avail = filter.in.is_valid &&
                (sys.synthetic[filter.segment] != 0 ||
                 sys.feeds[filter.segment]->available(filter.in.point()));
      } else {
        avail = sys.fifos[k - 1].count > 0;
      }
    }
    sys.avail[k] = avail ? 1 : 0;
    sys.match[k] = (avail && filter.in_pos == filter.next_match) ? 1 : 0;
    sys.advance[k] = 0;
  }
}

/// On a firing cycle every filter consumes and forwards: pops first (so a
/// full FIFO drained this cycle can accept a push), then pushes, then the
/// output counters advance past the matched point.
void FastSim::Impl::commit_fire(FastSystem& sys) {
  const std::size_t n = sys.filters.size();
  for (std::size_t k = 0; k < n; ++k) {
    sys.advance[k] = 1;
    FastFilter& filter = sys.filters[k];
    if (filter.segment >= 0) {
      sys.moved[k] = read_source(sys, filter);
      filter.in.advance();
    } else {
      sys.moved[k] = sys.fifos[k - 1].pop();
    }
    ++filter.in_pos;
  }
  for (std::size_t k = 0; k < n; ++k) {
    if (k + 1 < n && !sys.fifos[k].cut) {
      sys.fifos[k].push(sys.moved[k]);
    }
    FastFilter& filter = sys.filters[k];
    filter.out.advance();
    filter.reseek();
  }
}

/// On a non-firing cycle matching filters hold their token; the rest
/// discard and forward as space permits (reference commit_advances with
/// fire = false).
void FastSim::Impl::commit_stalled(FastSystem& sys) {
  const std::size_t n = sys.filters.size();
  bool downstream_advances = true;
  for (std::size_t k = n; k-- > 0;) {
    bool space = true;
    if (k + 1 < n && !sys.fifos[k].cut) {
      const FastFifo& fifo = sys.fifos[k];
      space = fifo.count < fifo.capacity || downstream_advances;
    }
    sys.advance[k] =
        (sys.avail[k] != 0 && space && sys.match[k] == 0) ? 1 : 0;
    downstream_advances = sys.advance[k] != 0;
  }
  for (std::size_t k = 0; k < n; ++k) {
    if (!sys.advance[k]) continue;
    FastFilter& filter = sys.filters[k];
    if (filter.segment >= 0) {
      sys.moved[k] = read_source(sys, filter);
      filter.in.advance();
    } else {
      sys.moved[k] = sys.fifos[k - 1].pop();
    }
    ++filter.in_pos;
  }
  for (std::size_t k = 0; k < n; ++k) {
    if (!sys.advance[k]) continue;
    if (k + 1 < n && !sys.fifos[k].cut) {
      sys.fifos[k].push(sys.moved[k]);
    }
  }
}

/// On a firing cycle every matching filter's candidate is its output
/// counter's point (that is what the integer match test established); the
/// counters themselves must agree with A[i + f_k] for the current
/// iteration, component-wise so no temporary point is built.
void FastSim::Impl::validate_ports() const {
  const poly::IntVec& i = kernel_cursor.point();
  for (const FastSystem& sys : systems) {
    for (std::size_t k = 0; k < sys.filters.size(); ++k) {
      const poly::IntVec& got = sys.filters[k].out.point();
      const poly::IntVec& offset = sys.design->ordered_offsets[k];
      for (std::size_t d = 0; d < i.size(); ++d) {
        if (got[d] != i[d] + offset[d]) {
          throw SimulationError(
              "kernel port mismatch at iteration " + poly::to_string(i) +
              ": filter " + std::to_string(k) + " of array " +
              sys.design->array + " delivered " + poly::to_string(got) +
              ", expected " + poly::to_string(poly::add(i, offset)));
        }
      }
    }
  }
}

void FastSim::Impl::commit_kernel() {
  const poly::IntVec& i = kernel_cursor.point();
  std::size_t base = 0;
  for (const FastSystem& sys : systems) {
    for (std::size_t k = 0; k < sys.filters.size(); ++k) {
      gathered[base + sys.design->ref_order[k]] = sys.moved[k];
    }
    base += sys.filters.size();
  }
  const double output = program->kernel()(gathered);
  if (options.record_outputs) result.outputs.push_back(output);
  if (output_callback) output_callback(i, output);
  kernel_cursor.advance();
  ++result.kernel_fires;
  if (result.kernel_fires == 1) result.fill_latency = cycle;
  last_fire_cycle = cycle;
}

void FastSim::Impl::record_trace(bool fire) {
  CycleTrace trace;
  trace.cycle = cycle;
  const FastSystem& sys = systems.front();
  trace.stream_point = stream_point_this_cycle;
  trace.filters.reserve(sys.filters.size());
  for (std::size_t k = 0; k < sys.filters.size(); ++k) {
    FilterStatus status = FilterStatus::kStalled;
    if (!sys.filters[k].out.valid()) {
      status = FilterStatus::kDone;
    } else if (sys.advance[k]) {
      status = (fire && sys.match[k]) ? FilterStatus::kForward
                                      : FilterStatus::kDiscard;
    }
    trace.filters.push_back(status);
  }
  for (const FastFifo& fifo : sys.fifos) {
    trace.fifo_fill.push_back(fifo.count);
  }
  result.trace.push_back(std::move(trace));
}

std::string FastSim::Impl::describe_stall() const {
  std::ostringstream out;
  out << "no progress at cycle " << cycle << ";";
  for (const FastSystem& sys : systems) {
    out << " array " << sys.design->array << ": filters[";
    for (std::size_t k = 0; k < sys.filters.size(); ++k) {
      if (!sys.filters[k].out.valid()) {
        out << '.';
      } else if (sys.match[k]) {
        out << 'F';  // wants to forward
      } else if (sys.avail[k]) {
        out << 'd';
      } else {
        out << 's';
      }
    }
    out << "] fifo_fill[";
    for (std::size_t k = 0; k < sys.fifos.size(); ++k) {
      if (k > 0) out << ',';
      out << sys.fifos[k].count << '/' << sys.fifos[k].capacity;
    }
    out << "]";
  }
  return out.str();
}

/// Side-effect-free test that every filter of `sys` is about to fire for
/// `width` consecutive micro-cycles: match established and running for W
/// consecutive stream ranks, W output points left in the row interval,
/// heads with W streamable points from a time-invariant feed, non-heads
/// with a non-empty upstream FIFO (occupancy is invariant across firing
/// cycles, so one element now means one element on every batched cycle).
bool FastSim::Impl::batch_ready(FastSystem& sys) {
  const std::size_t n = sys.filters.size();
  for (std::size_t k = 0; k < n; ++k) {
    const FastFilter& filter = sys.filters[k];
    if (!filter.out.is_valid) return false;
    if (filter.in_pos != filter.next_match) return false;
    if (filter.match_run < width) return false;
    if (filter.out.remaining_in_interval() < width) return false;
    if (filter.segment >= 0) {
      if (!filter.in.is_valid ||
          filter.in.remaining_in_interval() < width) {
        return false;
      }
      if (!sys.synthetic[filter.segment]) {
        ExternalFeed& feed = *sys.feeds[filter.segment];
        if (!feed.time_invariant()) return false;
        lane_point = filter.in.point();
        for (std::int64_t l = 0; l < width; ++l) {
          if (!feed.available(lane_point)) return false;
          ++lane_point.back();
        }
      }
    } else if (sys.fifos[k - 1].count <= 0) {
      return false;
    }
  }
  return true;
}

/// Retires `width` firing micro-cycles in one wide step, or does nothing
/// and returns false. Preconditions guarantee every filter fires on all W
/// cycles, so the batched state transition is exactly W scalar
/// commit_fire/commit_kernel rounds: each uncut FIFO between firing
/// filters sees one pop + one push per cycle (occupancy invariant), and
/// the values a filter consumes are the FIFO's take = min(count, W)
/// oldest elements followed by the first W - take values its upstream
/// neighbour consumed this same batch (pushed at cycle j, popped at cycle
/// j + count). The FIFO afterwards holds the last `take` upstream values.
bool FastSim::Impl::try_wide_step() {
  if (!kernel_cursor.is_valid ||
      kernel_cursor.remaining_in_interval() < width) {
    return false;
  }
  if (cycle + width > options.max_cycles) return false;
  if (options.trace_cycles > 0 && cycle < options.trace_cycles) return false;
  if (options.validate && !ports_structurally_valid) return false;
  for (FastSystem& sys : systems) {
    if (!batch_ready(sys)) return false;
  }

  const std::int64_t start = cycle;
  cycle += width;
  const std::size_t w = static_cast<std::size_t>(width);
  for (FastSystem& sys : systems) {
    const std::size_t n = sys.filters.size();
    for (std::size_t k = 0; k < n; ++k) {
      FastFilter& filter = sys.filters[k];
      double* block = lane_vals.data() + sys.lane_slot[k] * w;
      if (filter.segment >= 0) {
        lane_point = filter.in.point();
        if (sys.synthetic[filter.segment]) {
          for (std::int64_t l = 0; l < width; ++l) {
            block[l] = stencil::synthetic_value(
                options.seed, sys.design->array_index, lane_point);
            ++lane_point.back();
          }
        } else {
          ExternalFeed& feed = *sys.feeds[filter.segment];
          for (std::int64_t l = 0; l < width; ++l) {
            block[l] = feed.read(lane_point);
            ++lane_point.back();
          }
        }
        filter.in.advance_by(width);
      } else {
        FastFifo& fifo = sys.fifos[k - 1];
        const double* upstream =
            lane_vals.data() + sys.lane_slot[k - 1] * w;
        const std::int64_t take = std::min(fifo.count, width);
        fifo.pop_block(take, block);
        std::memcpy(block + take, upstream,
                    static_cast<std::size_t>(width - take) * sizeof(double));
        fifo.push_block(upstream + (width - take), take);
      }
      filter.in_pos += width;
      filter.out.advance_by(width);
      filter.reseek();
    }
  }

  // W kernel fires: the vectorized weighted sum when the probe proved it
  // bit-identical, otherwise one kernel call per lane.
  if (!weights.empty()) {
    run_vec_kernel(vec_mode, lane_vals.data(), weights.data(),
                   weights.size(), width, lane_out.data());
  } else {
    const std::size_t refs = gathered.size();
    for (std::int64_t l = 0; l < width; ++l) {
      for (std::size_t r = 0; r < refs; ++r) {
        gathered[r] = lane_vals[r * w + static_cast<std::size_t>(l)];
      }
      lane_out[static_cast<std::size_t>(l)] = program->kernel()(gathered);
    }
  }
  if (options.record_outputs) {
    result.outputs.insert(result.outputs.end(), lane_out.begin(),
                          lane_out.end());
  }
  if (output_callback) {
    lane_point = kernel_cursor.point();
    for (std::int64_t l = 0; l < width; ++l) {
      output_callback(lane_point, lane_out[static_cast<std::size_t>(l)]);
      ++lane_point.back();
    }
  }
  kernel_cursor.advance_by(width);
  if (result.kernel_fires == 0) result.fill_latency = start + 1;
  result.kernel_fires += width;
  last_fire_cycle = cycle;
  result.drain_start = cycle;  // every micro-cycle streamed off-chip data
  stall_cycles = 0;
  last_width = width;
  return true;
}

bool FastSim::Impl::step() {
  ++datapath_cycles;
  if (width > 1 && try_wide_step()) return true;
  last_width = 1;
  ++cycle;
  const bool tracing =
      options.trace_cycles > 0 && cycle <= options.trace_cycles;
  tick_feeds();

  bool fire = kernel_cursor.valid();
  for (const FastSystem& sys : systems) fire = fire && hypothesize(sys);

  if (tracing) {
    stream_point_this_cycle.clear();
    if (!systems.empty() && !systems.front().filters.empty()) {
      const RowCursor& in = systems.front().filters.front().in;
      if (in.valid()) stream_point_this_cycle = poly::to_string(in.point());
    }
    for (FastSystem& sys : systems) fill_scratch(sys);
  }

  bool progress = fire;
  // Filter 0 is always a segment head, so a firing cycle (every filter
  // consumes) always streams off-chip data; the drain boundary matches the
  // reference backend cycle for cycle.
  bool consumed_off_chip = fire;
  if (fire) {
    // Every filter advances on a firing cycle: no stalls to account.
    if (options.validate && !ports_structurally_valid) validate_ports();
    for (FastSystem& sys : systems) commit_fire(sys);
    commit_kernel();
  } else {
    for (std::size_t s = 0; s < systems.size(); ++s) {
      FastSystem& sys = systems[s];
      if (!tracing) fill_scratch(sys);
      commit_stalled(sys);
      for (std::size_t k = 0; k < sys.filters.size(); ++k) {
        if (sys.advance[k]) {
          progress = true;
          consumed_off_chip =
              consumed_off_chip || sys.filters[k].segment >= 0;
        } else if (sys.filters[k].out.is_valid) {
          ++result.filter_stall_cycles[s][k];
        }
      }
    }
  }
  if (consumed_off_chip) result.drain_start = cycle;

  if (tracing) record_trace(fire);
  if (progress) {
    stall_cycles = 0;
  } else {
    ++stall_cycles;
  }
  return progress;
}

bool FastSim::step() { return impl_->step(); }

SimResult FastSim::run() {
  Impl& im = *impl_;
  while (!im.done() && im.cycle < im.options.max_cycles) {
    im.step();
    if (im.stall_cycles >= im.options.stall_limit) {
      im.result.deadlocked = true;
      im.result.deadlock_detail = im.describe_stall();
      break;
    }
  }
  im.result.cycles = im.cycle;
  im.result.datapath_cycles = im.datapath_cycles;
  if (im.result.kernel_fires >= 2) {
    im.result.steady_ii =
        static_cast<double>(im.last_fire_cycle - im.result.fill_latency) /
        static_cast<double>(im.result.kernel_fires - 1);
  }
  for (std::size_t s = 0; s < im.systems.size(); ++s) {
    for (std::size_t k = 0; k < im.systems[s].fifos.size(); ++k) {
      im.result.fifo_max_fill[s][k] = im.systems[s].fifos[k].max_fill;
    }
  }
  return im.result;
}

namespace {

std::string fills_to_string(const std::vector<std::vector<std::int64_t>>& f) {
  std::ostringstream out;
  for (std::size_t s = 0; s < f.size(); ++s) {
    out << (s > 0 ? " | " : "");
    for (std::size_t k = 0; k < f[s].size(); ++k) {
      out << (k > 0 ? "," : "") << f[s][k];
    }
  }
  return out.str();
}

}  // namespace

DifferentialReport run_differential(const stencil::StencilProgram& program,
                                    const arch::AcceleratorDesign& design,
                                    SimOptions options) {
  DifferentialReport report;
  report.width = std::max<std::int64_t>(1, design.datapath_width);
  AcceleratorSim ref(program, design, options);
  FastSim fast(program, design, options);

  const auto diverge = [&](const std::string& what) {
    report.agreed = false;
    std::ostringstream out;
    out << "cycle " << report.cycles << ": " << what;
    report.divergence = out.str();
  };

  // Lockstep comparison, replicating run()'s stall accounting. One fast
  // step may retire W scalar micro-cycles on a wide design; the reference
  // is stepped that many times and the states compared at the batch
  // boundary (the batch preconditions guarantee every micro-cycle fired,
  // so the boundary is the only place the flags can be observed anyway).
  std::int64_t stall_cycles = 0;
  std::string ref_error;
  std::string fast_error;
  while (report.agreed && !ref.done() &&
         report.cycles < options.max_cycles) {
    bool ref_progress = false;
    bool fast_progress = false;
    std::int64_t w = 1;
    try {
      fast_progress = fast.step();
      w = fast.last_step_width();
    } catch (const SimulationError& e) {
      fast_error = e.what();
    }
    try {
      for (std::int64_t i = 0; i < w; ++i) ref_progress = ref.step();
    } catch (const SimulationError& e) {
      ref_error = e.what();
    }
    report.cycles += w;
    if (!ref_error.empty() || !fast_error.empty()) {
      if (ref_error.empty() != fast_error.empty()) {
        diverge("one backend raised a validation error: reference='" +
                ref_error + "' fast='" + fast_error + "'");
      }
      break;  // both threw: agreed, both detect the design as broken
    }
    if (ref.cycle() != fast.cycle()) {
      diverge("cycle counters differ: reference=" +
              std::to_string(ref.cycle()) +
              " fast=" + std::to_string(fast.cycle()));
      break;
    }
    if (ref_progress != fast_progress) {
      diverge(std::string("progress flags differ: reference=") +
              (ref_progress ? "true" : "false") + " fast=" +
              (fast_progress ? "true" : "false"));
      break;
    }
    if (ref.kernel_fires() != fast.kernel_fires()) {
      diverge("kernel fires differ: reference=" +
              std::to_string(ref.kernel_fires()) +
              " fast=" + std::to_string(fast.kernel_fires()));
      break;
    }
    bool fills_equal = true;
    for (std::size_t s = 0; fills_equal && s < design.systems.size(); ++s) {
      for (std::size_t k = 0; k < design.systems[s].fifos.size(); ++k) {
        if (ref.fifo_fill(s, k) != fast.fifo_fill(s, k)) {
          diverge("occupancy of fifo (" + std::to_string(s) + "," +
                  std::to_string(k) + ") differs: reference=" +
                  std::to_string(ref.fifo_fill(s, k)) +
                  " fast=" + std::to_string(fast.fifo_fill(s, k)));
          fills_equal = false;
          break;
        }
      }
    }
    if (!fills_equal) break;
    if (ref_progress) {
      stall_cycles = 0;
    } else if (++stall_cycles >= options.stall_limit) {
      break;  // both deadlocked identically; run() below finalizes
    }
  }
  if (!report.agreed || !ref_error.empty()) return report;

  // Finalize both results. run() continues from the current state: a no-op
  // loop when done, exactly one more (identical) stall step when
  // deadlocked.
  report.reference = ref.run();
  report.fast = fast.run();

  const SimResult& a = report.reference;
  const SimResult& b = report.fast;
  if (a.cycles != b.cycles) {
    diverge("total cycles differ: " + std::to_string(a.cycles) + " vs " +
            std::to_string(b.cycles));
  } else if (a.kernel_fires != b.kernel_fires) {
    diverge("kernel fires differ: " + std::to_string(a.kernel_fires) +
            " vs " + std::to_string(b.kernel_fires));
  } else if (a.fill_latency != b.fill_latency) {
    diverge("fill latency differs: " + std::to_string(a.fill_latency) +
            " vs " + std::to_string(b.fill_latency));
  } else if (a.steady_ii != b.steady_ii) {
    diverge("steady II differs");
  } else if (a.deadlocked != b.deadlocked) {
    diverge(std::string("deadlock verdicts differ: reference=") +
            (a.deadlocked ? "yes" : "no") + " fast=" +
            (b.deadlocked ? "yes" : "no"));
  } else if (a.deadlock_detail != b.deadlock_detail) {
    diverge("deadlock diagnostics differ: '" + a.deadlock_detail +
            "' vs '" + b.deadlock_detail + "'");
  } else if (a.fifo_max_fill != b.fifo_max_fill) {
    diverge("max FIFO fills differ: " + fills_to_string(a.fifo_max_fill) +
            " vs " + fills_to_string(b.fifo_max_fill));
  } else if (a.filter_stall_cycles != b.filter_stall_cycles) {
    diverge("filter stall cycles differ: " +
            fills_to_string(a.filter_stall_cycles) + " vs " +
            fills_to_string(b.filter_stall_cycles));
  } else if (a.drain_start != b.drain_start) {
    diverge("drain boundaries differ: " + std::to_string(a.drain_start) +
            " vs " + std::to_string(b.drain_start));
  } else if (a.outputs != b.outputs) {
    diverge("outputs differ (" + std::to_string(a.outputs.size()) + " vs " +
            std::to_string(b.outputs.size()) + " values)");
  }
  return report;
}

}  // namespace nup::sim
