#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/design.hpp"
#include "sim/simulator.hpp"
#include "stencil/program.hpp"

namespace nup::sim {

/// Multi-accelerator pipeline (Appendix 9.3, Fig 13c): stage k's output
/// stream feeds stage k+1's off-chip input directly -- no intermediate
/// frame buffer. Stages are clocked in lock step; the wire between two
/// stages is a QueueFeed whose peak occupancy measures the registers a
/// real implementation would need.
///
/// Compatibility rule (checked at add_stage): a downstream stage must
/// consume exactly the element stream its predecessor produces, i.e. its
/// single input array's streamed domain must equal the predecessor's
/// iteration domain.
class Pipeline {
 public:
  struct StageResult {
    std::int64_t outputs = 0;
    std::int64_t max_wire_fill = 0;  ///< peak elements on the input wire
  };

  struct Result {
    bool completed = false;
    std::int64_t cycles = 0;
    std::vector<StageResult> stages;
    std::vector<double> outputs;  ///< final stage outputs, in order
  };

  explicit Pipeline(SimOptions options = {});
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Appends a stage. The first stage reads synthetic data; later stages
  /// read their predecessor's output. Throws Error if the stage's input
  /// stream is not exactly the predecessor's output stream.
  void add_stage(const stencil::StencilProgram& program,
                 const arch::AcceleratorDesign& design);

  /// Convenience: builds the design with default options first.
  void add_stage(const stencil::StencilProgram& program);

  /// Runs all stages to completion in lock step.
  Result run(std::int64_t max_cycles = 100'000'000);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nup::sim
