#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "arch/design.hpp"
#include "sim/feed.hpp"
#include "sim/row_program.hpp"
#include "sim/simulator.hpp"
#include "stencil/program.hpp"

namespace nup::sim {

/// Everything FastSim precomputes at construction that depends only on the
/// (program, design) pair and not on a particular run: the compiled row
/// programs of the iteration domain, of every streamed input hull and of
/// every filter's data domain D_Ax, plus the structural port-validity
/// proof. Compiling these tables dominates FastSim's construction cost, so
/// the runtime's design cache memoizes a shared plan and every simulation
/// of the same design starts in O(FIFO storage) instead. A FastPlan is
/// immutable after compile_fast_plan returns and is safe to share across
/// threads.
struct FastPlan {
  struct SystemPlan {
    RowProgram input;                    ///< streamed hull of the segments
    std::vector<RowProgram> filter_out;  ///< D_Ax per filter, filter order
  };

  /// Lane blocking of the W-wide datapath, precomputed at compile time so
  /// the per-step batching test never re-derives it.
  struct LaneInfo {
    std::int64_t width = 1;  ///< design.datapath_width
    /// Shortest row interval across the iteration program: rows narrower
    /// than the width can never fill a vector and always retire through the
    /// scalar remainder path. Purely informational (benches report it).
    std::int64_t min_row_span = 0;
    /// Kernel weights in reference slot order when the kernel's linear
    /// structure is known (StencilProgram::weighted_sum_weights); empty
    /// forces the per-lane kernel-call path on wide steps.
    std::vector<double> weights;
  };

  RowProgram iteration;
  std::int64_t total_iterations = 0;
  std::vector<SystemPlan> systems;
  LaneInfo lanes;
  /// Every output counter proved to track the iteration counter + offset;
  /// the per-fire port validation is then a no-op.
  bool ports_structurally_valid = false;
};

/// Compiles the shared plan for one (program, design) pair. Also forces the
/// lazy default kernel of `program` to materialize, so concurrent FastSim
/// runs over the same program object never mutate it. Throws
/// SimulationError when the design's system count does not match the
/// program's input arrays.
std::shared_ptr<const FastPlan> compile_fast_plan(
    const stencil::StencilProgram& program,
    const arch::AcceleratorDesign& design);

/// Compiled fast-lane backend of the cycle-accurate simulator.
///
/// Semantically identical to AcceleratorSim (same fire/stall decisions,
/// same FIFO occupancies, same outputs on every cycle), but the per-cycle
/// work is compiled away at construction: each filter's domain D_Ax and
/// each streamed input hull become incremental row programs (precomputed
/// lexicographic row/interval tables mirroring Fig 10's input and output
/// counters), and the reuse FIFOs hold flat ring buffers of double values
/// only -- no heap-allocated grid point ever flows through the chain in
/// steady state. The candidate point at every filter is recovered from the
/// invariant that a chain segment carries the segment stream in order, so
/// a per-filter input counter replaces the per-token points of the
/// reference backend.
///
/// On designs with datapath_width W > 1 (and SimOptions::vectorize), a
/// step() may retire up to W scalar micro-cycles at once: when every filter
/// of every chain is provably about to fire for W consecutive cycles (all
/// cursors have >= W points left in their row interval, every match run
/// covers W consecutive stream ranks, feeds are time-invariant), the wide
/// path moves W-element blocks through the FIFOs and evaluates W kernel
/// lanes per fire -- with an AVX2 inner loop when the host supports it and
/// the kernel's weighted-sum structure is known, bit-identically to the
/// scalar path (verified at construction by probing, and continuously by
/// run_differential). Boundary/remainder cells, stall cycles, traced
/// cycles and timed feeds always take the scalar path, so every
/// scalar-cycle observable (cycles, fires, occupancies, outputs, stalls)
/// is invariant in W; only SimResult::datapath_cycles shrinks.
class FastSim {
 public:
  FastSim(const stencil::StencilProgram& program,
          const arch::AcceleratorDesign& design, SimOptions options = {});

  /// Construction from a memoized plan (see FastPlan): skips all row-table
  /// compilation. `plan` must have been compiled for exactly this
  /// (program, design) pair; `program` and `design` must outlive the sim.
  FastSim(const stencil::StencilProgram& program,
          const arch::AcceleratorDesign& design,
          std::shared_ptr<const FastPlan> plan, SimOptions options = {});
  ~FastSim();

  FastSim(const FastSim&) = delete;
  FastSim& operator=(const FastSim&) = delete;

  /// Replaces the off-chip feed of one chain segment (default: synthetic).
  void set_feed(std::size_t array_idx, std::size_t segment,
                std::shared_ptr<ExternalFeed> feed);

  /// Invoked with every kernel output, in iteration order.
  void set_output_callback(
      std::function<void(const poly::IntVec&, double)> callback);

  /// Advances one clock cycle. Returns true if any module made progress.
  bool step();

  bool done() const;

  /// Runs until completion, deadlock, or the cycle limit; same contract as
  /// AcceleratorSim::run.
  SimResult run();

  // Lockstep observers (used by the differential checker).
  std::int64_t cycle() const;
  std::int64_t kernel_fires() const;
  std::int64_t fifo_fill(std::size_t system, std::size_t fifo) const;
  /// Scalar micro-cycles the most recent step() retired: the datapath
  /// width on a wide step, 1 on the scalar path. The differential checker
  /// steps the reference this many times to stay in lockstep.
  std::int64_t last_step_width() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Outcome of running both backends in lockstep and comparing every
/// per-cycle decision plus the final results.
struct DifferentialReport {
  bool agreed = true;
  std::int64_t cycles = 0;      ///< lockstep scalar cycles compared
  std::int64_t width = 1;       ///< datapath width the fast backend ran at
  std::string divergence;       ///< first difference; empty when agreed
  SimResult reference;
  SimResult fast;
};

/// Differential checker: steps AcceleratorSim and FastSim in lockstep and
/// asserts identical progress flags, kernel-fire counts and per-FIFO
/// occupancies on every cycle, then compares the finalized results
/// (cycles, fires, fill latency, steady II, deadlock verdict and detail,
/// per-FIFO max fill, stall cycles, drain boundary, outputs). On wide
/// designs one fast step may retire W scalar micro-cycles; the reference
/// is then stepped W times and the comparison happens at the batch
/// boundary, so every W is checked cycle-exact against the scalar
/// reference semantics. Any divergence is reported with the first
/// offending cycle; the fast path can never silently drift.
DifferentialReport run_differential(const stencil::StencilProgram& program,
                                    const arch::AcceleratorDesign& design,
                                    SimOptions options = {});

}  // namespace nup::sim
