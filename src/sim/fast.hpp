#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "arch/design.hpp"
#include "sim/feed.hpp"
#include "sim/simulator.hpp"
#include "stencil/program.hpp"

namespace nup::sim {

/// Compiled fast-lane backend of the cycle-accurate simulator.
///
/// Semantically identical to AcceleratorSim (same fire/stall decisions,
/// same FIFO occupancies, same outputs on every cycle), but the per-cycle
/// work is compiled away at construction: each filter's domain D_Ax and
/// each streamed input hull become incremental row programs (precomputed
/// lexicographic row/interval tables mirroring Fig 10's input and output
/// counters), and the reuse FIFOs hold flat ring buffers of double values
/// only -- no heap-allocated grid point ever flows through the chain in
/// steady state. The candidate point at every filter is recovered from the
/// invariant that a chain segment carries the segment stream in order, so
/// a per-filter input counter replaces the per-token points of the
/// reference backend.
class FastSim {
 public:
  FastSim(const stencil::StencilProgram& program,
          const arch::AcceleratorDesign& design, SimOptions options = {});
  ~FastSim();

  FastSim(const FastSim&) = delete;
  FastSim& operator=(const FastSim&) = delete;

  /// Replaces the off-chip feed of one chain segment (default: synthetic).
  void set_feed(std::size_t array_idx, std::size_t segment,
                std::shared_ptr<ExternalFeed> feed);

  /// Invoked with every kernel output, in iteration order.
  void set_output_callback(
      std::function<void(const poly::IntVec&, double)> callback);

  /// Advances one clock cycle. Returns true if any module made progress.
  bool step();

  bool done() const;

  /// Runs until completion, deadlock, or the cycle limit; same contract as
  /// AcceleratorSim::run.
  SimResult run();

  // Lockstep observers (used by the differential checker).
  std::int64_t cycle() const;
  std::int64_t kernel_fires() const;
  std::int64_t fifo_fill(std::size_t system, std::size_t fifo) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Outcome of running both backends in lockstep and comparing every
/// per-cycle decision plus the final results.
struct DifferentialReport {
  bool agreed = true;
  std::int64_t cycles = 0;      ///< lockstep cycles compared
  std::string divergence;       ///< first difference; empty when agreed
  SimResult reference;
  SimResult fast;
};

/// Differential checker: steps AcceleratorSim and FastSim one cycle at a
/// time and asserts identical progress flags, kernel-fire counts and
/// per-FIFO occupancies on every cycle, then compares the finalized
/// results (cycles, fires, fill latency, steady II, deadlock verdict and
/// detail, per-FIFO max fill, outputs). Any divergence is reported with
/// the first offending cycle; the fast path can never silently drift from
/// the reference semantics.
DifferentialReport run_differential(const stencil::StencilProgram& program,
                                    const arch::AcceleratorDesign& design,
                                    SimOptions options = {});

}  // namespace nup::sim
