#include "sim/banked.hpp"

#include <unordered_map>
#include <unordered_set>

#include "poly/domain.hpp"
#include "stencil/golden.hpp"
#include "util/error.hpp"

namespace nup::sim {

namespace {

std::int64_t positive_mod(std::int64_t a, std::int64_t n) {
  const std::int64_t r = a % n;
  return r < 0 ? r + n : r;
}

}  // namespace

BankedSimResult simulate_banked(const stencil::StencilProgram& program,
                                const baseline::UniformPartition& partition,
                                const BankedSimOptions& options) {
  BankedSimResult result;
  const stencil::InputArray& input = program.inputs().at(0);
  const std::size_t n = input.refs.size();
  const poly::Domain hull = program.data_domain_hull(0);
  poly::IntVec hull_lo;
  poly::IntVec hull_hi;
  if (!hull.as_single_box(&hull_lo, &hull_hi)) {
    throw Error("simulate_banked: hull is not a box");
  }
  const std::int64_t capacity = partition.total_size;
  const std::int64_t banks = static_cast<std::int64_t>(partition.banks);

  // The line buffer: address -> value, bounded to `capacity` addresses
  // behind the write pointer (the eviction the modulo addressing implies).
  std::unordered_map<std::int64_t, double> buffer;
  buffer.reserve(static_cast<std::size_t>(capacity) + 4);

  auto address_of = [&](const poly::IntVec& h) {
    poly::IntVec rel(h.size());
    for (std::size_t d = 0; d < h.size(); ++d) rel[d] = h[d] - hull_lo[d];
    return baseline::linearize(rel, partition.extents);
  };
  auto bank_of = [&](const poly::IntVec& h) {
    std::int64_t dot = 0;
    for (std::size_t d = 0; d < h.size(); ++d) {
      dot += partition.scheme[d] * h[d];
    }
    return positive_mod(dot, banks);
  };

  poly::Domain::LexCursor stream(hull);
  poly::Domain::LexCursor iter(program.iteration());
  const std::int64_t total = program.iteration().count();
  const stencil::KernelFn& kernel = program.kernel();
  std::vector<double> gathered(n);
  std::unordered_set<std::int64_t> banks_this_cycle;
  std::int64_t write_addr = -1;
  std::int64_t last_fire = 0;

  while (result.outputs < total && result.cycles < options.max_cycles) {
    ++result.cycles;

    // Write port: one element from the stream enters its bank.
    if (stream.valid()) {
      const poly::IntVec& h = stream.point();
      write_addr = address_of(h);
      buffer[write_addr] =
          stencil::synthetic_value(options.seed, 0, h);
      if (write_addr - capacity >= 0) buffer.erase(write_addr - capacity);
      stream.advance();
    }

    // Read ports: once every window element has arrived, the controller
    // issues the n reads for the current iteration.
    if (!iter.valid()) break;
    const poly::IntVec& i = iter.point();
    std::int64_t newest = 0;
    for (std::size_t k = 0; k < n; ++k) {
      newest = std::max(newest,
                        address_of(poly::add(i, input.refs[k].offset)));
    }
    if (newest > write_addr) continue;  // still filling

    banks_this_cycle.clear();
    for (std::size_t k = 0; k < n; ++k) {
      const poly::IntVec h = poly::add(i, input.refs[k].offset);
      const std::int64_t bank = bank_of(h);
      if (!banks_this_cycle.insert(bank).second) {
        result.bank_conflict = true;
        result.conflict_detail =
            "bank " + std::to_string(bank) + " hit twice at iteration " +
            poly::to_string(i) + " (reference " +
            poly::to_string(input.refs[k].offset) + ")";
        return result;
      }
      const auto it = buffer.find(address_of(h));
      if (it == buffer.end()) {
        result.bank_conflict = true;
        result.conflict_detail =
            "element " + poly::to_string(h) +
            " was evicted before its last use (buffer too small)";
        return result;
      }
      gathered[k] = it->second;
    }
    const double output = kernel(gathered);
    if (options.record_outputs) result.values.push_back(output);
    ++result.outputs;
    if (result.outputs == 1) result.fill_latency = result.cycles;
    last_fire = result.cycles;
    iter.advance();
  }

  result.completed = result.outputs == total;
  if (result.outputs >= 2) {
    result.steady_ii = static_cast<double>(last_fire - result.fill_latency) /
                       static_cast<double>(result.outputs - 1);
  }
  return result;
}

}  // namespace nup::sim
