#include "baseline/conflict.hpp"

#include <unordered_set>

#include "baseline/partition.hpp"
#include "poly/domain.hpp"
#include "util/error.hpp"

namespace nup::baseline {

namespace {

std::int64_t positive_mod(std::int64_t a, std::int64_t n) {
  const std::int64_t r = a % n;
  return r < 0 ? r + n : r;
}

}  // namespace

bool linear_scheme_conflict_free(const std::vector<poly::IntVec>& offsets,
                                 const poly::IntVec& alpha,
                                 std::size_t banks) {
  if (banks == 0) throw Error("linear_scheme_conflict_free: zero banks");
  const std::int64_t n = static_cast<std::int64_t>(banks);
  std::unordered_set<std::int64_t> seen;
  for (const poly::IntVec& f : offsets) {
    std::int64_t dot = 0;
    for (std::size_t d = 0; d < f.size(); ++d) dot += alpha[d] * f[d];
    if (!seen.insert(positive_mod(dot, n)).second) return false;
  }
  return true;
}

bool flat_scheme_conflict_free(const std::vector<poly::IntVec>& offsets,
                               const poly::IntVec& extents,
                               std::size_t banks) {
  if (banks == 0) throw Error("flat_scheme_conflict_free: zero banks");
  const std::int64_t n = static_cast<std::int64_t>(banks);
  std::unordered_set<std::int64_t> seen;
  for (const poly::IntVec& f : offsets) {
    if (!seen.insert(positive_mod(linearize(f, extents), n)).second) {
      return false;
    }
  }
  return true;
}

bool verify_by_sliding(const stencil::StencilProgram& program,
                       std::size_t array_idx, const BankFn& bank,
                       std::int64_t max_positions) {
  const stencil::InputArray& input = program.inputs().at(array_idx);
  std::int64_t positions = 0;
  bool ok = true;
  std::unordered_set<std::int64_t> seen;
  for (poly::Domain::LexCursor cursor(program.iteration());
       cursor.valid() && positions < max_positions && ok;
       cursor.advance(), ++positions) {
    seen.clear();
    for (const stencil::ArrayReference& ref : input.refs) {
      if (!seen.insert(bank(poly::add(cursor.point(), ref.offset))).second) {
        ok = false;
        break;
      }
    }
  }
  return ok;
}

}  // namespace nup::baseline
