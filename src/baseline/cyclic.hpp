#pragma once

#include "baseline/partition.hpp"

namespace nup::baseline {

struct CyclicOptions {
  /// Upper bound for the bank-count search; exceeded => PartitionError.
  std::size_t max_banks = 256;
};

/// Cyclic memory partitioning of Cong et al., ICCAD'09 [5]: the reuse
/// buffer is addressed through the row-major flattening of the data grid
/// and element `addr` lives in bank `addr mod N`. N is the smallest bank
/// count >= n for which the n window offsets land in pairwise-distinct
/// banks -- which depends on the grid row size, reproducing Fig 5's
/// row-size sensitivity.
UniformPartition cyclic_partition(const stencil::StencilProgram& program,
                                  std::size_t array_idx,
                                  const CyclicOptions& options = {});

/// Same search on explicit window offsets and grid extents (used by the
/// Fig 5 row-size sweep without rebuilding programs).
UniformPartition cyclic_partition_raw(const std::vector<poly::IntVec>& offsets,
                                      const poly::IntVec& extents,
                                      const CyclicOptions& options = {});

}  // namespace nup::baseline
