#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "poly/int_vec.hpp"
#include "stencil/program.hpp"

namespace nup::baseline {

/// Result of a *uniform* memory partitioning of the reuse buffer, as
/// produced by the prior work the paper compares against: every bank has
/// the same depth and addresses are distributed by a modulo scheme.
struct UniformPartition {
  std::string method;            ///< "cyclic[5]" or "gmp[8]"
  std::size_t banks = 0;         ///< number of memory banks N
  poly::IntVec scheme;           ///< alpha: bank(h) = (alpha . h) mod N
  std::int64_t span = 0;         ///< reuse-window span in elements (unpadded)
  /// Elements the uniform buffer actually stores. For the flat cyclic
  /// scheme [5] this is the minimal window span; for the row-buffer
  /// organization of [7][8] it is the full slab of (padded) rows/planes the
  /// window touches, which is what their modulo-addressed line buffers hold.
  std::int64_t stored_span = 0;
  std::int64_t bank_depth = 0;   ///< elements per bank, ceil(stored span / N)
  std::int64_t total_size = 0;   ///< banks * bank_depth
  poly::IntVec extents;          ///< grid extents used for linearization
  poly::IntVec padded_extents;   ///< extents after padding (== extents if none)
  bool padded = false;

  std::string to_string() const;
};

/// Row-major linearization of point `h` relative to the origin of a grid
/// with the given extents.
std::int64_t linearize(const poly::IntVec& h, const poly::IntVec& extents);

/// Grid extents of the array's bounding-box data domain.
poly::IntVec array_extents(const stencil::StencilProgram& program,
                           std::size_t array_idx);

/// Reuse-window span: number of elements between the lexicographically
/// first and last window offsets (inclusive) under row-major linearization
/// with the given extents. This is the classic line-buffer footprint that
/// uniform methods partition.
std::int64_t window_span(const std::vector<poly::IntVec>& offsets,
                         const poly::IntVec& extents);

}  // namespace nup::baseline
