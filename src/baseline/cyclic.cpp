#include "baseline/cyclic.hpp"

#include "baseline/conflict.hpp"
#include "util/error.hpp"

namespace nup::baseline {

UniformPartition cyclic_partition_raw(const std::vector<poly::IntVec>& offsets,
                                      const poly::IntVec& extents,
                                      const CyclicOptions& options) {
  const std::size_t n = offsets.size();
  for (std::size_t banks = n; banks <= options.max_banks; ++banks) {
    if (!flat_scheme_conflict_free(offsets, extents, banks)) continue;
    UniformPartition out;
    out.method = "cyclic[5]";
    out.banks = banks;
    // The flattened scheme is the linear scheme whose coefficients are the
    // row-major strides.
    out.scheme.assign(extents.size(), 0);
    std::int64_t stride = 1;
    for (std::size_t d = extents.size(); d-- > 0;) {
      out.scheme[d] = stride;
      stride *= extents[d];
    }
    out.extents = extents;
    out.padded_extents = extents;
    out.span = window_span(offsets, extents);
    out.stored_span = out.span;
    out.bank_depth = (out.span + static_cast<std::int64_t>(banks) - 1) /
                     static_cast<std::int64_t>(banks);
    out.total_size = out.bank_depth * static_cast<std::int64_t>(banks);
    return out;
  }
  throw PartitionError("cyclic[5]: no conflict-free bank count <= " +
                       std::to_string(options.max_banks));
}

UniformPartition cyclic_partition(const stencil::StencilProgram& program,
                                  std::size_t array_idx,
                                  const CyclicOptions& options) {
  std::vector<poly::IntVec> offsets;
  for (const stencil::ArrayReference& ref :
       program.inputs().at(array_idx).refs) {
    offsets.push_back(ref.offset);
  }
  return cyclic_partition_raw(offsets, array_extents(program, array_idx),
                              options);
}

}  // namespace nup::baseline
