#include "baseline/reschedule.hpp"

#include <algorithm>
#include <optional>
#include <set>

#include "util/error.hpp"

namespace nup::baseline {

namespace {

std::int64_t positive_mod(std::int64_t a, std::int64_t n) {
  const std::int64_t r = a % n;
  return r < 0 ? r + n : r;
}

constexpr std::int64_t kSearchNodeBudget = 500'000;

/// Backtracking delay assignment: reference k may be delayed by 0..max
/// cycles; find delays whose shifted offsets land in pairwise-distinct
/// banks. Depth-first with a node budget (the spaces here are tiny; the
/// budget only guards pathological windows).
bool assign_delays_rec(const std::vector<std::int64_t>& lin_offsets,
                       std::int64_t banks, std::int64_t max_delay,
                       std::size_t k, std::set<std::int64_t>& used,
                       std::vector<std::int64_t>& delays,
                       std::int64_t& budget) {
  if (k == lin_offsets.size()) return true;
  for (std::int64_t t = 0; t <= max_delay; ++t) {
    if (--budget <= 0) return false;
    const std::int64_t bank = positive_mod(lin_offsets[k] - t, banks);
    if (!used.insert(bank).second) continue;
    delays[k] = t;
    if (assign_delays_rec(lin_offsets, banks, max_delay, k + 1, used,
                          delays, budget)) {
      return true;
    }
    used.erase(bank);
  }
  return false;
}

std::optional<std::vector<std::int64_t>> assign_delays(
    const std::vector<std::int64_t>& lin_offsets, std::size_t banks,
    std::int64_t max_delay) {
  std::vector<std::int64_t> delays(lin_offsets.size(), 0);
  std::set<std::int64_t> used;
  std::int64_t budget = kSearchNodeBudget;
  if (assign_delays_rec(lin_offsets, static_cast<std::int64_t>(banks),
                        max_delay, 0, used, delays, budget)) {
    return delays;
  }
  return std::nullopt;
}

}  // namespace

ReschedulePartition reschedule_partition_raw(
    const std::vector<poly::IntVec>& offsets, const poly::IntVec& extents,
    const RescheduleOptions& options) {
  std::vector<std::int64_t> lin;
  lin.reserve(offsets.size());
  for (const poly::IntVec& f : offsets) lin.push_back(linearize(f, extents));

  for (std::size_t banks = offsets.size(); banks <= options.max_banks;
       ++banks) {
    const std::optional<std::vector<std::int64_t>> delays =
        assign_delays(lin, banks, options.max_delay);
    if (!delays) continue;

    ReschedulePartition out;
    out.delays = *delays;
    UniformPartition& part = out.partition;
    part.method = "reschedule[7]";
    part.banks = banks;
    part.scheme.assign(extents.size(), 0);
    std::int64_t stride = 1;
    for (std::size_t d = extents.size(); d-- > 0;) {
      part.scheme[d] = stride;
      stride *= extents[d];
    }
    part.extents = extents;
    part.padded_extents = extents;
    part.span = window_span(offsets, extents);
    // Delay registers extend the live window by the largest delay.
    const std::int64_t extra =
        *std::max_element(out.delays.begin(), out.delays.end());
    part.stored_span = part.span + extra;
    part.bank_depth = (part.stored_span + static_cast<std::int64_t>(banks) -
                       1) /
                      static_cast<std::int64_t>(banks);
    part.total_size =
        part.bank_depth * static_cast<std::int64_t>(banks);
    return out;
  }
  throw PartitionError("reschedule[7]: no conflict-free bank count <= " +
                       std::to_string(options.max_banks));
}

ReschedulePartition reschedule_partition(
    const stencil::StencilProgram& program, std::size_t array_idx,
    const RescheduleOptions& options) {
  std::vector<poly::IntVec> offsets;
  for (const stencil::ArrayReference& ref :
       program.inputs().at(array_idx).refs) {
    offsets.push_back(ref.offset);
  }
  return reschedule_partition_raw(offsets, array_extents(program, array_idx),
                                  options);
}

}  // namespace nup::baseline
