#pragma once

#include "baseline/partition.hpp"

namespace nup::baseline {

struct RescheduleOptions {
  /// Upper bound for the bank-count search; exceeded => PartitionError.
  std::size_t max_banks = 256;
  /// Maximum per-reference access delay in cycles. Delaying a read by t
  /// shifts its effective linearized offset by -t.
  std::int64_t max_delay = 3;
};

/// Memory-access rescheduling in the spirit of Li et al., ICCAD'12 [7]:
/// cyclic partitioning of the flattened address space, but each array
/// reference may be delayed by a few cycles (through shift registers on its
/// data path) so that the effective offsets spread across banks. This is
/// what keeps [7]'s bank count at n for DENOISE across row sizes where the
/// un-scheduled [5] fluctuates (Fig 5).
///
/// Note: our search is *more permissive* than the published [7] (it will
/// take any delay assignment within the budget), so its bank counts lower-
/// bound [7]'s. Even so it can never go below the window size n -- the
/// paper's key argument for the streaming design's n-1.
struct ReschedulePartition {
  UniformPartition partition;
  std::vector<std::int64_t> delays;  ///< per reference, in source order
};

ReschedulePartition reschedule_partition(
    const stencil::StencilProgram& program, std::size_t array_idx,
    const RescheduleOptions& options = {});

ReschedulePartition reschedule_partition_raw(
    const std::vector<poly::IntVec>& offsets, const poly::IntVec& extents,
    const RescheduleOptions& options = {});

}  // namespace nup::baseline
