#include "baseline/partition.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace nup::baseline {

std::string UniformPartition::to_string() const {
  std::string out = method + ": " + std::to_string(banks) + " banks x " +
                    std::to_string(bank_depth) + " = " +
                    std::to_string(total_size) + " elements, scheme " +
                    poly::to_string(scheme);
  if (padded) {
    out += ", grid padded " + poly::to_string(extents) + " -> " +
           poly::to_string(padded_extents);
  }
  return out;
}

std::int64_t linearize(const poly::IntVec& h, const poly::IntVec& extents) {
  if (h.size() != extents.size()) {
    throw Error("linearize: dimension mismatch");
  }
  std::int64_t addr = 0;
  for (std::size_t d = 0; d < h.size(); ++d) {
    addr = addr * extents[d] + h[d];
  }
  return addr;
}

poly::IntVec array_extents(const stencil::StencilProgram& program,
                           std::size_t array_idx) {
  poly::IntVec lo;
  poly::IntVec hi;
  if (!program.data_domain_hull(array_idx).as_single_box(&lo, &hi)) {
    throw Error("array_extents: hull is not a box");
  }
  poly::IntVec extents(lo.size());
  for (std::size_t d = 0; d < lo.size(); ++d) extents[d] = hi[d] - lo[d] + 1;
  return extents;
}

std::int64_t window_span(const std::vector<poly::IntVec>& offsets,
                         const poly::IntVec& extents) {
  if (offsets.empty()) throw Error("window_span: empty window");
  std::int64_t lo = linearize(offsets.front(), extents);
  std::int64_t hi = lo;
  for (const poly::IntVec& f : offsets) {
    const std::int64_t addr = linearize(f, extents);
    lo = std::min(lo, addr);
    hi = std::max(hi, addr);
  }
  return hi - lo + 1;
}

}  // namespace nup::baseline
