#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "poly/int_vec.hpp"
#include "stencil/program.hpp"

namespace nup::baseline {

/// Bank-assignment function: grid point -> bank id.
using BankFn = std::function<std::int64_t(const poly::IntVec&)>;

/// True if the scheme bank(h) = (alpha . h) mod banks separates every pair
/// of window offsets. Linear schemes are translation-invariant, so the
/// pairwise test over offsets is exact for every window position.
bool linear_scheme_conflict_free(const std::vector<poly::IntVec>& offsets,
                                 const poly::IntVec& alpha,
                                 std::size_t banks);

/// True if cyclic partitioning of the row-major flattened address space
/// (bank(h) = linearize(h) mod banks) separates the window offsets.
bool flat_scheme_conflict_free(const std::vector<poly::IntVec>& offsets,
                               const poly::IntVec& extents,
                               std::size_t banks);

/// Empirical fairness check: slides the stencil window over up to
/// `max_positions` iterations of the program and verifies that the n
/// simultaneous accesses always hit pairwise-distinct banks. Used by tests
/// to prove the baselines we compare against are genuinely legal.
bool verify_by_sliding(const stencil::StencilProgram& program,
                       std::size_t array_idx, const BankFn& bank,
                       std::int64_t max_positions = 100'000);

}  // namespace nup::baseline
