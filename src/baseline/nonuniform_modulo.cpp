#include "baseline/nonuniform_modulo.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nup::baseline {

namespace {

std::int64_t positive_mod(std::int64_t a, std::int64_t n) {
  const std::int64_t r = a % n;
  return r < 0 ? r + n : r;
}

/// Region index of circular address `a` for sorted boundaries b_0 < ... <
/// b_{m-1}: the largest b_i <= a, wrapping below b_0 into region m-1.
std::size_t region_of(std::int64_t a,
                      const std::vector<std::int64_t>& boundaries) {
  const auto it =
      std::upper_bound(boundaries.begin(), boundaries.end(), a);
  if (it == boundaries.begin()) return boundaries.size() - 1;
  return static_cast<std::size_t>(it - boundaries.begin()) - 1;
}

}  // namespace

bool regions_conflict_free(const std::vector<std::int64_t>& lin_offsets,
                           std::int64_t span,
                           const std::vector<std::int64_t>& boundaries) {
  if (boundaries.size() < lin_offsets.size()) return false;  // pigeonhole
  std::vector<bool> used(boundaries.size());
  for (std::int64_t base = 0; base < span; ++base) {
    std::fill(used.begin(), used.end(), false);
    for (const std::int64_t o : lin_offsets) {
      const std::size_t region =
          region_of(positive_mod(base + o, span), boundaries);
      if (used[region]) return false;
      used[region] = true;
    }
  }
  return true;
}

ModuloExploration explore_nonuniform_modulo(
    const std::vector<poly::IntVec>& offsets, const poly::IntVec& extents,
    const ModuloExploreOptions& options) {
  if (offsets.size() < 2) {
    throw Error("explore_nonuniform_modulo: need at least two references");
  }
  ModuloExploration result;
  result.span = window_span(offsets, extents);
  if (result.span > options.max_span) {
    throw Error("explore_nonuniform_modulo: span " +
                std::to_string(result.span) + " exceeds max_span");
  }

  // Normalized, sorted circular positions of the window offsets.
  std::vector<std::int64_t> lin;
  lin.reserve(offsets.size());
  for (const poly::IntVec& f : offsets) lin.push_back(linearize(f, extents));
  const std::int64_t base = *std::min_element(lin.begin(), lin.end());
  for (std::int64_t& v : lin) v -= base;
  std::sort(lin.begin(), lin.end());
  lin.erase(std::unique(lin.begin(), lin.end()), lin.end());
  const std::size_t n = lin.size();

  // Theory first. Two live addresses at circular distance g collide in
  // some rotation iff some region is wider than g, so a contiguous region
  // partition is conflict-free iff every region width <= the minimum
  // circular gap of the window. The minimum region count is therefore
  // ceil(span / min_gap).
  std::int64_t min_gap = result.span - lin.back();  // wrap-around gap
  for (std::size_t k = 0; k + 1 < n; ++k) {
    min_gap = std::min(min_gap, lin[k + 1] - lin[k]);
  }
  const std::int64_t needed = (result.span + min_gap - 1) / min_gap;

  // n-1 regions can never work: n simultaneous live addresses (pigeonhole;
  // the streaming design dodges this because one of the n elements comes
  // straight from off-chip, not from a bank).
  result.feasible_n_minus_1 = false;
  result.feasible_n = needed <= static_cast<std::int64_t>(n);

  if (needed > static_cast<std::int64_t>(options.max_regions)) {
    throw PartitionError(
        "explore_nonuniform_modulo: needs " + std::to_string(needed) +
        " contiguous regions (span " + std::to_string(result.span) +
        ", min gap " + std::to_string(min_gap) +
        "), above max_regions -- contiguous banking degenerates here");
  }

  // Construct the width-<=min_gap partition and validate the theory with
  // the exhaustive rotation check.
  result.best_regions = static_cast<std::size_t>(needed);
  result.best_boundaries.clear();
  for (std::int64_t b = 0; b < result.span; b += min_gap) {
    result.best_boundaries.push_back(b);
  }
  if (!regions_conflict_free(lin, result.span, result.best_boundaries)) {
    throw Error("explore_nonuniform_modulo: internal theory violation");
  }
  return result;
}

}  // namespace nup::baseline
