#pragma once

#include <cstdint>
#include <vector>

#include "baseline/partition.hpp"

namespace nup::baseline {

/// Exploration of the paper's future-work idea (Section 6): a *modified
/// modulo scheduling* over non-uniformly sized banks -- contiguous regions
/// of the circular reuse window instead of streaming FIFOs. A region
/// partition is conflict-free iff for every rotation of the window base the
/// n live addresses land in pairwise-distinct regions.
struct ModuloExploration {
  std::int64_t span = 0;          ///< circular reuse-window size S
  bool feasible_n_minus_1 = false;  ///< any n-1-region partition works?
  bool feasible_n = false;          ///< any n-region partition works?
  std::size_t best_regions = 0;   ///< smallest working region count found
  std::vector<std::int64_t> best_boundaries;  ///< boundaries of that one
};

struct ModuloExploreOptions {
  /// Regions beyond this are not searched.
  std::size_t max_regions = 64;
  /// Safety bound: spans larger than this are rejected (the rotation check
  /// is O(span * n) per candidate).
  std::int64_t max_span = 200'000;
};

/// Checks whether the region partition given by sorted `boundaries` (bank
/// b covers [boundaries[b], boundaries[b+1]) on the circle Z_span) keeps
/// the window offsets in distinct banks for every base rotation.
bool regions_conflict_free(const std::vector<std::int64_t>& lin_offsets,
                           std::int64_t span,
                           const std::vector<std::int64_t>& boundaries);

/// Searches rotations of offset-derived boundary sets for the smallest
/// conflict-free region count. The interesting outcome, confirming why the
/// paper chose data streaming: n-1 contiguous regions are never
/// conflict-free (two live addresses always share a region at some
/// rotation), while n regions usually are.
ModuloExploration explore_nonuniform_modulo(
    const std::vector<poly::IntVec>& offsets, const poly::IntVec& extents,
    const ModuloExploreOptions& options = {});

}  // namespace nup::baseline
