#pragma once

#include "baseline/partition.hpp"

namespace nup::baseline {

struct GmpOptions {
  /// Upper bound for the bank-count search; exceeded => PartitionError.
  std::size_t max_banks = 256;
  /// Pad the non-outermost grid extents up to a multiple of the bank count
  /// so intra-bank addresses decompose cheaply (the padding technique of
  /// [8]; it inflates storage, especially on high-dimensional grids).
  bool pad_for_addressing = true;
};

/// Generalized memory partitioning of Wang et al., DAC'13 [8]: a linear
/// scheme bank(h) = (alpha . h) mod N over the multi-dimensional index.
/// For each candidate N (starting at the window size n) all coefficient
/// vectors alpha in [0,N)^m are tried; the first conflict-free one wins.
UniformPartition gmp_partition(const stencil::StencilProgram& program,
                               std::size_t array_idx,
                               const GmpOptions& options = {});

UniformPartition gmp_partition_raw(const std::vector<poly::IntVec>& offsets,
                                   const poly::IntVec& extents,
                                   const GmpOptions& options = {});

}  // namespace nup::baseline
