#include "baseline/gmp.hpp"

#include <algorithm>
#include <optional>

#include "baseline/conflict.hpp"
#include "util/error.hpp"

namespace nup::baseline {

namespace {

/// Enumerates alpha in [0, banks)^m in odometer order; returns the first
/// conflict-free coefficient vector, or nullopt.
std::optional<poly::IntVec> find_scheme(
    const std::vector<poly::IntVec>& offsets, std::size_t dims,
    std::size_t banks) {
  poly::IntVec alpha(dims, 0);
  while (true) {
    if (linear_scheme_conflict_free(offsets, alpha, banks)) return alpha;
    // Advance the odometer.
    std::size_t d = dims;
    while (d-- > 0) {
      if (++alpha[d] < static_cast<std::int64_t>(banks)) break;
      alpha[d] = 0;
      if (d == 0) return std::nullopt;
    }
  }
}

}  // namespace

UniformPartition gmp_partition_raw(const std::vector<poly::IntVec>& offsets,
                                   const poly::IntVec& extents,
                                   const GmpOptions& options) {
  const std::size_t n = offsets.size();
  const std::size_t dims = extents.size();
  for (std::size_t banks = n; banks <= options.max_banks; ++banks) {
    const std::optional<poly::IntVec> alpha =
        find_scheme(offsets, dims, banks);
    if (!alpha) continue;

    UniformPartition out;
    out.method = "gmp[8]";
    out.banks = banks;
    out.scheme = *alpha;
    out.extents = extents;
    out.padded_extents = extents;
    if (options.pad_for_addressing) {
      // Pad every non-outermost extent to a multiple of the bank count so
      // the intra-bank address divides evenly (the padding of [8]).
      const std::int64_t nb = static_cast<std::int64_t>(banks);
      for (std::size_t d = 1; d < dims; ++d) {
        const std::int64_t e = out.padded_extents[d];
        out.padded_extents[d] = (e + nb - 1) / nb * nb;
        if (out.padded_extents[d] != e) out.padded = true;
      }
    }
    out.span = window_span(offsets, out.padded_extents);
    // Row-buffer organization: the buffer holds every (padded) row/plane
    // the window spans along the outermost dimension, because the
    // modulo-addressed banks recycle storage only at whole-slab
    // granularity. This is the structure [7][8] synthesize and the origin
    // of their storage overhead on high-dimensional grids (Section 5.2).
    std::int64_t outer_reach = 0;
    {
      std::int64_t lo = offsets.front()[0];
      std::int64_t hi = lo;
      for (const poly::IntVec& f : offsets) {
        lo = std::min(lo, f[0]);
        hi = std::max(hi, f[0]);
      }
      outer_reach = hi - lo + 1;
    }
    out.stored_span = outer_reach;
    for (std::size_t d = 1; d < dims; ++d) {
      out.stored_span *= out.padded_extents[d];
    }
    out.bank_depth =
        (out.stored_span + static_cast<std::int64_t>(banks) - 1) /
        static_cast<std::int64_t>(banks);
    out.total_size = out.bank_depth * static_cast<std::int64_t>(banks);
    return out;
  }
  throw PartitionError("gmp[8]: no conflict-free bank count <= " +
                       std::to_string(options.max_banks));
}

UniformPartition gmp_partition(const stencil::StencilProgram& program,
                               std::size_t array_idx,
                               const GmpOptions& options) {
  std::vector<poly::IntVec> offsets;
  for (const stencil::ArrayReference& ref :
       program.inputs().at(array_idx).refs) {
    offsets.push_back(ref.offset);
  }
  return gmp_partition_raw(offsets, array_extents(program, array_idx),
                           options);
}

}  // namespace nup::baseline
