#include "frontend/sema.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "frontend/parser.hpp"
#include "util/error.hpp"

namespace nup::frontend {

namespace {

/// Affine view of a subscript expression: sum(coeff[var] * var) + constant.
struct AffineForm {
  std::map<std::string, std::int64_t> coeffs;
  std::int64_t constant = 0;
};

bool extract_affine(const Expr& expr, AffineForm* out) {
  switch (expr.kind) {
    case ExprKind::kNumber:
      if (!expr.is_integer) return false;
      out->constant += static_cast<std::int64_t>(expr.number);
      return true;
    case ExprKind::kVar:
      out->coeffs[expr.name] += 1;
      return true;
    case ExprKind::kUnary: {
      AffineForm inner;
      if (!extract_affine(*expr.children[0], &inner)) return false;
      for (const auto& [var, c] : inner.coeffs) out->coeffs[var] -= c;
      out->constant -= inner.constant;
      return true;
    }
    case ExprKind::kBinary: {
      if (expr.op == BinaryOp::kAdd || expr.op == BinaryOp::kSub) {
        AffineForm lhs;
        AffineForm rhs;
        if (!extract_affine(*expr.children[0], &lhs) ||
            !extract_affine(*expr.children[1], &rhs)) {
          return false;
        }
        const std::int64_t sign = expr.op == BinaryOp::kAdd ? 1 : -1;
        out->coeffs = std::move(lhs.coeffs);
        out->constant = lhs.constant + sign * rhs.constant;
        for (const auto& [var, c] : rhs.coeffs) out->coeffs[var] += sign * c;
        return true;
      }
      return false;  // products/quotients are not stencil subscripts
    }
    default:
      return false;
  }
}

struct RefKey {
  std::string array;
  poly::IntVec offset;

  bool operator<(const RefKey& other) const {
    if (array != other.array) return array < other.array;
    return std::lexicographical_compare(offset.begin(), offset.end(),
                                        other.offset.begin(),
                                        other.offset.end());
  }
};

struct Collected {
  /// Input arrays in first-appearance order with offsets in
  /// first-appearance order.
  std::vector<std::string> array_order;
  std::map<std::string, std::vector<poly::IntVec>> offsets_by_array;
  std::map<RefKey, std::size_t> slot_by_ref;  // filled after collection
  std::vector<Expr*> ref_nodes;
};

void collect_refs(Expr& expr, const KernelAst& ast, Collected* collected) {
  switch (expr.kind) {
    case ExprKind::kArrayRef: {
      if (expr.name == ast.output_array) {
        throw NotStencilError("array '" + expr.name +
                              "' is both read and written");
      }
      if (expr.subscripts.size() != ast.loops.size()) {
        throw NotStencilError(
            "reference to '" + expr.name + "' has " +
            std::to_string(expr.subscripts.size()) + " subscripts for a " +
            std::to_string(ast.loops.size()) + "-deep loop nest");
      }
      poly::IntVec offset(ast.loops.size(), 0);
      for (std::size_t d = 0; d < expr.subscripts.size(); ++d) {
        AffineForm form;
        if (!extract_affine(*expr.subscripts[d], &form)) {
          throw NotStencilError("subscript " + std::to_string(d) + " of '" +
                                expr.name + "' is not affine");
        }
        for (const auto& [var, c] : form.coeffs) {
          if (c == 0) continue;
          if (var != ast.loops[d].var || c != 1) {
            throw NotStencilError(
                "subscript " + std::to_string(d) + " of '" + expr.name +
                "' must be '" + ast.loops[d].var +
                " + constant' for a stencil access (Definition 4)");
          }
        }
        if (form.coeffs.find(ast.loops[d].var) == form.coeffs.end() ||
            form.coeffs.at(ast.loops[d].var) != 1) {
          throw NotStencilError("subscript " + std::to_string(d) + " of '" +
                                expr.name + "' does not use loop variable '" +
                                ast.loops[d].var + "'");
        }
        offset[d] = form.constant;
      }
      auto& offsets = collected->offsets_by_array[expr.name];
      if (collected->offsets_by_array.size() >
          collected->array_order.size()) {
        collected->array_order.push_back(expr.name);
      }
      const RefKey key{expr.name, offset};
      if (collected->slot_by_ref.emplace(key, 0).second) {
        offsets.push_back(offset);
      }
      collected->ref_nodes.push_back(&expr);
      break;
    }
    case ExprKind::kVar:
      throw NotStencilError(
          "loop variable '" + expr.name +
          "' cannot appear in the kernel outside array subscripts: the "
          "decoupled computation kernel sees only data values");
    case ExprKind::kCall: {
      static const std::map<std::string, std::size_t> kBuiltins = {
          {"sqrt", 1}, {"fabs", 1}, {"abs", 1},
          {"exp", 1},  {"log", 1},  {"fmin", 2},
          {"fmax", 2}};
      const auto it = kBuiltins.find(expr.name);
      if (it == kBuiltins.end()) {
        throw NotStencilError("unknown function '" + expr.name + "'");
      }
      if (expr.children.size() != it->second) {
        throw NotStencilError("function '" + expr.name + "' expects " +
                              std::to_string(it->second) + " argument(s)");
      }
      for (ExprPtr& child : expr.children) {
        collect_refs(*child, ast, collected);
      }
      break;
    }
    default:
      for (ExprPtr& child : expr.children) {
        collect_refs(*child, ast, collected);
      }
      break;
  }
}

double evaluate(const Expr& expr, const std::vector<double>& values) {
  switch (expr.kind) {
    case ExprKind::kNumber:
      return expr.number;
    case ExprKind::kArrayRef:
      return values[expr.ref_slot];
    case ExprKind::kUnary:
      return -evaluate(*expr.children[0], values);
    case ExprKind::kBinary: {
      const double lhs = evaluate(*expr.children[0], values);
      const double rhs = evaluate(*expr.children[1], values);
      switch (expr.op) {
        case BinaryOp::kAdd: return lhs + rhs;
        case BinaryOp::kSub: return lhs - rhs;
        case BinaryOp::kMul: return lhs * rhs;
        case BinaryOp::kDiv: return lhs / rhs;
      }
      return 0.0;
    }
    case ExprKind::kCall: {
      const double a = evaluate(*expr.children[0], values);
      if (expr.name == "sqrt") return std::sqrt(a);
      if (expr.name == "fabs" || expr.name == "abs") return std::fabs(a);
      if (expr.name == "exp") return std::exp(a);
      if (expr.name == "log") return std::log(a);
      const double b = evaluate(*expr.children[1], values);
      if (expr.name == "fmin") return std::fmin(a, b);
      return std::fmax(a, b);
    }
    case ExprKind::kVar:
      break;  // rejected by collect_refs
  }
  throw Error("unevaluable expression node");
}

}  // namespace

stencil::StencilProgram analyze(KernelAst ast, const std::string& name) {
  if (ast.loops.empty() || !ast.body) {
    throw NotStencilError("kernel has no loop nest or body");
  }
  for (std::size_t a = 0; a < ast.loops.size(); ++a) {
    for (std::size_t b = a + 1; b < ast.loops.size(); ++b) {
      if (ast.loops[a].var == ast.loops[b].var) {
        throw NotStencilError("duplicate loop variable '" +
                              ast.loops[a].var + "'");
      }
    }
    if (ast.loops[a].lower > ast.loops[a].upper) {
      throw NotStencilError("loop over '" + ast.loops[a].var +
                            "' has an empty range");
    }
  }
  if (ast.output_subscripts.size() != ast.loops.size()) {
    throw NotStencilError("output array dimensionality does not match the "
                          "loop nest depth");
  }
  for (std::size_t d = 0; d < ast.loops.size(); ++d) {
    if (ast.output_subscripts[d] != ast.loops[d].var) {
      throw NotStencilError("output subscript " + std::to_string(d) +
                            " must be the loop variable '" +
                            ast.loops[d].var + "'");
    }
  }

  Collected collected;
  collect_refs(*ast.body, ast, &collected);
  if (collected.array_order.empty()) {
    throw NotStencilError("kernel reads no input arrays");
  }

  // Assign flattened slots: arrays in first-appearance order, references in
  // first-appearance order -- exactly StencilProgram's gathered-value
  // layout.
  std::size_t slot = 0;
  for (const std::string& array : collected.array_order) {
    for (const poly::IntVec& offset : collected.offsets_by_array[array]) {
      collected.slot_by_ref[RefKey{array, offset}] = slot++;
    }
  }
  for (Expr* node : collected.ref_nodes) {
    poly::IntVec offset(ast.loops.size(), 0);
    for (std::size_t d = 0; d < node->subscripts.size(); ++d) {
      AffineForm sub_form;
      extract_affine(*node->subscripts[d], &sub_form);
      offset[d] = sub_form.constant;
    }
    node->ref_slot = collected.slot_by_ref.at(RefKey{node->name, offset});
  }

  poly::IntVec lo(ast.loops.size());
  poly::IntVec hi(ast.loops.size());
  for (std::size_t d = 0; d < ast.loops.size(); ++d) {
    lo[d] = ast.loops[d].lower;
    hi[d] = ast.loops[d].upper;
  }
  stencil::StencilProgram program(name, poly::Domain::box(lo, hi));
  for (const std::string& array : collected.array_order) {
    program.add_input(array, collected.offsets_by_array[array]);
  }
  program.set_output(ast.output_array);

  auto shared_ast = std::make_shared<KernelAst>(std::move(ast));
  program.set_kernel([shared_ast](const std::vector<double>& values) {
    return evaluate(*shared_ast->body, values);
  });
  return program;
}

stencil::StencilProgram parse_stencil(const std::string& source,
                                      const std::string& name) {
  return analyze(parse_kernel(source), name);
}

}  // namespace nup::frontend
