#pragma once

#include <string>

#include "frontend/ast.hpp"
#include "stencil/program.hpp"

namespace nup::frontend {

/// Semantic analysis: checks that the parsed kernel is a stencil
/// computation under Definition 4 (perfect loop nest with constant bounds,
/// every array subscript of the form loop_var + constant) and lowers it to
/// a StencilProgram whose kernel function evaluates the original
/// expression. Throws NotStencilError/ParseError on violations.
stencil::StencilProgram analyze(KernelAst ast, const std::string& name);

/// parse_kernel + analyze in one step.
stencil::StencilProgram parse_stencil(const std::string& source,
                                      const std::string& name);

}  // namespace nup::frontend
