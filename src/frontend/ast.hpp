#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace nup::frontend {

/// Expression AST for the kernel right-hand side and array subscripts.
struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kNumber,   // literal
  kVar,      // loop variable
  kArrayRef, // A[e0][e1]...
  kUnary,    // -e
  kBinary,   // e op e
  kCall,     // fn(e, ...)
};

enum class BinaryOp { kAdd, kSub, kMul, kDiv };

struct Expr {
  ExprKind kind = ExprKind::kNumber;
  int line = 1;
  int column = 1;

  // kNumber
  double number = 0.0;
  bool is_integer = false;

  // kVar / kCall: name; kArrayRef: array name
  std::string name;

  // kArrayRef: one subscript expression per dimension.
  std::vector<ExprPtr> subscripts;

  // kUnary: operand in children[0]; kBinary: children[0] op children[1];
  // kCall: arguments.
  std::vector<ExprPtr> children;

  BinaryOp op = BinaryOp::kAdd;

  /// Assigned by sema for kArrayRef nodes: the flattened (array, reference)
  /// slot in the kernel's gathered-value vector.
  std::size_t ref_slot = 0;
};

/// One `for` level of the loop nest.
struct Loop {
  std::string var;
  std::int64_t lower = 0;   // inclusive
  std::int64_t upper = 0;   // inclusive
  int line = 1;
};

/// Parsed stencil kernel: a perfect loop nest around a single assignment
/// out[i]...[k] = expr.
struct KernelAst {
  std::vector<Loop> loops;       // outermost first
  std::string output_array;
  std::vector<std::string> output_subscripts;  // must be the loop vars
  ExprPtr body;
};

/// Deep string rendering for diagnostics and tests.
std::string to_string(const Expr& expr);

}  // namespace nup::frontend
