#include "frontend/ast.hpp"

#include <sstream>

namespace nup::frontend {

namespace {

const char* op_text(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return " + ";
    case BinaryOp::kSub: return " - ";
    case BinaryOp::kMul: return " * ";
    case BinaryOp::kDiv: return " / ";
  }
  return " ? ";
}

}  // namespace

std::string to_string(const Expr& expr) {
  std::ostringstream out;
  switch (expr.kind) {
    case ExprKind::kNumber:
      out << expr.number;
      break;
    case ExprKind::kVar:
      out << expr.name;
      break;
    case ExprKind::kArrayRef:
      out << expr.name;
      for (const ExprPtr& sub : expr.subscripts) {
        out << '[' << to_string(*sub) << ']';
      }
      break;
    case ExprKind::kUnary:
      out << "-(" << to_string(*expr.children[0]) << ')';
      break;
    case ExprKind::kBinary:
      out << '(' << to_string(*expr.children[0]) << op_text(expr.op)
          << to_string(*expr.children[1]) << ')';
      break;
    case ExprKind::kCall:
      out << expr.name << '(';
      for (std::size_t i = 0; i < expr.children.size(); ++i) {
        if (i > 0) out << ", ";
        out << to_string(*expr.children[i]);
      }
      out << ')';
      break;
  }
  return out.str();
}

}  // namespace nup::frontend
