#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nup::frontend {

enum class TokenKind {
  kIdent,
  kNumber,     // integer or floating literal
  kFor,        // keyword
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kSemicolon,
  kComma,
  kAssign,     // =
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kLess,       // <
  kLessEq,     // <=
  kGreater,    // >
  kGreaterEq,  // >=
  kPlusPlus,   // ++
  kEof,
};

const char* to_string(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  double number = 0.0;      ///< value when kind == kNumber
  bool is_integer = false;  ///< literal had no '.', 'e' or 'E'
  int line = 1;
  int column = 1;
};

/// Tokenizes mini-C stencil source. Supports //- and /*...*/ comments.
/// Throws ParseError on unknown characters.
std::vector<Token> tokenize(const std::string& source);

}  // namespace nup::frontend
