#include "frontend/parser.hpp"

#include <cmath>

#include "frontend/lexer.hpp"
#include "util/error.hpp"

namespace nup::frontend {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  KernelAst parse() {
    KernelAst ast = parse_loop();
    expect(TokenKind::kEof);
    return ast;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  const Token& take() { return tokens_[pos_++]; }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, peek().line, peek().column);
  }

  const Token& expect(TokenKind kind) {
    if (peek().kind != kind) {
      fail(std::string("expected ") + to_string(kind) + ", found " +
           to_string(peek().kind));
    }
    return take();
  }

  bool accept(TokenKind kind) {
    if (peek().kind != kind) return false;
    take();
    return true;
  }

  KernelAst parse_loop() {
    KernelAst ast;
    parse_loop_into(ast);
    return ast;
  }

  void parse_loop_into(KernelAst& ast) {
    const Token& kw = expect(TokenKind::kFor);
    Loop loop;
    loop.line = kw.line;
    expect(TokenKind::kLParen);
    loop.var = expect(TokenKind::kIdent).text;
    expect(TokenKind::kAssign);
    loop.lower = parse_const_int();
    expect(TokenKind::kSemicolon);
    const std::string& cond_var = expect(TokenKind::kIdent).text;
    if (cond_var != loop.var) {
      fail("loop condition tests '" + cond_var + "' but the loop variable is '" +
           loop.var + "'");
    }
    TokenKind rel = peek().kind;
    if (rel != TokenKind::kLess && rel != TokenKind::kLessEq) {
      fail("loop condition must use '<' or '<='");
    }
    take();
    const std::int64_t bound = parse_const_int();
    loop.upper = rel == TokenKind::kLess ? bound - 1 : bound;
    expect(TokenKind::kSemicolon);
    const std::string& inc_var = expect(TokenKind::kIdent).text;
    if (inc_var != loop.var) {
      fail("loop increments '" + inc_var + "' but the loop variable is '" +
           loop.var + "'");
    }
    expect(TokenKind::kPlusPlus);
    expect(TokenKind::kRParen);
    ast.loops.push_back(std::move(loop));

    const bool braced = accept(TokenKind::kLBrace);
    if (peek().kind == TokenKind::kFor) {
      parse_loop_into(ast);
    } else {
      parse_statement(ast);
    }
    if (braced) expect(TokenKind::kRBrace);
  }

  void parse_statement(KernelAst& ast) {
    ast.output_array = expect(TokenKind::kIdent).text;
    while (peek().kind == TokenKind::kLBracket) {
      take();
      ast.output_subscripts.push_back(expect(TokenKind::kIdent).text);
      expect(TokenKind::kRBracket);
    }
    if (ast.output_subscripts.empty()) {
      fail("assignment target must be an array element");
    }
    expect(TokenKind::kAssign);
    ast.body = parse_expr();
    expect(TokenKind::kSemicolon);
  }

  std::int64_t parse_const_int() {
    const Token& at = peek();
    ExprPtr expr = parse_expr();
    double value = 0.0;
    if (!fold(*expr, &value) || value != std::floor(value)) {
      throw ParseError("loop bound must fold to an integer constant",
                       at.line, at.column);
    }
    return static_cast<std::int64_t>(value);
  }

  static bool fold(const Expr& expr, double* value) {
    switch (expr.kind) {
      case ExprKind::kNumber:
        *value = expr.number;
        return true;
      case ExprKind::kUnary: {
        double inner = 0.0;
        if (!fold(*expr.children[0], &inner)) return false;
        *value = -inner;
        return true;
      }
      case ExprKind::kBinary: {
        double lhs = 0.0;
        double rhs = 0.0;
        if (!fold(*expr.children[0], &lhs) ||
            !fold(*expr.children[1], &rhs)) {
          return false;
        }
        switch (expr.op) {
          case BinaryOp::kAdd: *value = lhs + rhs; return true;
          case BinaryOp::kSub: *value = lhs - rhs; return true;
          case BinaryOp::kMul: *value = lhs * rhs; return true;
          case BinaryOp::kDiv:
            if (rhs == 0.0) return false;
            *value = lhs / rhs;
            return true;
        }
        return false;
      }
      default:
        return false;
    }
  }

  ExprPtr parse_expr() {
    ExprPtr lhs = parse_term();
    while (peek().kind == TokenKind::kPlus ||
           peek().kind == TokenKind::kMinus) {
      const Token& op = take();
      ExprPtr node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->op = op.kind == TokenKind::kPlus ? BinaryOp::kAdd : BinaryOp::kSub;
      node->line = op.line;
      node->column = op.column;
      node->children.push_back(std::move(lhs));
      node->children.push_back(parse_term());
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parse_term() {
    ExprPtr lhs = parse_unary();
    while (peek().kind == TokenKind::kStar ||
           peek().kind == TokenKind::kSlash) {
      const Token& op = take();
      ExprPtr node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->op = op.kind == TokenKind::kStar ? BinaryOp::kMul : BinaryOp::kDiv;
      node->line = op.line;
      node->column = op.column;
      node->children.push_back(std::move(lhs));
      node->children.push_back(parse_unary());
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (peek().kind == TokenKind::kMinus) {
      const Token& op = take();
      ExprPtr node = std::make_unique<Expr>();
      node->kind = ExprKind::kUnary;
      node->line = op.line;
      node->column = op.column;
      node->children.push_back(parse_unary());
      return node;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token& at = peek();
    if (at.kind == TokenKind::kNumber) {
      take();
      ExprPtr node = std::make_unique<Expr>();
      node->kind = ExprKind::kNumber;
      node->number = at.number;
      node->is_integer = at.is_integer;
      node->line = at.line;
      node->column = at.column;
      return node;
    }
    if (at.kind == TokenKind::kLParen) {
      take();
      ExprPtr node = parse_expr();
      expect(TokenKind::kRParen);
      return node;
    }
    if (at.kind == TokenKind::kIdent) {
      take();
      ExprPtr node = std::make_unique<Expr>();
      node->name = at.text;
      node->line = at.line;
      node->column = at.column;
      if (peek().kind == TokenKind::kLParen) {
        take();
        node->kind = ExprKind::kCall;
        if (peek().kind != TokenKind::kRParen) {
          node->children.push_back(parse_expr());
          while (accept(TokenKind::kComma)) {
            node->children.push_back(parse_expr());
          }
        }
        expect(TokenKind::kRParen);
        return node;
      }
      if (peek().kind == TokenKind::kLBracket) {
        node->kind = ExprKind::kArrayRef;
        while (accept(TokenKind::kLBracket)) {
          node->subscripts.push_back(parse_expr());
          expect(TokenKind::kRBracket);
        }
        return node;
      }
      node->kind = ExprKind::kVar;
      return node;
    }
    fail(std::string("expected an expression, found ") +
         to_string(at.kind));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

KernelAst parse_kernel(const std::string& source) {
  return Parser(tokenize(source)).parse();
}

}  // namespace nup::frontend
