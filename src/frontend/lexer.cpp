#include "frontend/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "util/error.hpp"

namespace nup::frontend {

const char* to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kFor: return "'for'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kLessEq: return "'<='";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kGreaterEq: return "'>='";
    case TokenKind::kPlusPlus: return "'++'";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

namespace {

class Cursor {
 public:
  explicit Cursor(const std::string& text) : text_(text) {}

  bool done() const { return pos_ >= text_.size(); }
  char peek() const { return done() ? '\0' : text_[pos_]; }
  char peek2() const {
    return pos_ + 1 < text_.size() ? text_[pos_ + 1] : '\0';
  }
  char take() {
    const char c = peek();
    ++pos_;
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  int line() const { return line_; }
  int column() const { return column_; }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

void skip_space_and_comments(Cursor& cursor) {
  while (!cursor.done()) {
    if (std::isspace(static_cast<unsigned char>(cursor.peek()))) {
      cursor.take();
    } else if (cursor.peek() == '/' && cursor.peek2() == '/') {
      while (!cursor.done() && cursor.peek() != '\n') cursor.take();
    } else if (cursor.peek() == '/' && cursor.peek2() == '*') {
      cursor.take();
      cursor.take();
      while (!cursor.done() &&
             !(cursor.peek() == '*' && cursor.peek2() == '/')) {
        cursor.take();
      }
      if (cursor.done()) {
        throw ParseError("unterminated block comment", cursor.line(),
                         cursor.column());
      }
      cursor.take();
      cursor.take();
    } else {
      return;
    }
  }
}

}  // namespace

std::vector<Token> tokenize(const std::string& source) {
  std::vector<Token> tokens;
  Cursor cursor(source);
  while (true) {
    skip_space_and_comments(cursor);
    Token token;
    token.line = cursor.line();
    token.column = cursor.column();
    if (cursor.done()) {
      token.kind = TokenKind::kEof;
      tokens.push_back(token);
      return tokens;
    }
    const char c = cursor.peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (!cursor.done() &&
             (std::isalnum(static_cast<unsigned char>(cursor.peek())) ||
              cursor.peek() == '_')) {
        token.text.push_back(cursor.take());
      }
      token.kind = token.text == "for" ? TokenKind::kFor : TokenKind::kIdent;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && std::isdigit(
                                static_cast<unsigned char>(cursor.peek2())))) {
      token.is_integer = true;
      while (!cursor.done() &&
             (std::isdigit(static_cast<unsigned char>(cursor.peek())) ||
              cursor.peek() == '.' || cursor.peek() == 'e' ||
              cursor.peek() == 'E' ||
              ((cursor.peek() == '+' || cursor.peek() == '-') &&
               (token.text.back() == 'e' || token.text.back() == 'E')))) {
        const char digit = cursor.take();
        if (digit == '.' || digit == 'e' || digit == 'E') {
          token.is_integer = false;
        }
        token.text.push_back(digit);
      }
      token.kind = TokenKind::kNumber;
      token.number = std::strtod(token.text.c_str(), nullptr);
    } else {
      switch (cursor.take()) {
        case '(': token.kind = TokenKind::kLParen; break;
        case ')': token.kind = TokenKind::kRParen; break;
        case '[': token.kind = TokenKind::kLBracket; break;
        case ']': token.kind = TokenKind::kRBracket; break;
        case '{': token.kind = TokenKind::kLBrace; break;
        case '}': token.kind = TokenKind::kRBrace; break;
        case ';': token.kind = TokenKind::kSemicolon; break;
        case ',': token.kind = TokenKind::kComma; break;
        case '*': token.kind = TokenKind::kStar; break;
        case '/': token.kind = TokenKind::kSlash; break;
        case '=': token.kind = TokenKind::kAssign; break;
        case '+':
          if (cursor.peek() == '+') {
            cursor.take();
            token.kind = TokenKind::kPlusPlus;
          } else {
            token.kind = TokenKind::kPlus;
          }
          break;
        case '-': token.kind = TokenKind::kMinus; break;
        case '<':
          if (cursor.peek() == '=') {
            cursor.take();
            token.kind = TokenKind::kLessEq;
          } else {
            token.kind = TokenKind::kLess;
          }
          break;
        case '>':
          if (cursor.peek() == '=') {
            cursor.take();
            token.kind = TokenKind::kGreaterEq;
          } else {
            token.kind = TokenKind::kGreater;
          }
          break;
        default:
          throw ParseError(std::string("unexpected character '") + c + "'",
                           token.line, token.column);
      }
    }
    tokens.push_back(std::move(token));
  }
}

}  // namespace nup::frontend
