#pragma once

#include <string>

#include "frontend/ast.hpp"

namespace nup::frontend {

/// Parses mini-C stencil source of the Fig 1 form:
///
///   for (i = 1; i <= 766; i++)
///     for (j = 1; j <= 1022; j++)
///       B[i][j] = 0.2 * (A[i][j] + A[i-1][j] + A[i+1][j]
///                        + A[i][j-1] + A[i][j+1]);
///
/// Loop bounds must fold to integer constants; braces around bodies are
/// optional. Throws ParseError with source location on malformed input.
KernelAst parse_kernel(const std::string& source);

}  // namespace nup::frontend
