#include "vsim/interp.hpp"

#include <deque>
#include <map>
#include <vector>

#include "util/error.hpp"
#include "vsim/parser.hpp"

namespace nup::vsim {

namespace {

std::uint64_t mask_for(int width) {
  return width >= 64 ? ~std::uint64_t{0}
                     : ((std::uint64_t{1} << width) - 1);
}

struct Typed {
  std::int64_t value = 0;
  bool is_signed = true;
};

}  // namespace

struct VerilogSim::Impl {
  struct Binding {
    enum Kind { kNet, kMemory, kParam } kind = kNet;
    std::size_t index = 0;       // net or memory index
    std::int64_t param = 0;      // kParam value
  };

  struct Net {
    int width = 1;
    bool is_signed = false;
  };

  struct Memory {
    int width = 1;
    std::int64_t depth = 0;
    std::size_t base = 0;  // offset into mem_words
  };

  /// One elaborated module instance: name bindings + parameter values.
  struct Scope {
    std::map<std::string, Binding> bindings;
  };

  struct FlatAssign {
    std::size_t lhs_net;
    const VExpr* rhs;
    const Scope* scope;
    int line;
  };

  struct FlatAlways {
    std::size_t clock_net;
    const std::vector<VStmtPtr>* body;
    const Scope* scope;
  };

  VDesign design;
  std::deque<Scope> scopes;  // stable addresses
  std::vector<Net> nets;
  std::vector<std::uint64_t> values;
  std::vector<Memory> memories;
  std::vector<std::uint64_t> mem_words;
  std::vector<FlatAssign> assigns;
  std::vector<FlatAlways> always_blocks;
  std::map<std::string, Binding> name_table;  // hierarchical lookup

  struct Commit {
    bool is_memory = false;
    std::size_t index = 0;      // net or memory
    std::int64_t mem_addr = 0;  // memory write address
    std::uint64_t value = 0;
  };
  std::vector<Commit> commits;

  // ---- elaboration -------------------------------------------------

  std::size_t new_net(int width, bool is_signed) {
    nets.push_back(Net{width, is_signed});
    values.push_back(0);
    return nets.size() - 1;
  }

  static std::int64_t const_eval(const VExpr& expr, const Scope& scope,
                                 const Impl& self);

  void elaborate(const VModule& module, const std::string& path,
                 const std::map<std::string, std::int64_t>& params,
                 const std::map<std::string, Binding>& port_bindings) {
    scopes.emplace_back();
    Scope& scope = scopes.back();
    for (const auto& [name, value] : params) {
      Binding b;
      b.kind = Binding::kParam;
      b.param = value;
      scope.bindings[name] = b;
    }

    auto eval_const = [&](const VExpr& expr) {
      return const_eval(expr, scope, *this);
    };

    for (const VNetDecl& decl : module.nets) {
      const int width =
          decl.msb ? static_cast<int>(eval_const(*decl.msb)) + 1 : 1;
      if (decl.mem_depth) {
        Memory memory;
        memory.width = width;
        memory.depth = eval_const(*decl.mem_depth) + 1;
        memory.base = mem_words.size();
        mem_words.resize(mem_words.size() +
                         static_cast<std::size_t>(memory.depth));
        memories.push_back(memory);
        Binding b;
        b.kind = Binding::kMemory;
        b.index = memories.size() - 1;
        scope.bindings[decl.name] = b;
        name_table[path + decl.name] = b;
        continue;
      }
      const auto bound = port_bindings.find(decl.name);
      Binding b;
      if (decl.is_port && bound != port_bindings.end()) {
        b = bound->second;
      } else {
        b.kind = Binding::kNet;
        b.index = new_net(width, decl.is_signed);
      }
      scope.bindings[decl.name] = b;
      name_table[path + decl.name] = b;
    }

    for (const VAssign& assign : module.assigns) {
      const Binding& b = lookup(scope, assign.lhs, assign.line);
      if (b.kind != Binding::kNet) {
        throw Error("vsim: assign target '" + assign.lhs +
                    "' is not a net");
      }
      assigns.push_back(FlatAssign{b.index, assign.rhs.get(), &scope,
                                   assign.line});
    }
    for (const VAlways& always : module.always_blocks) {
      const Binding& b = lookup(scope, always.clock, 0);
      always_blocks.push_back(FlatAlways{b.index, &always.body, &scope});
    }

    for (const VInstance& inst : module.instances) {
      const VModule* child = design.find(inst.module_name);
      if (child == nullptr) {
        throw Error("vsim: unknown module '" + inst.module_name + "'");
      }
      std::map<std::string, std::int64_t> child_params;
      for (const VParam& param : child->params) {
        child_params[param.name] = const_eval(*param.default_value, scope,
                                              *this);
      }
      for (const auto& [name, expr] : inst.param_overrides) {
        child_params[name] = const_eval(*expr, scope, *this);
      }
      std::map<std::string, Binding> child_ports;
      for (const auto& [formal, actual] : inst.connections) {
        if (actual->kind == VExprKind::kIdent) {
          child_ports[formal] = lookup(scope, actual->name, inst.line);
        } else if (actual->kind == VExprKind::kLiteral) {
          Binding b;
          b.kind = Binding::kNet;
          b.index = new_net(actual->literal_width == 0
                                ? 64
                                : actual->literal_width,
                            false);
          values[b.index] = static_cast<std::uint64_t>(actual->literal);
          child_ports[formal] = b;
        } else {
          throw Error(
              "vsim: instance connections must be identifiers or "
              "literals");
        }
      }
      elaborate(*child, path + inst.instance_name + ".", child_params,
                child_ports);
    }
  }

  const Binding& lookup(const Scope& scope, const std::string& name,
                        int line) const {
    const auto it = scope.bindings.find(name);
    if (it == scope.bindings.end()) {
      throw Error("vsim: undefined name '" + name + "' (line " +
                  std::to_string(line) + ")");
    }
    return it->second;
  }

  // ---- evaluation --------------------------------------------------

  Typed read_net(const Binding& b) const {
    const Net& net = nets[b.index];
    std::uint64_t raw = values[b.index];
    Typed out;
    out.is_signed = net.is_signed;
    if (net.is_signed && net.width < 64 &&
        (raw & (std::uint64_t{1} << (net.width - 1)))) {
      raw |= ~mask_for(net.width);  // sign-extend
    }
    out.value = static_cast<std::int64_t>(raw);
    return out;
  }

  Typed eval(const VExpr& expr, const Scope& scope) const {
    switch (expr.kind) {
      case VExprKind::kLiteral:
        return Typed{expr.literal, expr.literal_signed};
      case VExprKind::kIdent: {
        const Binding& b = lookup(scope, expr.name, expr.line);
        if (b.kind == Binding::kParam) return Typed{b.param, true};
        if (b.kind == Binding::kMemory) {
          throw Error("vsim: memory '" + expr.name + "' used as a value");
        }
        return read_net(b);
      }
      case VExprKind::kIndex: {
        const Binding& b = lookup(scope, expr.name, expr.line);
        const std::int64_t idx = eval(*expr.children[0], scope).value;
        if (b.kind == Binding::kMemory) {
          const Memory& memory = memories[b.index];
          if (idx < 0 || idx >= memory.depth) return Typed{0, false};
          return Typed{static_cast<std::int64_t>(
                           mem_words[memory.base +
                                     static_cast<std::size_t>(idx)]),
                       false};
        }
        const std::uint64_t raw = values[b.index];
        return Typed{static_cast<std::int64_t>((raw >> idx) & 1), false};
      }
      case VExprKind::kRange: {
        const Binding& b = lookup(scope, expr.name, expr.line);
        if (b.kind != Binding::kNet) {
          throw Error("vsim: part-select on non-net '" + expr.name + "'");
        }
        const std::int64_t msb = eval(*expr.children[0], scope).value;
        const std::int64_t lsb = eval(*expr.children[1], scope).value;
        const std::uint64_t raw = values[b.index];
        return Typed{static_cast<std::int64_t>(
                         (raw >> lsb) &
                         mask_for(static_cast<int>(msb - lsb + 1))),
                     false};
      }
      case VExprKind::kUnary: {
        const Typed operand = eval(*expr.children[0], scope);
        if (expr.op == "!") return Typed{operand.value == 0 ? 1 : 0, false};
        if (expr.op == "~") {
          return Typed{static_cast<std::int64_t>(
                           ~static_cast<std::uint64_t>(operand.value)),
                       false};
        }
        return Typed{-operand.value, operand.is_signed};
      }
      case VExprKind::kBinary: {
        // Short-circuit logical operators first.
        if (expr.op == "&&") {
          if (eval(*expr.children[0], scope).value == 0) {
            return Typed{0, false};
          }
          return Typed{eval(*expr.children[1], scope).value != 0 ? 1 : 0,
                       false};
        }
        if (expr.op == "||") {
          if (eval(*expr.children[0], scope).value != 0) {
            return Typed{1, false};
          }
          return Typed{eval(*expr.children[1], scope).value != 0 ? 1 : 0,
                       false};
        }
        const Typed lhs = eval(*expr.children[0], scope);
        const Typed rhs = eval(*expr.children[1], scope);
        const bool both_signed = lhs.is_signed && rhs.is_signed;
        auto unsigned_cmp = [&](auto cmp) {
          return Typed{cmp(static_cast<std::uint64_t>(lhs.value),
                           static_cast<std::uint64_t>(rhs.value))
                           ? 1
                           : 0,
                       false};
        };
        auto signed_cmp = [&](auto cmp) {
          return Typed{cmp(lhs.value, rhs.value) ? 1 : 0, false};
        };
        if (expr.op == "==") return signed_cmp([](auto a, auto b) { return a == b; });
        if (expr.op == "!=") return signed_cmp([](auto a, auto b) { return a != b; });
        if (expr.op == "<") {
          return both_signed
                     ? signed_cmp([](auto a, auto b) { return a < b; })
                     : unsigned_cmp([](auto a, auto b) { return a < b; });
        }
        if (expr.op == "<=") {
          return both_signed
                     ? signed_cmp([](auto a, auto b) { return a <= b; })
                     : unsigned_cmp([](auto a, auto b) { return a <= b; });
        }
        if (expr.op == ">") {
          return both_signed
                     ? signed_cmp([](auto a, auto b) { return a > b; })
                     : unsigned_cmp([](auto a, auto b) { return a > b; });
        }
        if (expr.op == ">=") {
          return both_signed
                     ? signed_cmp([](auto a, auto b) { return a >= b; })
                     : unsigned_cmp([](auto a, auto b) { return a >= b; });
        }
        if (expr.op == "+") return Typed{lhs.value + rhs.value, both_signed};
        if (expr.op == "-") return Typed{lhs.value - rhs.value, both_signed};
        if (expr.op == "*") return Typed{lhs.value * rhs.value, both_signed};
        if (expr.op == "/") {
          if (rhs.value == 0) return Typed{0, both_signed};
          return Typed{lhs.value / rhs.value, both_signed};
        }
        throw Error("vsim: unsupported operator '" + expr.op + "'");
      }
      case VExprKind::kTernary: {
        const Typed cond = eval(*expr.children[0], scope);
        return eval(cond.value != 0 ? *expr.children[1] : *expr.children[2],
                    scope);
      }
    }
    throw Error("vsim: unreachable expression kind");
  }

  // ---- simulation --------------------------------------------------

  void settle() {
    for (int pass = 0; pass < 1000; ++pass) {
      bool changed = false;
      for (const FlatAssign& assign : assigns) {
        const Typed rhs = eval(*assign.rhs, *assign.scope);
        const std::uint64_t masked =
            static_cast<std::uint64_t>(rhs.value) &
            mask_for(nets[assign.lhs_net].width);
        if (values[assign.lhs_net] != masked) {
          values[assign.lhs_net] = masked;
          changed = true;
        }
      }
      if (!changed) return;
    }
    throw Error("vsim: combinational loop did not settle");
  }

  void execute(const VStmt& stmt, const Scope& scope) {
    switch (stmt.kind) {
      case VStmtKind::kBlock:
        for (const VStmtPtr& child : stmt.body) execute(*child, scope);
        return;
      case VStmtKind::kIf:
        if (eval(*stmt.condition, scope).value != 0) {
          for (const VStmtPtr& child : stmt.then_body) {
            execute(*child, scope);
          }
        } else {
          for (const VStmtPtr& child : stmt.else_body) {
            execute(*child, scope);
          }
        }
        return;
      case VStmtKind::kNonBlocking: {
        const Binding& b = lookup(scope, stmt.lhs, stmt.line);
        const Typed rhs = eval(*stmt.rhs, scope);
        Commit commit;
        if (stmt.lhs_index) {
          if (b.kind != Binding::kMemory) {
            throw Error("vsim: indexed assignment to non-memory '" +
                        stmt.lhs + "'");
          }
          commit.is_memory = true;
          commit.index = b.index;
          commit.mem_addr = eval(*stmt.lhs_index, scope).value;
          commit.value = static_cast<std::uint64_t>(rhs.value) &
                         mask_for(memories[b.index].width);
        } else {
          if (b.kind != Binding::kNet) {
            throw Error("vsim: non-blocking target '" + stmt.lhs +
                        "' is not a reg");
          }
          commit.index = b.index;
          commit.value = static_cast<std::uint64_t>(rhs.value) &
                         mask_for(nets[b.index].width);
        }
        commits.push_back(commit);
        return;
      }
    }
  }

  void posedge(std::size_t clock_net) {
    commits.clear();
    for (const FlatAlways& always : always_blocks) {
      if (always.clock_net != clock_net) continue;
      for (const VStmtPtr& stmt : *always.body) {
        execute(*stmt, *always.scope);
      }
    }
    for (const Commit& commit : commits) {
      if (commit.is_memory) {
        const Memory& memory = memories[commit.index];
        if (commit.mem_addr >= 0 && commit.mem_addr < memory.depth) {
          mem_words[memory.base + static_cast<std::size_t>(
                                      commit.mem_addr)] = commit.value;
        }
      } else {
        values[commit.index] = commit.value;
      }
    }
  }
};

std::int64_t VerilogSim::Impl::const_eval(const VExpr& expr,
                                          const Scope& scope,
                                          const Impl& self) {
  return self.eval(expr, scope).value;
}

VerilogSim::VerilogSim(const std::string& source, const std::string& top)
    : impl_(std::make_unique<Impl>()) {
  impl_->design = parse_verilog(source);
  const VModule* module = impl_->design.find(top);
  if (module == nullptr) {
    throw Error("vsim: top module '" + top + "' not found");
  }
  std::map<std::string, std::int64_t> params;
  // Defaults are evaluated inside elaborate(); seed them as literals here.
  for (const VParam& param : module->params) {
    Impl::Scope empty;
    params[param.name] =
        Impl::const_eval(*param.default_value, empty, *impl_);
  }
  impl_->elaborate(*module, "", params, {});
}

VerilogSim::~VerilogSim() = default;

void VerilogSim::poke(const std::string& port, std::uint64_t value) {
  const auto it = impl_->name_table.find(port);
  if (it == impl_->name_table.end() ||
      it->second.kind != Impl::Binding::kNet) {
    throw Error("vsim: unknown port '" + port + "'");
  }
  impl_->values[it->second.index] =
      value & mask_for(impl_->nets[it->second.index].width);
}

std::uint64_t VerilogSim::peek(const std::string& name) const {
  const auto it = impl_->name_table.find(name);
  if (it == impl_->name_table.end()) {
    throw Error("vsim: unknown net '" + name + "'");
  }
  if (it->second.kind == Impl::Binding::kNet) {
    return impl_->values[it->second.index];
  }
  throw Error("vsim: '" + name + "' is not a plain net");
}

void VerilogSim::eval() { impl_->settle(); }

void VerilogSim::step_clock(const std::string& clock) {
  const auto it = impl_->name_table.find(clock);
  if (it == impl_->name_table.end() ||
      it->second.kind != Impl::Binding::kNet) {
    throw Error("vsim: unknown clock '" + clock + "'");
  }
  impl_->settle();
  impl_->posedge(it->second.index);
  impl_->settle();
}

std::size_t VerilogSim::net_count() const { return impl_->nets.size(); }

}  // namespace nup::vsim
