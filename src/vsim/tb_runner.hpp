#pragma once

#include <cstdint>
#include <string>

namespace nup::vsim {

/// Result of executing a generated self-checking testbench
/// (codegen::emit_testbench) against its DUT in the RTL interpreter.
struct TbResult {
  bool finished = false;   ///< $finish reached
  bool passed = false;     ///< the PASS $display fired
  std::string display;     ///< the line the TB printed
  std::int64_t fires = 0;
  std::int64_t cycles = 0;
};

/// Interprets the emitted testbench text: extracts EXPECTED_FIRES, the
/// stream ports, the DUT instantiation and the timeout bound from the TB
/// source, elaborates the DUT from `rtl_source`, and executes the bench's
/// clock/reset/stimulus/check semantics (reset for 4 edges, free-running
/// ramp streams, fire counting, PASS/FAIL $display with $finish).
///
/// The TB subset is exactly what emit_testbench produces; anything else is
/// rejected with ParseError. This closes the loop on the last generated
/// artifact: the shipped testbench is proven to pass on the shipped RTL.
TbResult run_testbench(const std::string& rtl_source,
                       const std::string& tb_source);

}  // namespace nup::vsim
