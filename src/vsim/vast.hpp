#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace nup::vsim {

/// AST for the synthesizable Verilog-2001 subset emitted by
/// codegen::emit_verilog: ANSI-style modules with parameters, wire/reg
/// declarations (optionally signed, optionally memories), continuous
/// assigns, single-clock always @(posedge ...) processes with if/else and
/// non-blocking assignments, and module instances with named connections.

struct VExpr;
using VExprPtr = std::unique_ptr<VExpr>;

enum class VExprKind {
  kLiteral,     // 42, 1'b1, 8'hff
  kIdent,       // net, parameter
  kIndex,       // base[expr]          (memory read or bit select)
  kRange,       // base[msb:lsb]       (constant part select)
  kUnary,       // ! ~ -
  kBinary,      // || && == != < <= > >= + - *
  kTernary,     // c ? a : b
};

struct VExpr {
  VExprKind kind = VExprKind::kLiteral;
  int line = 1;

  std::int64_t literal = 0;   // kLiteral value
  int literal_width = 0;      // 0 = unsized (defaults to 32, signed)
  bool literal_signed = true;

  std::string name;           // kIdent / base name of kIndex & kRange
  std::string op;             // kUnary / kBinary operator spelling

  std::vector<VExprPtr> children;  // operands / index / msb,lsb
};

struct VStmt;
using VStmtPtr = std::unique_ptr<VStmt>;

enum class VStmtKind {
  kNonBlocking,  // lhs <= rhs  (lhs may be ident or mem[index])
  kIf,           // if (cond) ... else ...
  kBlock,        // begin ... end
};

struct VStmt {
  VStmtKind kind = VStmtKind::kBlock;
  int line = 1;

  // kNonBlocking
  std::string lhs;
  VExprPtr lhs_index;  // non-null for mem[index] targets
  VExprPtr rhs;

  // kIf
  VExprPtr condition;
  std::vector<VStmtPtr> then_body;
  std::vector<VStmtPtr> else_body;

  // kBlock
  std::vector<VStmtPtr> body;
};

struct VParam {
  std::string name;
  VExprPtr default_value;
};

enum class VPortDir { kInput, kOutput };

struct VNetDecl {
  std::string name;
  VPortDir dir = VPortDir::kInput;
  bool is_port = false;
  bool is_reg = false;
  bool is_signed = false;
  VExprPtr msb;        // null => 1-bit
  VExprPtr mem_depth;  // non-null => memory reg [..] name [0:depth-1]
};

struct VAssign {
  std::string lhs;
  VExprPtr rhs;
  int line = 1;
};

struct VAlways {
  std::string clock;  // posedge signal name
  std::vector<VStmtPtr> body;
};

struct VInstance {
  std::string module_name;
  std::string instance_name;
  std::vector<std::pair<std::string, VExprPtr>> param_overrides;
  std::vector<std::pair<std::string, VExprPtr>> connections;
  int line = 1;
};

struct VModule {
  std::string name;
  std::vector<VParam> params;
  std::vector<VNetDecl> nets;  // ports first, then internal declarations
  std::vector<VAssign> assigns;
  std::vector<VAlways> always_blocks;
  std::vector<VInstance> instances;
};

struct VDesign {
  std::vector<VModule> modules;

  const VModule* find(const std::string& name) const;
};

}  // namespace nup::vsim
