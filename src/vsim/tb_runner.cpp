#include "vsim/tb_runner.hpp"

#include <cstdio>
#include <sstream>
#include <vector>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "vsim/interp.hpp"

namespace nup::vsim {

namespace {

struct TbSpec {
  std::int64_t expected_fires = -1;
  std::int64_t timeout_scale = -1;
  std::int64_t timeout_slack = -1;
  std::string dut_type;
  std::vector<std::string> streams;  // e.g. "s0_stream0"
};

TbSpec parse_tb(const std::string& tb_source) {
  TbSpec spec;
  std::istringstream in(tb_source);
  std::string line;
  while (std::getline(in, line)) {
    const std::string t = trim(line);
    long long value = 0;
    if (std::sscanf(t.c_str(), "localparam EXPECTED_FIRES = %lld;",
                    &value) == 1) {
      spec.expected_fires = value;
      continue;
    }
    long long scale = 0;
    long long slack = 0;
    if (std::sscanf(t.c_str(),
                    "if (cycles > %lld * EXPECTED_FIRES + %lld) begin",
                    &scale, &slack) == 2) {
      spec.timeout_scale = scale;
      spec.timeout_slack = slack;
      continue;
    }
    // Stream counter registers: "reg  [31:0] s0_stream0_cnt = 0;".
    const std::size_t cnt_pos = t.find("_cnt = 0;");
    if (starts_with(t, "reg") && cnt_pos != std::string::npos) {
      const std::size_t name_start = t.rfind(' ', cnt_pos);
      spec.streams.push_back(
          t.substr(name_start + 1, cnt_pos - name_start - 1));
      continue;
    }
    // DUT instantiation: "<type> dut (".
    const std::size_t dut_pos = t.find(" dut (");
    if (dut_pos != std::string::npos && spec.dut_type.empty()) {
      spec.dut_type = t.substr(0, dut_pos);
      continue;
    }
  }
  if (spec.expected_fires < 0 || spec.dut_type.empty() ||
      spec.streams.empty() || spec.timeout_scale < 0) {
    throw ParseError(
        "run_testbench: text does not look like an emitted testbench", 1,
        1);
  }
  return spec;
}

}  // namespace

TbResult run_testbench(const std::string& rtl_source,
                       const std::string& tb_source) {
  const TbSpec spec = parse_tb(tb_source);
  VerilogSim dut(rtl_source, spec.dut_type);

  // Testbench stimulus: kernel always ready, all streams valid, ramp data.
  dut.poke("rst", 1);
  dut.poke("kernel_ready", 1);
  std::vector<std::uint64_t> counters(spec.streams.size(), 0);
  for (const std::string& stream : spec.streams) {
    dut.poke(stream + "_valid", 1);
    dut.poke(stream + "_data", 0);
  }
  // "initial begin repeat (4) @(posedge clk); rst = 0; end".
  for (int edge = 0; edge < 4; ++edge) dut.step_clock();
  dut.poke("rst", 0);

  // The TB's always block, non-blocking semantics: every condition reads
  // the pre-edge register values; commits happen at the edge.
  TbResult result;
  std::int64_t cycles = 0;
  std::int64_t fires = 0;
  const std::int64_t timeout =
      spec.timeout_scale * spec.expected_fires + spec.timeout_slack;
  char line[128];
  while (true) {
    for (std::size_t s = 0; s < spec.streams.size(); ++s) {
      dut.poke(spec.streams[s] + "_data", counters[s]);
    }
    dut.eval();
    const bool fire = dut.peek("kernel_fire") != 0;
    std::vector<bool> ready(spec.streams.size());
    for (std::size_t s = 0; s < spec.streams.size(); ++s) {
      ready[s] = dut.peek(spec.streams[s] + "_ready") != 0;
    }

    if (fires == spec.expected_fires) {
      std::snprintf(line, sizeof(line), "PASS: %lld fires in %lld cycles",
                    static_cast<long long>(fires),
                    static_cast<long long>(cycles));
      result.finished = true;
      result.passed = true;
      result.display = line;
      break;
    }
    if (cycles > timeout) {
      std::snprintf(line, sizeof(line), "FAIL: timeout with %lld fires",
                    static_cast<long long>(fires));
      result.finished = true;
      result.passed = false;
      result.display = line;
      break;
    }

    // Edge commits.
    ++cycles;
    for (std::size_t s = 0; s < spec.streams.size(); ++s) {
      if (ready[s]) ++counters[s];
    }
    if (fire) ++fires;
    dut.step_clock();
  }
  result.fires = fires;
  result.cycles = cycles;
  return result;
}

}  // namespace nup::vsim
