#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "vsim/vast.hpp"

namespace nup::vsim {

/// Interpreting simulator for the parsed subset: elaborates a top module
/// (flattening instances, resolving parameters, aliasing ports) and
/// executes it cycle by cycle -- continuous assigns to a fixpoint, then
/// non-blocking commits on the clock edge. Two-state (0/1) semantics,
/// 64-bit arithmetic masked to declared widths, Verilog-style mixed
/// signedness (an operation is signed iff all operands are signed).
///
/// This replaces an external RTL simulator for verifying the generated
/// memory systems: tests drive the emitted Verilog with the same stream
/// the C++ cycle-accurate model sees and compare behaviour cycle-for-cycle.
class VerilogSim {
 public:
  /// Parses and elaborates `top` from Verilog source.
  VerilogSim(const std::string& source, const std::string& top);
  ~VerilogSim();

  VerilogSim(const VerilogSim&) = delete;
  VerilogSim& operator=(const VerilogSim&) = delete;

  /// Sets a top-level input (masked to the port width).
  void poke(const std::string& port, std::uint64_t value);

  /// Reads any net by name; hierarchical paths use '.' (e.g.
  /// "u_s0_q0.count").
  std::uint64_t peek(const std::string& name) const;

  /// Settles all continuous assignments (call after poke, before peek, if
  /// no clock edge is wanted).
  void eval();

  /// One full clock cycle on the named clock: settle, posedge commit,
  /// settle.
  void step_clock(const std::string& clock = "clk");

  /// Number of elaborated nets (diagnostics).
  std::size_t net_count() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nup::vsim
