#pragma once

#include <string>

#include "vsim/vast.hpp"

namespace nup::vsim {

/// Parses the synthesizable subset of Verilog-2001 produced by
/// codegen::emit_verilog (see vast.hpp for the exact shape). Compiler
/// directives (`timescale) and comments are skipped. Throws ParseError on
/// anything outside the subset.
VDesign parse_verilog(const std::string& source);

}  // namespace nup::vsim
