#include "vsim/parser.hpp"

#include <cctype>
#include <cstdlib>

#include "util/error.hpp"

namespace nup::vsim {

namespace {

enum class Tok {
  kIdent, kNumber,
  kLParen, kRParen, kLBracket, kRBracket,
  kSemi, kComma, kDot, kHash, kAt, kQuestion, kColon,
  kAssignEq,                 // =
  kLe,                       // <= (relational or non-blocking)
  kLt, kGt, kGe, kEqEq, kNe,
  kAndAnd, kOrOr, kBang, kTilde,
  kPlus, kMinus, kStar, kSlash,
  kEof,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;
  std::int64_t value = 0;
  int width = 0;        // 0 = unsized literal
  bool is_signed = true;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (true) {
      skip_noise();
      Token t;
      t.line = line_;
      if (pos_ >= text_.size()) {
        t.kind = Tok::kEof;
        out.push_back(t);
        return out;
      }
      const char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
          c == '$') {
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '$')) {
          t.text.push_back(text_[pos_++]);
        }
        t.kind = Tok::kIdent;
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        lex_number(t);
      } else {
        lex_punct(t);
      }
      out.push_back(std::move(t));
    }
  }

 private:
  void skip_noise() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          if (text_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ += 2;
      } else if (c == '`') {  // compiler directive: skip the line
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        return;
      }
    }
  }

  void lex_number(Token& t) {
    t.kind = Tok::kNumber;
    std::string digits;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      if (text_[pos_] != '_') digits.push_back(text_[pos_]);
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '\'') {
      ++pos_;
      t.width = static_cast<int>(std::strtol(digits.c_str(), nullptr, 10));
      t.is_signed = false;
      int base = 10;
      const char b = static_cast<char>(
          std::tolower(static_cast<unsigned char>(text_[pos_++])));
      if (b == 'b') base = 2;
      else if (b == 'h') base = 16;
      else if (b == 'o') base = 8;
      else if (b == 'd') base = 10;
      else throw ParseError("bad literal base", line_, 0);
      std::string value;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        if (text_[pos_] != '_') value.push_back(text_[pos_]);
        ++pos_;
      }
      t.value = std::strtoll(value.c_str(), nullptr, base);
    } else {
      t.value = std::strtoll(digits.c_str(), nullptr, 10);
      t.width = 0;
      t.is_signed = true;
    }
  }

  void lex_punct(Token& t) {
    const char c = text_[pos_++];
    auto two = [&](char second, Tok kind_two, Tok kind_one) {
      if (pos_ < text_.size() && text_[pos_] == second) {
        ++pos_;
        t.kind = kind_two;
      } else {
        t.kind = kind_one;
      }
    };
    switch (c) {
      case '(': t.kind = Tok::kLParen; break;
      case ')': t.kind = Tok::kRParen; break;
      case '[': t.kind = Tok::kLBracket; break;
      case ']': t.kind = Tok::kRBracket; break;
      case ';': t.kind = Tok::kSemi; break;
      case ',': t.kind = Tok::kComma; break;
      case '.': t.kind = Tok::kDot; break;
      case '#': t.kind = Tok::kHash; break;
      case '@': t.kind = Tok::kAt; break;
      case '?': t.kind = Tok::kQuestion; break;
      case ':': t.kind = Tok::kColon; break;
      case '=': two('=', Tok::kEqEq, Tok::kAssignEq); break;
      case '<': two('=', Tok::kLe, Tok::kLt); break;
      case '>': two('=', Tok::kGe, Tok::kGt); break;
      case '!': two('=', Tok::kNe, Tok::kBang); break;
      case '~': t.kind = Tok::kTilde; break;
      case '&':
        if (pos_ < text_.size() && text_[pos_] == '&') {
          ++pos_;
          t.kind = Tok::kAndAnd;
          break;
        }
        throw ParseError("bitwise '&' outside the supported subset", line_,
                         0);
      case '|':
        if (pos_ < text_.size() && text_[pos_] == '|') {
          ++pos_;
          t.kind = Tok::kOrOr;
          break;
        }
        throw ParseError("bitwise '|' outside the supported subset", line_,
                         0);
      case '+': t.kind = Tok::kPlus; break;
      case '-': t.kind = Tok::kMinus; break;
      case '*': t.kind = Tok::kStar; break;
      case '/': t.kind = Tok::kSlash; break;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'",
                         line_, 0);
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  VDesign parse() {
    VDesign design;
    while (peek().kind != Tok::kEof) {
      design.modules.push_back(parse_module());
    }
    return design;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  const Token& take() { return tokens_[pos_++]; }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("verilog: " + message, peek().line, 0);
  }

  bool is_keyword(const Token& t, const char* kw) const {
    return t.kind == Tok::kIdent && t.text == kw;
  }

  void expect_keyword(const char* kw) {
    if (!is_keyword(peek(), kw)) {
      fail(std::string("expected '") + kw + "', found '" + peek().text +
           "'");
    }
    take();
  }

  const Token& expect(Tok kind, const char* what) {
    if (peek().kind != kind) fail(std::string("expected ") + what);
    return take();
  }

  bool accept(Tok kind) {
    if (peek().kind != kind) return false;
    take();
    return true;
  }

  std::string expect_ident() {
    if (peek().kind != Tok::kIdent) fail("expected identifier");
    return take().text;
  }

  VModule parse_module() {
    expect_keyword("module");
    VModule module;
    module.name = expect_ident();

    if (accept(Tok::kHash)) {
      expect(Tok::kLParen, "'('");
      do {
        expect_keyword("parameter");
        VParam param;
        param.name = expect_ident();
        expect(Tok::kAssignEq, "'='");
        param.default_value = parse_expr();
        module.params.push_back(std::move(param));
      } while (accept(Tok::kComma));
      expect(Tok::kRParen, "')'");
    }

    expect(Tok::kLParen, "'('");
    if (peek().kind != Tok::kRParen) {
      do {
        module.nets.push_back(parse_port_decl());
      } while (accept(Tok::kComma));
    }
    expect(Tok::kRParen, "')'");
    expect(Tok::kSemi, "';'");

    while (!is_keyword(peek(), "endmodule")) {
      parse_module_item(module);
    }
    take();  // endmodule
    return module;
  }

  VNetDecl parse_port_decl() {
    VNetDecl decl;
    decl.is_port = true;
    if (is_keyword(peek(), "input")) {
      decl.dir = VPortDir::kInput;
    } else if (is_keyword(peek(), "output")) {
      decl.dir = VPortDir::kOutput;
    } else {
      fail("expected 'input' or 'output'");
    }
    take();
    if (is_keyword(peek(), "wire")) {
      take();
    } else if (is_keyword(peek(), "reg")) {
      take();
      decl.is_reg = true;
    }
    if (is_keyword(peek(), "signed")) {
      take();
      decl.is_signed = true;
    }
    parse_range_suffix(decl);
    decl.name = expect_ident();
    return decl;
  }

  void parse_range_suffix(VNetDecl& decl) {
    if (accept(Tok::kLBracket)) {
      decl.msb = parse_expr();
      expect(Tok::kColon, "':'");
      VExprPtr lsb = parse_expr();
      if (lsb->kind != VExprKind::kLiteral || lsb->literal != 0) {
        fail("only [msb:0] ranges are supported");
      }
      expect(Tok::kRBracket, "']'");
    }
  }

  void parse_module_item(VModule& module) {
    if (is_keyword(peek(), "wire") || is_keyword(peek(), "reg")) {
      VNetDecl decl;
      decl.is_reg = peek().text == "reg";
      take();
      if (is_keyword(peek(), "signed")) {
        take();
        decl.is_signed = true;
      }
      parse_range_suffix(decl);
      // One or more names, each optionally a memory.
      do {
        VNetDecl item;
        item.is_reg = decl.is_reg;
        item.is_signed = decl.is_signed;
        item.msb = decl.msb ? clone(*decl.msb) : nullptr;
        item.name = expect_ident();
        if (accept(Tok::kLBracket)) {
          VExprPtr lo = parse_expr();
          if (lo->kind != VExprKind::kLiteral || lo->literal != 0) {
            fail("memories must be declared [0:depth-1]");
          }
          expect(Tok::kColon, "':'");
          item.mem_depth = parse_expr();  // depth-1 expression
          expect(Tok::kRBracket, "']'");
        }
        module.nets.push_back(std::move(item));
      } while (accept(Tok::kComma));
      expect(Tok::kSemi, "';'");
    } else if (is_keyword(peek(), "assign")) {
      take();
      VAssign assign;
      assign.line = peek().line;
      assign.lhs = expect_ident();
      expect(Tok::kAssignEq, "'='");
      assign.rhs = parse_expr();
      expect(Tok::kSemi, "';'");
      module.assigns.push_back(std::move(assign));
    } else if (is_keyword(peek(), "always")) {
      take();
      expect(Tok::kAt, "'@'");
      expect(Tok::kLParen, "'('");
      expect_keyword("posedge");
      VAlways always;
      always.clock = expect_ident();
      expect(Tok::kRParen, "')'");
      always.body.push_back(parse_stmt());
      module.always_blocks.push_back(std::move(always));
    } else if (peek().kind == Tok::kIdent) {
      module.instances.push_back(parse_instance());
    } else {
      fail("unexpected token in module body");
    }
  }

  VInstance parse_instance() {
    VInstance inst;
    inst.line = peek().line;
    inst.module_name = expect_ident();
    if (accept(Tok::kHash)) {
      expect(Tok::kLParen, "'('");
      do {
        expect(Tok::kDot, "'.'");
        const std::string name = expect_ident();
        expect(Tok::kLParen, "'('");
        inst.param_overrides.emplace_back(name, parse_expr());
        expect(Tok::kRParen, "')'");
      } while (accept(Tok::kComma));
      expect(Tok::kRParen, "')'");
    }
    inst.instance_name = expect_ident();
    expect(Tok::kLParen, "'('");
    do {
      expect(Tok::kDot, "'.'");
      const std::string name = expect_ident();
      expect(Tok::kLParen, "'('");
      inst.connections.emplace_back(name, parse_expr());
      expect(Tok::kRParen, "')'");
    } while (accept(Tok::kComma));
    expect(Tok::kRParen, "')'");
    expect(Tok::kSemi, "';'");
    return inst;
  }

  VStmtPtr parse_stmt() {
    auto stmt = std::make_unique<VStmt>();
    stmt->line = peek().line;
    if (is_keyword(peek(), "begin")) {
      take();
      stmt->kind = VStmtKind::kBlock;
      while (!is_keyword(peek(), "end")) stmt->body.push_back(parse_stmt());
      take();
      return stmt;
    }
    if (is_keyword(peek(), "if")) {
      take();
      stmt->kind = VStmtKind::kIf;
      expect(Tok::kLParen, "'('");
      stmt->condition = parse_expr();
      expect(Tok::kRParen, "')'");
      stmt->then_body.push_back(parse_stmt());
      if (is_keyword(peek(), "else")) {
        take();
        stmt->else_body.push_back(parse_stmt());
      }
      return stmt;
    }
    stmt->kind = VStmtKind::kNonBlocking;
    stmt->lhs = expect_ident();
    if (accept(Tok::kLBracket)) {
      stmt->lhs_index = parse_expr();
      expect(Tok::kRBracket, "']'");
    }
    expect(Tok::kLe, "'<='");
    stmt->rhs = parse_expr();
    expect(Tok::kSemi, "';'");
    return stmt;
  }

  static VExprPtr clone(const VExpr& expr) {
    auto out = std::make_unique<VExpr>();
    out->kind = expr.kind;
    out->line = expr.line;
    out->literal = expr.literal;
    out->literal_width = expr.literal_width;
    out->literal_signed = expr.literal_signed;
    out->name = expr.name;
    out->op = expr.op;
    for (const VExprPtr& child : expr.children) {
      out->children.push_back(clone(*child));
    }
    return out;
  }

  VExprPtr make_binary(const char* op, VExprPtr lhs, VExprPtr rhs) {
    auto node = std::make_unique<VExpr>();
    node->kind = VExprKind::kBinary;
    node->op = op;
    node->children.push_back(std::move(lhs));
    node->children.push_back(std::move(rhs));
    return node;
  }

  VExprPtr parse_expr() { return parse_ternary(); }

  VExprPtr parse_ternary() {
    VExprPtr cond = parse_or();
    if (!accept(Tok::kQuestion)) return cond;
    auto node = std::make_unique<VExpr>();
    node->kind = VExprKind::kTernary;
    node->children.push_back(std::move(cond));
    node->children.push_back(parse_expr());
    expect(Tok::kColon, "':'");
    node->children.push_back(parse_expr());
    return node;
  }

  VExprPtr parse_or() {
    VExprPtr lhs = parse_and();
    while (accept(Tok::kOrOr)) lhs = make_binary("||", std::move(lhs),
                                                 parse_and());
    return lhs;
  }

  VExprPtr parse_and() {
    VExprPtr lhs = parse_equality();
    while (accept(Tok::kAndAnd)) {
      lhs = make_binary("&&", std::move(lhs), parse_equality());
    }
    return lhs;
  }

  VExprPtr parse_equality() {
    VExprPtr lhs = parse_relational();
    while (true) {
      if (accept(Tok::kEqEq)) {
        lhs = make_binary("==", std::move(lhs), parse_relational());
      } else if (accept(Tok::kNe)) {
        lhs = make_binary("!=", std::move(lhs), parse_relational());
      } else {
        return lhs;
      }
    }
  }

  VExprPtr parse_relational() {
    VExprPtr lhs = parse_additive();
    while (true) {
      if (accept(Tok::kLt)) {
        lhs = make_binary("<", std::move(lhs), parse_additive());
      } else if (accept(Tok::kLe)) {
        lhs = make_binary("<=", std::move(lhs), parse_additive());
      } else if (accept(Tok::kGt)) {
        lhs = make_binary(">", std::move(lhs), parse_additive());
      } else if (accept(Tok::kGe)) {
        lhs = make_binary(">=", std::move(lhs), parse_additive());
      } else {
        return lhs;
      }
    }
  }

  VExprPtr parse_additive() {
    VExprPtr lhs = parse_multiplicative();
    while (true) {
      if (accept(Tok::kPlus)) {
        lhs = make_binary("+", std::move(lhs), parse_multiplicative());
      } else if (accept(Tok::kMinus)) {
        lhs = make_binary("-", std::move(lhs), parse_multiplicative());
      } else {
        return lhs;
      }
    }
  }

  VExprPtr parse_multiplicative() {
    VExprPtr lhs = parse_unary();
    while (true) {
      if (accept(Tok::kStar)) {
        lhs = make_binary("*", std::move(lhs), parse_unary());
      } else if (accept(Tok::kSlash)) {
        lhs = make_binary("/", std::move(lhs), parse_unary());
      } else {
        return lhs;
      }
    }
  }

  VExprPtr parse_unary() {
    const char* op = nullptr;
    if (accept(Tok::kBang)) op = "!";
    else if (accept(Tok::kTilde)) op = "~";
    else if (accept(Tok::kMinus)) op = "-";
    if (op != nullptr) {
      auto node = std::make_unique<VExpr>();
      node->kind = VExprKind::kUnary;
      node->op = op;
      node->children.push_back(parse_unary());
      return node;
    }
    return parse_primary();
  }

  VExprPtr parse_primary() {
    auto node = std::make_unique<VExpr>();
    node->line = peek().line;
    if (peek().kind == Tok::kNumber) {
      const Token& t = take();
      node->kind = VExprKind::kLiteral;
      node->literal = t.value;
      node->literal_width = t.width;
      node->literal_signed = t.is_signed;
      return node;
    }
    if (accept(Tok::kLParen)) {
      node = parse_expr();
      expect(Tok::kRParen, "')'");
      return node;
    }
    if (peek().kind == Tok::kIdent) {
      node->kind = VExprKind::kIdent;
      node->name = take().text;
      if (accept(Tok::kLBracket)) {
        VExprPtr first = parse_expr();
        if (accept(Tok::kColon)) {
          node->kind = VExprKind::kRange;
          node->children.push_back(std::move(first));
          node->children.push_back(parse_expr());
        } else {
          node->kind = VExprKind::kIndex;
          node->children.push_back(std::move(first));
        }
        expect(Tok::kRBracket, "']'");
      }
      return node;
    }
    fail("expected an expression");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

const VModule* VDesign::find(const std::string& name) const {
  for (const VModule& module : modules) {
    if (module.name == name) return &module;
  }
  return nullptr;
}

VDesign parse_verilog(const std::string& source) {
  return Parser(Lexer(source).run()).parse();
}

}  // namespace nup::vsim
