#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "poly/polyhedron.hpp"

namespace nup::poly {

/// Finite union of convex integer polyhedra of equal dimensionality.
/// Models both iteration domains (Definition 1) and input data domains
/// (Definition 6, which is a union of translated reference domains and is
/// generally not convex). Rows -- the 1-D slices along the innermost
/// coordinate -- are the unit of exact computation: per-piece innermost
/// bounds are exact, and the union of a row is a merged interval list.
class Domain {
 public:
  Domain() = default;
  explicit Domain(Polyhedron piece);

  static Domain box(const IntVec& lo, const IntVec& hi);

  void add_piece(Polyhedron piece);

  std::size_t dim() const;
  bool has_pieces() const { return !pieces_.empty(); }
  const std::vector<Polyhedron>& pieces() const { return pieces_; }

  bool contains(const IntVec& point) const;

  /// The translated set { x + t : x in this }.
  Domain translated(const IntVec& t) const;

  /// Sorted disjoint intervals of the innermost coordinate for fixed outer
  /// coordinates `prefix` (size dim()-1).
  std::vector<Interval> row_intervals(const IntVec& prefix) const;

  /// Conservative range of coordinate `level` given an outer prefix: the
  /// union (hull) of the per-piece FM bounds. Every point of the domain with
  /// this prefix lies inside, but not every value inside need be feasible.
  Interval level_hull(const IntVec& prefix, std::size_t level) const;

  /// Exact number of integer points. Cached after the first call.
  std::int64_t count() const;

  /// Number of domain points lexicographically strictly less than `point`
  /// (the point itself need not belong to the domain).
  std::int64_t lex_rank(const IntVec& point) const;

  /// Lexicographically smallest point; nullopt when empty.
  std::optional<IntVec> lex_min() const;

  /// Lexicographically greatest point; nullopt when empty.
  std::optional<IntVec> lex_max() const;

  bool empty() const { return !lex_min().has_value(); }

  /// Visits every point in lexicographic order.
  void for_each(const std::function<void(const IntVec&)>& visit) const;

  /// If the whole domain is one axis-aligned box, returns its corners.
  bool as_single_box(IntVec* lo, IntVec* hi) const;

  std::string to_string() const;

  /// Streaming lexicographic cursor over the domain, O(1) amortized per
  /// advance. Usage: for (LexCursor c(d); c.valid(); c.advance()) c.point();
  class LexCursor {
   public:
    explicit LexCursor(const Domain& domain);

    bool valid() const { return valid_; }
    const IntVec& point() const { return point_; }
    void advance();

   private:
    /// Positions the cursor at the lex-first point whose coordinates
    /// [0, level) equal point_[0, level); returns false if none exists.
    bool descend(std::size_t level);
    /// Advances coordinate `level` to its next feasible value and descends.
    bool advance_level(std::size_t level);

    const Domain* domain_;
    bool valid_ = false;
    IntVec point_;
    std::vector<Interval> level_hull_;   // cached hulls per outer level
    std::vector<Interval> row_;          // merged innermost intervals
    std::size_t row_index_ = 0;
  };

 private:
  std::int64_t count_with_prefix(const IntVec& prefix,
                                 std::size_t level) const;

  std::vector<Polyhedron> pieces_;
  mutable std::optional<std::int64_t> count_cache_;
};

}  // namespace nup::poly
