#include "poly/polyhedron.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace nup::poly {

namespace {

constexpr std::int64_t kNegInf = std::numeric_limits<std::int64_t>::min() / 4;
constexpr std::int64_t kPosInf = std::numeric_limits<std::int64_t>::max() / 4;

/// floor(a / b) for b > 0.
std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

/// ceil(a / b) for b > 0.
std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) == (b < 0))) ++q;
  return q;
}

/// Divides all coefficients by their gcd to keep FM combinations small and
/// make duplicate detection effective.
Constraint normalized(Constraint c) {
  std::int64_t g = std::abs(c.expr.constant);
  for (std::int64_t v : c.expr.coeffs) g = std::gcd(g, std::abs(v));
  if (g > 1) {
    for (std::int64_t& v : c.expr.coeffs) v /= g;
    c.expr.constant = floor_div(c.expr.constant, g);
  }
  return c;
}

bool same_constraint(const Constraint& a, const Constraint& b) {
  return a.expr.coeffs == b.expr.coeffs && a.expr.constant == b.expr.constant;
}

/// One Fourier-Motzkin step: eliminates coordinate `axis`, producing a
/// system over the remaining coordinates that contains the rational shadow.
std::vector<Constraint> fm_eliminate(const std::vector<Constraint>& system,
                                     std::size_t axis) {
  std::vector<const Constraint*> lowers;  // positive coefficient on axis
  std::vector<const Constraint*> uppers;  // negative coefficient on axis
  std::vector<Constraint> out;
  for (const Constraint& c : system) {
    const std::int64_t a = c.expr.coeffs[axis];
    if (a > 0) {
      lowers.push_back(&c);
    } else if (a < 0) {
      uppers.push_back(&c);
    } else {
      out.push_back(c);
    }
  }
  for (const Constraint* lo : lowers) {
    for (const Constraint* up : uppers) {
      const std::int64_t p = lo->expr.coeffs[axis];
      const std::int64_t q = -up->expr.coeffs[axis];
      Constraint combined;
      combined.expr.coeffs.assign(system.empty() ? 0 : lo->expr.dim(), 0);
      for (std::size_t d = 0; d < combined.expr.coeffs.size(); ++d) {
        combined.expr.coeffs[d] =
            q * lo->expr.coeffs[d] + p * up->expr.coeffs[d];
      }
      combined.expr.constant = q * lo->expr.constant + p * up->expr.constant;
      combined = normalized(std::move(combined));
      const bool duplicate =
          std::any_of(out.begin(), out.end(), [&](const Constraint& c) {
            return same_constraint(c, combined);
          });
      if (!duplicate) out.push_back(std::move(combined));
    }
  }
  return out;
}

}  // namespace

Interval intersect(const Interval& a, const Interval& b) {
  return Interval{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

std::vector<Interval> merge_intervals(std::vector<Interval> intervals) {
  std::erase_if(intervals, [](const Interval& iv) { return iv.empty(); });
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> out;
  for (const Interval& iv : intervals) {
    if (!out.empty() && iv.lo <= out.back().hi + 1) {
      out.back().hi = std::max(out.back().hi, iv.hi);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

Polyhedron::Polyhedron(std::size_t dim) : dim_(dim) {
  if (dim == 0) throw Error("Polyhedron requires dim >= 1");
}

Polyhedron Polyhedron::box(const IntVec& lo, const IntVec& hi) {
  if (lo.size() != hi.size() || lo.empty()) {
    throw Error("Polyhedron::box corner dimension mismatch");
  }
  Polyhedron p(lo.size());
  for (std::size_t d = 0; d < lo.size(); ++d) {
    p.add(lower_bound(lo.size(), d, lo[d]));
    p.add(upper_bound(lo.size(), d, hi[d]));
  }
  return p;
}

void Polyhedron::add(Constraint c) {
  if (c.dim() != dim_) {
    throw Error("Constraint dimension " + std::to_string(c.dim()) +
                " does not match polyhedron dimension " +
                std::to_string(dim_));
  }
  constraints_.push_back(normalized(std::move(c)));
  eliminated_built_ = false;
}

bool Polyhedron::contains(const IntVec& point) const {
  if (point.size() != dim_) throw Error("Polyhedron::contains dim mismatch");
  return std::all_of(
      constraints_.begin(), constraints_.end(),
      [&](const Constraint& c) { return c.satisfied(point); });
}

Polyhedron Polyhedron::translated(const IntVec& t) const {
  Polyhedron out(dim_);
  for (const Constraint& c : constraints_) {
    out.add(Constraint{c.expr.translated(t)});
  }
  return out;
}

Polyhedron Polyhedron::intersected(const Polyhedron& other) const {
  if (other.dim_ != dim_) throw Error("Polyhedron::intersected dim mismatch");
  Polyhedron out = *this;
  for (const Constraint& c : other.constraints_) out.add(c);
  return out;
}

const std::vector<Constraint>& Polyhedron::eliminated_system(
    std::size_t level) const {
  if (!eliminated_built_) {
    eliminated_.assign(dim_, {});
    eliminated_[dim_ - 1] = constraints_;
    for (std::size_t level_idx = dim_ - 1; level_idx > 0; --level_idx) {
      eliminated_[level_idx - 1] =
          fm_eliminate(eliminated_[level_idx], level_idx);
    }
    eliminated_built_ = true;
  }
  return eliminated_[level];
}

Interval Polyhedron::level_bounds(const IntVec& prefix,
                                  std::size_t level) const {
  if (level >= dim_ || prefix.size() < level) {
    throw Error("Polyhedron::level_bounds bad level/prefix");
  }
  Interval out{kNegInf, kPosInf};
  for (const Constraint& c : eliminated_system(level)) {
    const std::int64_t a = c.expr.coeffs[level];
    std::int64_t fixed = c.expr.constant;
    for (std::size_t d = 0; d < level; ++d) {
      fixed += c.expr.coeffs[d] * prefix[d];
    }
    if (a > 0) {
      out.lo = std::max(out.lo, ceil_div(-fixed, a));
    } else if (a < 0) {
      out.hi = std::min(out.hi, floor_div(fixed, -a));
    } else if (fixed < 0) {
      return Interval{};  // prefix already infeasible
    }
    if (out.empty()) return Interval{};
  }
  return out;
}

Interval Polyhedron::axis_range(std::size_t axis) const {
  if (axis >= dim_) throw Error("Polyhedron::axis_range bad axis");
  // Eliminate every other coordinate, innermost-last order so each step is
  // a plain FM elimination.
  std::vector<Constraint> system = constraints_;
  for (std::size_t d = dim_; d-- > 0;) {
    if (d != axis) system = fm_eliminate(system, d);
  }
  Interval out{kNegInf, kPosInf};
  for (const Constraint& c : system) {
    const std::int64_t a = c.expr.coeffs[axis];
    if (a > 0) {
      out.lo = std::max(out.lo, ceil_div(-c.expr.constant, a));
    } else if (a < 0) {
      out.hi = std::min(out.hi, floor_div(c.expr.constant, -a));
    } else if (c.expr.constant < 0) {
      return Interval{};
    }
  }
  return out;
}

bool Polyhedron::as_box(IntVec* lo, IntVec* hi) const {
  IntVec lo_out(dim_, kNegInf);
  IntVec hi_out(dim_, kPosInf);
  for (const Constraint& c : constraints_) {
    std::size_t nonzero = 0;
    std::size_t axis = 0;
    for (std::size_t d = 0; d < dim_; ++d) {
      if (c.expr.coeffs[d] != 0) {
        ++nonzero;
        axis = d;
      }
    }
    if (nonzero != 1) return false;
    const std::int64_t a = c.expr.coeffs[axis];
    if (a > 0) {
      lo_out[axis] = std::max(lo_out[axis], ceil_div(-c.expr.constant, a));
    } else {
      hi_out[axis] = std::min(hi_out[axis], floor_div(c.expr.constant, -a));
    }
  }
  for (std::size_t d = 0; d < dim_; ++d) {
    if (lo_out[d] == kNegInf || hi_out[d] == kPosInf) return false;
  }
  if (lo != nullptr) *lo = std::move(lo_out);
  if (hi != nullptr) *hi = std::move(hi_out);
  return true;
}

std::string Polyhedron::to_string() const {
  std::string out = "{ x in Z^" + std::to_string(dim_) + " :";
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    out += (i == 0 ? " " : ", ") + constraints_[i].to_string();
  }
  return out + " }";
}

}  // namespace nup::poly
