#include "poly/int_vec.hpp"

#include "util/error.hpp"

namespace nup::poly {

namespace {

void require_same_dim(const IntVec& a, const IntVec& b) {
  if (a.size() != b.size()) {
    throw Error("IntVec dimension mismatch: " + std::to_string(a.size()) +
                " vs " + std::to_string(b.size()));
  }
}

}  // namespace

IntVec add(const IntVec& a, const IntVec& b) {
  require_same_dim(a, b);
  IntVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

IntVec sub(const IntVec& a, const IntVec& b) {
  require_same_dim(a, b);
  IntVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

IntVec negate(const IntVec& a) {
  IntVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = -a[i];
  return out;
}

int lex_compare(const IntVec& a, const IntVec& b) {
  require_same_dim(a, b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
  }
  return 0;
}

bool lex_less(const IntVec& a, const IntVec& b) {
  return lex_compare(a, b) < 0;
}

bool is_zero(const IntVec& a) {
  for (std::int64_t v : a) {
    if (v != 0) return false;
  }
  return true;
}

std::string to_string(const IntVec& a) {
  std::string out = "(";
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(a[i]);
  }
  return out + ")";
}

}  // namespace nup::poly
