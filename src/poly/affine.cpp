#include "poly/affine.hpp"

#include "util/error.hpp"

namespace nup::poly {

std::int64_t AffineExpr::evaluate(const IntVec& point) const {
  if (point.size() != coeffs.size()) {
    throw Error("AffineExpr::evaluate dimension mismatch");
  }
  std::int64_t acc = constant;
  for (std::size_t i = 0; i < coeffs.size(); ++i) acc += coeffs[i] * point[i];
  return acc;
}

AffineExpr AffineExpr::translated(const IntVec& t) const {
  if (t.size() != coeffs.size()) {
    throw Error("AffineExpr::translated dimension mismatch");
  }
  AffineExpr out = *this;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    out.constant -= coeffs[i] * t[i];
  }
  return out;
}

std::string AffineExpr::to_string() const {
  std::string out;
  bool first = true;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    if (coeffs[i] == 0) continue;
    if (!first) out += coeffs[i] > 0 ? " + " : " - ";
    else if (coeffs[i] < 0) out += "-";
    const std::int64_t mag = coeffs[i] < 0 ? -coeffs[i] : coeffs[i];
    if (mag != 1) out += std::to_string(mag) + "*";
    out += "x" + std::to_string(i);
    first = false;
  }
  if (first) return std::to_string(constant);
  if (constant > 0) out += " + " + std::to_string(constant);
  if (constant < 0) out += " - " + std::to_string(-constant);
  return out;
}

Constraint lower_bound(std::size_t dim, std::size_t axis, std::int64_t lo) {
  IntVec coeffs(dim, 0);
  coeffs[axis] = 1;
  return Constraint{AffineExpr(std::move(coeffs), -lo)};
}

Constraint upper_bound(std::size_t dim, std::size_t axis, std::int64_t hi) {
  IntVec coeffs(dim, 0);
  coeffs[axis] = -1;
  return Constraint{AffineExpr(std::move(coeffs), hi)};
}

Constraint make_constraint(IntVec coeffs, std::int64_t constant) {
  return Constraint{AffineExpr(std::move(coeffs), constant)};
}

}  // namespace nup::poly
