#include "poly/domain.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nup::poly {

namespace {

constexpr std::int64_t kEnumerationGuard = 1'000'000'000;

void require_prefix(const IntVec& prefix, std::size_t needed) {
  if (prefix.size() < needed) {
    throw Error("Domain: prefix of size " + std::to_string(prefix.size()) +
                " is too short, need " + std::to_string(needed));
  }
}

}  // namespace

Domain::Domain(Polyhedron piece) { pieces_.push_back(std::move(piece)); }

Domain Domain::box(const IntVec& lo, const IntVec& hi) {
  return Domain(Polyhedron::box(lo, hi));
}

void Domain::add_piece(Polyhedron piece) {
  if (!pieces_.empty() && piece.dim() != dim()) {
    throw Error("Domain::add_piece dimension mismatch");
  }
  pieces_.push_back(std::move(piece));
  count_cache_.reset();
}

std::size_t Domain::dim() const {
  if (pieces_.empty()) throw Error("Domain::dim on empty union");
  return pieces_.front().dim();
}

bool Domain::contains(const IntVec& point) const {
  return std::any_of(pieces_.begin(), pieces_.end(),
                     [&](const Polyhedron& p) { return p.contains(point); });
}

Domain Domain::translated(const IntVec& t) const {
  Domain out;
  for (const Polyhedron& p : pieces_) out.add_piece(p.translated(t));
  return out;
}

std::vector<Interval> Domain::row_intervals(const IntVec& prefix) const {
  require_prefix(prefix, dim() - 1);
  std::vector<Interval> intervals;
  intervals.reserve(pieces_.size());
  for (const Polyhedron& p : pieces_) {
    Interval iv = p.level_bounds(prefix, dim() - 1);
    if (!iv.empty()) intervals.push_back(iv);
  }
  return merge_intervals(std::move(intervals));
}

Interval Domain::level_hull(const IntVec& prefix, std::size_t level) const {
  require_prefix(prefix, level);
  Interval hull;  // empty
  bool any = false;
  for (const Polyhedron& p : pieces_) {
    Interval iv = p.level_bounds(prefix, level);
    if (iv.empty()) continue;
    if (!any) {
      hull = iv;
      any = true;
    } else {
      hull.lo = std::min(hull.lo, iv.lo);
      hull.hi = std::max(hull.hi, iv.hi);
    }
  }
  return any ? hull : Interval{};
}

std::int64_t Domain::count_with_prefix(const IntVec& prefix,
                                       std::size_t level) const {
  if (level == dim() - 1) {
    std::int64_t total = 0;
    for (const Interval& iv : row_intervals(prefix)) total += iv.size();
    return total;
  }
  const Interval hull = level_hull(prefix, level);
  if (hull.empty()) return 0;
  if (hull.size() > kEnumerationGuard) {
    throw Error("Domain::count: level " + std::to_string(level) +
                " spans " + std::to_string(hull.size()) +
                " values; domain looks unbounded");
  }
  std::int64_t total = 0;
  IntVec extended = prefix;
  extended.resize(level + 1);
  for (std::int64_t v = hull.lo; v <= hull.hi; ++v) {
    extended[level] = v;
    total += count_with_prefix(extended, level + 1);
  }
  return total;
}

std::int64_t Domain::count() const {
  if (pieces_.empty()) return 0;
  if (!count_cache_) count_cache_ = count_with_prefix(IntVec{}, 0);
  return *count_cache_;
}

std::int64_t Domain::lex_rank(const IntVec& point) const {
  if (pieces_.empty()) return 0;
  if (point.size() != dim()) throw Error("Domain::lex_rank dim mismatch");
  std::int64_t rank = 0;
  IntVec prefix;
  for (std::size_t level = 0; level + 1 < dim(); ++level) {
    const Interval hull = level_hull(prefix, level);
    if (hull.empty()) return rank;
    prefix.resize(level + 1);
    // Count complete slices with coordinate < point[level].
    const std::int64_t last_full = std::min(hull.hi, point[level] - 1);
    for (std::int64_t v = hull.lo; v <= last_full; ++v) {
      prefix[level] = v;
      rank += count_with_prefix(prefix, level + 1);
    }
    if (point[level] < hull.lo || point[level] > hull.hi) return rank;
    prefix[level] = point[level];
  }
  // Innermost level: count row points strictly below point.back().
  for (const Interval& iv : row_intervals(prefix)) {
    if (iv.hi < point.back()) {
      rank += iv.size();
    } else if (iv.lo < point.back()) {
      rank += point.back() - iv.lo;
    }
  }
  return rank;
}

std::optional<IntVec> Domain::lex_min() const {
  if (pieces_.empty()) return std::nullopt;
  LexCursor cursor(*this);
  if (!cursor.valid()) return std::nullopt;
  return cursor.point();
}

std::optional<IntVec> Domain::lex_max() const {
  if (pieces_.empty()) return std::nullopt;
  // Walk levels from the outermost, always taking the greatest feasible
  // value (mirror image of LexCursor's descent).
  IntVec point(dim(), 0);
  const std::function<bool(std::size_t)> descend =
      [&](std::size_t level) -> bool {
    if (level == dim() - 1) {
      const IntVec prefix(point.begin(), point.end() - 1);
      const std::vector<Interval> row = row_intervals(prefix);
      if (row.empty()) return false;
      point.back() = row.back().hi;
      return true;
    }
    const IntVec prefix(point.begin(), point.begin() + level);
    const Interval hull = level_hull(prefix, level);
    if (hull.empty()) return false;
    for (std::int64_t v = hull.hi; v >= hull.lo; --v) {
      point[level] = v;
      if (descend(level + 1)) return true;
    }
    return false;
  };
  if (!descend(0)) return std::nullopt;
  return point;
}

void Domain::for_each(const std::function<void(const IntVec&)>& visit) const {
  if (pieces_.empty()) return;
  for (LexCursor cursor(*this); cursor.valid(); cursor.advance()) {
    visit(cursor.point());
  }
}

bool Domain::as_single_box(IntVec* lo, IntVec* hi) const {
  return pieces_.size() == 1 && pieces_.front().as_box(lo, hi);
}

std::string Domain::to_string() const {
  if (pieces_.empty()) return "{}";
  std::string out;
  for (std::size_t i = 0; i < pieces_.size(); ++i) {
    if (i > 0) out += " U ";
    out += pieces_[i].to_string();
  }
  return out;
}

Domain::LexCursor::LexCursor(const Domain& domain) : domain_(&domain) {
  if (domain.pieces_.empty()) return;
  const std::size_t m = domain.dim();
  point_.assign(m, 0);
  level_hull_.assign(m > 0 ? m - 1 : 0, Interval{});
  valid_ = descend(0);
}

bool Domain::LexCursor::descend(std::size_t level) {
  const std::size_t m = domain_->dim();
  if (level == m - 1) {
    const IntVec prefix(point_.begin(), point_.end() - 1);
    row_ = domain_->row_intervals(prefix);
    if (row_.empty()) return false;
    row_index_ = 0;
    point_.back() = row_.front().lo;
    return true;
  }
  const IntVec prefix(point_.begin(), point_.begin() + level);
  const Interval hull = domain_->level_hull(prefix, level);
  if (hull.empty()) return false;
  level_hull_[level] = hull;
  for (std::int64_t v = hull.lo; v <= hull.hi; ++v) {
    point_[level] = v;
    if (descend(level + 1)) return true;
  }
  return false;
}

bool Domain::LexCursor::advance_level(std::size_t level) {
  const Interval hull = level_hull_[level];
  for (std::int64_t v = point_[level] + 1; v <= hull.hi; ++v) {
    point_[level] = v;
    if (descend(level + 1)) return true;
  }
  if (level == 0) return false;
  return advance_level(level - 1);
}

void Domain::LexCursor::advance() {
  if (!valid_) return;
  const std::size_t m = domain_->dim();
  // Move within the current row first.
  if (point_.back() < row_[row_index_].hi) {
    ++point_.back();
    return;
  }
  if (row_index_ + 1 < row_.size()) {
    ++row_index_;
    point_.back() = row_[row_index_].lo;
    return;
  }
  // Row exhausted: advance an outer coordinate.
  if (m == 1) {
    valid_ = false;
    return;
  }
  valid_ = advance_level(m - 2);
}

}  // namespace nup::poly
