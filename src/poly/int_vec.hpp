#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nup::poly {

/// Integer point / vector on a multi-dimensional grid. Index 0 is the
/// outermost loop dimension, the last index the innermost (Definition 1).
using IntVec = std::vector<std::int64_t>;

/// Element-wise a + b. Requires equal dimensionality.
IntVec add(const IntVec& a, const IntVec& b);

/// Element-wise a - b. Requires equal dimensionality.
IntVec sub(const IntVec& a, const IntVec& b);

/// Element-wise negation.
IntVec negate(const IntVec& a);

/// Three-way lexicographic comparison: negative if a <_lex b, zero if equal,
/// positive if a >_lex b (Definition 2: dimension 0 is most significant).
int lex_compare(const IntVec& a, const IntVec& b);

/// a <_lex b.
bool lex_less(const IntVec& a, const IntVec& b);

/// True if `a` is the zero vector.
bool is_zero(const IntVec& a);

/// Renders as "(a0, a1, ...)".
std::string to_string(const IntVec& a);

}  // namespace nup::poly
