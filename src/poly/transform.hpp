#pragma once

#include <cstdint>
#include <vector>

#include "poly/domain.hpp"
#include "poly/int_vec.hpp"

namespace nup::poly {

/// Unimodular affine loop transformation i' = T*i + shift with |det T|=1,
/// the class used by polyhedral frameworks ([15] in the paper) to skew,
/// interchange, or reverse loop nests before memory-access optimization.
/// Applying one to a stencil preserves the stencil property: a reference
/// with offset f becomes one with offset T*f in the transformed space.
struct UnimodularTransform {
  /// Row-major m x m matrix.
  std::vector<IntVec> rows;
  IntVec shift;

  std::size_t dim() const { return rows.size(); }

  IntVec apply(const IntVec& point) const;

  /// T*f (no shift): how a constant reuse offset transforms.
  IntVec apply_offset(const IntVec& offset) const;
};

UnimodularTransform identity_transform(std::size_t dim);

/// i'[dst] = i[dst] + factor * i[src]; all other coordinates unchanged.
UnimodularTransform skew(std::size_t dim, std::size_t src, std::size_t dst,
                         std::int64_t factor);

/// Swaps coordinates a and b.
UnimodularTransform interchange(std::size_t dim, std::size_t a,
                                std::size_t b);

/// Negates one coordinate (loop reversal).
UnimodularTransform reversal(std::size_t dim, std::size_t axis);

/// Composition: (a o b)(i) = a(b(i)).
UnimodularTransform compose(const UnimodularTransform& a,
                            const UnimodularTransform& b);

/// Determinant of T (must be +-1 for a valid unimodular transform).
std::int64_t determinant(const UnimodularTransform& t);

/// Inverse transform (integral because |det| = 1). Throws otherwise.
UnimodularTransform inverse(const UnimodularTransform& t);

/// Image of a domain: { T*x + shift : x in domain }.
Domain apply(const UnimodularTransform& t, const Domain& domain);

}  // namespace nup::poly
