#pragma once

#include <cstdint>
#include <string>

#include "poly/int_vec.hpp"

namespace nup::poly {

/// Affine expression c0*x0 + c1*x1 + ... + constant over grid coordinates.
struct AffineExpr {
  IntVec coeffs;
  std::int64_t constant = 0;

  AffineExpr() = default;
  AffineExpr(IntVec c, std::int64_t k) : coeffs(std::move(c)), constant(k) {}

  std::size_t dim() const { return coeffs.size(); }

  std::int64_t evaluate(const IntVec& point) const;

  /// Expression over the translated space: if g(x) = f(x - t), then
  /// evaluating g at x equals evaluating f at x - t.
  AffineExpr translated(const IntVec& t) const;

  std::string to_string() const;
};

/// Linear inequality `expr >= 0` (every polyhedron constraint is normalized
/// to this form; equalities are expressed as a pair of inequalities).
struct Constraint {
  AffineExpr expr;

  bool satisfied(const IntVec& point) const { return expr.evaluate(point) >= 0; }
  std::size_t dim() const { return expr.dim(); }
  std::string to_string() const { return expr.to_string() + " >= 0"; }
};

/// xk - lo >= 0, i.e. xk >= lo.
Constraint lower_bound(std::size_t dim, std::size_t axis, std::int64_t lo);

/// hi - xk >= 0, i.e. xk <= hi.
Constraint upper_bound(std::size_t dim, std::size_t axis, std::int64_t hi);

/// General constraint sum(coeffs[i]*xi) + constant >= 0.
Constraint make_constraint(IntVec coeffs, std::int64_t constant);

}  // namespace nup::poly
