#include "poly/reuse.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nup::poly {

namespace {

/// Recursively enumerates feasible outer prefixes (levels 0..dim-2) in
/// lexicographic order, recording each row's prefix and cumulative count.
void build_rows(const Domain& domain, IntVec& prefix, std::size_t level,
                std::vector<IntVec>& row_prefixes,
                std::vector<std::int64_t>& cumulative, std::int64_t& total) {
  if (level == domain.dim() - 1) {
    std::int64_t row_count = 0;
    for (const Interval& iv : domain.row_intervals(prefix)) {
      row_count += iv.size();
    }
    if (row_count > 0) {
      row_prefixes.push_back(prefix);
      cumulative.push_back(total);
      total += row_count;
    }
    return;
  }
  const Interval hull = domain.level_hull(prefix, level);
  if (hull.empty()) return;
  prefix.resize(level + 1);
  for (std::int64_t v = hull.lo; v <= hull.hi; ++v) {
    prefix[level] = v;
    build_rows(domain, prefix, level + 1, row_prefixes, cumulative, total);
  }
  prefix.resize(level);
}

bool prefix_lex_less(const IntVec& a, const IntVec& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

}  // namespace

RankOracle::RankOracle(const Domain& domain) : domain_(domain) {
  if (!domain_.has_pieces()) return;
  IntVec prefix;
  build_rows(domain_, prefix, 0, row_prefixes_, cumulative_, total_);
}

std::int64_t RankOracle::rank(const IntVec& p) const {
  if (row_prefixes_.empty()) return 0;
  if (p.size() != domain_.dim()) throw Error("RankOracle::rank dim mismatch");
  const IntVec outer(p.begin(), p.end() - 1);
  // First row with prefix >= outer.
  const auto it = std::lower_bound(row_prefixes_.begin(), row_prefixes_.end(),
                                   outer, prefix_lex_less);
  if (it == row_prefixes_.end()) return total_;
  const std::size_t idx = static_cast<std::size_t>(it - row_prefixes_.begin());
  std::int64_t result = cumulative_[idx];
  if (*it == outer) {
    for (const Interval& iv : domain_.row_intervals(outer)) {
      if (iv.hi < p.back()) {
        result += iv.size();
      } else if (iv.lo < p.back()) {
        result += p.back() - iv.lo;
      }
    }
  }
  return result;
}

std::int64_t RankOracle::rank_inclusive(const IntVec& p) const {
  return rank(p) + (domain_.has_pieces() && domain_.contains(p) ? 1 : 0);
}

std::int64_t reuse_distance_at(const Domain& data, const IntVec& iteration,
                               const IntVec& f_from, const IntVec& f_to) {
  const RankOracle oracle(data);
  return oracle.rank_inclusive(add(iteration, f_from)) -
         oracle.rank_inclusive(add(iteration, f_to));
}

std::int64_t box_linearized_distance(const IntVec& lo, const IntVec& hi,
                                     const IntVec& r) {
  if (lo.size() != hi.size() || lo.size() != r.size()) {
    throw Error("box_linearized_distance dimension mismatch");
  }
  std::int64_t stride = 1;
  std::int64_t distance = 0;
  for (std::size_t d = r.size(); d-- > 0;) {
    distance += r[d] * stride;
    stride *= hi[d] - lo[d] + 1;
  }
  return distance;
}

ReuseResult max_reuse_distance(const Domain& iter, const Domain& data,
                               const IntVec& f_from, const IntVec& f_to,
                               const ReuseOptions& options) {
  ReuseResult result;
  IntVec lo;
  IntVec hi;
  if (data.as_single_box(&lo, &hi)) {
    const std::int64_t distance =
        box_linearized_distance(lo, hi, sub(f_from, f_to));
    result.max_distance = distance;
    result.min_distance = distance;
    result.argmax_iteration = iter.lex_min().value_or(IntVec{});
    result.used_box_fast_path = true;
    return result;
  }

  const std::int64_t iterations = iter.count();
  if (iterations > options.exact_iteration_limit) {
    throw Error(
        "max_reuse_distance: non-box data domain with " +
        std::to_string(iterations) +
        " iterations exceeds the exact-scan limit; raise "
        "ReuseOptions::exact_iteration_limit or use the box approximation");
  }

  const RankOracle oracle(data);
  bool first = true;
  for (Domain::LexCursor cursor(iter); cursor.valid(); cursor.advance()) {
    const IntVec& i = cursor.point();
    const std::int64_t d = oracle.rank_inclusive(add(i, f_from)) -
                           oracle.rank_inclusive(add(i, f_to));
    if (first || d > result.max_distance) {
      result.max_distance = d;
      result.argmax_iteration = i;
    }
    if (first || d < result.min_distance) result.min_distance = d;
    first = false;
  }
  if (first) throw Error("max_reuse_distance: empty iteration domain");
  return result;
}

}  // namespace nup::poly
