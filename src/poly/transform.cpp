#include "poly/transform.hpp"

#include "util/error.hpp"

namespace nup::poly {

namespace {

void require_square(const UnimodularTransform& t) {
  for (const IntVec& row : t.rows) {
    if (row.size() != t.rows.size()) {
      throw Error("UnimodularTransform: matrix is not square");
    }
  }
  if (t.shift.size() != t.rows.size()) {
    throw Error("UnimodularTransform: shift dimension mismatch");
  }
}

std::int64_t det_rec(const std::vector<IntVec>& m) {
  const std::size_t n = m.size();
  if (n == 1) return m[0][0];
  if (n == 2) return m[0][0] * m[1][1] - m[0][1] * m[1][0];
  std::int64_t det = 0;
  for (std::size_t col = 0; col < n; ++col) {
    if (m[0][col] == 0) continue;
    std::vector<IntVec> minor;
    minor.reserve(n - 1);
    for (std::size_t r = 1; r < n; ++r) {
      IntVec row;
      row.reserve(n - 1);
      for (std::size_t c = 0; c < n; ++c) {
        if (c != col) row.push_back(m[r][c]);
      }
      minor.push_back(std::move(row));
    }
    const std::int64_t sign = col % 2 == 0 ? 1 : -1;
    det += sign * m[0][col] * det_rec(minor);
  }
  return det;
}

/// Adjugate (transposed cofactor matrix).
std::vector<IntVec> adjugate(const std::vector<IntVec>& m) {
  const std::size_t n = m.size();
  std::vector<IntVec> adj(n, IntVec(n, 0));
  if (n == 1) {
    adj[0][0] = 1;
    return adj;
  }
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      std::vector<IntVec> minor;
      minor.reserve(n - 1);
      for (std::size_t mr = 0; mr < n; ++mr) {
        if (mr == r) continue;
        IntVec row;
        row.reserve(n - 1);
        for (std::size_t mc = 0; mc < n; ++mc) {
          if (mc != c) row.push_back(m[mr][mc]);
        }
        minor.push_back(std::move(row));
      }
      const std::int64_t sign = (r + c) % 2 == 0 ? 1 : -1;
      adj[c][r] = sign * det_rec(minor);  // note the transpose
    }
  }
  return adj;
}

IntVec mat_vec(const std::vector<IntVec>& m, const IntVec& v) {
  IntVec out(m.size(), 0);
  for (std::size_t r = 0; r < m.size(); ++r) {
    for (std::size_t c = 0; c < v.size(); ++c) out[r] += m[r][c] * v[c];
  }
  return out;
}

}  // namespace

IntVec UnimodularTransform::apply(const IntVec& point) const {
  return add(mat_vec(rows, point), shift);
}

IntVec UnimodularTransform::apply_offset(const IntVec& offset) const {
  return mat_vec(rows, offset);
}

UnimodularTransform identity_transform(std::size_t dim) {
  UnimodularTransform t;
  t.rows.assign(dim, IntVec(dim, 0));
  for (std::size_t d = 0; d < dim; ++d) t.rows[d][d] = 1;
  t.shift.assign(dim, 0);
  return t;
}

UnimodularTransform skew(std::size_t dim, std::size_t src, std::size_t dst,
                         std::int64_t factor) {
  if (src == dst) throw Error("skew: src and dst must differ");
  UnimodularTransform t = identity_transform(dim);
  t.rows[dst][src] = factor;
  return t;
}

UnimodularTransform interchange(std::size_t dim, std::size_t a,
                                std::size_t b) {
  UnimodularTransform t = identity_transform(dim);
  std::swap(t.rows[a], t.rows[b]);
  return t;
}

UnimodularTransform reversal(std::size_t dim, std::size_t axis) {
  UnimodularTransform t = identity_transform(dim);
  t.rows[axis][axis] = -1;
  return t;
}

UnimodularTransform compose(const UnimodularTransform& a,
                            const UnimodularTransform& b) {
  require_square(a);
  require_square(b);
  if (a.dim() != b.dim()) throw Error("compose: dimension mismatch");
  UnimodularTransform out;
  const std::size_t n = a.dim();
  out.rows.assign(n, IntVec(n, 0));
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      for (std::size_t k = 0; k < n; ++k) {
        out.rows[r][c] += a.rows[r][k] * b.rows[k][c];
      }
    }
  }
  out.shift = add(mat_vec(a.rows, b.shift), a.shift);
  return out;
}

std::int64_t determinant(const UnimodularTransform& t) {
  require_square(t);
  return det_rec(t.rows);
}

UnimodularTransform inverse(const UnimodularTransform& t) {
  require_square(t);
  const std::int64_t det = det_rec(t.rows);
  if (det != 1 && det != -1) {
    throw Error("inverse: transform is not unimodular (det = " +
                std::to_string(det) + ")");
  }
  UnimodularTransform out;
  out.rows = adjugate(t.rows);
  if (det == -1) {
    for (IntVec& row : out.rows) {
      for (std::int64_t& v : row) v = -v;
    }
  }
  // x = Tinv * (x' - s) = Tinv*x' - Tinv*s.
  out.shift = negate(mat_vec(out.rows, t.shift));
  return out;
}

Domain apply(const UnimodularTransform& t, const Domain& domain) {
  require_square(t);
  const UnimodularTransform inv = inverse(t);
  Domain out;
  for (const Polyhedron& piece : domain.pieces()) {
    Polyhedron mapped(piece.dim());
    for (const Constraint& c : piece.constraints()) {
      // f(x) >= 0 with x = Tinv*x' + inv.shift:
      // coeffs' = c^T * Tinv, const' = c . inv.shift + k.
      IntVec coeffs(piece.dim(), 0);
      for (std::size_t col = 0; col < piece.dim(); ++col) {
        for (std::size_t row = 0; row < piece.dim(); ++row) {
          coeffs[col] += c.expr.coeffs[row] * inv.rows[row][col];
        }
      }
      std::int64_t constant = c.expr.constant;
      for (std::size_t row = 0; row < piece.dim(); ++row) {
        constant += c.expr.coeffs[row] * inv.shift[row];
      }
      mapped.add(make_constraint(std::move(coeffs), constant));
    }
    out.add_piece(std::move(mapped));
  }
  return out;
}

}  // namespace nup::poly
