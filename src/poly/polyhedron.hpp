#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "poly/affine.hpp"
#include "poly/int_vec.hpp"

namespace nup::poly {

/// Closed integer interval [lo, hi]; empty when lo > hi.
struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = -1;

  bool empty() const { return lo > hi; }
  std::int64_t size() const { return empty() ? 0 : hi - lo + 1; }
  bool contains(std::int64_t v) const { return v >= lo && v <= hi; }
};

/// Intersection of two intervals.
Interval intersect(const Interval& a, const Interval& b);

/// Merges possibly-overlapping intervals into a sorted disjoint list.
std::vector<Interval> merge_intervals(std::vector<Interval> intervals);

/// Convex integer polyhedron { x in Z^m : C x + b >= 0 } (Definition 1).
/// Provides per-level coordinate bounds via Fourier-Motzkin elimination so
/// integer points can be enumerated in lexicographic order: bounds for outer
/// levels are conservative (rational relaxation), the innermost level is
/// exact once all outer coordinates are fixed.
class Polyhedron {
 public:
  explicit Polyhedron(std::size_t dim);

  /// Axis-aligned box lo <= x <= hi (inclusive).
  static Polyhedron box(const IntVec& lo, const IntVec& hi);

  void add(Constraint c);

  std::size_t dim() const { return dim_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  bool contains(const IntVec& point) const;

  /// The translated set { x + t : x in this }.
  Polyhedron translated(const IntVec& t) const;

  /// Conjunction of the two constraint systems.
  Polyhedron intersected(const Polyhedron& other) const;

  /// Bounds for coordinate `level` given fixed values prefix[0..level) for
  /// the outer coordinates. Conservative for level < dim()-1; exact for the
  /// innermost level. An empty interval means no point with this prefix.
  Interval level_bounds(const IntVec& prefix, std::size_t level) const;

  /// Global (conservative) range of one axis, all other axes free.
  Interval axis_range(std::size_t axis) const;

  /// If this polyhedron's constraints are exactly axis bounds, returns the
  /// box corners. Used by fast paths; a box-shaped system written with
  /// non-bound constraints is simply not detected, which is safe.
  bool as_box(IntVec* lo, IntVec* hi) const;

  std::string to_string() const;

 private:
  const std::vector<Constraint>& eliminated_system(std::size_t level) const;

  std::size_t dim_;
  std::vector<Constraint> constraints_;
  /// eliminated_[k] holds constraints mentioning only dims [0, k]; built
  /// lazily by eliminating dims from innermost outward.
  mutable std::vector<std::vector<Constraint>> eliminated_;
  mutable bool eliminated_built_ = false;
};

}  // namespace nup::poly
