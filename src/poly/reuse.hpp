#pragma once

#include <cstdint>
#include <vector>

#include "poly/domain.hpp"
#include "poly/int_vec.hpp"

namespace nup::poly {

/// Precomputed lexicographic-rank index over a domain. Build cost is one
/// pass over the rows (innermost slices); each rank query is then
/// O(log rows + pieces), which makes exact max-reuse-distance scans over
/// millions of iterations practical.
class RankOracle {
 public:
  explicit RankOracle(const Domain& domain);

  /// Number of domain points lexicographically strictly less than `p`.
  std::int64_t rank(const IntVec& p) const;

  /// Number of domain points lexicographically <= `p`.
  std::int64_t rank_inclusive(const IntVec& p) const;

  std::int64_t total() const { return total_; }

 private:
  Domain domain_;  // owned copy: oracles outlive temporaries safely
  std::vector<IntVec> row_prefixes_;        // sorted lexicographically
  std::vector<std::int64_t> cumulative_;    // points strictly before row k
  std::int64_t total_ = 0;
};

/// Reuse distance at one loop iteration (Definition 8, restated over the
/// iteration domain): the number of data-domain elements g with
/// i + f_to <_lex g <=_lex i + f_from. `f_from` is the data-access offset of
/// the earlier reference (lexicographically greater), `f_to` of the later.
std::int64_t reuse_distance_at(const Domain& data, const IntVec& iteration,
                               const IntVec& f_from, const IntVec& f_to);

/// Closed-form distance on a box data domain [lo, hi]: the row-major
/// linearization of the reuse-distance vector r = f_from - f_to. On a box
/// the distance is the same at every interior iteration, so this equals the
/// maximum (Section 2.3's "2048" example).
std::int64_t box_linearized_distance(const IntVec& lo, const IntVec& hi,
                                     const IntVec& r);

struct ReuseOptions {
  /// Maximum iteration-domain size for the exact (enumerating) path; larger
  /// non-box problems raise an Error instead of silently sampling.
  std::int64_t exact_iteration_limit = 5'000'000;
};

struct ReuseResult {
  std::int64_t max_distance = 0;
  std::int64_t min_distance = 0;
  IntVec argmax_iteration;       // an iteration attaining max_distance
  bool used_box_fast_path = false;
};

/// Maximum reuse distance from the reference with offset `f_from` to the one
/// with `f_to` over all iterations (Definition 9). Uses the O(1) box closed
/// form when the data domain is a single box, otherwise an exact scan of the
/// iteration domain backed by a RankOracle.
ReuseResult max_reuse_distance(const Domain& iter, const Domain& data,
                               const IntVec& f_from, const IntVec& f_to,
                               const ReuseOptions& options = {});

}  // namespace nup::poly
