#include "stencil/boundary.hpp"

#include "util/error.hpp"

namespace nup::stencil {

const char* to_string(BoundaryPolicy policy) {
  switch (policy) {
    case BoundaryPolicy::kNone:
      return "none";
    case BoundaryPolicy::kShrink:
      return "shrink";
    case BoundaryPolicy::kClamp:
      return "clamp";
    case BoundaryPolicy::kWrap:
      return "wrap";
    case BoundaryPolicy::kConstant:
      return "constant";
  }
  return "?";
}

std::optional<BoundaryPolicy> boundary_from_string(const std::string& name) {
  if (name == "shrink") return BoundaryPolicy::kShrink;
  if (name == "clamp") return BoundaryPolicy::kClamp;
  if (name == "wrap") return BoundaryPolicy::kWrap;
  if (name == "constant") return BoundaryPolicy::kConstant;
  return std::nullopt;
}

poly::IntVec map_into_box(const poly::IntVec& h, const poly::IntVec& lo,
                          const poly::IntVec& hi, BoundaryPolicy policy) {
  poly::IntVec mapped = h;
  for (std::size_t d = 0; d < h.size(); ++d) {
    if (h[d] >= lo[d] && h[d] <= hi[d]) continue;
    switch (policy) {
      case BoundaryPolicy::kClamp:
        mapped[d] = h[d] < lo[d] ? lo[d] : hi[d];
        break;
      case BoundaryPolicy::kWrap: {
        const std::int64_t extent = hi[d] - lo[d] + 1;
        std::int64_t r = (h[d] - lo[d]) % extent;
        if (r < 0) r += extent;
        mapped[d] = lo[d] + r;
        break;
      }
      default:
        throw Error("map_into_box: policy '" +
                    std::string(to_string(policy)) +
                    "' does not remap coordinates");
    }
  }
  return mapped;
}

}  // namespace nup::stencil
