#include "stencil/golden.hpp"

#include "poly/domain.hpp"

namespace nup::stencil {

double synthetic_value(std::uint64_t seed, std::size_t array_idx,
                       const poly::IntVec& h) {
  // SplitMix64-style avalanche over the coordinates; any change to seed,
  // array index, or one coordinate flips roughly half the output bits.
  std::uint64_t x = seed ^ (0x9e3779b97f4a7c15ull * (array_idx + 1));
  for (std::int64_t c : h) {
    x += static_cast<std::uint64_t>(c) + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
  }
  return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
}

GoldenRun run_golden(const StencilProgram& program, std::uint64_t seed) {
  GoldenRun run;
  run.outputs.reserve(
      static_cast<std::size_t>(program.iteration().count()));
  std::vector<double> gathered;
  gathered.reserve(program.total_references());
  const KernelFn& kernel = program.kernel();

  for (poly::Domain::LexCursor cursor(program.iteration()); cursor.valid();
       cursor.advance()) {
    const poly::IntVec& i = cursor.point();
    gathered.clear();
    for (std::size_t a = 0; a < program.inputs().size(); ++a) {
      for (const ArrayReference& ref : program.inputs()[a].refs) {
        gathered.push_back(
            synthetic_value(seed, a, poly::add(i, ref.offset)));
      }
    }
    run.outputs.push_back(kernel(gathered));
  }
  return run;
}

}  // namespace nup::stencil
