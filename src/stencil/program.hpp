#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "poly/domain.hpp"
#include "poly/int_vec.hpp"

namespace nup::stencil {

/// One read reference A[i + f] of a data array (Definition 4: the access
/// function of a stencil reference is the identity plus a constant offset).
struct ArrayReference {
  poly::IntVec offset;  // f_x

  /// Renders e.g. "A[i-1][j]" for offset (-1, 0).
  std::string to_string(const std::string& array,
                        const std::vector<std::string>& iter_names) const;
};

/// A data array together with all its stencil references (the stencil
/// window), in source order.
struct InputArray {
  std::string name;
  std::vector<ArrayReference> refs;
};

/// Combines the values gathered for one iteration -- flattened across
/// arrays then references, in source order -- into the output value.
using KernelFn = std::function<double(const std::vector<double>&)>;

/// Builds a KernelFn computing sum(weights[k] * values[k]).
KernelFn make_weighted_sum(std::vector<double> weights);

/// A complete stencil computation (Definition 4): an iteration domain, one
/// or more input arrays with constant-offset references, and a pointwise
/// kernel producing one output element per iteration.
class StencilProgram {
 public:
  StencilProgram(std::string name, poly::Domain iteration);

  /// Declares an input array with the given reference offsets (the stencil
  /// window). Offsets must match the iteration dimensionality and be
  /// pairwise distinct.
  void add_input(std::string array, std::vector<poly::IntVec> offsets);

  void set_output(std::string name) { output_ = std::move(name); }
  void set_kernel(KernelFn kernel) {
    kernel_ = std::move(kernel);
    weights_.clear();  // an opaque kernel carries no weight structure
  }

  /// Installs a weighted-sum kernel AND records the weights so backends can
  /// see the linear structure (the vector path evaluates W lanes of
  /// sum(w[k]*v[k]) directly instead of W opaque std::function calls).
  void set_weighted_sum(std::vector<double> weights) {
    weights_ = weights;
    kernel_ = make_weighted_sum(std::move(weights));
  }

  /// The weights when the kernel is a known weighted sum (installed via
  /// set_weighted_sum, or the lazy equal-weight default); empty for opaque
  /// kernels set through set_kernel.
  const std::vector<double>& weighted_sum_weights() const;

  const std::string& name() const { return name_; }
  const poly::Domain& iteration() const { return iteration_; }
  const std::vector<InputArray>& inputs() const { return inputs_; }
  const std::string& output_name() const { return output_; }
  std::size_t dim() const { return iteration_.dim(); }

  /// Total number of array references across all inputs: the original
  /// pipeline II before memory partitioning (Table 4's "Original II").
  std::size_t total_references() const;

  /// Kernel used for golden execution; defaults to an equal-weight sum.
  const KernelFn& kernel() const;

  /// D_Ax: the set of data elements touched by one reference (Definition 5).
  poly::Domain reference_domain(std::size_t array_idx,
                                std::size_t ref_idx) const;

  /// D_A: the union of all reference domains of one array (Definition 6).
  poly::Domain input_data_domain(std::size_t array_idx) const;

  /// The bounding box of D_A as a single-box domain. This is the "A[0..767]
  /// [0..1023]" representation the paper streams from external memory; the
  /// default FIFO-sizing rule is computed against it.
  poly::Domain data_domain_hull(std::size_t array_idx) const;

  /// Names i, j, k, ... (or x0.. for >3 dims) used when rendering code.
  std::vector<std::string> iteration_names() const;

  /// Renders Fig 1-style C code of the whole computation (for docs, tests,
  /// and the code generator round-trip).
  std::string to_c_code() const;

 private:
  std::string name_;
  poly::Domain iteration_;
  std::vector<InputArray> inputs_;
  std::string output_ = "B";
  KernelFn kernel_;  // empty until first use; defaults to equal-weight sum
  mutable KernelFn default_kernel_;
  /// Weights of the kernel when its linear structure is known; kept in sync
  /// by set_kernel / set_weighted_sum. Lazily filled with the equal-weight
  /// default alongside default_kernel_.
  mutable std::vector<double> weights_;
};

}  // namespace nup::stencil
