#include "stencil/program.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace nup::stencil {

namespace {

std::string subscript(const std::string& iter_name, std::int64_t offset) {
  if (offset == 0) return "[" + iter_name + "]";
  if (offset > 0) return "[" + iter_name + "+" + std::to_string(offset) + "]";
  return "[" + iter_name + std::to_string(offset) + "]";
}

}  // namespace

std::string ArrayReference::to_string(
    const std::string& array,
    const std::vector<std::string>& iter_names) const {
  if (iter_names.size() != offset.size()) {
    throw Error("ArrayReference::to_string name/offset size mismatch");
  }
  std::string out = array;
  for (std::size_t d = 0; d < offset.size(); ++d) {
    out += subscript(iter_names[d], offset[d]);
  }
  return out;
}

KernelFn make_weighted_sum(std::vector<double> weights) {
  return [weights = std::move(weights)](const std::vector<double>& values) {
    if (values.size() != weights.size()) {
      throw Error("weighted-sum kernel arity mismatch: got " +
                  std::to_string(values.size()) + " values for " +
                  std::to_string(weights.size()) + " weights");
    }
    // Canonical association: a left-to-right fused multiply-add chain.
    // std::fma is correctly rounded on every platform, so the kernel's
    // bits do not depend on compiler contraction flags -- which is what
    // lets the simulator's vectorized weighted-sum paths (scalar FMA,
    // AVX2+FMA) reproduce it exactly instead of merely closely.
    double acc = 0.0;
    for (std::size_t k = 0; k < values.size(); ++k) {
      acc = std::fma(weights[k], values[k], acc);
    }
    return acc;
  };
}

StencilProgram::StencilProgram(std::string name, poly::Domain iteration)
    : name_(std::move(name)), iteration_(std::move(iteration)) {
  if (!iteration_.has_pieces()) {
    throw NotStencilError("StencilProgram '" + name_ +
                          "': empty iteration domain");
  }
}

void StencilProgram::add_input(std::string array,
                               std::vector<poly::IntVec> offsets) {
  if (offsets.empty()) {
    throw NotStencilError("input array '" + array + "' has no references");
  }
  InputArray input;
  input.name = std::move(array);
  for (poly::IntVec& f : offsets) {
    if (f.size() != dim()) {
      throw NotStencilError(
          "reference offset dimensionality " + std::to_string(f.size()) +
          " does not match iteration dimensionality " + std::to_string(dim()));
    }
    for (const ArrayReference& existing : input.refs) {
      if (existing.offset == f) {
        throw NotStencilError("duplicate reference offset " +
                              poly::to_string(f) + " on array '" +
                              input.name + "'");
      }
    }
    input.refs.push_back(ArrayReference{std::move(f)});
  }
  inputs_.push_back(std::move(input));
}

std::size_t StencilProgram::total_references() const {
  std::size_t n = 0;
  for (const InputArray& input : inputs_) n += input.refs.size();
  return n;
}

const KernelFn& StencilProgram::kernel() const {
  if (kernel_) return kernel_;
  if (!default_kernel_) {
    const std::size_t n = total_references();
    std::vector<double> weights(n,
                                n == 0 ? 0.0 : 1.0 / static_cast<double>(n));
    weights_ = weights;
    default_kernel_ = make_weighted_sum(std::move(weights));
  }
  return default_kernel_;
}

const std::vector<double>& StencilProgram::weighted_sum_weights() const {
  if (!kernel_ && !default_kernel_) kernel();  // materialize the default
  return weights_;
}

poly::Domain StencilProgram::reference_domain(std::size_t array_idx,
                                              std::size_t ref_idx) const {
  const InputArray& input = inputs_.at(array_idx);
  return iteration_.translated(input.refs.at(ref_idx).offset);
}

poly::Domain StencilProgram::input_data_domain(std::size_t array_idx) const {
  const InputArray& input = inputs_.at(array_idx);
  poly::Domain out;
  for (const ArrayReference& ref : input.refs) {
    for (const poly::Polyhedron& piece : iteration_.pieces()) {
      out.add_piece(piece.translated(ref.offset));
    }
  }
  return out;
}

poly::Domain StencilProgram::data_domain_hull(std::size_t array_idx) const {
  const InputArray& input = inputs_.at(array_idx);
  poly::IntVec lo(dim(), 0);
  poly::IntVec hi(dim(), 0);
  std::vector<bool> initialized(dim(), false);
  for (const poly::Polyhedron& piece : iteration_.pieces()) {
    for (std::size_t d = 0; d < dim(); ++d) {
      const poly::Interval range = piece.axis_range(d);
      if (range.empty()) continue;
      for (const ArrayReference& ref : input.refs) {
        const std::int64_t piece_lo = range.lo + ref.offset[d];
        const std::int64_t piece_hi = range.hi + ref.offset[d];
        if (!initialized[d]) {
          lo[d] = piece_lo;
          hi[d] = piece_hi;
          initialized[d] = true;
        } else {
          lo[d] = std::min(lo[d], piece_lo);
          hi[d] = std::max(hi[d], piece_hi);
        }
      }
    }
  }
  for (bool init : initialized) {
    if (!init) throw Error("data_domain_hull: degenerate iteration domain");
  }
  return poly::Domain::box(lo, hi);
}

std::vector<std::string> StencilProgram::iteration_names() const {
  static const char* kNames[] = {"i", "j", "k"};
  std::vector<std::string> names;
  names.reserve(dim());
  for (std::size_t d = 0; d < dim(); ++d) {
    names.push_back(d < 3 ? kNames[d] : "x" + std::to_string(d));
  }
  return names;
}

std::string StencilProgram::to_c_code() const {
  const std::vector<std::string> names = iteration_names();
  std::string out;
  std::string indent;

  poly::IntVec lo;
  poly::IntVec hi;
  if (iteration_.as_single_box(&lo, &hi)) {
    for (std::size_t d = 0; d < dim(); ++d) {
      out += indent + "for (int " + names[d] + " = " + std::to_string(lo[d]) +
             "; " + names[d] + " <= " + std::to_string(hi[d]) + "; " +
             names[d] + "++)\n";
      indent += "  ";
    }
  } else {
    out += "// iteration domain: " + iteration_.to_string() + "\n";
    out += "for (point (" ;
    for (std::size_t d = 0; d < dim(); ++d) {
      if (d > 0) out += ", ";
      out += names[d];
    }
    out += ") in domain)\n";
    indent = "  ";
  }

  std::string lhs = output_;
  for (const std::string& n : names) lhs += "[" + n + "]";
  out += indent + lhs + " = kernel(";
  bool first = true;
  for (const InputArray& input : inputs_) {
    for (const ArrayReference& ref : input.refs) {
      if (!first) out += ", ";
      out += ref.to_string(input.name, names);
      first = false;
    }
  }
  out += ");\n";
  return out;
}

}  // namespace nup::stencil
