#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stencil/program.hpp"

namespace nup::stencil {

/// The benchmark suite of the paper (Section 5.1): medical-imaging and
/// vision stencil kernels taken from the memory-partitioning literature
/// [7][8]. Exact window shapes for RICIAN/BICUBIC/SOBEL are reconstructions
/// documented in DESIGN.md Section 5 (the published table lost its numeric
/// columns); every generator below states its window in the program name.

/// DENOISE: 5-point von Neumann window on a rows x cols grid (Fig 1/2).
StencilProgram denoise_2d(std::int64_t rows = 768, std::int64_t cols = 1024);

/// RICIAN: 4-point von Neumann ring (no center), Fig 6(b)-class window for
/// which uniform linear partitioning needs 5 banks.
StencilProgram rician_2d(std::int64_t rows = 768, std::int64_t cols = 1024);

/// SOBEL: 8-point 3x3 window without the center (both Sobel gradient
/// kernels have zero center weight).
StencilProgram sobel_2d(std::int64_t rows = 768, std::int64_t cols = 1024);

/// BICUBIC: 4 taps at stride 2 along the row (x2 upsampling filter),
/// Fig 6(a)-class window for which uniform partitioning needs 5 banks.
StencilProgram bicubic_2d(std::int64_t rows = 768, std::int64_t cols = 1024);

/// DENOISE_3D: 7-point von Neumann window on a 3-D grid.
StencilProgram denoise_3d(std::int64_t planes = 96, std::int64_t rows = 128,
                          std::int64_t cols = 128);

/// SEGMENTATION_3D: 19-point window (3x3x3 cube minus the 8 corners),
/// Fig 6(c).
StencilProgram segmentation_3d(std::int64_t planes = 96,
                               std::int64_t rows = 128,
                               std::int64_t cols = 128);

/// All six Table 4/5 benchmarks at their default sizes, in table order.
std::vector<StencilProgram> paper_benchmarks();

/// Extra kernels used by examples and tests ----------------------------

/// JACOBI_2D: 5-point window including the center plus axis neighbours at
/// distance 1 (classic relaxation sweep).
StencilProgram jacobi_2d(std::int64_t rows = 256, std::int64_t cols = 256);

/// BLUR_3x3: dense 9-point window.
StencilProgram blur_2d(std::int64_t rows = 256, std::int64_t cols = 256);

/// HEAT_3D: 7-point window, small grid (quick tests).
StencilProgram heat_3d(std::int64_t planes = 16, std::int64_t rows = 24,
                       std::int64_t cols = 32);

/// Skewed-grid demo of Fig 9: a 5-point window over a parallelogram
/// iteration domain (rows of linearly growing start column), where the
/// reuse distance changes dynamically as execution advances.
StencilProgram skewed_demo(std::int64_t rows = 24, std::int64_t cols = 48);

/// Triangular-domain demo: iteration domain { 1 <= i <= rows-2,
/// 1 <= j <= i } exercising general polyhedral data filters (Fig 10).
StencilProgram triangular_demo(std::int64_t rows = 32);

/// LATTICE_4D: 9-point von Neumann window on a 4-D grid (e.g. 3-D space +
/// time batches). Nothing in the method is specific to 2/3 dimensions;
/// this kernel proves it.
StencilProgram lattice_4d(std::int64_t n0 = 6, std::int64_t n1 = 8,
                          std::int64_t n2 = 8, std::int64_t n3 = 10);

/// Iterative solver kernels (temporal blocking) -------------------------

/// JACOBI4_2D: 4-point von Neumann ring without the center -- the classic
/// Jacobi relaxation update, averaging the axis neighbours.
StencilProgram jacobi4_2d(std::int64_t rows = 96, std::int64_t cols = 128);

/// JACOBI8_2D: 8-point 3x3 ring without the center.
StencilProgram jacobi8_2d(std::int64_t rows = 96, std::int64_t cols = 128);

/// HEAT_2D: explicit-Euler heat-equation step, 5-point window with center
/// weight 1 - 4*alpha (alpha = 0.1) -- the canonical convergent sweep for
/// the temporal runner's residual monitor.
StencilProgram heat_2d(std::int64_t rows = 96, std::int64_t cols = 128);

/// LIFE_2D: Game of Life over a threshold grid -- an opaque 9-point kernel
/// counting neighbours above 0.5 and emitting 1.0 / 0.0 by the B3/S23
/// rule. Its natural topology is toroidal: pair with BoundaryPolicy::kWrap.
StencilProgram life_2d(std::int64_t rows = 48, std::int64_t cols = 64);

/// The iterative suite: the four kernels above plus the multi-sweep
/// DENOISE at a small grid, in that order.
std::vector<StencilProgram> iterative_benchmarks();

}  // namespace nup::stencil
