#pragma once

#include <optional>
#include <string>

#include "poly/int_vec.hpp"

namespace nup::stencil {

/// How a stencil read that falls outside the domain of a *computed* array
/// (a previous generation of an iterative solver, or a producer stage's
/// output) obtains its value. Generation 0 -- the off-chip input -- is
/// defined on the whole grid, so policies only ever apply to generations
/// >= 1.
enum class BoundaryPolicy {
  /// No out-of-domain reads are allowed: the consumer's window, translated
  /// over its iteration domain, must stay inside the producer's domain
  /// (stencil::check_stage_window). The temporal unroller realizes this by
  /// growing each earlier replica's domain by the window -- redundant halo
  /// compute instead of boundary values (Zohouri-style temporal blocking).
  kNone,

  /// Alias of kNone at the edge level, kept distinct so configs can name
  /// the intent: the chain shrinks toward the target domain.
  kShrink,

  /// Out-of-domain coordinates clamp per dimension to the nearest domain
  /// point (Neumann-like replicated edge).
  kClamp,

  /// Out-of-domain coordinates wrap modulo the domain extents (periodic /
  /// toroidal grid -- Game of Life's natural topology).
  kWrap,

  /// Out-of-domain reads return a fixed value (Dirichlet boundary).
  kConstant,
};

/// True for the policies that never produce an out-of-domain read.
inline bool is_containment_policy(BoundaryPolicy policy) {
  return policy == BoundaryPolicy::kNone || policy == BoundaryPolicy::kShrink;
}

const char* to_string(BoundaryPolicy policy);

/// Parses "shrink" / "clamp" / "wrap" / "constant" (CLI spelling);
/// nullopt on anything else.
std::optional<BoundaryPolicy> boundary_from_string(const std::string& name);

/// Maps `h` into the box [lo, hi] according to `policy`: clamp saturates
/// each coordinate, wrap takes it modulo the extent. Coordinates already
/// inside the box are returned unchanged. Precondition: policy is kClamp
/// or kWrap (the other policies never remap coordinates).
poly::IntVec map_into_box(const poly::IntVec& h, const poly::IntVec& lo,
                          const poly::IntVec& hi, BoundaryPolicy policy);

}  // namespace nup::stencil
