#include "stencil/fuse.hpp"

#include <map>

#include "util/error.hpp"

namespace nup::stencil {

StencilProgram fuse(const StencilProgram& first,
                    const StencilProgram& second) {
  if (first.inputs().size() != 1 || second.inputs().size() != 1) {
    throw NotStencilError("fuse: both stages must read a single array");
  }
  if (first.dim() != second.dim()) {
    throw NotStencilError("fuse: dimensionality mismatch");
  }
  const std::vector<ArrayReference>& w1 = first.inputs()[0].refs;
  const std::vector<ArrayReference>& w2 = second.inputs()[0].refs;

  // Every intermediate element second needs must be producible by first.
  for (const ArrayReference& g : w2) {
    bool inside = true;
    second.iteration().for_each([&](const poly::IntVec& i) {
      if (inside && !first.iteration().contains(poly::add(i, g.offset))) {
        inside = false;
      }
    });
    if (!inside) {
      throw NotStencilError(
          "fuse: reference " + poly::to_string(g.offset) +
          " of the second stage reaches outside the first stage's "
          "iteration domain");
    }
  }

  // Fused window: Minkowski sum, deduplicated; remember the slot of every
  // (g, f) pair.
  std::map<poly::IntVec, std::size_t> slot_of;
  std::vector<poly::IntVec> offsets;
  std::vector<std::vector<std::size_t>> pair_slots(w2.size());
  for (std::size_t g = 0; g < w2.size(); ++g) {
    pair_slots[g].reserve(w1.size());
    for (const ArrayReference& f : w1) {
      const poly::IntVec combined = poly::add(w2[g].offset, f.offset);
      const auto [it, inserted] =
          slot_of.emplace(combined, offsets.size());
      if (inserted) offsets.push_back(combined);
      pair_slots[g].push_back(it->second);
    }
  }

  StencilProgram fused(first.name() + "+" + second.name(),
                       second.iteration());
  fused.add_input(first.inputs()[0].name, offsets);
  fused.set_output(second.output_name());

  const KernelFn k1 = first.kernel();
  const KernelFn k2 = second.kernel();
  const std::size_t inner_arity = w1.size();
  fused.set_kernel([k1, k2, pair_slots,
                    inner_arity](const std::vector<double>& values) {
    std::vector<double> stage2_inputs(pair_slots.size());
    std::vector<double> gather(inner_arity);
    for (std::size_t g = 0; g < pair_slots.size(); ++g) {
      for (std::size_t f = 0; f < inner_arity; ++f) {
        gather[f] = values[pair_slots[g][f]];
      }
      stage2_inputs[g] = k1(gather);
    }
    return k2(stage2_inputs);
  });
  return fused;
}

}  // namespace nup::stencil
