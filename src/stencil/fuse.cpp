#include "stencil/fuse.hpp"

#include <map>

namespace nup::stencil {

namespace {

/// The arity rule of fuse(): a composable stage reads exactly one array.
void check_single_input(const StencilProgram& stage) {
  if (stage.inputs().size() != 1) {
    throw FuseArityError("fuse: stage '" + stage.name() + "' reads " +
                         std::to_string(stage.inputs().size()) +
                         " arrays; only single-input stages compose");
  }
}

}  // namespace

void check_stage_window(const StencilProgram& producer,
                        const StencilProgram& consumer,
                        std::size_t input_index) {
  if (producer.dim() != consumer.dim()) {
    throw FuseDimensionError(
        "fuse: stage '" + producer.name() + "' is " +
        std::to_string(producer.dim()) + "-dimensional but stage '" +
        consumer.name() + "' is " + std::to_string(consumer.dim()) +
        "-dimensional");
  }
  // Every intermediate element the consumer needs must be producible.
  const std::vector<ArrayReference>& refs =
      consumer.inputs().at(input_index).refs;
  for (const ArrayReference& g : refs) {
    bool inside = true;
    consumer.iteration().for_each([&](const poly::IntVec& i) {
      if (inside && !producer.iteration().contains(poly::add(i, g.offset))) {
        inside = false;
      }
    });
    if (!inside) {
      throw FuseDomainError(
          "fuse: reference " + poly::to_string(g.offset) + " of stage '" +
          consumer.name() + "' reaches outside the iteration domain of "
          "stage '" + producer.name() + "'");
    }
  }
}

StencilProgram fuse(const StencilProgram& first,
                    const StencilProgram& second) {
  check_single_input(first);
  check_single_input(second);
  check_stage_window(first, second);
  const std::vector<ArrayReference>& w1 = first.inputs()[0].refs;
  const std::vector<ArrayReference>& w2 = second.inputs()[0].refs;

  // Fused window: Minkowski sum, deduplicated; remember the slot of every
  // (g, f) pair.
  std::map<poly::IntVec, std::size_t> slot_of;
  std::vector<poly::IntVec> offsets;
  std::vector<std::vector<std::size_t>> pair_slots(w2.size());
  for (std::size_t g = 0; g < w2.size(); ++g) {
    pair_slots[g].reserve(w1.size());
    for (const ArrayReference& f : w1) {
      const poly::IntVec combined = poly::add(w2[g].offset, f.offset);
      const auto [it, inserted] =
          slot_of.emplace(combined, offsets.size());
      if (inserted) offsets.push_back(combined);
      pair_slots[g].push_back(it->second);
    }
  }

  StencilProgram fused(first.name() + "+" + second.name(),
                       second.iteration());
  fused.add_input(first.inputs()[0].name, offsets);
  fused.set_output(second.output_name());

  const KernelFn k1 = first.kernel();
  const KernelFn k2 = second.kernel();
  const std::size_t inner_arity = w1.size();
  fused.set_kernel([k1, k2, pair_slots,
                    inner_arity](const std::vector<double>& values) {
    std::vector<double> stage2_inputs(pair_slots.size());
    std::vector<double> gather(inner_arity);
    for (std::size_t g = 0; g < pair_slots.size(); ++g) {
      for (std::size_t f = 0; f < inner_arity; ++f) {
        gather[f] = values[pair_slots[g][f]];
      }
      stage2_inputs[g] = k1(gather);
    }
    return k2(stage2_inputs);
  });
  return fused;
}

StencilProgram fuse_chain(std::span<const StencilProgram> stages) {
  if (stages.empty()) {
    throw FuseArityError("fuse_chain: no stages");
  }
  // Upfront validation of every composition rule. Adjacent-pair
  // containment is exact for the folded chain too: fuse(s0..sk, sk+1)
  // checks sk+1's window against the fused program's iteration domain,
  // which is sk's iteration domain unchanged.
  for (const StencilProgram& stage : stages) check_single_input(stage);
  for (std::size_t k = 0; k + 1 < stages.size(); ++k) {
    check_stage_window(stages[k], stages[k + 1]);
  }
  StencilProgram folded = stages[0];
  for (std::size_t k = 1; k < stages.size(); ++k) {
    folded = fuse(folded, stages[k]);
  }
  return folded;
}

}  // namespace nup::stencil
