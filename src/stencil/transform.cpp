#include "stencil/transform.hpp"

#include "util/error.hpp"

namespace nup::stencil {

StencilProgram transform(const StencilProgram& program,
                         const poly::UnimodularTransform& t) {
  if (t.dim() != program.dim()) {
    throw Error("stencil::transform: dimension mismatch");
  }
  StencilProgram out(program.name() + "_xform",
                     poly::apply(t, program.iteration()));
  for (const InputArray& input : program.inputs()) {
    std::vector<poly::IntVec> offsets;
    offsets.reserve(input.refs.size());
    for (const ArrayReference& ref : input.refs) {
      offsets.push_back(t.apply_offset(ref.offset));
    }
    out.add_input(input.name, std::move(offsets));
  }
  out.set_output(program.output_name());
  // A unimodular transform permutes iterations, not reference order, so the
  // kernel (and any weighted-sum structure) carries over unchanged.
  if (!program.weighted_sum_weights().empty()) {
    out.set_weighted_sum(program.weighted_sum_weights());
  } else {
    out.set_kernel(program.kernel());
  }
  return out;
}

}  // namespace nup::stencil
