#pragma once

#include <span>

#include "stencil/program.hpp"
#include "util/error.hpp"

namespace nup::stencil {

/// Base of the fusion / stage-composition errors. Derives from
/// NotStencilError so callers that caught the old generic throws keep
/// working; the subclasses let new callers (fuse_chain, the pipeline's
/// StageGraph) report *which* composition rule a stage pair broke.
class FuseError : public NotStencilError {
 public:
  explicit FuseError(const std::string& what) : NotStencilError(what) {}
};

/// A stage reads more than one input array, so it has no single upstream
/// producer to compose with.
class FuseArityError : public FuseError {
 public:
  explicit FuseArityError(const std::string& what) : FuseError(what) {}
};

/// Producer and consumer iterate domains of different dimensionality.
class FuseDimensionError : public FuseError {
 public:
  explicit FuseDimensionError(const std::string& what) : FuseError(what) {}
};

/// A consumer reference, translated over the consumer's iteration domain,
/// reaches an element the producer never computes.
class FuseDomainError : public FuseError {
 public:
  explicit FuseDomainError(const std::string& what) : FuseError(what) {}
};

/// Checks that `consumer`'s input array `input_index` can be fed by
/// `producer`'s output: equal dimensionality, and every reference offset
/// translated over the consumer's iteration domain stays inside the
/// producer's iteration domain (the containment rule fuse() enforces,
/// factored out so the pipeline's StageGraph validates DAG edges with the
/// same window algebra). Throws FuseDimensionError / FuseDomainError with
/// the stage names and the offending offset.
void check_stage_window(const StencilProgram& producer,
                        const StencilProgram& consumer,
                        std::size_t input_index = 0);

/// Loop fusion of two stencil stages ([12] in the paper): `second` consumes
/// the array `first` produces. The fused program computes
/// second(first(A)) in a single pass; its window is the Minkowski sum of
/// the two windows (|W| up to |W1|*|W2| unique offsets), which is exactly
/// the "large stencil window after loop fusion" case the paper's
/// introduction motivates the memory system with.
///
/// Requirements: both programs are single-input, equal dimensionality, and
/// `second`'s iteration domain translated by any of its offsets stays
/// inside `first`'s iteration domain (every intermediate element the fused
/// kernel needs is computable). Violations throw FuseArityError,
/// FuseDimensionError or FuseDomainError respectively.
StencilProgram fuse(const StencilProgram& first,
                    const StencilProgram& second);

/// Folds an n-stage chain into one program: fuse(...fuse(fuse(s0, s1),
/// s2)..., sn-1). All composition rules are validated upfront -- adjacent
/// pairs are checked before any fusion work happens, so a bad stage deep
/// in the chain fails fast with the same typed errors fuse() throws.
/// Requires at least one stage; a single stage is returned as-is.
StencilProgram fuse_chain(std::span<const StencilProgram> stages);

}  // namespace nup::stencil
