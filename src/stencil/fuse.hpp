#pragma once

#include "stencil/program.hpp"

namespace nup::stencil {

/// Loop fusion of two stencil stages ([12] in the paper): `second` consumes
/// the array `first` produces. The fused program computes
/// second(first(A)) in a single pass; its window is the Minkowski sum of
/// the two windows (|W| up to |W1|*|W2| unique offsets), which is exactly
/// the "large stencil window after loop fusion" case the paper's
/// introduction motivates the memory system with.
///
/// Requirements: both programs are single-input, equal dimensionality, and
/// `second`'s iteration domain translated by any of its offsets stays
/// inside `first`'s iteration domain (every intermediate element the fused
/// kernel needs is computable).
StencilProgram fuse(const StencilProgram& first,
                    const StencilProgram& second);

}  // namespace nup::stencil
