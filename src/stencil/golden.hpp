#pragma once

#include <cstdint>
#include <vector>

#include "poly/int_vec.hpp"
#include "stencil/program.hpp"

namespace nup::stencil {

/// Deterministic synthetic value of array `array_idx` at grid point `h`.
/// The paper's benchmarks run on medical images we do not have; a hash of
/// the coordinates exercises exactly the same data paths (DESIGN.md §3),
/// and the same function feeds both the golden executor and the simulated
/// off-chip memory so results are directly comparable.
double synthetic_value(std::uint64_t seed, std::size_t array_idx,
                       const poly::IntVec& h);

/// Result of a pure-software stencil execution.
struct GoldenRun {
  /// One kernel output per iteration, in lexicographic iteration order.
  std::vector<double> outputs;
};

/// Executes the stencil in plain software: for every iteration of the
/// iteration domain in lexicographic order, gathers A[i + f_x] for every
/// reference (synthetic values) and applies the kernel.
GoldenRun run_golden(const StencilProgram& program, std::uint64_t seed);

}  // namespace nup::stencil
