#include "stencil/gallery.hpp"

#include <cmath>

#include "poly/polyhedron.hpp"
#include "util/error.hpp"

namespace nup::stencil {

namespace {

using poly::Domain;
using poly::IntVec;
using poly::make_constraint;
using poly::Polyhedron;

/// Interior iteration box for a grid [0, rows) x [0, cols) and a window
/// with per-axis reach lo/hi: iterations where every reference stays on the
/// grid.
Domain interior_2d(std::int64_t rows, std::int64_t cols,
                   std::int64_t reach_lo_i, std::int64_t reach_hi_i,
                   std::int64_t reach_lo_j, std::int64_t reach_hi_j) {
  return Domain::box({-reach_lo_i, -reach_lo_j},
                     {rows - 1 - reach_hi_i, cols - 1 - reach_hi_j});
}

Domain interior_3d(std::int64_t planes, std::int64_t rows, std::int64_t cols,
                   std::int64_t reach) {
  return Domain::box({reach, reach, reach},
                     {planes - 1 - reach, rows - 1 - reach, cols - 1 - reach});
}

}  // namespace

StencilProgram denoise_2d(std::int64_t rows, std::int64_t cols) {
  StencilProgram p("DENOISE", interior_2d(rows, cols, -1, 1, -1, 1));
  p.add_input("A", {{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}});
  // Damped Laplacian smoothing step.
  p.set_weighted_sum({0.125, 0.125, 0.5, 0.125, 0.125});
  return p;
}

StencilProgram rician_2d(std::int64_t rows, std::int64_t cols) {
  StencilProgram p("RICIAN", interior_2d(rows, cols, -1, 1, -1, 1));
  p.add_input("A", {{-1, 0}, {0, -1}, {0, 1}, {1, 0}});
  // Rician-noise removal uses a nonlinear combination; model the shape with
  // a root-of-squares so the golden/simulated comparison exercises a
  // non-additive kernel.
  p.set_kernel([](const std::vector<double>& v) {
    double acc = 0.0;
    for (double x : v) acc += 0.25 * x * x;
    return std::sqrt(acc);
  });
  return p;
}

StencilProgram sobel_2d(std::int64_t rows, std::int64_t cols) {
  StencilProgram p("SOBEL", interior_2d(rows, cols, -1, 1, -1, 1));
  // Order: (-1,-1), (-1,0), (-1,1), (0,-1), (0,1), (1,-1), (1,0), (1,1).
  p.add_input("A", {{-1, -1},
                    {-1, 0},
                    {-1, 1},
                    {0, -1},
                    {0, 1},
                    {1, -1},
                    {1, 0},
                    {1, 1}});
  p.set_kernel([](const std::vector<double>& v) {
    const double gx = (v[2] + 2.0 * v[4] + v[7]) - (v[0] + 2.0 * v[3] + v[5]);
    const double gy = (v[5] + 2.0 * v[6] + v[7]) - (v[0] + 2.0 * v[1] + v[2]);
    return std::abs(gx) + std::abs(gy);
  });
  return p;
}

StencilProgram bicubic_2d(std::int64_t rows, std::int64_t cols) {
  StencilProgram p("BICUBIC", interior_2d(rows, cols, 0, 0, -2, 4));
  p.add_input("A", {{0, -2}, {0, 0}, {0, 2}, {0, 4}});
  // Catmull-Rom taps at t = 0.5.
  p.set_weighted_sum({-0.0625, 0.5625, 0.5625, -0.0625});
  return p;
}

StencilProgram denoise_3d(std::int64_t planes, std::int64_t rows,
                          std::int64_t cols) {
  StencilProgram p("DENOISE_3D", interior_3d(planes, rows, cols, 1));
  p.add_input("A", {{-1, 0, 0},
                    {0, -1, 0},
                    {0, 0, -1},
                    {0, 0, 0},
                    {0, 0, 1},
                    {0, 1, 0},
                    {1, 0, 0}});
  p.set_weighted_sum({0.1, 0.1, 0.1, 0.4, 0.1, 0.1, 0.1});
  return p;
}

StencilProgram segmentation_3d(std::int64_t planes, std::int64_t rows,
                               std::int64_t cols) {
  // 3x3x3 cube minus the 8 corners: 19 points (Fig 6c).
  std::vector<IntVec> offsets;
  for (std::int64_t a = -1; a <= 1; ++a) {
    for (std::int64_t b = -1; b <= 1; ++b) {
      for (std::int64_t c = -1; c <= 1; ++c) {
        if (std::abs(a) + std::abs(b) + std::abs(c) <= 2) {
          offsets.push_back({a, b, c});
        }
      }
    }
  }
  if (offsets.size() != 19) throw Error("SEGMENTATION_3D window must be 19");
  StencilProgram p("SEGMENTATION_3D", interior_3d(planes, rows, cols, 1));
  p.add_input("A", std::move(offsets));
  p.set_weighted_sum(std::vector<double>(19, 1.0 / 19.0));
  return p;
}

std::vector<StencilProgram> paper_benchmarks() {
  std::vector<StencilProgram> out;
  out.push_back(denoise_2d());
  out.push_back(rician_2d());
  out.push_back(sobel_2d());
  out.push_back(bicubic_2d());
  out.push_back(denoise_3d());
  out.push_back(segmentation_3d());
  return out;
}

StencilProgram jacobi_2d(std::int64_t rows, std::int64_t cols) {
  StencilProgram p("JACOBI_2D", interior_2d(rows, cols, -1, 1, -1, 1));
  p.add_input("A", {{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}});
  p.set_weighted_sum({0.2, 0.2, 0.2, 0.2, 0.2});
  return p;
}

StencilProgram blur_2d(std::int64_t rows, std::int64_t cols) {
  StencilProgram p("BLUR_3x3", interior_2d(rows, cols, -1, 1, -1, 1));
  std::vector<IntVec> offsets;
  for (std::int64_t a = -1; a <= 1; ++a) {
    for (std::int64_t b = -1; b <= 1; ++b) offsets.push_back({a, b});
  }
  p.add_input("A", std::move(offsets));
  p.set_weighted_sum(std::vector<double>(9, 1.0 / 9.0));
  return p;
}

StencilProgram heat_3d(std::int64_t planes, std::int64_t rows,
                       std::int64_t cols) {
  StencilProgram p("HEAT_3D", interior_3d(planes, rows, cols, 1));
  p.add_input("A", {{-1, 0, 0},
                    {0, -1, 0},
                    {0, 0, -1},
                    {0, 0, 0},
                    {0, 0, 1},
                    {0, 1, 0},
                    {1, 0, 0}});
  p.set_weighted_sum({0.125, 0.125, 0.125, 0.25, 0.125, 0.125, 0.125});
  return p;
}

StencilProgram lattice_4d(std::int64_t n0, std::int64_t n1,
                          std::int64_t n2, std::int64_t n3) {
  StencilProgram p("LATTICE_4D",
                   Domain::box({1, 1, 1, 1},
                               {n0 - 2, n1 - 2, n2 - 2, n3 - 2}));
  std::vector<IntVec> offsets{{0, 0, 0, 0}};
  for (std::size_t d = 0; d < 4; ++d) {
    IntVec plus(4, 0);
    IntVec minus(4, 0);
    plus[d] = 1;
    minus[d] = -1;
    offsets.push_back(plus);
    offsets.push_back(minus);
  }
  p.add_input("A", std::move(offsets));
  p.set_weighted_sum(std::vector<double>(9, 1.0 / 9.0));
  return p;
}

StencilProgram jacobi4_2d(std::int64_t rows, std::int64_t cols) {
  StencilProgram p("JACOBI4_2D", interior_2d(rows, cols, -1, 1, -1, 1));
  p.add_input("A", {{-1, 0}, {0, -1}, {0, 1}, {1, 0}});
  p.set_weighted_sum({0.25, 0.25, 0.25, 0.25});
  return p;
}

StencilProgram jacobi8_2d(std::int64_t rows, std::int64_t cols) {
  StencilProgram p("JACOBI8_2D", interior_2d(rows, cols, -1, 1, -1, 1));
  p.add_input("A", {{-1, -1},
                    {-1, 0},
                    {-1, 1},
                    {0, -1},
                    {0, 1},
                    {1, -1},
                    {1, 0},
                    {1, 1}});
  p.set_weighted_sum(std::vector<double>(8, 0.125));
  return p;
}

StencilProgram heat_2d(std::int64_t rows, std::int64_t cols) {
  StencilProgram p("HEAT_2D", interior_2d(rows, cols, -1, 1, -1, 1));
  p.add_input("A", {{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}});
  const double alpha = 0.1;
  p.set_weighted_sum({alpha, alpha, 1.0 - 4.0 * alpha, alpha, alpha});
  return p;
}

StencilProgram life_2d(std::int64_t rows, std::int64_t cols) {
  StencilProgram p("LIFE_2D", interior_2d(rows, cols, -1, 1, -1, 1));
  std::vector<IntVec> offsets;
  for (std::int64_t a = -1; a <= 1; ++a) {
    for (std::int64_t b = -1; b <= 1; ++b) offsets.push_back({a, b});
  }
  p.add_input("A", std::move(offsets));  // center is v[4]
  p.set_kernel([](const std::vector<double>& v) {
    int neighbours = 0;
    for (std::size_t k = 0; k < v.size(); ++k) {
      if (k != 4 && v[k] > 0.5) ++neighbours;
    }
    const bool alive = v[4] > 0.5;
    return (neighbours == 3 || (alive && neighbours == 2)) ? 1.0 : 0.0;
  });
  return p;
}

std::vector<StencilProgram> iterative_benchmarks() {
  std::vector<StencilProgram> out;
  out.push_back(jacobi4_2d());
  out.push_back(jacobi8_2d());
  out.push_back(heat_2d());
  out.push_back(life_2d());
  out.push_back(denoise_2d(96, 128));
  return out;
}

StencilProgram skewed_demo(std::int64_t rows, std::int64_t cols) {
  // Sheared trapezoid (Fig 9): 1 <= i <= rows-2 and i+1 <= j <= 2i+cols-2,
  // with an X-shaped 5-point window. Row i is i + cols - 2 points long, so
  // the reuse distance between references grows as execution advances --
  // the dynamic buffer-level adaptation the paper demonstrates.
  Polyhedron piece(2);
  piece.add(make_constraint({1, 0}, -1));          // i >= 1
  piece.add(make_constraint({-1, 0}, rows - 2));   // i <= rows-2
  piece.add(make_constraint({-1, 1}, -1));         // j - i >= 1
  piece.add(make_constraint({2, -1}, cols - 2));   // j - 2i <= cols-2
  StencilProgram p("SKEWED_X5", Domain(std::move(piece)));
  p.add_input("A", {{-1, -1}, {-1, 1}, {0, 0}, {1, -1}, {1, 1}});
  p.set_weighted_sum({0.2, 0.2, 0.2, 0.2, 0.2});
  return p;
}

StencilProgram triangular_demo(std::int64_t rows) {
  // Lower-triangular domain: 1 <= i <= rows-2, 1 <= j <= i.
  Polyhedron piece(2);
  piece.add(make_constraint({1, 0}, -1));          // i >= 1
  piece.add(make_constraint({-1, 0}, rows - 2));   // i <= rows-2
  piece.add(make_constraint({0, 1}, -1));          // j >= 1
  piece.add(make_constraint({1, -1}, 0));          // j <= i
  StencilProgram p("TRIANGULAR_4PT", Domain(std::move(piece)));
  p.add_input("A", {{0, 0}, {0, -1}, {-1, 0}, {-1, -1}});
  p.set_weighted_sum({0.25, 0.25, 0.25, 0.25});
  return p;
}

}  // namespace nup::stencil
