#pragma once

#include "poly/transform.hpp"
#include "stencil/program.hpp"

namespace nup::stencil {

/// Applies a unimodular loop transformation to a stencil program ([15]'s
/// polyhedral preprocessing): the iteration domain maps to its image and
/// every reference offset f to T*f, which keeps the computation a stencil
/// (Definition 4 is closed under unimodular transforms). The kernel
/// function is unchanged; outputs of iteration i' = T*i + shift equal the
/// original outputs of iteration i.
StencilProgram transform(const StencilProgram& program,
                         const poly::UnimodularTransform& t);

}  // namespace nup::stencil
