// Loop fusion vs pipelining ([12] in the paper's introduction): two
// smoothing passes can run as a two-accelerator pipeline (Fig 13c) or be
// fused into one accelerator with a 13-point window. Fusion trades a
// larger reuse buffer and window for half the off-chip traffic -- and the
// larger window is exactly where the non-uniform memory system shines.
//
//   $ ./fused_pipeline

#include <cstdio>

#include "arch/builder.hpp"
#include "baseline/gmp.hpp"
#include "sim/pipeline.hpp"
#include "sim/simulator.hpp"
#include "stencil/fuse.hpp"
#include "stencil/gallery.hpp"
#include "util/table.hpp"

namespace {

using namespace nup;

stencil::StencilProgram smoother(const std::string& name, std::int64_t lo,
                                 std::int64_t rows, std::int64_t cols,
                                 const std::string& array) {
  stencil::StencilProgram p(
      name, poly::Domain::box({lo, lo}, {rows - 1 - lo, cols - 1 - lo}));
  p.add_input(array, {{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}});
  p.set_kernel(stencil::make_weighted_sum({0.2, 0.2, 0.2, 0.2, 0.2}));
  return p;
}

}  // namespace

int main() {
  using namespace nup;
  const std::int64_t rows = 96;
  const std::int64_t cols = 128;

  const stencil::StencilProgram s1 = smoother("PASS1", 1, rows, cols, "A");
  const stencil::StencilProgram s2 = smoother("PASS2", 2, rows, cols, "B");
  const stencil::StencilProgram fused = stencil::fuse(s1, s2);

  std::printf("two 5-point passes fuse into a %zu-point window:\n",
              fused.total_references());
  for (const stencil::ArrayReference& ref : fused.inputs()[0].refs) {
    std::printf("  %s", poly::to_string(ref.offset).c_str());
  }
  std::printf("\n\n");

  // Option A: pipeline of two accelerators.
  sim::Pipeline pipeline;
  pipeline.add_stage(s1);
  pipeline.add_stage(s2);
  const sim::Pipeline::Result piped = pipeline.run();

  // Option B: one fused accelerator.
  const arch::AcceleratorDesign fused_design = arch::build_design(fused);
  sim::SimOptions options;
  options.record_outputs = false;
  const sim::SimResult fused_run =
      sim::simulate(fused, fused_design, options);

  const arch::AcceleratorDesign d1 = arch::build_design(s1);
  const arch::AcceleratorDesign d2 = arch::build_design(s2);

  TextTable table("pipeline vs fusion");
  table.set_header(
      {"variant", "banks", "on-chip elements", "off-chip reads", "cycles"});
  table.add_row({"2-stage pipeline",
                 std::to_string(d1.total_bank_count() +
                                d2.total_bank_count()),
                 std::to_string(d1.total_buffer_size() +
                                d2.total_buffer_size()),
                 std::to_string(rows * cols),  // only stage 1 reads DRAM
                 std::to_string(piped.cycles)});
  table.add_row({"fused 13-point",
                 std::to_string(fused_design.total_bank_count()),
                 std::to_string(fused_design.total_buffer_size()),
                 std::to_string(rows * cols), std::to_string(fused_run.cycles)});
  std::printf("%s", table.to_string().c_str());

  std::printf("\nfused window under uniform partitioning [8]: %zu banks; "
              "ours: %zu (= n-1)\n",
              baseline::gmp_partition(fused, 0).banks,
              fused_design.systems[0].bank_count());
  std::printf("both variants verified against golden executions in the "
              "test suite (tests/stencil/fuse_test.cpp).\n");
  return piped.completed && !fused_run.deadlocked ? 0 : 1;
}
