// Polyhedral preprocessing demo ([15] in the paper, used by Fig 13c's
// "loop reordering"): unimodular transformations reshape a stencil before
// memory-system generation. Un-shearing the Fig 9 skewed domain
// rectangularizes it; loop interchange reorders the stream to match a
// producer.
//
//   $ ./loop_transform

#include <cstdio>

#include "arch/builder.hpp"
#include "poly/transform.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "stencil/transform.hpp"
#include "util/table.hpp"

int main() {
  using namespace nup;

  // 1. Un-shearing: the skewed trapezoid of Fig 9 under j' = j - i.
  const stencil::StencilProgram skewed = stencil::skewed_demo(24, 48);
  const stencil::StencilProgram unsheared =
      stencil::transform(skewed, poly::skew(2, 0, 1, -1));

  std::printf("original (sheared) domain:\n%s\n",
              skewed.to_c_code().c_str());
  std::printf("after j' = j - i:\n%s\n", unsheared.to_c_code().c_str());

  TextTable table("memory systems before/after un-shearing");
  table.set_header({"variant", "banks", "total elements", "steady II"});
  for (const stencil::StencilProgram* p : {&skewed, &unsheared}) {
    const arch::AcceleratorDesign design = arch::build_design(*p);
    sim::SimOptions options;
    options.record_outputs = false;
    const sim::SimResult r = sim::simulate(*p, design, options);
    table.add_row({p->name(),
                   std::to_string(design.total_bank_count()),
                   std::to_string(design.total_buffer_size()),
                   cell(r.steady_ii, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // 2. Loop interchange: transpose the stream order of DENOISE so it can
  //    be chained after a column-major producer.
  const stencil::StencilProgram row_major = stencil::denoise_2d(64, 96);
  const stencil::StencilProgram col_major =
      stencil::transform(row_major, poly::interchange(2, 0, 1));
  poly::IntVec lo;
  poly::IntVec hi;
  col_major.data_domain_hull(0).as_single_box(&lo, &hi);
  std::printf("interchange turns the 64x96 DENOISE stream into a %lldx%lld "
              "column-major one;\n",
              static_cast<long long>(hi[0] - lo[0] + 1),
              static_cast<long long>(hi[1] - lo[1] + 1));

  const arch::AcceleratorDesign design = arch::build_design(col_major);
  sim::SimOptions options;
  options.record_outputs = false;
  const sim::SimResult r = sim::simulate(col_major, design, options);
  std::printf("the transformed accelerator still verifies: %lld outputs, "
              "II %.3f, deadlock-free: %s\n",
              static_cast<long long>(r.kernel_fires), r.steady_ii,
              r.deadlocked ? "NO" : "yes");
  return r.deadlocked ? 1 : 0;
}
