// Frontend demo: the accelerator is generated straight from Fig 1-style C
// source. The mini-C frontend (lexer/parser/sema, the ROSE+Polly
// substitute) checks the code is a stencil under Definition 4, extracts the
// references and reconstructs the kernel arithmetic for verification.
//
//   $ ./sobel_from_source

#include <cstdio>

#include "core/compiler.hpp"
#include "util/error.hpp"

int main() {
  using namespace nup;

  const char* source = R"(
    // Sobel edge detection: |Gx| + |Gy| over a 3x3 neighbourhood.
    for (i = 1; i <= 766; i++)
      for (j = 1; j <= 1022; j++)
        E[i][j] = fabs((A[i-1][j+1] + 2*A[i][j+1] + A[i+1][j+1])
                     - (A[i-1][j-1] + 2*A[i][j-1] + A[i+1][j-1]))
                + fabs((A[i+1][j-1] + 2*A[i+1][j] + A[i+1][j+1])
                     - (A[i-1][j-1] + 2*A[i-1][j] + A[i-1][j+1]));
  )";

  std::printf("input source:\n%s\n", source);
  try {
    core::CompileOptions options;
    // Verify on the full 768x1024 grid -- the simulator streams roughly a
    // million elements through the 7-FIFO chain in well under a second.
    const core::AcceleratorPackage pkg =
        core::compile_source(source, "SOBEL", options);
    std::printf("%s\n", pkg.summary().c_str());
    std::printf("original II (loads/iteration): %zu  ->  achieved steady "
                "II: %.4f\n",
                pkg.program.total_references(),
                pkg.verification.steady_ii);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "flow failed: %s\n", e.what());
    return 1;
  }
}
