// Quickstart: generate, verify and export a complete stencil accelerator
// in ~20 lines of API. Takes the paper's DENOISE kernel, runs the full
// design-automation flow (Fig 11) and writes the generated artifacts next
// to the binary.
//
//   $ ./quickstart [output_dir]

#include <cstdio>
#include <fstream>
#include <string>

#include "core/compiler.hpp"
#include "stencil/gallery.hpp"

int main(int argc, char** argv) {
  using namespace nup;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  // 1. Pick a stencil program (or parse one: see sobel_from_source).
  const stencil::StencilProgram program = stencil::denoise_2d();

  // 2. Run the flow: polyhedral analysis -> non-uniform memory system ->
  //    cycle-accurate verification against the golden software execution ->
  //    resource estimation -> RTL + kernel code generation.
  const core::AcceleratorPackage pkg = core::compile(program);

  // 3. Inspect the result.
  std::printf("%s\n", pkg.summary().c_str());

  // 4. Export the generated design.
  const struct {
    const char* file;
    const std::string* text;
  } artifacts[] = {
      {"denoise_memory_system.v", &pkg.rtl},
      {"denoise_tb.v", &pkg.testbench},
      {"denoise_kernel.cpp", &pkg.kernel_code},
      {"denoise_accel.hpp", &pkg.integration_header},
  };
  for (const auto& artifact : artifacts) {
    const std::string path = out_dir + "/" + artifact.file;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << *artifact.text;
    std::printf("wrote %s (%zu bytes)\n", path.c_str(),
                artifact.text->size());
  }
  return pkg.verified ? 0 : 1;
}
