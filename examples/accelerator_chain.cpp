// Fig 13(c) demo: system integration by direct accelerator chaining. With
// the memory system folded into each accelerator, both stages read and
// write a single lexicographic stream, so stage 1's output port connects
// straight to stage 2's off-chip input -- no intermediate block memory.
//
//   $ ./accelerator_chain

#include <algorithm>
#include <cstdio>
#include <memory>

#include "arch/builder.hpp"
#include "sim/feed.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"

int main() {
  using namespace nup;

  // Stage 1: DENOISE over the full grid. Its iteration domain [1,766] x
  // [1,1022] is exactly stage 2's input data hull.
  const stencil::StencilProgram stage1 = stencil::denoise_2d();

  // Stage 2: edge enhance over the denoised field.
  stencil::StencilProgram stage2("ENHANCE",
                                 poly::Domain::box({2, 2}, {765, 1021}));
  stage2.add_input("D", {{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}});
  stage2.set_kernel([](const std::vector<double>& v) {
    return 5.0 * v[2] - (v[0] + v[1] + v[3] + v[4]);
  });

  const arch::AcceleratorDesign design1 = arch::build_design(stage1);
  const arch::AcceleratorDesign design2 = arch::build_design(stage2);
  std::printf("stage 1: %s", arch::describe(design1).c_str());
  std::printf("stage 2: %s\n", arch::describe(design2).c_str());

  sim::AcceleratorSim sim1(stage1, design1, {});
  sim::SimOptions options2;
  options2.stall_limit = 10'000'000;  // stage 2 waits for stage 1's ramp-up
  sim::AcceleratorSim sim2(stage2, design2, options2);

  // The Fig 13(c) wire: stage 1's output stream is stage 2's input feed.
  auto wire = std::make_shared<sim::QueueFeed>();
  sim1.set_output_callback([&](const poly::IntVec& i, double v) {
    wire->push(i, v);
  });
  sim2.set_feed(0, 0, wire);

  std::int64_t outputs2 = 0;
  sim2.set_output_callback(
      [&](const poly::IntVec&, double) { ++outputs2; });

  std::int64_t cycle = 0;
  std::int64_t max_in_flight = 0;
  while (!sim2.done() && cycle < 10'000'000) {
    sim1.step();
    // Peak occupancy of the wire is right after the producer pushed and
    // before the consumer popped.
    max_in_flight = std::max(
        max_in_flight, static_cast<std::int64_t>(wire->pending()));
    sim2.step();
    ++cycle;
  }

  std::printf("chained run: %lld cycles, stage-2 outputs: %lld\n",
              static_cast<long long>(cycle),
              static_cast<long long>(outputs2));
  std::printf("max elements in flight on the inter-stage wire: %lld -- a "
              "handful of registers replace the %d-element frame buffer a "
              "conventional block-by-block design would need (Appendix "
              "9.3)\n",
              static_cast<long long>(max_in_flight), 768 * 1024);
  return sim2.done() ? 0 : 1;
}
