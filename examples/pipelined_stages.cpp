// Stage-pipelined execution: a three-pass smoothing chain runs with
// tile-granular producer-consumer overlap -- stage k+1 starts a tile the
// moment the stage-k tiles covering its halo have resolved, instead of
// waiting for the whole upstream frame.
//
// The same chain runs twice: once pipelined and once with the
// frame-barrier baseline (identical engines, buffers and stitching; only
// the dependency structure differs). Outputs are bit-identical; the
// timing lines show the sink stage starting long before the first stage
// finishes.
//
//   $ ./pipelined_stages

#include <cstdio>

#include "pipeline/executor.hpp"
#include "pipeline/stage_graph.hpp"
#include "stencil/fuse.hpp"
#include "stencil/gallery.hpp"

namespace {

using namespace nup;

stencil::StencilProgram smoother(const std::string& name, std::int64_t lo,
                                 std::int64_t rows, std::int64_t cols) {
  stencil::StencilProgram p(
      name, poly::Domain::box({lo, lo}, {rows - 1 - lo, cols - 1 - lo}));
  p.add_input("A", {{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}});
  p.set_kernel(stencil::make_weighted_sum({0.1, 0.2, 0.4, 0.2, 0.1}));
  return p;
}

pipeline::PipelineResult run_chain(const pipeline::StageGraph& graph,
                                   bool barrier) {
  pipeline::PipelineOptions options;
  options.name = barrier ? "barrier" : "pipelined";
  options.tile_shape = {16, 0};
  options.barrier = barrier;
  pipeline::PipelineExecutor executor(graph, options);
  return executor.submit(/*seed=*/42).wait();
}

}  // namespace

int main() {
  using namespace nup;
  const std::int64_t rows = 192;
  const std::int64_t cols = 256;

  // Successive halos shrink each stage's domain: the window algebra of
  // every edge is validated at graph construction (a reference escaping
  // the producer's domain is a typed FuseDomainError).
  const std::vector<stencil::StencilProgram> stages = {
      smoother("PASS1", 1, rows, cols), smoother("PASS2", 2, rows, cols),
      smoother("PASS3", 3, rows, cols)};
  const pipeline::StageGraph graph = pipeline::StageGraph::chain(stages);
  std::printf("chain: %zu stages, %zu edges on %lldx%lld\n\n",
              graph.stage_count(), graph.edges().size(),
              static_cast<long long>(rows), static_cast<long long>(cols));

  const pipeline::PipelineResult piped = run_chain(graph, false);
  const pipeline::PipelineResult barrier = run_chain(graph, true);
  if (!piped.ok() || !barrier.ok()) {
    std::fprintf(stderr, "frame failed: %s%s\n", piped.error.c_str(),
                 barrier.error.c_str());
    return 1;
  }

  std::printf("%-8s %22s %22s\n", "stage", "pipelined first/last",
              "barrier first/last");
  for (std::size_t s = 0; s < graph.stage_count(); ++s) {
    std::printf("%-8s %10lld/%-11lld %10lld/%-11lld\n",
                graph.stages()[s].program.name().c_str(),
                static_cast<long long>(piped.timing[s].first_tile_us),
                static_cast<long long>(piped.timing[s].last_tile_us),
                static_cast<long long>(barrier.timing[s].first_tile_us),
                static_cast<long long>(barrier.timing[s].last_tile_us));
  }
  std::printf("\nsink first output: %lld us pipelined vs %lld us with "
              "frame barriers (frame totals %lld vs %lld us)\n",
              static_cast<long long>(piped.timing.back().first_tile_us),
              static_cast<long long>(barrier.timing.back().first_tile_us),
              static_cast<long long>(piped.total_us),
              static_cast<long long>(barrier.total_us));

  // Bounded inter-stage memory: each edge buffer holds a moving band of
  // producer tiles, retired as their last consumer is served.
  for (std::size_t e = 0; e < graph.edges().size(); ++e) {
    std::printf("edge %s: peak %zu tiles buffered, %lld retired\n",
                graph.edges()[e].label.c_str(), piped.edges[e].max_tiles,
                static_cast<long long>(piped.edges[e].retired));
  }

  // Both schedules produce bit-identical sink outputs.
  const std::vector<double>& a = piped.stages.back().outputs;
  const std::vector<double>& b = barrier.stages.back().outputs;
  std::printf("\nsink outputs bit-identical across schedules: %s\n",
              a == b ? "yes" : "NO");
  return a == b ? 0 : 1;
}
