// Fig 14/15 demo: trading off-chip bandwidth for on-chip memory. Each step
// cuts the largest remaining reuse FIFO and feeds the tail of the chain
// from an additional off-chip stream; the design stays correct at every
// point on the curve and the storage degrades gracefully in phases.
//
//   $ ./bandwidth_tradeoff

#include <cstdio>
#include <string>

#include "arch/builder.hpp"
#include "arch/tradeoff.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"
#include "util/table.hpp"

int main() {
  using namespace nup;

  const stencil::StencilProgram p = stencil::segmentation_3d();
  const arch::AcceleratorDesign design = arch::build_design(p);
  std::printf("SEGMENTATION_3D: 19-point window, chain of 18 non-uniform "
              "FIFOs, %lld elements of reuse storage\n\n",
              static_cast<long long>(design.total_buffer_size()));

  TextTable table("on-chip storage vs off-chip accesses per cycle");
  table.set_header({"accesses/cycle", "elements", "bar"});
  const std::vector<arch::TradeoffPoint> curve =
      arch::bandwidth_sweep(design.systems[0]);
  const double scale =
      64.0 / static_cast<double>(curve.front().total_buffer_size);
  for (const arch::TradeoffPoint& point : curve) {
    table.add_row({std::to_string(point.offchip_streams),
                   std::to_string(point.total_buffer_size),
                   std::string(static_cast<std::size_t>(
                                   point.total_buffer_size * scale),
                               '#')});
  }
  std::printf("%s", table.to_string().c_str());

  // Simulate a few representative points of the curve (small instance).
  const stencil::StencilProgram small = stencil::segmentation_3d(8, 10, 12);
  const stencil::GoldenRun golden = stencil::run_golden(small, 1);
  std::printf("\ncorrectness along the curve (8x10x12 instance):\n");
  for (std::size_t cuts : {std::size_t{0}, std::size_t{2}, std::size_t{6},
                           std::size_t{12}, std::size_t{18}}) {
    arch::AcceleratorDesign traded = arch::build_design(small);
    traded.systems[0] = arch::apply_tradeoff(traded.systems[0], cuts);
    const sim::SimResult r = sim::simulate(small, traded, {});
    bool ok = !r.deadlocked && r.outputs.size() == golden.outputs.size();
    for (std::size_t i = 0; ok && i < golden.outputs.size(); ++i) {
      ok = r.outputs[i] == golden.outputs[i];
    }
    std::printf("  %2zu streams, %6lld on-chip elements: %s (II %.3f)\n",
                traded.systems[0].stream_count(),
                static_cast<long long>(
                    traded.systems[0].total_buffer_size()),
                ok ? "outputs match golden" : "MISMATCH", r.steady_ii);
  }
  return 0;
}
