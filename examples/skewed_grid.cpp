// Fig 9 demo: a stencil over a 45-degree sheared iteration domain. The
// reuse distance between references changes as execution advances; in a
// centralized design this needs complex control, here the distributed
// modules adapt automatically. The example prints the FIFO level over time
// so the adaptation is visible.
//
//   $ ./skewed_grid

#include <algorithm>
#include <cstdio>
#include <string>

#include "arch/builder.hpp"
#include "poly/reuse.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"

int main() {
  using namespace nup;

  const stencil::StencilProgram p = stencil::skewed_demo(24, 48);
  std::printf("skewed stencil (X-shaped window over a sheared domain):\n%s\n",
              p.to_c_code().c_str());

  // Exact sizing over the true (non-rectangular) input domain.
  arch::BuildOptions options;
  options.exact_sizing = true;
  options.exact_streaming = true;
  const arch::AcceleratorDesign design = arch::build_design(p, options);
  std::printf("%s", arch::describe(design).c_str());

  const poly::ReuseResult vary = poly::max_reuse_distance(
      p.iteration(), p.input_data_domain(0),
      design.systems[0].ordered_offsets[0],
      design.systems[0].ordered_offsets[1]);
  std::printf("reuse distance between the first adjacent references varies "
              "%lld..%lld across the domain\n\n",
              static_cast<long long>(vary.min_distance),
              static_cast<long long>(vary.max_distance));

  sim::SimOptions sim_options;
  sim_options.trace_cycles = 1 << 20;
  const sim::SimResult r = sim::simulate(p, design, sim_options);

  // Plot the largest FIFO's level every ~40 cycles.
  std::size_t big = 0;
  for (std::size_t k = 0; k < design.systems[0].fifos.size(); ++k) {
    if (design.systems[0].fifos[k].depth >
        design.systems[0].fifos[big].depth) {
      big = k;
    }
  }
  std::printf("FIFO_%zu level over time (depth %lld):\n", big,
              static_cast<long long>(design.systems[0].fifos[big].depth));
  for (std::size_t i = 0; i < r.trace.size(); i += 40) {
    const std::int64_t fill = r.trace[i].fifo_fill[big];
    std::printf("  cycle %5lld |%-64s| %lld\n",
                static_cast<long long>(r.trace[i].cycle),
                std::string(static_cast<std::size_t>(std::min<std::int64_t>(
                                fill, 64)),
                            '#')
                    .c_str(),
                static_cast<long long>(fill));
  }

  // Correctness against the golden software execution.
  const stencil::GoldenRun golden = stencil::run_golden(p, 1);
  bool ok = !r.deadlocked && golden.outputs.size() == r.outputs.size();
  for (std::size_t i = 0; ok && i < golden.outputs.size(); ++i) {
    ok = golden.outputs[i] == r.outputs[i];
  }
  std::printf("\n%lld outputs, matches golden execution: %s\n",
              static_cast<long long>(r.kernel_fires), ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
