// Domain example: 3-D medical-imaging kernels (DENOISE_3D and the 19-point
// SEGMENTATION_3D of Fig 6c). Shows how the non-uniform chain scales to
// three-dimensional windows -- plane-sized, row-sized and unit FIFOs in one
// design -- and compares against both uniform baselines.
//
//   $ ./medical_3d

#include <cstdio>

#include "arch/builder.hpp"
#include "arch/verify.hpp"
#include "baseline/cyclic.hpp"
#include "baseline/gmp.hpp"
#include "hls/estimate.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "util/table.hpp"

int main() {
  using namespace nup;

  for (const stencil::StencilProgram& p :
       {stencil::denoise_3d(), stencil::segmentation_3d()}) {
    std::printf("==== %s (%zu-point window, 96x128x128 grid) ====\n",
                p.name().c_str(), p.total_references());

    const arch::AcceleratorDesign design = arch::build_design(p);
    std::printf("%s", arch::describe(design).c_str());

    const arch::ConditionCheck check =
        arch::verify_design(p, design.systems[0]);
    std::printf("static checks: %s\n",
                check.all_ok() ? "optimal and deadlock-free"
                               : check.detail.c_str());

    const baseline::UniformPartition gmp = baseline::gmp_partition(p, 0);
    const baseline::UniformPartition cyc =
        baseline::cyclic_partition(p, 0);
    TextTable table("comparison");
    table.set_header({"method", "banks", "total elements"});
    table.add_row({"ours (non-uniform)",
                   std::to_string(design.systems[0].bank_count()),
                   std::to_string(design.systems[0].total_buffer_size())});
    table.add_row({"gmp [8]", std::to_string(gmp.banks),
                   std::to_string(gmp.total_size)});
    table.add_row({"cyclic [5]", std::to_string(cyc.banks),
                   std::to_string(cyc.total_size)});
    std::printf("%s", table.to_string().c_str());

    const hls::ResourceUsage usage = hls::estimate_streaming(
        design, p, hls::virtex7_485t());
    std::printf("estimated resources: %lld BRAM18K, %lld slices, %lld DSP, "
                "CP %.2f ns\n",
                static_cast<long long>(usage.bram18k),
                static_cast<long long>(usage.slices),
                static_cast<long long>(usage.dsp48),
                usage.clock_period_ns);

    // Verify a scaled-down instance end to end (the full grid also works;
    // it just takes a couple of seconds).
    const stencil::StencilProgram small =
        p.name() == "DENOISE_3D" ? stencil::denoise_3d(12, 16, 20)
                                 : stencil::segmentation_3d(12, 16, 20);
    const sim::SimResult r =
        sim::simulate(small, arch::build_design(small), {});
    std::printf("scaled-down simulation: %lld outputs in %lld cycles "
                "(II %.3f), deadlock-free: %s\n\n",
                static_cast<long long>(r.kernel_fires),
                static_cast<long long>(r.cycles), r.steady_ii,
                r.deadlocked ? "NO" : "yes");
  }
  return 0;
}
