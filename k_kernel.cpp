// Transformed computation kernel (Fig 4): memory accesses are
// offloaded to the generated memory system; each volatile pointer
// is one data port fed by a data filter.
#include "stencil_op.h"

void kernel_k(
    volatile const float* A_0  // A[i][j],
    volatile const float* A_1  // A[i-1][j],
    volatile const float* A_2  // A[i+1][j],
    volatile const float* A_3  // A[i][j-1],
    volatile const float* A_4  // A[i][j+1],
    float* B_out) {
  for (long t = 0; t < 5828L; t++) {
#pragma HLS pipeline II=1
      const float v0 = *A_0;  // A[i][j]
      const float v1 = *A_1;  // A[i-1][j]
      const float v2 = *A_2;  // A[i+1][j]
      const float v3 = *A_3;  // A[i][j-1]
      const float v4 = *A_4;  // A[i][j+1]
    B_out[t] = stencil_op(v0, v1, v2, v3, v4);
  }
}
