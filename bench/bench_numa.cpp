// Locality-aware execution: tile placement quality and scheduler behavior
// on a multi-node topology (docs/RUNTIME.md, "Locality").
//
// Real multi-socket boxes are rare in CI, so the artifact forces a faked
// topology (NUP_FAKE_TOPOLOGY=2) whenever the discovered one has a single
// node: the scheduler then runs the full multi-queue machinery -- per-node
// run queues, sticky dispatch, idle stealing, per-node slab arenas -- with
// every fake node sharing the physical cores. Placement quality (which
// queue a tile lands in, how often workers cross nodes) is exact under the
// fake; only the *throughput* gap between placements needs real distinct
// memory domains, so the rate table is reported but scored against no
// claim on faked or core-starved hosts.
//
// Four placements of the same smoother frames, bit-identical outputs:
//
//   off         --numa off: the single-queue scheduler (baseline)
//   auto        cost-model placement: contiguous lex runs per node,
//               streamed bytes balanced (the shipped default under --numa)
//   interleave  tile t -> node t % N: maximal halo splitting, the
//               placement a round-robin page policy induces
//   remote      every tile pinned to node 0 while workers span all nodes:
//               all other nodes' work arrives by stealing -- the
//               worst-case placement the cost model must beat
//
// For each it prints steady-state frames/sec, the placement.local_fraction
// gauge (permille of tiles dispatched on their placed node), and the steal
// count. Acceptance: auto sustains local_fraction >= 0.9 steady-state,
// off performs zero steals, and the remote placement both steals and
// measures a lower local fraction than auto.
//
// The timed google-benchmarks then measure one frame per iteration of the
// off and auto schedules.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "runtime/engine.hpp"
#include "runtime/topology.hpp"
#include "stencil/gallery.hpp"
#include "stencil/program.hpp"

namespace {

using namespace nup;

constexpr std::int64_t kRows = 256;
constexpr std::int64_t kCols = 384;
constexpr std::int64_t kTileRows = 16;  // 16 row bands -> plenty to place
constexpr int kTotalFrames = 12;
constexpr int kFillFrames = 2;  ///< leading completions excluded from rate
constexpr std::size_t kWindow = 4;

// Force at least two scheduling nodes: a single-node host fakes a 2-node
// topology (the env override is read at every Topology::discover()).
void ensure_multi_node() {
  if (runtime::Topology::discover().node_count() >= 2) return;
  setenv("NUP_FAKE_TOPOLOGY", "2", 1);
}

stencil::StencilProgram smoother() {
  stencil::StencilProgram p(
      "numa_smoother", poly::Domain::box({1, 1}, {kRows - 2, kCols - 2}));
  p.add_input("A", {{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}});
  p.set_kernel(stencil::make_weighted_sum({0.1, 0.2, 0.4, 0.2, 0.1}));
  return p;
}

struct ModeNumbers {
  std::string mode;
  double frames_per_sec = 0;
  std::int64_t local_permille = -1;  ///< placement.local_fraction gauge
  std::int64_t stolen = 0;
  std::int64_t executed = 0;
  std::size_t nodes = 1;
};

// Pumps kTotalFrames through one engine keeping kWindow in flight and
// rates the completions past the fill; placement counters are read after
// the drain, so they cover every dispatched tile.
ModeNumbers run_mode(const std::string& label, runtime::NumaMode numa,
                     bool pin_all_to_node0) {
  obs::Registry registry;
  runtime::EngineOptions options;
  options.threads = runtime::Topology::discover().node_count();
  options.tile_shape = {kTileRows, 0};
  options.metrics = &registry;
  options.numa = numa;
  if (pin_all_to_node0) {
    options.place_tile = [](const runtime::Tile&, std::size_t,
                            std::size_t) { return 0; };
  }
  runtime::FrameEngine engine(options);
  const stencil::StencilProgram program = smoother();
  engine.plan_for(program);  // compile outside the timed region

  std::vector<runtime::FrameHandle> handles;
  std::vector<std::chrono::steady_clock::time_point> done(kTotalFrames);
  std::size_t next_wait = 0;
  for (int f = 0; f < kTotalFrames; ++f) {
    handles.push_back(engine.submit(program, static_cast<std::uint64_t>(f)));
    while (handles.size() >= next_wait + kWindow) {
      handles[next_wait].wait();
      done[next_wait] = std::chrono::steady_clock::now();
      ++next_wait;
    }
  }
  while (next_wait < handles.size()) {
    handles[next_wait].wait();
    done[next_wait] = std::chrono::steady_clock::now();
    ++next_wait;
  }

  ModeNumbers out;
  out.mode = label;
  const double span_s = std::chrono::duration<double>(
                            done[kTotalFrames - 1] - done[kFillFrames])
                            .count();
  out.frames_per_sec = (kTotalFrames - 1 - kFillFrames) / span_s;
  const runtime::EngineStats stats = engine.stats();
  out.stolen = stats.tiles_stolen;
  out.executed = stats.tiles_executed;
  out.nodes = stats.nodes;
  out.local_permille =
      registry.gauge("engine.placement.local_fraction").value();
  return out;
}

void print_artifact() {
  ensure_multi_node();
  const runtime::Topology topo = runtime::Topology::discover();
  const unsigned cores = std::thread::hardware_concurrency();
  // The throughput gap between placements is a memory-system effect: it
  // needs real distinct nodes and enough cores to keep them busy.
  const bool rates_scored = !topo.faked() && topo.node_count() >= 2 &&
                            cores >= 2 * topo.node_count();

  std::printf("topology: %s\n", topo.describe().c_str());
  std::printf("%dx%d smoother, tile rows=%lld, %d frames per placement "
              "(rate over the last %d), window %zu, %u hardware threads\n\n",
              static_cast<int>(kRows), static_cast<int>(kCols),
              static_cast<long long>(kTileRows), kTotalFrames,
              kTotalFrames - 1 - kFillFrames, kWindow, cores);

  const ModeNumbers off =
      run_mode("off", runtime::NumaMode::kOff, false);
  const ModeNumbers aut =
      run_mode("auto", runtime::NumaMode::kAuto, false);
  const ModeNumbers inter =
      run_mode("interleave", runtime::NumaMode::kInterleave, false);
  const ModeNumbers remote =
      run_mode("remote", runtime::NumaMode::kAuto, true);

  std::printf("%-12s %6s %10s %16s %8s %10s\n", "placement", "nodes",
              "frames/s", "local_fraction", "steals", "tiles");
  std::ostringstream json;
  json << "{\"benchmark\": \"numa\", \"nodes\": " << topo.node_count()
       << ", \"faked\": " << (topo.faked() ? "true" : "false")
       << ", \"cores\": " << cores << ", \"frames\": " << kTotalFrames
       << ", \"placements\": [";
  bool first = true;
  for (const ModeNumbers& m : {off, aut, inter, remote}) {
    std::printf("%-12s %6zu %10.2f %15.1f%% %8lld %10lld\n", m.mode.c_str(),
                m.nodes, m.frames_per_sec,
                static_cast<double>(m.local_permille) / 10.0,
                static_cast<long long>(m.stolen),
                static_cast<long long>(m.executed));
    json << (first ? "" : ", ") << "{\"mode\": \"" << m.mode
         << "\", \"nodes\": " << m.nodes
         << ", \"frames_per_sec\": " << m.frames_per_sec
         << ", \"local_permille\": " << m.local_permille
         << ", \"tiles_stolen\": " << m.stolen
         << ", \"tiles_executed\": " << m.executed << "}";
    first = false;
  }

  // Placement-quality claims hold on faked topologies too -- which queue a
  // tile lands in and who dequeues it is exact regardless of the memory
  // system underneath.
  bool claims_ok = true;
  if (aut.local_permille < 900) claims_ok = false;       // >= 0.9 local
  if (off.stolen != 0 || off.nodes != 1) claims_ok = false;
  if (remote.stolen == 0) claims_ok = false;             // steals happen
  if (remote.local_permille >= aut.local_permille) claims_ok = false;

  std::printf("\nlocal vs interleaved throughput: %.2fx%s\n",
              aut.frames_per_sec / inter.frames_per_sec,
              rates_scored ? "" : " (not scored: faked topology or too "
                                  "few cores)");
  std::printf("acceptance: auto local_fraction >= 0.9, off steals "
              "nothing, remote placement steals and measures a lower "
              "local fraction than auto: %s\n",
              claims_ok ? "ok" : "VIOLATED");

  json << "], \"local_vs_interleave\": "
       << aut.frames_per_sec / inter.frames_per_sec
       << ", \"rates_scored\": " << (rates_scored ? "true" : "false")
       << ", \"claims_ok\": " << (claims_ok ? "true" : "false") << "}";
  nup::bench::write_json("BENCH_numa.json", json.str());
}

// ---- timed benchmarks: one frame per iteration ------------------------

void BM_NumaOff(benchmark::State& state) {
  obs::Registry registry;
  runtime::EngineOptions options;
  options.threads = runtime::Topology::discover().node_count();
  options.tile_shape = {kTileRows, 0};
  options.metrics = &registry;
  runtime::FrameEngine engine(options);
  const stencil::StencilProgram program = smoother();
  engine.plan_for(program);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.submit(program, seed++).wait().outputs);
  }
}
BENCHMARK(BM_NumaOff)->Unit(benchmark::kMillisecond);

void BM_NumaAuto(benchmark::State& state) {
  obs::Registry registry;
  runtime::EngineOptions options;
  options.threads = runtime::Topology::discover().node_count();
  options.tile_shape = {kTileRows, 0};
  options.metrics = &registry;
  options.numa = runtime::NumaMode::kAuto;
  runtime::FrameEngine engine(options);
  const stencil::StencilProgram program = smoother();
  engine.plan_for(program);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.submit(program, seed++).wait().outputs);
  }
}
BENCHMARK(BM_NumaAuto)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  nup::bench::banner(
      "Locality-aware execution: placement quality and steal behavior");
  print_artifact();
  return nup::bench::run(argc, argv);
}
