// Temporal blocking: unrolled replica pipelines vs the frame-serial sweep.
//
// The artifact sweeps T = 8 heat-equation generations per frame and
// compares blocking factors B in {1, 2, 4} -- all bit-identical to the
// naive T-sweep golden (tests/temporal/) -- on steady-state throughput:
//
//   B = 1   frame-serial baseline: one replica per pass, T passes per
//           frame, every generation round-trips through the pass boundary
//   B = 2   two replica stages back to back, T/2 passes per frame
//   B = 4   four replica stages, T/4 passes per frame: intra-pass
//           generations stream tile-granularly through the stage pipeline
//           (producer tiles feed the next replica the moment its halo
//           resolves) and never cross a pass boundary
//
// Each configuration pumps kWarmupFrames + kMeasuredFrames frames through
// one TemporalRunner with cross-frame pass admission; the rate is taken
// over the measured batch only (design compiles and slab-pool growth land
// in the warmup). The acceptance claim -- unrolled B >= 2 sustains more
// generations/sec than frame-serial B = 1 -- is scored only on machines
// with >= 4 hardware threads; below that the replica stages cannot
// actually overlap and the artifact records the curve unscored.
//
// A second section reports the convergence monitor: the same kernel on a
// small grid run to T = 64 with a residual tolerance, counting the
// generations the early exit saves per blocking factor -- coarser blocks
// overshoot more, both because a pass only checks the residual at its
// boundary and because a B-generation delta is larger than a
// 1-generation one.
//
// The timed google-benchmarks then measure one full frame (all passes)
// per iteration for each blocking factor.

#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "stencil/boundary.hpp"
#include "stencil/gallery.hpp"
#include "temporal/runner.hpp"

namespace {

using namespace nup;

constexpr std::int64_t kRows = 192;
constexpr std::int64_t kCols = 256;
constexpr std::int64_t kTileRows = 24;
constexpr std::int64_t kTimesteps = 8;
constexpr std::size_t kThreadsPerStage = 1;
constexpr int kWarmupFrames = 2;
constexpr int kMeasuredFrames = 12;

temporal::RunnerOptions runner_options(obs::Registry* registry) {
  temporal::RunnerOptions options;
  options.pipeline.threads_per_stage = kThreadsPerStage;
  options.pipeline.tile_shape = {kTileRows, 0};
  options.pipeline.metrics = registry;
  return options;
}

struct Steady {
  double gens_per_sec = 0;       ///< over the measured frames
  std::int64_t passes_per_frame = 0;
};

Steady run_steady(std::int64_t block) {
  const stencil::StencilProgram step = stencil::heat_2d(kRows, kCols);
  obs::Registry registry;
  temporal::TemporalRunner runner(
      step,
      {.timesteps = kTimesteps, .block = block,
       .boundary = stencil::BoundaryPolicy::kClamp},
      runner_options(&registry));

  std::vector<std::uint64_t> seeds;
  for (int f = 0; f < kWarmupFrames; ++f) {
    seeds.push_back(static_cast<std::uint64_t>(f));
  }
  for (const temporal::FrameOutcome& outcome : runner.run_frames(seeds)) {
    if (!outcome.ok()) {
      std::fprintf(stderr, "warmup frame failed: %s\n",
                   outcome.error.c_str());
    }
  }

  seeds.clear();
  for (int f = 0; f < kMeasuredFrames; ++f) {
    seeds.push_back(static_cast<std::uint64_t>(kWarmupFrames + f));
  }
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<temporal::FrameOutcome> outcomes =
      runner.run_frames(seeds);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  Steady out;
  std::int64_t generations = 0;
  for (const temporal::FrameOutcome& outcome : outcomes) {
    if (!outcome.ok()) {
      std::fprintf(stderr, "measured frame failed: %s\n",
                   outcome.error.c_str());
    }
    generations += outcome.generations_completed;
    out.passes_per_frame = outcome.passes_completed;
  }
  out.gens_per_sec = generations / seconds;
  return out;
}

struct Converged {
  std::int64_t generations = 0;  ///< completed before the monitor stopped
  std::int64_t passes = 0;
  double residual = 0;
};

constexpr std::int64_t kConvTimesteps = 64;
constexpr double kConvTolerance = 5e-3;

Converged run_converged(std::int64_t block) {
  const stencil::StencilProgram step = stencil::heat_2d(24, 32);
  obs::Registry registry;
  temporal::RunnerOptions options = runner_options(&registry);
  options.tolerance = kConvTolerance;
  temporal::TemporalRunner runner(
      step,
      {.timesteps = kConvTimesteps, .block = block,
       .boundary = stencil::BoundaryPolicy::kClamp},
      options);
  const temporal::FrameOutcome outcome = runner.run(7);
  if (!outcome.ok()) {
    std::fprintf(stderr, "convergence frame failed: %s\n",
                 outcome.error.c_str());
  }
  return {outcome.generations_completed, outcome.passes_completed,
          outcome.last_residual};
}

void print_artifact() {
  const unsigned cores = std::thread::hardware_concurrency();
  const bool scored = cores >= 4;
  std::printf("HEAT_2D %lldx%lld, T=%lld generations/frame, tile rows=%lld, "
              "%zu workers per replica stage, %d measured frames, "
              "%u hardware threads\n\n",
              static_cast<long long>(kRows), static_cast<long long>(kCols),
              static_cast<long long>(kTimesteps),
              static_cast<long long>(kTileRows), kThreadsPerStage,
              kMeasuredFrames, cores);

  std::printf("%-6s %14s %12s %16s\n", "B", "passes/frame", "gen/s",
              "vs frame-serial");
  std::ostringstream json;
  json << "{\"benchmark\": \"temporal\", \"rows\": " << kRows
       << ", \"cols\": " << kCols << ", \"timesteps\": " << kTimesteps
       << ", \"tile_rows\": " << kTileRows
       << ", \"threads_per_stage\": " << kThreadsPerStage
       << ", \"measured_frames\": " << kMeasuredFrames << ", \"blocks\": [";

  bool claims_ok = true;
  double serial_rate = 0;
  bool first = true;
  for (const std::int64_t block : {1, 2, 4}) {
    const Steady steady = run_steady(block);
    if (block == 1) serial_rate = steady.gens_per_sec;
    const double speedup = steady.gens_per_sec / serial_rate;
    std::printf("%-6lld %14lld %12.1f %15.2fx\n",
                static_cast<long long>(block),
                static_cast<long long>(steady.passes_per_frame),
                steady.gens_per_sec, speedup);
    if (scored && block > 1 && speedup <= 1.0) claims_ok = false;
    json << (first ? "" : ", ") << "{\"block\": " << block
         << ", \"passes_per_frame\": " << steady.passes_per_frame
         << ", \"gens_per_sec\": " << steady.gens_per_sec
         << ", \"speedup_vs_serial\": " << speedup << "}";
    first = false;
  }

  std::printf("\nconvergence monitor, HEAT_2D 24x32, T=%lld, tolerance "
              "%.0e:\n",
              static_cast<long long>(kConvTimesteps), kConvTolerance);
  std::printf("%-6s %12s %8s %14s %12s\n", "B", "generations", "passes",
              "saved", "residual");
  json << "], \"convergence\": {\"timesteps\": " << kConvTimesteps
       << ", \"tolerance\": " << kConvTolerance << ", \"blocks\": [";
  first = true;
  for (const std::int64_t block : {1, 2, 4}) {
    const Converged c = run_converged(block);
    std::printf("%-6lld %12lld %8lld %14lld %12.2e\n",
                static_cast<long long>(block),
                static_cast<long long>(c.generations),
                static_cast<long long>(c.passes),
                static_cast<long long>(kConvTimesteps - c.generations),
                c.residual);
    // The monitor must stop early (heat converges well under the
    // tolerance at this size) with a residual at or under it.
    if (c.generations >= kConvTimesteps || c.residual > kConvTolerance) {
      claims_ok = false;
    }
    json << (first ? "" : ", ") << "{\"block\": " << block
         << ", \"generations\": " << c.generations
         << ", \"passes\": " << c.passes << ", \"residual\": " << c.residual
         << "}";
    first = false;
  }
  json << "]}, \"cores\": " << cores
       << ", \"scored\": " << (scored ? "true" : "false")
       << ", \"claims_ok\": " << (claims_ok ? "true" : "false") << "}";

  std::printf("\nacceptance: convergence exits early%s: %s\n",
              scored ? ", unrolled B >= 2 beats frame-serial gen/s"
                     : " (throughput not scored: too few cores to overlap "
                       "replica stages)",
              claims_ok ? "ok" : "VIOLATED");
  nup::bench::write_json("BENCH_temporal.json", json.str());
}

// ---- timed benchmarks: one full frame (all passes) per iteration ------

void run_one_frame(benchmark::State& state, std::int64_t block) {
  const stencil::StencilProgram step = stencil::heat_2d(kRows, kCols);
  obs::Registry registry;
  temporal::TemporalRunner runner(
      step,
      {.timesteps = kTimesteps, .block = block,
       .boundary = stencil::BoundaryPolicy::kClamp},
      runner_options(&registry));
  runner.run(0);  // compile the replica designs outside the timed region
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(seed++).outputs);
  }
}

void BM_TemporalFrameSerial(benchmark::State& state) {
  run_one_frame(state, 1);
}
BENCHMARK(BM_TemporalFrameSerial)->Unit(benchmark::kMillisecond);

void BM_TemporalBlock2(benchmark::State& state) { run_one_frame(state, 2); }
BENCHMARK(BM_TemporalBlock2)->Unit(benchmark::kMillisecond);

void BM_TemporalBlock4(benchmark::State& state) { run_one_frame(state, 4); }
BENCHMARK(BM_TemporalBlock4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  nup::bench::banner(
      "Temporal blocking: unrolled replica pipelines vs the frame-serial "
      "sweep");
  print_artifact();
  return nup::bench::run(argc, argv);
}
