// Ablation: the whole design space in one table. For each paper benchmark:
// the streaming non-uniform chain (ours), rescheduled cyclic partitioning
// (the [7] idea), padded linear GMP ([8]), flat cyclic ([5]), and the
// Section 6 future-work alternative -- contiguous non-uniform modulo
// regions -- quantified by its min-gap bound. Shows why streaming is the
// only scheme that reaches n-1 banks.

#include <cstdio>

#include "arch/builder.hpp"
#include "baseline/cyclic.hpp"
#include "baseline/gmp.hpp"
#include "baseline/nonuniform_modulo.hpp"
#include "baseline/reschedule.hpp"
#include "bench_common.hpp"
#include "stencil/gallery.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace {

using namespace nup;

std::vector<poly::IntVec> window_of(const stencil::StencilProgram& p) {
  std::vector<poly::IntVec> offsets;
  for (const stencil::ArrayReference& ref : p.inputs()[0].refs) {
    offsets.push_back(ref.offset);
  }
  return offsets;
}

void print_artifact() {
  bench::banner(
      "Ablation: bank counts across the whole scheme space "
      "(streaming vs modulo variants)");
  TextTable table;
  table.set_header({"benchmark", "n", "ours (stream)", "resched [7]",
                    "gmp [8]", "cyclic [5]", "contiguous modulo"});
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    std::string contiguous;
    try {
      baseline::ModuloExploreOptions options;
      options.max_regions = 1 << 20;
      options.max_span = 200'000;
      const baseline::ModuloExploration region = explore_nonuniform_modulo(
          window_of(p), baseline::array_extents(p, 0), options);
      contiguous = std::to_string(region.best_regions);
    } catch (const Error&) {
      contiguous = "degenerate";
    }
    table.add_row(
        {p.name(), std::to_string(p.total_references()),
         std::to_string(arch::build_design(p).systems[0].bank_count()),
         std::to_string(
             baseline::reschedule_partition(p, 0).partition.banks),
         std::to_string(baseline::gmp_partition(p, 0).banks),
         std::to_string(baseline::cyclic_partition(p, 0).banks),
         contiguous});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nreading guide: every modulo-class scheme is floored at n by the\n"
      "pigeonhole argument (n simultaneous reads); rescheduling [7] reaches\n"
      "that floor, GMP [8] and cyclic [5] sometimes exceed it, and the\n"
      "Section 6 future-work idea (contiguous non-uniform regions) needs\n"
      "ceil(span/min-gap) banks -- element-granularity whenever the window\n"
      "has unit gaps. Only the streaming chain breaks the floor with n-1,\n"
      "because the newest window element comes straight from off-chip.\n");
}

void BM_FullSchemeSpace(benchmark::State& state) {
  const std::vector<stencil::StencilProgram> programs =
      stencil::paper_benchmarks();
  for (auto _ : state) {
    std::size_t acc = 0;
    for (const stencil::StencilProgram& p : programs) {
      acc += baseline::reschedule_partition(p, 0).partition.banks;
      acc += baseline::gmp_partition(p, 0).banks;
      acc += baseline::cyclic_partition(p, 0).banks;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_FullSchemeSpace)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  return nup::bench::run(argc, argv);
}
