// Experiment: Table 5 -- post-synthesis resource comparison ([8] vs ours):
// BRAM18K, logic slices, DSP48 and clock period, per benchmark plus the
// average row. ISE 14.2 is unavailable offline; the analytical FPGA model
// of src/hls (DESIGN.md Section 3) substitutes for it. Paper averages:
// -66% BRAM, -25% slices, -100% DSP, slightly better slack.

#include <cstdio>

#include "arch/builder.hpp"
#include "baseline/gmp.hpp"
#include "bench_common.hpp"
#include "hls/report.hpp"
#include "stencil/gallery.hpp"

namespace {

using namespace nup;

std::vector<hls::SynthesisComparison> build_rows() {
  const hls::DeviceModel device = hls::virtex7_485t();
  std::vector<hls::SynthesisComparison> rows;
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    hls::SynthesisComparison row;
    row.benchmark = p.name();
    row.baseline = hls::estimate_uniform(baseline::gmp_partition(p, 0),
                                         p.total_references(), device);
    row.ours = hls::estimate_streaming(arch::build_design(p), p, device);
    rows.push_back(row);
  }
  return rows;
}

void print_artifact() {
  bench::banner(
      "Table 5: synthesis results on Virtex-7 XC7VX485T (analytical model)");
  const std::vector<hls::SynthesisComparison> rows = build_rows();
  std::printf("%s", hls::render_synthesis_table(rows).c_str());
  const hls::SynthesisAverages avg = hls::average_deltas(rows);
  std::printf("\npaper averages for reference: BRAM -66%%, slices -25%%, "
              "DSP -100%%, CP slightly better\n");
  std::printf("our model lands at:          BRAM %.1f%%, slices %.1f%%, "
              "DSP %.1f%%, CP %.1f%%\n",
              avg.bram * 100.0, avg.slices * 100.0, avg.dsp * 100.0,
              avg.clock_period * 100.0);
}

void BM_FullTable5(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_rows().size());
  }
}
BENCHMARK(BM_FullTable5)->Unit(benchmark::kMillisecond);

void BM_EstimateStreamingSegmentation(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::segmentation_3d();
  const arch::AcceleratorDesign design = arch::build_design(p);
  const hls::DeviceModel device = hls::virtex7_485t();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hls::estimate_streaming(design, p, device).slices);
  }
}
BENCHMARK(BM_EstimateStreamingSegmentation);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  return nup::bench::run(argc, argv);
}
