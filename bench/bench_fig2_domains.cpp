// Experiment: Fig 2 / Table 1 -- the DENOISE running example. Prints the
// paper's denotation table (domains, reuse distance vectors, maximum reuse
// distances) computed by the polyhedral substrate, and times the underlying
// domain operations.

#include <cstdio>

#include "bench_common.hpp"
#include "poly/reuse.hpp"
#include "stencil/gallery.hpp"
#include "util/table.hpp"

namespace {

using namespace nup;

void print_artifact() {
  bench::banner(
      "Fig 2 / Table 1: DENOISE iteration & data domains, reuse distances");
  const stencil::StencilProgram p = stencil::denoise_2d();
  const std::vector<std::string> names = p.iteration_names();

  std::printf("%s\n", p.to_c_code().c_str());
  std::printf("iteration domain D: %s (%lld points)\n",
              p.iteration().to_string().c_str(),
              static_cast<long long>(p.iteration().count()));
  const poly::Domain union_domain = p.input_data_domain(0);
  std::printf("input data domain D_A: union of 5 translated domains, %lld "
              "points (hull box 768x1024 = %lld; the 4 corners are unused, "
              "Example 4)\n",
              static_cast<long long>(union_domain.count()),
              static_cast<long long>(768 * 1024));

  TextTable table("Per-reference data domains and reuse distances");
  table.set_header({"reference", "offset f_x", "D_Ax first point",
                    "max reuse dist to next"});
  const poly::Domain hull = p.data_domain_hull(0);
  // Fig 7 order: descending lexicographic offsets.
  std::vector<poly::IntVec> ordered = {
      {1, 0}, {0, 1}, {0, 0}, {0, -1}, {-1, 0}};
  for (std::size_t k = 0; k < ordered.size(); ++k) {
    const poly::Domain ref_domain = p.iteration().translated(ordered[k]);
    const poly::IntVec first = ref_domain.lex_min().value();
    std::string dist = "-";
    if (k + 1 < ordered.size()) {
      dist = std::to_string(
          poly::max_reuse_distance(p.iteration(), hull, ordered[k],
                                   ordered[k + 1])
              .max_distance);
    }
    const stencil::ArrayReference ref{ordered[k]};
    table.add_row({ref.to_string("A", names), poly::to_string(ordered[k]),
                   poly::to_string(first), dist});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "end-to-end max reuse distance A[i+1][j] -> A[i-1][j]: %lld "
      "(paper: 2048 = minimum total reuse buffer size)\n",
      static_cast<long long>(
          poly::max_reuse_distance(p.iteration(), hull, {1, 0}, {-1, 0})
              .max_distance));
}

void BM_InputDomainCount(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::denoise_2d();
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.input_data_domain(0).count());
  }
}
BENCHMARK(BM_InputDomainCount);

void BM_MaxReuseDistanceBoxClosedForm(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::denoise_2d();
  const poly::Domain hull = p.data_domain_hull(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        poly::max_reuse_distance(p.iteration(), hull, {1, 0}, {-1, 0})
            .max_distance);
  }
}
BENCHMARK(BM_MaxReuseDistanceBoxClosedForm);

void BM_MaxReuseDistanceExactUnion(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::denoise_2d(96, 128);
  const poly::Domain union_domain = p.input_data_domain(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        poly::max_reuse_distance(p.iteration(), union_domain, {1, 0},
                                 {-1, 0})
            .max_distance);
  }
}
BENCHMARK(BM_MaxReuseDistanceExactUnion);

void BM_RankOracleQuery(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::denoise_2d();
  const poly::RankOracle oracle(p.input_data_domain(0));
  poly::IntVec point{400, 512};
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.rank_inclusive(point));
  }
}
BENCHMARK(BM_RankOracleQuery);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  return nup::bench::run(argc, argv);
}
