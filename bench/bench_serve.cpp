// Design-affinity batching vs round-robin dispatch in the multi-tenant
// serving front-end (src/serve).
//
// The artifact runs the same workload -- 4 tenants, each submitting an
// interleaved mix of 2 distinct tile designs (BLUR_3x3's 3x3 window vs
// JACOBI_2D's 5-point cross on the same grid) -- through a StencilServer
// under both dispatch policies:
//
//   affinity     the dispatcher groups queued requests by canonical
//                design key, pins one design set, and drains the whole
//                affinity group before switching designs
//   round_robin  weighted-fair order only, design-blind: consecutive
//                dispatches alternate designs almost every frame
//
// The engine's design cache is sized (via a probe run) to hold exactly
// ONE design's tile set, so every design switch evicts and recompiles:
// round-robin thrashes the cache on nearly every dispatch while affinity
// pays the switch once per group. Reported per policy: DesignCache hit
// rate, p50/p99 queue time, p50/p99 end-to-end frame latency, frames/s,
// design switches, and groups formed. Every frame is also checked
// bit-identical against stencil::run_golden -- batching is a scheduling
// optimisation, never an output change.
//
// Acceptance (scored on every machine -- the effect is cache behaviour,
// not core count): affinity's cache hit rate exceeds round-robin's, its
// p99 frame latency is lower, it performs no extra design switches, and
// zero output divergence under either policy.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "runtime/engine.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"

namespace {

using namespace nup;

// Small frames over many tiles: a design switch recompiles every tile
// design, so the smaller the per-frame compute, the more the switch cost
// dominates -- which is precisely what the policies differ on.
constexpr std::int64_t kRows = 64;
constexpr std::int64_t kCols = 96;
constexpr std::int64_t kTileRows = 8;
constexpr int kTenants = 4;
constexpr int kFramesPerTenant = 24;

std::vector<stencil::StencilProgram> designs() {
  // Same grid, different windows: two distinct canonical design keys.
  return {stencil::blur_2d(kRows, kCols), stencil::jacobi_2d(kRows, kCols)};
}

/// Tile designs one kernel occupies in the cache (probe run: one frame,
/// then read the cache entry count).
std::size_t entries_per_design(const stencil::StencilProgram& p) {
  obs::Registry registry;
  runtime::EngineOptions options;
  options.threads = 1;
  options.tile_shape = {kTileRows, 0};
  options.metrics = &registry;
  runtime::FrameEngine engine(options);
  engine.submit(p, 1).wait();
  return static_cast<std::size_t>(engine.stats().cache.entries);
}

struct PolicyNumbers {
  double hit_rate = 0;
  double queue_p50_us = 0;
  double queue_p99_us = 0;
  double frame_p50_us = 0;
  double frame_p99_us = 0;
  double frames_per_sec = 0;
  std::int64_t design_switches = 0;
  std::int64_t groups = 0;
  bool bit_identical = true;
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[idx];
}

PolicyNumbers run_policy(serve::Policy policy, std::size_t cache_capacity) {
  obs::Registry registry;
  serve::ServeOptions options;
  options.engine.threads = 2;
  options.engine.tile_shape = {kTileRows, 0};
  options.engine.cache_capacity = cache_capacity;
  // A wide window lets the affinity dispatcher form large same-design
  // groups (the switch cost amortizes over the group); round-robin gets
  // the same window and still alternates designs inside it.
  options.max_frames_in_flight = 8;
  options.global_queue_limit = 0;  // measure scheduling, not shedding
  options.policy = policy;
  options.metrics = &registry;
  serve::StencilServer server(options);
  const std::vector<stencil::StencilProgram> progs = designs();
  for (const stencil::StencilProgram& p : progs) server.add_kernel(p);

  std::vector<serve::ServeClient> clients;
  clients.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    serve::TenantQuota quota;
    quota.max_in_flight = 8;
    quota.max_queued = 2 * kFramesPerTenant;
    clients.emplace_back(server, "t" + std::to_string(t), quota);
  }

  // Interleaved mix: every tenant alternates designs frame by frame, so a
  // design-blind dispatcher switches designs on almost every dispatch.
  struct Pending {
    serve::RequestHandle handle;
    const stencil::StencilProgram* program;
    std::uint64_t seed;
  };
  std::vector<Pending> pending;
  const auto t0 = std::chrono::steady_clock::now();
  for (int f = 0; f < kFramesPerTenant; ++f) {
    for (int t = 0; t < kTenants; ++t) {
      const stencil::StencilProgram& p = progs[(f + t) % progs.size()];
      const std::uint64_t seed =
          static_cast<std::uint64_t>(t * kFramesPerTenant + f + 1);
      serve::SubmitResult r = clients[t].submit(p.name(), seed);
      if (!r.admitted()) {
        std::fprintf(stderr, "bench_serve: unexpected shed (%s)\n",
                     serve::to_string(r.reason));
        continue;
      }
      pending.push_back({r.handle, &p, seed});
    }
  }

  PolicyNumbers out;
  std::vector<double> queue_us;
  for (Pending& req : pending) {
    const runtime::FrameResult& result = req.handle.wait();
    if (!result.ok() ||
        result.outputs != stencil::run_golden(*req.program, req.seed).outputs) {
      out.bit_identical = false;
    }
  }
  const double span_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  // Queue time is exact per request (queue_us() on the handle); frame
  // latency (submit-to-resolve) comes from the serve.frame_us histogram,
  // whose interpolated percentiles cover the same population.
  for (Pending& req : pending) {
    queue_us.push_back(static_cast<double>(req.handle.queue_us()));
  }
  const serve::ServeStats stats = server.stats();
  const runtime::EngineStats engine_stats = server.engine().stats();
  const obs::Histogram::Snapshot frame_hist =
      registry.histogram("serve.frame_us").snapshot();
  server.shutdown();

  out.hit_rate =
      static_cast<double>(engine_stats.cache.hits) /
      static_cast<double>(engine_stats.cache.hits + engine_stats.cache.misses);
  out.queue_p50_us = percentile(queue_us, 0.50);
  out.queue_p99_us = percentile(queue_us, 0.99);
  out.frame_p50_us = frame_hist.percentile(0.50);
  out.frame_p99_us = frame_hist.percentile(0.99);
  out.frames_per_sec = static_cast<double>(stats.completed) / span_s;
  out.design_switches = stats.design_switches;
  out.groups = stats.groups;
  if (stats.completed !=
      static_cast<std::int64_t>(kTenants) * kFramesPerTenant) {
    out.bit_identical = false;
  }
  return out;
}

void print_artifact() {
  const std::vector<stencil::StencilProgram> progs = designs();
  std::size_t per_design = 0;
  for (const stencil::StencilProgram& p : progs) {
    per_design = std::max(per_design, entries_per_design(p));
  }
  // Room for exactly one design's tile set: every switch evicts.
  const std::size_t cache_capacity = per_design;

  std::printf("%d tenants x %d frames each, 2 designs (%s, %s) on "
              "%lldx%lld, tile rows=%lld, cache capacity=%zu designs' "
              "tiles (%zu per design)\n\n",
              kTenants, kFramesPerTenant, progs[0].name().c_str(),
              progs[1].name().c_str(), static_cast<long long>(kRows),
              static_cast<long long>(kCols),
              static_cast<long long>(kTileRows), cache_capacity, per_design);

  const PolicyNumbers affinity =
      run_policy(serve::Policy::kAffinity, cache_capacity);
  const PolicyNumbers round_robin =
      run_policy(serve::Policy::kRoundRobin, cache_capacity);

  std::printf("%-12s %9s %12s %12s %12s %12s %10s %9s %8s\n", "policy",
              "hit-rate", "queue-p50", "queue-p99", "frame-p50", "frame-p99",
              "frames/s", "switches", "groups");
  const auto row = [](const char* name, const PolicyNumbers& n) {
    std::printf("%-12s %8.1f%% %10.0fus %10.0fus %10.0fus %10.0fus %10.2f "
                "%9lld %8lld\n",
                name, 100.0 * n.hit_rate, n.queue_p50_us, n.queue_p99_us,
                n.frame_p50_us, n.frame_p99_us, n.frames_per_sec,
                static_cast<long long>(n.design_switches),
                static_cast<long long>(n.groups));
  };
  row("affinity", affinity);
  row("round_robin", round_robin);

  const bool claims_ok = affinity.bit_identical && round_robin.bit_identical &&
                         affinity.hit_rate > round_robin.hit_rate &&
                         affinity.design_switches <= round_robin.design_switches &&
                         affinity.frame_p99_us < round_robin.frame_p99_us;
  std::printf("\nbit-identical to run_golden: affinity %s, round_robin %s\n",
              affinity.bit_identical ? "yes" : "NO",
              round_robin.bit_identical ? "yes" : "NO");
  std::printf("acceptance: affinity beats round-robin on cache hit rate and "
              "p99 frame latency (no extra design switches), zero output "
              "divergence: %s\n",
              claims_ok ? "ok" : "VIOLATED");

  std::ostringstream json;
  const auto emit = [&json](const char* name, const PolicyNumbers& n) {
    json << "\"" << name << "\": {\"cache_hit_rate\": " << n.hit_rate
         << ", \"queue_p50_us\": " << n.queue_p50_us
         << ", \"queue_p99_us\": " << n.queue_p99_us
         << ", \"frame_p50_us\": " << n.frame_p50_us
         << ", \"frame_p99_us\": " << n.frame_p99_us
         << ", \"frames_per_sec\": " << n.frames_per_sec
         << ", \"design_switches\": " << n.design_switches
         << ", \"groups\": " << n.groups << ", \"bit_identical\": "
         << (n.bit_identical ? "true" : "false") << "}";
  };
  json << "{\"benchmark\": \"serve\", \"tenants\": " << kTenants
       << ", \"frames_per_tenant\": " << kFramesPerTenant
       << ", \"designs\": 2, \"rows\": " << kRows << ", \"cols\": " << kCols
       << ", \"tile_rows\": " << kTileRows
       << ", \"cache_capacity\": " << cache_capacity << ", ";
  emit("affinity", affinity);
  json << ", ";
  emit("round_robin", round_robin);
  json << ", \"claims_ok\": " << (claims_ok ? "true" : "false") << "}";
  nup::bench::write_json("BENCH_serve.json", json.str());
}

// ---- timed benchmark: one mixed-design burst per iteration -------------

void BM_ServeMixedBurst(benchmark::State& state) {
  const bool affinity = state.range(0) != 0;
  obs::Registry registry;
  serve::ServeOptions options;
  options.engine.threads = 2;
  options.engine.tile_shape = {kTileRows, 0};
  options.max_frames_in_flight = 2;
  options.policy =
      affinity ? serve::Policy::kAffinity : serve::Policy::kRoundRobin;
  options.metrics = &registry;
  serve::StencilServer server(options);
  const std::vector<stencil::StencilProgram> progs = designs();
  for (const stencil::StencilProgram& p : progs) server.add_kernel(p);
  serve::ServeClient a(server, "a"), b(server, "b");
  std::uint64_t seed = 1;
  for (auto _ : state) {
    for (int f = 0; f < 4; ++f) {
      a.submit(progs[f % 2].name(), seed++);
      b.submit(progs[(f + 1) % 2].name(), seed++);
    }
    benchmark::DoNotOptimize(a.wait_all() + b.wait_all());
  }
  server.shutdown();
}
BENCHMARK(BM_ServeMixedBurst)
    ->Arg(1)
    ->Arg(0)
    ->ArgName("affinity")
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  nup::bench::banner(
      "Multi-tenant serving: design-affinity batching vs round-robin");
  print_artifact();
  return nup::bench::run(argc, argv);
}
