// Simulator backend comparison: reference (per-token grid points, deque
// FIFOs, per-cycle polyhedral membership) vs the compiled fast lane
// (precompiled row programs, flat double ring buffers). Prints measured
// cycles/sec and the speedup for all six gallery kernels, then runs timed
// benchmarks on the headline DENOISE 768x1024 configuration. Acceptance
// target: >= 5x cycles/sec on DENOISE with zero behavioral divergence
// (the divergence half is enforced by tests/sim/differential_test.cpp).

#include <chrono>
#include <cstdio>
#include <sstream>

#include "arch/builder.hpp"
#include "bench_common.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"

namespace {

using namespace nup;

sim::SimOptions backend_options(sim::SimBackend backend) {
  sim::SimOptions options;
  options.backend = backend;
  options.record_outputs = false;
  return options;
}

struct Measured {
  std::int64_t cycles = 0;
  double seconds = 0.0;
  double cycles_per_sec() const { return cycles / seconds; }
};

Measured run_once(const stencil::StencilProgram& p,
                  const arch::AcceleratorDesign& design,
                  sim::SimBackend backend) {
  const auto t0 = std::chrono::steady_clock::now();
  const sim::SimResult r = sim::simulate(p, design, backend_options(backend));
  const auto t1 = std::chrono::steady_clock::now();
  Measured m;
  m.cycles = r.cycles;
  m.seconds = std::chrono::duration<double>(t1 - t0).count();
  return m;
}

void print_comparison_table() {
  // The paper-scale 3-D grids take ~1.5M simulated cycles; the 2-D kernels
  // run at the full 768x1024 the paper evaluates.
  const std::vector<stencil::StencilProgram> programs = {
      stencil::denoise_2d(),          stencil::rician_2d(),
      stencil::sobel_2d(),            stencil::bicubic_2d(),
      stencil::denoise_3d(48, 64, 64),
      stencil::segmentation_3d(48, 64, 64)};
  std::printf("%-16s %12s %16s %16s %9s\n", "kernel", "cycles",
              "reference cyc/s", "fast cyc/s", "speedup");
  std::ostringstream json;
  json << "{\"benchmark\": \"sim_backends\", \"kernels\": [";
  bool first = true;
  for (const stencil::StencilProgram& p : programs) {
    const arch::AcceleratorDesign design = arch::build_design(p);
    const Measured ref = run_once(p, design, sim::SimBackend::kReference);
    const Measured fast = run_once(p, design, sim::SimBackend::kFast);
    std::printf("%-16s %12lld %16.3g %16.3g %8.1fx\n", p.name().c_str(),
                static_cast<long long>(ref.cycles), ref.cycles_per_sec(),
                fast.cycles_per_sec(),
                fast.cycles_per_sec() / ref.cycles_per_sec());
    json << (first ? "" : ", ") << "{\"kernel\": \"" << p.name()
         << "\", \"cycles\": " << ref.cycles
         << ", \"reference_cycles_per_sec\": " << ref.cycles_per_sec()
         << ", \"fast_cycles_per_sec\": " << fast.cycles_per_sec()
         << ", \"speedup\": "
         << fast.cycles_per_sec() / ref.cycles_per_sec() << "}";
    first = false;
  }
  json << "]}";
  nup::bench::write_json("BENCH_sim.json", json.str());
}

/// W-wide sweep on the headline DENOISE 768x1024: wall-clock throughput in
/// scalar cycles/sec (work rate) and datapath cycles/sec (machine rate).
/// Acceptance: W=8 retires >= 2x the scalar cycles/sec of W=1.
void print_width_sweep() {
  const stencil::StencilProgram p = stencil::denoise_2d();
  std::printf("\nW-wide fast backend, DENOISE 768x1024:\n");
  std::printf("%5s %12s %16s %16s %9s\n", "W", "cycles", "cycles/s",
              "datapath cyc/s", "speedup");
  std::ostringstream json;
  json << "{\"benchmark\": \"sim_width_sweep\", \"kernel\": \""
       << p.name() << "\", \"points\": [";
  double base = 0.0;
  bool first = true;
  for (const std::int64_t w : {1, 4, 8}) {
    arch::BuildOptions opts;
    opts.datapath_width = w;
    const arch::AcceleratorDesign design = arch::build_design(p, opts);
    const auto t0 = std::chrono::steady_clock::now();
    const sim::SimResult r =
        sim::simulate(p, design, backend_options(sim::SimBackend::kFast));
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    const double rate = static_cast<double>(r.cycles) / seconds;
    const double dp_rate =
        static_cast<double>(r.datapath_cycles) / seconds;
    if (w == 1) base = rate;
    std::printf("%5lld %12lld %16.3g %16.3g %8.2fx\n",
                static_cast<long long>(w),
                static_cast<long long>(r.cycles), rate, dp_rate,
                rate / base);
    json << (first ? "" : ", ") << "{\"width\": " << w
         << ", \"cycles\": " << r.cycles
         << ", \"datapath_cycles\": " << r.datapath_cycles
         << ", \"cycles_per_sec\": " << rate
         << ", \"datapath_cycles_per_sec\": " << dp_rate
         << ", \"speedup_vs_w1\": " << rate / base << "}";
    first = false;
  }
  json << "]}";
  nup::bench::write_json("BENCH_sim_width.json", json.str());
}

void BM_ReferenceBackendDenoise(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::denoise_2d();
  const arch::AcceleratorDesign design = arch::build_design(p);
  std::int64_t cycles = 0;
  for (auto _ : state) {
    cycles = sim::simulate(p, design,
                           backend_options(sim::SimBackend::kReference))
                 .cycles;
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReferenceBackendDenoise)->Unit(benchmark::kMillisecond);

void BM_FastBackendDenoise(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::denoise_2d();
  const arch::AcceleratorDesign design = arch::build_design(p);
  std::int64_t cycles = 0;
  for (auto _ : state) {
    cycles =
        sim::simulate(p, design, backend_options(sim::SimBackend::kFast))
            .cycles;
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FastBackendDenoise)->Unit(benchmark::kMillisecond);

void BM_FastBackendDenoiseWide(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::denoise_2d();
  arch::BuildOptions opts;
  opts.datapath_width = state.range(0);
  const arch::AcceleratorDesign design = arch::build_design(p, opts);
  std::int64_t cycles = 0;
  for (auto _ : state) {
    cycles =
        sim::simulate(p, design, backend_options(sim::SimBackend::kFast))
            .cycles;
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FastBackendDenoiseWide)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_FastBackendConstruction(benchmark::State& state) {
  // Row-program compilation cost: what the fast lane pays up front.
  const stencil::StencilProgram p = stencil::denoise_2d();
  const arch::AcceleratorDesign design = arch::build_design(p);
  sim::SimOptions options = backend_options(sim::SimBackend::kFast);
  options.max_cycles = 0;  // construct, run zero cycles
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(p, design, options).cycles);
  }
}
BENCHMARK(BM_FastBackendConstruction);

}  // namespace

int main(int argc, char** argv) {
  nup::bench::banner(
      "Simulator backends: reference vs compiled fast lane (cycles/sec)");
  print_comparison_table();
  print_width_sweep();
  return nup::bench::run(argc, argv);
}
