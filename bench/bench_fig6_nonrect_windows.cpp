// Experiment: Fig 6 -- non-rectangular stencil windows where uniform
// partitioning [7][8] needs more banks than the window size, while the
// theoretical minimum is n-1. Prints the per-window comparison (paper:
// 5 / 5 / 20 banks for the three windows) and times the GMP scheme search.

#include <cstdio>

#include "arch/builder.hpp"
#include "baseline/gmp.hpp"
#include "bench_common.hpp"
#include "stencil/gallery.hpp"
#include "util/table.hpp"

namespace {

using namespace nup;

void print_artifact() {
  bench::banner(
      "Fig 6: windows where [7][8] need more banks than n (paper: 5/5/20)");
  TextTable table;
  table.set_header({"window", "points n", "banks [8]", "scheme alpha",
                    "min n-1", "banks ours"});
  const stencil::StencilProgram programs[] = {
      stencil::bicubic_2d(), stencil::rician_2d(),
      stencil::segmentation_3d()};
  for (const stencil::StencilProgram& p : programs) {
    const baseline::UniformPartition gmp = baseline::gmp_partition(p, 0);
    const arch::AcceleratorDesign ours = arch::build_design(p);
    table.add_row({p.name(), std::to_string(p.total_references()),
                   std::to_string(gmp.banks), poly::to_string(gmp.scheme),
                   std::to_string(p.total_references() - 1),
                   std::to_string(ours.systems[0].bank_count())});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nwindow shapes (reconstructions, DESIGN.md Section 5):\n");
  for (const stencil::StencilProgram& p : programs) {
    std::printf("  %-16s:", p.name().c_str());
    for (const stencil::ArrayReference& ref : p.inputs()[0].refs) {
      std::printf(" %s", poly::to_string(ref.offset).c_str());
    }
    std::printf("\n");
  }
}

void BM_GmpSearchRician(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::rician_2d();
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::gmp_partition(p, 0).banks);
  }
}
BENCHMARK(BM_GmpSearchRician);

void BM_GmpSearchSegmentation3d(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::segmentation_3d();
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::gmp_partition(p, 0).banks);
  }
}
BENCHMARK(BM_GmpSearchSegmentation3d);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  return nup::bench::run(argc, argv);
}
