// Experiment: Table 3 -- the automatic filling of reuse buffers during the
// first ~2050 cycles of DENOISE: filter status (f/d/s) and FIFO occupancy
// cycle by cycle. The paper idealizes away inter-module latency; our trace
// includes the one-cycle latency per chain stage, so events shift by a few
// cycles but the staircase is identical. Also times full-run simulation.

#include <cstdio>
#include <string>

#include "arch/builder.hpp"
#include "bench_common.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "util/table.hpp"

namespace {

using namespace nup;

std::string status_string(const sim::CycleTrace& t) {
  std::string out;
  for (sim::FilterStatus s : t.filters) {
    out.push_back(static_cast<char>(s));
    out.push_back(' ');
  }
  return out;
}

std::string fill_string(const sim::CycleTrace& t) {
  std::string out;
  for (std::size_t k = 0; k < t.fifo_fill.size(); ++k) {
    if (k > 0) out += " / ";
    out += std::to_string(t.fifo_fill[k]);
  }
  return out;
}

void print_artifact() {
  bench::banner(
      "Table 3: execution flow of the DENOISE microarchitecture "
      "(768x1024, exact input stream)");
  const stencil::StencilProgram p = stencil::denoise_2d();
  arch::BuildOptions build;
  build.exact_streaming = true;  // stream the exact union: starts at (0,1)
  const arch::AcceleratorDesign design = arch::build_design(p, build);
  sim::SimOptions options;
  options.trace_cycles = 2200;
  options.record_outputs = false;
  const sim::SimResult r = sim::simulate(p, design, options);

  TextTable table;
  table.set_header({"cycle", "data in stream",
                    "filters 0..4 (f/d/s)", "FIFO fill 0..3"});
  std::string previous;
  std::int64_t printed = 0;
  for (const sim::CycleTrace& t : r.trace) {
    const std::string status = status_string(t);
    const bool interesting = t.cycle <= 6 || status != previous;
    previous = status;
    if (!interesting) continue;
    table.add_row({std::to_string(t.cycle), t.stream_point, status,
                   fill_string(t)});
    if (++printed > 28) break;
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nfirst kernel fire at cycle %lld (paper, latency ignored: 2049); "
      "after it the pipeline runs at II ~ %.4f\n",
      static_cast<long long>(r.fill_latency), r.steady_ii);
  std::printf("full run: %lld cycles, %lld outputs, deadlock-free: %s\n",
              static_cast<long long>(r.cycles),
              static_cast<long long>(r.kernel_fires),
              r.deadlocked ? "NO" : "yes");
}

void BM_SimulateDenoiseFull(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::denoise_2d();
  const arch::AcceleratorDesign design = arch::build_design(p);
  sim::SimOptions options;
  options.record_outputs = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(p, design, options).cycles);
  }
  state.SetItemsProcessed(state.iterations() * 768 * 1024);
}
BENCHMARK(BM_SimulateDenoiseFull)->Unit(benchmark::kMillisecond);

void BM_SimulateDenoiseSmall(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::denoise_2d(64, 64);
  const arch::AcceleratorDesign design = arch::build_design(p);
  sim::SimOptions options;
  options.record_outputs = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(p, design, options).cycles);
  }
  state.SetItemsProcessed(state.iterations() * 64 * 64);
}
BENCHMARK(BM_SimulateDenoiseSmall);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  return nup::bench::run(argc, argv);
}
