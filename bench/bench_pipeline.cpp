// Stage-pipelined execution vs the frame-barrier baseline vs monolithic
// fusion.
//
// The artifact runs 2- and 3-stage smoother chains through three
// schedules that all produce bit-identical sink outputs:
//
//   pipelined  PipelineExecutor, tile-granular: a consumer tile starts
//              the moment the producer tiles covering its halo resolve
//   barrier    the same executor with every consumer tile waiting for
//              the whole producer frame (the sequential baseline; same
//              engines, buffers and stitching -- only the dependency
//              structure differs)
//   fused      stencil::fuse_chain collapses the chain into one stencil
//              and a single FrameEngine runs it (no inter-stage traffic,
//              but a larger window and a deeper per-point kernel)
//
// For each chain it prints end-to-end frame latency and the time to the
// first sink-stage output tile, and checks the acceptance claims: the
// sink stage produces its first tile before the first stage has finished
// (overlap), time-to-first-output beats the barrier schedule, and -- on a
// machine with enough cores to actually run the stages concurrently
// (>= stages + 1) -- pipelined end-to-end latency does not exceed the
// barrier baseline on the 3-stage chain. On smaller machines the
// end-to-end comparison is reported but not scored (a single core cannot
// overlap anything; EXPERIMENTS.md records the measured curve and the
// core count that produced it).
//
// The steady-state section then measures cross-frame throughput on the
// 3-stage chain: 24 frames pumped through one executor, frames/sec
// computed over the middle 16 completions (fill and drain excluded), for
// the interleaved window (4 frames in flight), the frame-serial window
// (1), and the fused single-engine schedule. The claim -- interleaving
// sustains >= 1.3x the frame-serial rate -- is scored only with >= 4
// cores, for the same reason as the end-to-end comparison.
//
// The timed google-benchmarks then measure one frame per iteration of
// each schedule on the 3-stage chain.

#include <chrono>
#include <cstdio>
#include <deque>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "pipeline/executor.hpp"
#include "pipeline/stage_graph.hpp"
#include "runtime/engine.hpp"
#include "stencil/fuse.hpp"
#include "stencil/gallery.hpp"

namespace {

using namespace nup;

constexpr std::int64_t kRows = 384;
constexpr std::int64_t kCols = 512;
constexpr std::int64_t kTileRows = 32;
constexpr std::size_t kThreadsPerStage = 1;
constexpr int kFrames = 5;

// 5-point smoother on [lo, lo] .. [rows-1-lo, cols-1-lo]: successive lo
// values chain with exact window containment, so the same stages feed
// StageGraph::chain and fuse_chain.
stencil::StencilProgram smoother(const std::string& name, std::int64_t lo) {
  stencil::StencilProgram p(
      name, poly::Domain::box({lo, lo}, {kRows - 1 - lo, kCols - 1 - lo}));
  p.add_input("A", {{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}});
  p.set_kernel(stencil::make_weighted_sum({0.1, 0.2, 0.4, 0.2, 0.1}));
  return p;
}

std::vector<stencil::StencilProgram> chain_stages(int n) {
  std::vector<stencil::StencilProgram> stages;
  for (int s = 0; s < n; ++s) {
    stages.push_back(smoother("S" + std::to_string(s), s + 1));
  }
  return stages;
}

struct ChainNumbers {
  double end_to_end_us = 0;     ///< mean submit-to-done, one frame in flight
  double first_output_us = -1;  ///< mean time to first sink tile (-1: n/a)
  bool overlapped = false;      ///< sink started before stage 0 finished
};

ChainNumbers run_pipeline(int n, bool barrier) {
  obs::Registry registry;
  pipeline::PipelineOptions options;
  options.threads_per_stage = kThreadsPerStage;
  options.tile_shape = {kTileRows, 0};
  options.metrics = &registry;
  options.barrier = barrier;
  pipeline::PipelineExecutor executor(
      pipeline::StageGraph::chain(chain_stages(n)), options);

  ChainNumbers out;
  out.overlapped = true;
  double first_sum = 0;
  for (int f = 0; f < kFrames; ++f) {
    const auto t0 = std::chrono::steady_clock::now();
    const pipeline::PipelineResult& result =
        executor.submit(static_cast<std::uint64_t>(f)).wait();
    out.end_to_end_us +=
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (!result.ok()) {
      std::fprintf(stderr, "pipelined frame failed: %s\n",
                   result.error.c_str());
    }
    first_sum += static_cast<double>(result.timing.back().first_tile_us);
    out.overlapped = out.overlapped &&
                     result.timing.back().first_tile_us <
                         result.timing.front().last_tile_us;
  }
  out.end_to_end_us /= kFrames;
  out.first_output_us = first_sum / kFrames;
  return out;
}

ChainNumbers run_fused(int n) {
  const stencil::StencilProgram fused = stencil::fuse_chain(chain_stages(n));
  obs::Registry registry;
  runtime::EngineOptions options;
  options.threads = kThreadsPerStage * static_cast<std::size_t>(n);
  options.tile_shape = {kTileRows, 0};
  options.metrics = &registry;
  runtime::FrameEngine engine(options);
  engine.plan_for(fused);  // compile outside the timed region

  ChainNumbers out;
  for (int f = 0; f < kFrames; ++f) {
    const auto t0 = std::chrono::steady_clock::now();
    engine.submit(fused, static_cast<std::uint64_t>(f)).wait();
    out.end_to_end_us +=
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count();
  }
  out.end_to_end_us /= kFrames;
  return out;
}

// ---- steady-state cross-frame throughput -------------------------------

constexpr int kSteadyTotal = 24;   ///< frames pumped per schedule
constexpr int kSteadyFill = 4;     ///< leading completions excluded
constexpr int kSteadyMeasured = 16;  ///< completions the rate is taken over
constexpr std::size_t kSteadyWindow = 4;  ///< interleaved frames in flight

struct Throughput {
  double frames_per_sec = 0;    ///< over the middle kSteadyMeasured frames
  double first_output_us = -1;  ///< first sink tile of the very first frame
};

// Pumps kSteadyTotal frames keeping `lag` in flight from the caller's
// side (matching the executor's own admission window, so submit() never
// parks long and each wait() returns right after its frame completes --
// the completion timestamps are accurate). The rate excludes the fill
// (pipeline not yet full) and the drain (no frames left to admit).
Throughput run_steady_pipeline(int n, std::size_t window) {
  obs::Registry registry;
  pipeline::PipelineOptions options;
  options.threads_per_stage = kThreadsPerStage;
  options.tile_shape = {kTileRows, 0};
  options.metrics = &registry;
  options.max_frames_in_flight = window;
  pipeline::PipelineExecutor executor(
      pipeline::StageGraph::chain(chain_stages(n)), options);

  Throughput out;
  std::vector<pipeline::PipelineHandle> handles;
  std::vector<std::chrono::steady_clock::time_point> done(kSteadyTotal);
  std::size_t next_wait = 0;
  const auto drain_to = [&](std::size_t bound) {
    while (next_wait < bound) {
      const pipeline::PipelineResult& result = handles[next_wait].wait();
      done[next_wait] = std::chrono::steady_clock::now();
      if (!result.ok()) {
        std::fprintf(stderr, "steady frame %zu failed: %s\n", next_wait,
                     result.error.c_str());
      }
      if (next_wait == 0) {
        out.first_output_us =
            static_cast<double>(result.timing.back().first_tile_us);
      }
      ++next_wait;
    }
  };
  for (int f = 0; f < kSteadyTotal; ++f) {
    handles.push_back(executor.submit(static_cast<std::uint64_t>(f)));
    if (handles.size() >= next_wait + window) drain_to(handles.size() - window + 1);
  }
  drain_to(handles.size());

  const double span_s =
      std::chrono::duration<double>(done[kSteadyFill + kSteadyMeasured] -
                                    done[kSteadyFill])
          .count();
  out.frames_per_sec = kSteadyMeasured / span_s;
  return out;
}

Throughput run_steady_fused(int n) {
  const stencil::StencilProgram fused = stencil::fuse_chain(chain_stages(n));
  obs::Registry registry;
  runtime::EngineOptions options;
  options.threads = kThreadsPerStage * static_cast<std::size_t>(n);
  options.tile_shape = {kTileRows, 0};
  options.metrics = &registry;
  runtime::FrameEngine engine(options);
  engine.plan_for(fused);

  Throughput out;
  std::vector<runtime::FrameHandle> handles;
  std::vector<std::chrono::steady_clock::time_point> done(kSteadyTotal);
  std::size_t next_wait = 0;
  for (int f = 0; f < kSteadyTotal; ++f) {
    handles.push_back(engine.submit(fused, static_cast<std::uint64_t>(f)));
    while (handles.size() >= next_wait + kSteadyWindow) {
      handles[next_wait].wait();
      done[next_wait] = std::chrono::steady_clock::now();
      ++next_wait;
    }
  }
  while (next_wait < handles.size()) {
    handles[next_wait].wait();
    done[next_wait] = std::chrono::steady_clock::now();
    ++next_wait;
  }
  const double span_s =
      std::chrono::duration<double>(done[kSteadyFill + kSteadyMeasured] -
                                    done[kSteadyFill])
          .count();
  out.frames_per_sec = kSteadyMeasured / span_s;
  return out;
}

void print_artifact() {
  const unsigned cores = std::thread::hardware_concurrency();
  // 3 stages overlapping need at least one core per stage (plus slack);
  // below that the end-to-end comparison measures the OS scheduler, not
  // the pipeline.
  const bool score_end_to_end = cores >= 4;
  std::printf("smoother chains on %lldx%lld, tile rows=%lld, %zu workers "
              "per stage, %d frames per cell, %u hardware threads\n\n",
              static_cast<long long>(kRows), static_cast<long long>(kCols),
              static_cast<long long>(kTileRows), kThreadsPerStage, kFrames,
              cores);
  std::printf("%-8s %-10s %14s %16s %10s\n", "stages", "schedule",
              "end-to-end(us)", "first-output(us)", "overlap");

  std::ostringstream json;
  json << "{\"benchmark\": \"pipeline\", \"rows\": " << kRows
       << ", \"cols\": " << kCols << ", \"tile_rows\": " << kTileRows
       << ", \"threads_per_stage\": " << kThreadsPerStage
       << ", \"frames\": " << kFrames << ", \"chains\": [";

  bool claims_ok = true;
  for (int n = 2; n <= 3; ++n) {
    const ChainNumbers pipelined = run_pipeline(n, /*barrier=*/false);
    const ChainNumbers barrier = run_pipeline(n, /*barrier=*/true);
    const ChainNumbers fused = run_fused(n);

    std::printf("%-8d %-10s %14.0f %16.0f %10s\n", n, "pipelined",
                pipelined.end_to_end_us, pipelined.first_output_us,
                pipelined.overlapped ? "yes" : "NO");
    std::printf("%-8s %-10s %14.0f %16.0f %10s\n", "", "barrier",
                barrier.end_to_end_us, barrier.first_output_us, "-");
    std::printf("%-8s %-10s %14.0f %16s %10s\n", "", "fused",
                fused.end_to_end_us, "-", "-");

    if (!pipelined.overlapped) claims_ok = false;
    if (pipelined.first_output_us >= barrier.first_output_us) {
      claims_ok = false;
    }
    if (n == 3 && score_end_to_end &&
        pipelined.end_to_end_us > barrier.end_to_end_us) {
      claims_ok = false;
    }

    json << (n == 2 ? "" : ", ") << "{\"stages\": " << n
         << ", \"pipelined_us\": " << pipelined.end_to_end_us
         << ", \"barrier_us\": " << barrier.end_to_end_us
         << ", \"fused_us\": " << fused.end_to_end_us
         << ", \"first_output_us\": {\"pipelined\": "
         << pipelined.first_output_us
         << ", \"barrier\": " << barrier.first_output_us
         << "}, \"overlap\": " << (pipelined.overlapped ? "true" : "false")
         << ", \"speedup_vs_barrier\": "
         << barrier.end_to_end_us / pipelined.end_to_end_us << "}";
  }
  // Cross-frame steady state on the 3-stage chain: interleaved window vs
  // frame-serial vs fused, frames/sec with fill and drain excluded.
  std::printf("\nsteady state, 3-stage chain, %d frames (rate over the "
              "middle %d):\n", kSteadyTotal, kSteadyMeasured);
  std::printf("%-14s %12s %18s\n", "schedule", "frames/s",
              "first-output(us)");
  const Throughput interleaved = run_steady_pipeline(3, kSteadyWindow);
  const Throughput serial = run_steady_pipeline(3, 1);
  const Throughput fused3 = run_steady_fused(3);
  std::printf("%-14s %12.2f %18.0f\n", "interleaved",
              interleaved.frames_per_sec, interleaved.first_output_us);
  std::printf("%-14s %12.2f %18.0f\n", "frame-serial",
              serial.frames_per_sec, serial.first_output_us);
  std::printf("%-14s %12.2f %18s\n", "fused", fused3.frames_per_sec, "-");

  const double steady_speedup =
      interleaved.frames_per_sec / serial.frames_per_sec;
  std::printf("interleaved vs frame-serial: %.2fx\n", steady_speedup);
  if (score_end_to_end && steady_speedup < 1.3) claims_ok = false;

  json << "], \"steady_state\": {\"chain_stages\": 3, \"frames\": "
       << kSteadyTotal << ", \"measured\": " << kSteadyMeasured
       << ", \"window\": " << kSteadyWindow
       << ", \"interleaved_fps\": " << interleaved.frames_per_sec
       << ", \"serial_fps\": " << serial.frames_per_sec
       << ", \"fused_fps\": " << fused3.frames_per_sec
       << ", \"first_output_us\": {\"interleaved\": "
       << interleaved.first_output_us
       << ", \"serial\": " << serial.first_output_us
       << "}, \"speedup_vs_serial\": " << steady_speedup
       << ", \"scored\": " << (score_end_to_end ? "true" : "false") << "}";

  json << ", \"cores\": " << cores << ", \"end_to_end_scored\": "
       << (score_end_to_end ? "true" : "false")
       << ", \"claims_ok\": " << (claims_ok ? "true" : "false") << "}";

  std::printf("\nacceptance: sink overlaps stage 0, first output beats "
              "the barrier schedule%s: %s\n",
              score_end_to_end
                  ? ", 3-stage pipelined end-to-end <= barrier, "
                    "interleaved >= 1.3x frame-serial frames/sec"
                  : " (end-to-end and steady-state rates not scored: too "
                    "few cores to overlap)",
              claims_ok ? "ok" : "VIOLATED");
  nup::bench::write_json("BENCH_pipeline.json", json.str());
}

// ---- timed benchmarks: one 3-stage frame per iteration ----------------

void BM_PipelinedChain3(benchmark::State& state) {
  obs::Registry registry;
  pipeline::PipelineOptions options;
  options.threads_per_stage = kThreadsPerStage;
  options.tile_shape = {kTileRows, 0};
  options.metrics = &registry;
  pipeline::PipelineExecutor executor(
      pipeline::StageGraph::chain(chain_stages(3)), options);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.submit(seed++).wait().stages);
  }
}
BENCHMARK(BM_PipelinedChain3)->Unit(benchmark::kMillisecond);

// One steady-state frame per iteration: the admission window is kept full
// from the caller's side, so each wait() measures the sustained
// cross-frame completion period, not a cold frame's latency.
void BM_InterleavedChain3(benchmark::State& state) {
  obs::Registry registry;
  pipeline::PipelineOptions options;
  options.threads_per_stage = kThreadsPerStage;
  options.tile_shape = {kTileRows, 0};
  options.metrics = &registry;
  options.max_frames_in_flight = kSteadyWindow;
  pipeline::PipelineExecutor executor(
      pipeline::StageGraph::chain(chain_stages(3)), options);
  std::deque<pipeline::PipelineHandle> inflight;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    while (inflight.size() < kSteadyWindow) {
      inflight.push_back(executor.submit(seed++));
    }
    benchmark::DoNotOptimize(inflight.front().wait().stages);
    inflight.pop_front();
  }
  for (pipeline::PipelineHandle& handle : inflight) handle.wait();
}
BENCHMARK(BM_InterleavedChain3)->Unit(benchmark::kMillisecond);

void BM_BarrierChain3(benchmark::State& state) {
  obs::Registry registry;
  pipeline::PipelineOptions options;
  options.threads_per_stage = kThreadsPerStage;
  options.tile_shape = {kTileRows, 0};
  options.metrics = &registry;
  options.barrier = true;
  pipeline::PipelineExecutor executor(
      pipeline::StageGraph::chain(chain_stages(3)), options);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.submit(seed++).wait().stages);
  }
}
BENCHMARK(BM_BarrierChain3)->Unit(benchmark::kMillisecond);

void BM_FusedChain3(benchmark::State& state) {
  const stencil::StencilProgram fused = stencil::fuse_chain(chain_stages(3));
  obs::Registry registry;
  runtime::EngineOptions options;
  options.threads = kThreadsPerStage * 3;
  options.tile_shape = {kTileRows, 0};
  options.metrics = &registry;
  runtime::FrameEngine engine(options);
  engine.plan_for(fused);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.submit(fused, seed++).wait().outputs);
  }
}
BENCHMARK(BM_FusedChain3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  nup::bench::banner(
      "Stage-pipelined execution: tile-granular overlap vs barriers vs "
      "fusion");
  print_artifact();
  return nup::bench::run(argc, argv);
}
