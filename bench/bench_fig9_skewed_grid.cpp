// Experiment: Fig 9 -- automatic adjustment of the reuse data amount on a
// skewed (non-rectangular) grid. The number of elements held in a reuse
// FIFO changes as the iteration advances, with no centralized controller.
// Prints the occupancy-over-time evidence and the exact-vs-hull sizing gap.

#include <algorithm>
#include <cstdio>

#include "arch/builder.hpp"
#include "bench_common.hpp"
#include "poly/reuse.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"
#include "util/table.hpp"

namespace {

using namespace nup;

void print_artifact() {
  bench::banner(
      "Fig 9: dynamic reuse-distance adaptation on a skewed grid "
      "(X-shaped 5-point window, 45-degree sheared domain)");
  const stencil::StencilProgram p = stencil::skewed_demo(24, 48);
  std::printf("%s\n", p.to_c_code().c_str());

  arch::BuildOptions exact;
  exact.exact_sizing = true;
  exact.exact_streaming = true;
  const arch::AcceleratorDesign exact_design = arch::build_design(p, exact);
  const arch::AcceleratorDesign hull_design = arch::build_design(p);

  TextTable sizes("FIFO depths: exact union-domain sizing vs hull box");
  sizes.set_header({"FIFO", "exact depth", "hull depth"});
  for (std::size_t k = 0; k < exact_design.systems[0].fifos.size(); ++k) {
    sizes.add_row({std::to_string(k),
                   std::to_string(exact_design.systems[0].fifos[k].depth),
                   std::to_string(hull_design.systems[0].fifos[k].depth)});
  }
  std::printf("%s", sizes.to_string().c_str());

  // Reuse distance really varies along the execution (the Fig 9 claim).
  const poly::ReuseResult vary = poly::max_reuse_distance(
      p.iteration(), p.input_data_domain(0),
      exact_design.systems[0].ordered_offsets[0],
      exact_design.systems[0].ordered_offsets[1]);
  std::printf("\nreuse distance between the first two filters varies from "
              "%lld to %lld over the skewed domain\n",
              static_cast<long long>(vary.min_distance),
              static_cast<long long>(vary.max_distance));

  // Occupancy trace: sample one large FIFO every ~60 cycles.
  sim::SimOptions options;
  options.trace_cycles = 100000;
  const sim::SimResult r = sim::simulate(p, exact_design, options);
  std::printf("\nsimulation: %lld cycles, %lld outputs, deadlocked: %s\n",
              static_cast<long long>(r.cycles),
              static_cast<long long>(r.kernel_fires),
              r.deadlocked ? "YES" : "no");
  std::size_t big = 0;
  for (std::size_t k = 0; k < exact_design.systems[0].fifos.size(); ++k) {
    if (exact_design.systems[0].fifos[k].depth >
        exact_design.systems[0].fifos[big].depth) {
      big = k;
    }
  }
  std::printf("occupancy of FIFO_%zu (depth %lld) over time "
              "(distributed modules adapt it, Section 3.4.2):\n",
              big,
              static_cast<long long>(
                  exact_design.systems[0].fifos[big].depth));
  std::int64_t min_after_fill = -1;
  std::int64_t max_seen = 0;
  for (std::size_t i = 0; i < r.trace.size(); i += 60) {
    const std::int64_t fill = r.trace[i].fifo_fill[big];
    std::printf("  cycle %5lld: %3lld |%s\n",
                static_cast<long long>(r.trace[i].cycle),
                static_cast<long long>(fill),
                std::string(static_cast<std::size_t>(fill), '#').c_str());
    max_seen = std::max(max_seen, fill);
    if (static_cast<std::int64_t>(i) > r.fill_latency) {
      min_after_fill =
          min_after_fill < 0 ? fill : std::min(min_after_fill, fill);
    }
  }
  std::printf("occupancy range after fill: %lld .. %lld (non-constant => "
              "the buffer level follows the changing reuse distance)\n",
              static_cast<long long>(min_after_fill),
              static_cast<long long>(max_seen));
}

void BM_SimulateSkewedExact(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::skewed_demo(24, 48);
  arch::BuildOptions exact;
  exact.exact_sizing = true;
  exact.exact_streaming = true;
  const arch::AcceleratorDesign design = arch::build_design(p, exact);
  sim::SimOptions options;
  options.record_outputs = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(p, design, options).cycles);
  }
}
BENCHMARK(BM_SimulateSkewedExact);

void BM_ExactReuseScanSkewed(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::skewed_demo(24, 48);
  const poly::Domain data = p.input_data_domain(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        poly::max_reuse_distance(p.iteration(), data, {1, 1}, {-1, -1})
            .max_distance);
  }
}
BENCHMARK(BM_ExactReuseScanSkewed);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  return nup::bench::run(argc, argv);
}
