#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace nup::bench {

/// Shared entry point: every experiment binary first prints its paper
/// artifact (table/figure data), then runs the registered timing
/// benchmarks. Keeping the artifact on stdout means
/// `for b in build/bench/*; do $b; done` regenerates the whole evaluation.
inline int run(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

inline void banner(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

/// Writes one machine-readable result file (BENCH_<name>.json) next to the
/// human-readable stdout artifact, so CI and EXPERIMENTS.md tooling can
/// diff runs without scraping tables.
inline bool write_json(const std::string& path, const std::string& json) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs(json.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("machine-readable results: %s\n", path.c_str());
  return true;
}

}  // namespace nup::bench
