#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>

namespace nup::bench {

/// Shared entry point: every experiment binary first prints its paper
/// artifact (table/figure data), then runs the registered timing
/// benchmarks. Keeping the artifact on stdout means
/// `for b in build/bench/*; do $b; done` regenerates the whole evaluation.
inline int run(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

inline void banner(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace nup::bench
