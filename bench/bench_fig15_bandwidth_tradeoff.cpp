// Experiment: Fig 14/15 -- the off-chip bandwidth vs on-chip memory
// trade-off: cutting the largest reuse FIFO and feeding the tail segment
// from an extra off-chip stream degrades on-chip storage gracefully. The
// paper sweeps SEGMENTATION_3D's 19-point window from 1 to 18 accesses per
// cycle and observes three phases (inter-plane, inter-row, intra-row
// reuse). Every swept design is re-simulated for correctness.

#include <cstdio>
#include <sstream>

#include "arch/builder.hpp"
#include "arch/tradeoff.hpp"
#include "bench_common.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "stencil/golden.hpp"
#include "util/table.hpp"

namespace {

using namespace nup;

void print_artifact() {
  bench::banner(
      "Fig 15: bandwidth/memory trade-off on SEGMENTATION_3D (19-point)");
  const stencil::StencilProgram p = stencil::segmentation_3d();
  const arch::AcceleratorDesign design = arch::build_design(p);
  const std::vector<arch::TradeoffPoint> curve =
      arch::bandwidth_sweep(design.systems[0]);

  TextTable table;
  table.set_header({"off-chip accesses/cycle", "banks", "on-chip elements",
                    "largest FIFO", "phase"});
  std::int64_t plane = 128 * 128;
  for (const arch::TradeoffPoint& point : curve) {
    const char* phase = point.largest_remaining >= plane / 2
                            ? "inter-plane reuse"
                        : point.largest_remaining >= 64
                            ? "inter-row reuse"
                        : point.largest_remaining > 0 ? "intra-row reuse"
                                                      : "no reuse";
    table.add_row({std::to_string(point.offchip_streams),
                   std::to_string(point.bank_count),
                   std::to_string(point.total_buffer_size),
                   std::to_string(point.largest_remaining), phase});
  }
  std::printf("%s", table.to_string().c_str());

  // Correctness across the curve (small instance to keep runtime sane).
  const stencil::StencilProgram small = stencil::segmentation_3d(6, 8, 10);
  const arch::AcceleratorDesign small_design = arch::build_design(small);
  const stencil::GoldenRun golden = stencil::run_golden(small, 1);
  std::size_t verified = 0;
  for (std::size_t cuts = 0; cuts < small.total_references(); ++cuts) {
    arch::AcceleratorDesign traded = small_design;
    traded.systems[0] = arch::apply_tradeoff(small_design.systems[0], cuts);
    const sim::SimResult r = sim::simulate(small, traded, {});
    bool ok = !r.deadlocked && r.outputs.size() == golden.outputs.size();
    for (std::size_t i = 0; ok && i < golden.outputs.size(); ++i) {
      ok = r.outputs[i] == golden.outputs[i];
    }
    if (ok) ++verified;
  }
  std::printf("\nverified %zu/%zu points of the curve by simulation "
              "against the golden execution\n",
              verified, static_cast<std::size_t>(small.total_references()));
}

/// Fig 14 (measured): widening the datapath trades on-chip FIFO bytes for
/// machine cycles. Each point is a real fast-backend run of DENOISE
/// 768x1024 at width W: datapath_cycles shrinks ~1/W while the padded
/// reuse buffers grow toward ceil(depth/W)*W elements per FIFO.
void print_width_curve() {
  bench::banner(
      "Fig 14: datapath width vs on-chip memory on DENOISE 768x1024");
  const stencil::StencilProgram p = stencil::denoise_2d();
  sim::SimOptions options;
  options.backend = sim::SimBackend::kFast;
  options.record_outputs = false;

  TextTable table;
  table.set_header({"W", "machine cycles", "scalar cycles",
                    "on-chip elements (padded)", "FIFO bytes",
                    "cycle reduction"});
  std::ostringstream json;
  json << "{\"benchmark\": \"fig14_width_curve\", \"kernel\": \""
       << p.name() << "\", \"points\": [";
  double base = 0.0;
  bool first = true;
  for (const std::int64_t w : {1, 2, 4, 8, 16}) {
    arch::BuildOptions opts;
    opts.datapath_width = w;
    const arch::AcceleratorDesign design = arch::build_design(p, opts);
    const sim::SimResult r = sim::simulate(p, design, options);
    const std::int64_t padded = design.total_padded_buffer_size();
    const std::int64_t bytes =
        padded * static_cast<std::int64_t>(sizeof(double));
    if (w == 1) base = static_cast<double>(r.datapath_cycles);
    table.add_row({std::to_string(w), std::to_string(r.datapath_cycles),
                   std::to_string(r.cycles), std::to_string(padded),
                   std::to_string(bytes),
                   std::to_string(base / r.datapath_cycles) + "x"});
    json << (first ? "" : ", ") << "{\"width\": " << w
         << ", \"datapath_cycles\": " << r.datapath_cycles
         << ", \"cycles\": " << r.cycles
         << ", \"padded_elements\": " << padded
         << ", \"fifo_bytes\": " << bytes << "}";
    first = false;
  }
  json << "]}";
  std::printf("%s", table.to_string().c_str());
  nup::bench::write_json("BENCH_fig14_width.json", json.str());
}

void BM_BandwidthSweep(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::segmentation_3d();
  const arch::MemorySystem system = arch::build_design(p).systems[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(arch::bandwidth_sweep(system).size());
  }
}
BENCHMARK(BM_BandwidthSweep);

void BM_SimulateTradedDesign(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::segmentation_3d(6, 8, 10);
  arch::AcceleratorDesign design = arch::build_design(p);
  design.systems[0] = arch::apply_tradeoff(design.systems[0], 3);
  sim::SimOptions options;
  options.record_outputs = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(p, design, options).cycles);
  }
}
BENCHMARK(BM_SimulateTradedDesign);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  print_width_curve();
  return nup::bench::run(argc, argv);
}
