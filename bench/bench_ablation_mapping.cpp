// Ablation: how much of the Table 5 BRAM saving comes from each of the two
// causes the paper names in Section 5.2 -- (1) the minimum number of banks
// and (2) the heterogeneous mapping of banks to registers/SRLs in addition
// to block RAM. We re-estimate our design with the heterogeneous mapping
// disabled (every FIFO forced into BRAM) and compare.

#include <cstdio>

#include "arch/builder.hpp"
#include "baseline/gmp.hpp"
#include "bench_common.hpp"
#include "hls/report.hpp"
#include "stencil/gallery.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace nup;

arch::AcceleratorDesign all_bram_design(const stencil::StencilProgram& p) {
  arch::AcceleratorDesign design = arch::build_design(p);
  for (arch::MemorySystem& sys : design.systems) {
    for (arch::ReuseFifo& fifo : sys.fifos) {
      fifo.impl = arch::BufferImpl::kBlockRam;
    }
  }
  return design;
}

void print_artifact() {
  bench::banner(
      "Ablation: heterogeneous physical mapping (Section 5.2 cause 2)");
  const hls::DeviceModel device = hls::virtex7_485t();
  TextTable table;
  table.set_header({"benchmark", "BRAM [8]", "BRAM ours (all-BRAM)",
                    "BRAM ours (heterogeneous)", "mapping contribution"});
  double with_sum = 0.0;
  double without_sum = 0.0;
  int count = 0;
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    const hls::ResourceUsage baseline = hls::estimate_uniform(
        baseline::gmp_partition(p, 0), p.total_references(), device);
    const hls::ResourceUsage all_bram =
        hls::estimate_streaming(all_bram_design(p), p, device);
    const hls::ResourceUsage heterogeneous =
        hls::estimate_streaming(arch::build_design(p), p, device);
    table.add_row(
        {p.name(), cell(baseline.bram18k), cell(all_bram.bram18k),
         cell(heterogeneous.bram18k),
         cell(all_bram.bram18k - heterogeneous.bram18k) + " BRAM"});
    with_sum += hls::SynthesisComparison::delta(heterogeneous.bram18k,
                                                baseline.bram18k);
    without_sum +=
        hls::SynthesisComparison::delta(all_bram.bram18k, baseline.bram18k);
    ++count;
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\naverage BRAM saving vs [8]: %s with heterogeneous mapping, "
              "%s with banks-only (all FIFOs in BRAM)\n",
              format_percent(with_sum / count).c_str(),
              format_percent(without_sum / count).c_str());
  std::printf("=> both causes are real: the minimum bank count alone saves "
              "BRAM, and the heterogeneous mapping removes every small "
              "FIFO's block on top of it.\n");
}

void BM_EstimateAllBenchmarksBothMappings(benchmark::State& state) {
  const hls::DeviceModel device = hls::virtex7_485t();
  const std::vector<stencil::StencilProgram> programs =
      stencil::paper_benchmarks();
  for (auto _ : state) {
    std::int64_t acc = 0;
    for (const stencil::StencilProgram& p : programs) {
      acc += hls::estimate_streaming(arch::build_design(p), p, device)
                 .bram18k;
      acc += hls::estimate_streaming(all_bram_design(p), p, device).bram18k;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_EstimateAllBenchmarksBothMappings)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  return nup::bench::run(argc, argv);
}
