// Experiment: Fig 7 / Table 2 -- the generated memory system for DENOISE:
// non-uniform FIFO depths from maximum reuse distances of adjacent
// references, mapped heterogeneously to BRAM / registers. Prints Table 2
// and times design generation.

#include <cstdio>

#include "arch/builder.hpp"
#include "bench_common.hpp"
#include "stencil/gallery.hpp"
#include "util/table.hpp"

namespace {

using namespace nup;

void print_artifact() {
  bench::banner("Fig 7 / Table 2: reuse FIFOs of the DENOISE memory system");
  const stencil::StencilProgram p = stencil::denoise_2d();
  const arch::AcceleratorDesign design = arch::build_design(p);
  const arch::MemorySystem& sys = design.systems[0];
  const std::vector<std::string> names = p.iteration_names();

  TextTable table;
  table.set_header({"FIFO ID", "precedent -> successive references",
                    "FIFO size", "physical impl."});
  for (std::size_t k = 0; k < sys.fifos.size(); ++k) {
    const stencil::ArrayReference from{sys.ordered_offsets[k]};
    const stencil::ArrayReference to{sys.ordered_offsets[k + 1]};
    table.add_row({"FIFO " + std::to_string(k),
                   from.to_string("A", names) + " -> " +
                       to.to_string("A", names),
                   std::to_string(sys.fifos[k].depth),
                   arch::to_string(sys.fifos[k].impl)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("total reuse storage: %lld elements (paper: 2048, the "
              "theoretical minimum); banks: %zu (= n-1, the minimum)\n",
              static_cast<long long>(sys.total_buffer_size()),
              sys.bank_count());
  std::printf("paper Table 2: sizes {1023, 1, 1, 1023}, BRAM for the row "
              "FIFOs, registers for the unit FIFOs\n");
}

void BM_BuildDenoiseDesign(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::denoise_2d();
  for (auto _ : state) {
    benchmark::DoNotOptimize(arch::build_design(p).total_buffer_size());
  }
}
BENCHMARK(BM_BuildDenoiseDesign);

void BM_BuildSegmentationDesign(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::segmentation_3d();
  for (auto _ : state) {
    benchmark::DoNotOptimize(arch::build_design(p).total_buffer_size());
  }
}
BENCHMARK(BM_BuildSegmentationDesign);

void BM_BuildWithExactSizingSkewed(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::skewed_demo(24, 48);
  arch::BuildOptions options;
  options.exact_sizing = true;
  options.exact_streaming = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        arch::build_design(p, options).total_buffer_size());
  }
}
BENCHMARK(BM_BuildWithExactSizingSkewed);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  return nup::bench::run(argc, argv);
}
