// Ablation: hull-box closed-form sizing (the paper's default, Table 2)
// versus exact union-domain sizing. On rectangular grids both agree; on
// skewed/triangular domains the exact scan trims the FIFOs, at the cost of
// an exact-streaming front end. Every variant is re-simulated to prove it
// still runs deadlock-free at full rate.

#include <cstdio>

#include "arch/builder.hpp"
#include "bench_common.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "util/table.hpp"

namespace {

using namespace nup;

struct Variant {
  const char* label;
  arch::BuildOptions options;
};

void print_artifact() {
  bench::banner("Ablation: hull-box vs exact union-domain FIFO sizing");
  Variant variants[2];
  variants[0].label = "hull box";
  variants[1].label = "exact union";
  variants[1].options.exact_sizing = true;
  variants[1].options.exact_streaming = true;

  const stencil::StencilProgram programs[] = {
      stencil::denoise_2d(64, 96), stencil::skewed_demo(24, 48),
      stencil::triangular_demo(48)};

  TextTable table;
  table.set_header({"program", "sizing", "total elements", "sim cycles",
                    "steady II", "deadlock-free"});
  for (const stencil::StencilProgram& p : programs) {
    for (const Variant& variant : variants) {
      const arch::AcceleratorDesign design =
          arch::build_design(p, variant.options);
      sim::SimOptions sim_options;
      sim_options.record_outputs = false;
      const sim::SimResult r = sim::simulate(p, design, sim_options);
      table.add_row({p.name(), variant.label,
                     std::to_string(design.total_buffer_size()),
                     std::to_string(r.cycles),
                     cell(r.steady_ii, 3),
                     r.deadlocked ? "NO" : "yes"});
    }
    table.add_separator();
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nhull sizing is exact on rectangles; on non-rectangular "
              "domains exact sizing shrinks storage and exact streaming "
              "skips the hull's unused cells (fewer cycles).\n");
}

void BM_ExactSizingTriangular(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::triangular_demo(48);
  arch::BuildOptions options;
  options.exact_sizing = true;
  options.exact_streaming = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        arch::build_design(p, options).total_buffer_size());
  }
}
BENCHMARK(BM_ExactSizingTriangular);

void BM_HullSizingTriangular(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::triangular_demo(48);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arch::build_design(p).total_buffer_size());
  }
}
BENCHMARK(BM_HullSizingTriangular);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  return nup::bench::run(argc, argv);
}
