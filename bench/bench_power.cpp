// Experiment: the Section 5.2 power paragraph. The paper tried XPower and
// found total FPGA power dominated by static leakage, almost invariant
// across designs; with power gating it would become proportional to
// resource usage, i.e. mirror Table 5. Our activity-based model reproduces
// both statements.

#include <cstdio>

#include "arch/builder.hpp"
#include "baseline/gmp.hpp"
#include "bench_common.hpp"
#include "hls/power.hpp"
#include "stencil/gallery.hpp"
#include "util/table.hpp"

namespace {

using namespace nup;

void print_artifact() {
  bench::banner(
      "Section 5.2 power discussion: static-dominated vs power-gated");
  const hls::DeviceModel device = hls::virtex7_485t();
  TextTable table;
  table.set_header({"benchmark", "", "total (mW)", "dynamic (mW)",
                    "gated (mW)"});
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    const hls::PowerEstimate theirs = hls::estimate_power(
        hls::estimate_uniform(baseline::gmp_partition(p, 0),
                              p.total_references(), device),
        device);
    const hls::PowerEstimate ours = hls::estimate_power(
        hls::estimate_streaming(arch::build_design(p), p, device), device);
    table.add_row({p.name(), "[8]", cell(theirs.total_mw(), 0),
                   cell(theirs.dynamic_mw, 1), cell(theirs.gated_mw, 1)});
    table.add_row({"", "ours", cell(ours.total_mw(), 0),
                   cell(ours.dynamic_mw, 1), cell(ours.gated_mw, 1)});
    table.add_separator();
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\ntotals differ by only a few percent (static leakage "
              "dominates, as the paper observed with XPower); the gated "
              "column is proportional to resources and mirrors Table 5.\n");
}

void BM_PowerEstimateAll(benchmark::State& state) {
  const hls::DeviceModel device = hls::virtex7_485t();
  const std::vector<stencil::StencilProgram> programs =
      stencil::paper_benchmarks();
  for (auto _ : state) {
    double acc = 0.0;
    for (const stencil::StencilProgram& p : programs) {
      acc += hls::estimate_power(
                 hls::estimate_streaming(arch::build_design(p), p, device),
                 device)
                 .gated_mw;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_PowerEstimateAll)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  return nup::bench::run(argc, argv);
}
