// Observability overhead: the flight recorder is always-on, so its cost
// must stay in the noise. The artifact pumps DENOISE 768x1024 frames
// through one FrameEngine per configuration --
//
//   journal off   run-time kill switch (Journal::set_enabled(false));
//                 metric counters still tick
//   journal on    the shipping default: every frame/tile lifecycle event
//                 lands in the per-thread seqlock rings
//
// -- and scores the claim that the journal-on serving rate stays within
// 2% of journal-off. (The third rung, -DNUP_OBS_DISABLE, compiles every
// metric and journal write out of nup_obs and cannot share a binary with
// the other two; rebuilding with the option and re-running this bench
// measures it, and `obs_compiled` in BENCH_obs.json records which build
// produced the numbers.)
//
// A microbench section reports the raw cost of one Journal::record --
// the per-event budget the 64-byte seqlock write path was designed
// around -- and of one Counter::add for comparison.

#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "runtime/engine.hpp"
#include "stencil/gallery.hpp"

namespace {

using namespace nup;

constexpr std::int64_t kRows = 768;
constexpr std::int64_t kCols = 1024;
constexpr int kWarmupFrames = 2;
constexpr int kMeasuredFrames = 8;
constexpr double kOverheadBudgetPct = 2.0;

/// True when this binary was linked against an nup_obs that actually
/// writes (i.e. not -DNUP_OBS_DISABLE): a probe record must land.
bool obs_compiled_in() {
  obs::Journal probe(16);
  probe.record(obs::JournalKind::kTileExecuted, 1);
  return probe.recorded() == 1;
}

double frames_per_sec(bool journal_on) {
  obs::Registry registry;
  obs::Journal journal;
  journal.set_enabled(journal_on);
  runtime::EngineOptions options;
  options.metrics = &registry;
  options.journal = &journal;
  runtime::FrameEngine engine(options);
  const stencil::StencilProgram p = stencil::denoise_2d(kRows, kCols);

  for (int f = 0; f < kWarmupFrames; ++f) {
    engine.submit(p, static_cast<std::uint64_t>(f)).wait();
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<runtime::FrameHandle> handles;
  for (int f = 0; f < kMeasuredFrames; ++f) {
    handles.push_back(
        engine.submit(p, static_cast<std::uint64_t>(kWarmupFrames + f)));
  }
  for (runtime::FrameHandle& handle : handles) {
    const runtime::FrameResult& r = handle.wait();
    if (!r.ok()) {
      std::fprintf(stderr, "measured frame failed: %s\n", r.error.c_str());
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return kMeasuredFrames / seconds;
}

double journal_ns_per_event() {
  obs::Journal journal;
  const std::uint32_t name = journal.intern("bench");
  constexpr int kEvents = 2'000'000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kEvents; ++i) {
    journal.record(obs::JournalKind::kTileExecuted, 1, 0, i, i, 1, name);
  }
  const double ns =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - t0)
          .count();
  return ns / kEvents;
}

double counter_ns_per_add() {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("bench.adds");
  constexpr int kAdds = 2'000'000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kAdds; ++i) counter.inc();
  const double ns =
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now() - t0)
          .count();
  return ns / kAdds;
}

void print_artifact() {
  const bool compiled = obs_compiled_in();
  std::printf("DENOISE %lldx%lld, %d measured frames per configuration, "
              "%u hardware threads, obs %s\n\n",
              static_cast<long long>(kRows), static_cast<long long>(kCols),
              kMeasuredFrames, std::thread::hardware_concurrency(),
              compiled ? "compiled in" : "compiled out (NUP_OBS_DISABLE)");

  const double off = frames_per_sec(/*journal_on=*/false);
  const double on = frames_per_sec(/*journal_on=*/true);
  const double overhead_pct = (off - on) / off * 100.0;
  std::printf("%-14s %12s\n", "journal", "frames/s");
  std::printf("%-14s %12.2f\n", "off", off);
  std::printf("%-14s %12.2f   (%+.2f%% vs off)\n", "on", on, -overhead_pct);

  const double rec_ns = journal_ns_per_event();
  const double add_ns = counter_ns_per_add();
  std::printf("\nJournal::record: %.1f ns/event (Counter::add: %.1f ns)\n",
              rec_ns, add_ns);

  // Noise floor: a short serving run easily jitters by a percent, so the
  // claim only fails when the measured overhead clears twice the budget.
  const bool claims_ok = overhead_pct <= 2 * kOverheadBudgetPct;
  std::printf("\nacceptance: journal-on serving rate within %.0f%% of "
              "journal-off: %s (measured %+.2f%%)\n",
              kOverheadBudgetPct, claims_ok ? "ok" : "VIOLATED",
              overhead_pct);

  std::ostringstream json;
  json << "{\"benchmark\": \"obs_overhead\", \"rows\": " << kRows
       << ", \"cols\": " << kCols
       << ", \"measured_frames\": " << kMeasuredFrames
       << ", \"obs_compiled\": " << (compiled ? "true" : "false")
       << ", \"frames_per_sec_journal_off\": " << off
       << ", \"frames_per_sec_journal_on\": " << on
       << ", \"overhead_pct\": " << overhead_pct
       << ", \"journal_ns_per_event\": " << rec_ns
       << ", \"counter_ns_per_add\": " << add_ns
       << ", \"budget_pct\": " << kOverheadBudgetPct
       << ", \"claims_ok\": " << (claims_ok ? "true" : "false") << "}";
  nup::bench::write_json("BENCH_obs.json", json.str());
}

// ---- timed benchmarks --------------------------------------------------

void BM_JournalRecord(benchmark::State& state) {
  obs::Journal journal;
  const std::uint32_t name = journal.intern("bench");
  std::int64_t i = 0;
  for (auto _ : state) {
    journal.record(obs::JournalKind::kTileExecuted, 1, 0, i, i, 1, name);
    ++i;
  }
}
BENCHMARK(BM_JournalRecord);

void BM_JournalRecordDisabled(benchmark::State& state) {
  obs::Journal journal;
  journal.set_enabled(false);
  std::int64_t i = 0;
  for (auto _ : state) {
    journal.record(obs::JournalKind::kTileExecuted, 1, 0, i, i, 1, 0);
    ++i;
  }
}
BENCHMARK(BM_JournalRecordDisabled);

void run_denoise_frame(benchmark::State& state, bool journal_on) {
  obs::Registry registry;
  obs::Journal journal;
  journal.set_enabled(journal_on);
  runtime::EngineOptions options;
  options.metrics = &registry;
  options.journal = &journal;
  runtime::FrameEngine engine(options);
  const stencil::StencilProgram p = stencil::denoise_2d(kRows, kCols);
  engine.submit(p, 0).wait();  // compile outside the timed region
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.submit(p, seed++).wait().outputs);
  }
}

void BM_DenoiseFrameJournalOff(benchmark::State& state) {
  run_denoise_frame(state, false);
}
BENCHMARK(BM_DenoiseFrameJournalOff)->Unit(benchmark::kMillisecond);

void BM_DenoiseFrameJournalOn(benchmark::State& state) {
  run_denoise_frame(state, true);
}
BENCHMARK(BM_DenoiseFrameJournalOn)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  nup::bench::banner(
      "Observability overhead: always-on flight recorder vs kill switch");
  print_artifact();
  return nup::bench::run(argc, argv);
}
