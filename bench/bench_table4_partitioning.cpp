// Experiment: Table 4 -- high-level partitioning results on the six paper
// benchmarks: original/target II, number of banks and total reuse-buffer
// size for the uniform baseline [8] and for our non-uniform method. The
// paper's numeric cells did not survive OCR; EXPERIMENTS.md records our
// measured values against every structural claim the prose preserves.

#include <cstdio>

#include "arch/builder.hpp"
#include "baseline/cyclic.hpp"
#include "baseline/gmp.hpp"
#include "bench_common.hpp"
#include "sim/banked.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"
#include "util/table.hpp"

namespace {

using namespace nup;

void print_artifact() {
  bench::banner("Table 4: high-level partitioning results");
  TextTable table;
  table.set_header({"benchmark", "orig II", "target II", "banks [8]",
                    "banks ours", "size [8]", "size ours"});
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    const baseline::UniformPartition gmp = baseline::gmp_partition(p, 0);
    const arch::AcceleratorDesign ours = arch::build_design(p);
    table.add_row({p.name(), std::to_string(p.total_references()), "1",
                   std::to_string(gmp.banks),
                   std::to_string(ours.systems[0].bank_count()),
                   std::to_string(gmp.total_size),
                   std::to_string(ours.systems[0].total_buffer_size())});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nthe target II=1 is actually achieved: measured steady II "
              "of the simulated accelerators:\n");
  for (const stencil::StencilProgram& p :
       {stencil::denoise_2d(128, 256), stencil::sobel_2d(128, 256),
        stencil::bicubic_2d(64, 256)}) {
    sim::SimOptions options;
    options.record_outputs = false;
    const sim::SimResult r =
        sim::simulate(p, arch::build_design(p), options);
    std::printf("  %-10s steady II = %.4f over %lld outputs\n",
                p.name().c_str(), r.steady_ii,
                static_cast<long long>(r.kernel_fires));
  }
  std::printf("\n[5] (flat cyclic) for reference:\n");
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    const baseline::UniformPartition cyc = baseline::cyclic_partition(p, 0);
    std::printf("  %-16s %s\n", p.name().c_str(), cyc.to_string().c_str());
  }

  // Fairness: the [8] baseline is not just counted, it is *executed* --
  // the banked architecture simulator runs it to completion conflict-free
  // with outputs equal to ours.
  std::printf("\nexecuted [8] baseline (banked-architecture simulator, "
              "scaled instances):\n");
  for (const stencil::StencilProgram& p :
       {stencil::denoise_2d(48, 64), stencil::sobel_2d(48, 64),
        stencil::segmentation_3d(10, 12, 14)}) {
    const sim::BankedSimResult r =
        sim::simulate_banked(p, baseline::gmp_partition(p, 0));
    std::printf("  %-16s %s, %lld outputs in %lld cycles (II %.3f)\n",
                p.name().c_str(),
                r.bank_conflict ? "BANK CONFLICT"
                : r.completed   ? "conflict-free"
                                : "incomplete",
                static_cast<long long>(r.outputs),
                static_cast<long long>(r.cycles), r.steady_ii);
  }
}

void BM_Table4AllBenchmarks(benchmark::State& state) {
  const std::vector<stencil::StencilProgram> programs =
      stencil::paper_benchmarks();
  for (auto _ : state) {
    std::int64_t acc = 0;
    for (const stencil::StencilProgram& p : programs) {
      acc += static_cast<std::int64_t>(baseline::gmp_partition(p, 0).banks);
      acc += arch::build_design(p).total_buffer_size();
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_Table4AllBenchmarks)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  return nup::bench::run(argc, argv);
}
