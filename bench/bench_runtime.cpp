// Concurrent tiled-execution runtime: frames/sec of the frame engine over
// a threads x tile-shape sweep, plus the design-cache hit/miss asymmetry.
//
// Artifact 1 sweeps DENOISE 768x1024 over worker counts {1, 2, 4, 8} and
// tile heights {full, 192, 96, 48} and prints frames/sec, the halo stream
// overhead of each shape and the per-tile reuse footprint (the buffering a
// tile's chain needs -- the lever tiling trades against refetch).
// Acceptance target: >= 3x frames/sec at 8 threads vs 1 on a machine with
// >= 8 cores (EXPERIMENTS.md records the measured curve and the core
// count of the machine that produced it).
//
// Artifact 2 runs one engine frame of each of the six gallery kernels.
//
// The timed google-benchmarks then measure the design cache: a hit must be
// >= 10x cheaper than the miss path (microarchitecture + row-program
// compilation).

#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "runtime/design_cache.hpp"
#include "runtime/engine.hpp"
#include "runtime/tiler.hpp"
#include "stencil/gallery.hpp"

namespace {

using namespace nup;

double frames_per_sec(const stencil::StencilProgram& p, std::size_t threads,
                      poly::IntVec tile_shape, int frames) {
  runtime::EngineOptions options;
  options.threads = threads;
  options.tile_shape = std::move(tile_shape);
  runtime::FrameEngine engine(options);
  engine.plan_for(p);  // tile + compile designs outside the timed region

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<runtime::FrameHandle> handles;
  handles.reserve(static_cast<std::size_t>(frames));
  for (int f = 0; f < frames; ++f) {
    handles.push_back(engine.submit(p, static_cast<std::uint64_t>(f)));
  }
  for (runtime::FrameHandle& handle : handles) {
    const runtime::FrameResult& result = handle.wait();
    if (!result.ok()) std::fprintf(stderr, "frame failed: %s\n",
                                   result.error.c_str());
  }
  const auto t1 = std::chrono::steady_clock::now();
  return frames / std::chrono::duration<double>(t1 - t0).count();
}

void print_thread_tile_sweep() {
  const stencil::StencilProgram p = stencil::denoise_2d();  // 768x1024
  std::printf("hardware threads on this machine: %u\n\n",
              std::thread::hardware_concurrency());
  std::printf("DENOISE 768x1024, 4 frames per cell (frames/sec)\n");
  std::printf("%-10s %8s %10s %12s %14s\n", "tile", "tiles", "stream+%",
              "fifo/tile", "threads:fps");

  // Row splits keep full-width rows (cheap halo, unchanged FIFO depth);
  // column splits shorten the rows, which is what actually shrinks the
  // reuse FIFOs -- at a larger halo stream overhead.
  const struct {
    const char* label;
    poly::IntVec shape;
  } shapes[] = {{"full", {}},        {"rows=192", {192, 0}},
                {"rows=96", {96, 0}}, {"rows=48", {48, 0}},
                {"cols=256", {0, 256}}, {"cols=128", {0, 128}}};
  const std::size_t thread_counts[] = {1, 2, 4, 8};
  for (const auto& [label, shape] : shapes) {
    const runtime::TilePlan plan =
        runtime::plan_tiles(p, runtime::TilerOptions{shape});
    const double overhead =
        100.0 *
        (static_cast<double>(plan.streamed_elements) /
             static_cast<double>(plan.untiled_streamed_elements) -
         1.0);
    std::printf("%-10s %8zu %9.1f%% %12lld  ", label, plan.tiles.size(),
                overhead,
                static_cast<long long>(plan.tiles[0].reuse_footprint));
    for (const std::size_t threads : thread_counts) {
      std::printf(" %zu:%0.2f", threads,
                  frames_per_sec(p, threads, shape, 4));
    }
    std::printf("\n");
  }
}

void print_gallery_frames() {
  const std::vector<stencil::StencilProgram> programs = {
      stencil::denoise_2d(),          stencil::rician_2d(),
      stencil::sobel_2d(),            stencil::bicubic_2d(),
      stencil::denoise_3d(48, 64, 64),
      stencil::segmentation_3d(48, 64, 64)};
  const std::size_t threads =
      std::max(1u, std::thread::hardware_concurrency());
  std::printf("\ngallery kernels, %zu worker threads, automatic tile shape\n",
              threads);
  std::printf("%-16s %8s %12s %10s\n", "kernel", "tiles", "outputs",
              "frames/s");
  for (const stencil::StencilProgram& p : programs) {
    runtime::EngineOptions options;
    options.threads = threads;
    runtime::FrameEngine engine(options);
    const auto plan = engine.plan_for(p);
    const double fps = frames_per_sec(p, threads, {}, 2);
    std::printf("%-16s %8zu %12lld %10.2f\n", p.name().c_str(),
                plan->tiles.size(),
                static_cast<long long>(plan->total_outputs), fps);
  }
}

/// One instrumented serve run (isolated metrics registry, so numbers are
/// this run's alone) summarized as BENCH_runtime.json: throughput, cache
/// hit ratio and the tile-latency percentiles the engine's histogram saw.
void write_runtime_json() {
  const stencil::StencilProgram p = stencil::denoise_2d();
  const std::size_t threads =
      std::max(1u, std::thread::hardware_concurrency());
  const int frames = 8;
  obs::Registry registry;
  runtime::EngineOptions options;
  options.threads = threads;
  options.tile_shape = {96, 0};
  options.metrics = &registry;
  runtime::FrameEngine engine(options);
  engine.plan_for(p);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<runtime::FrameHandle> handles;
  for (int f = 0; f < frames; ++f) {
    handles.push_back(engine.submit(p, static_cast<std::uint64_t>(f)));
  }
  for (runtime::FrameHandle& handle : handles) handle.wait();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const runtime::EngineStats stats = engine.stats();
  const obs::Histogram::Snapshot latency =
      registry.histogram("engine.tile_latency_us").snapshot();
  const double lookups =
      static_cast<double>(stats.cache.hits + stats.cache.misses);
  std::ostringstream json;
  json << "{\"benchmark\": \"runtime\", \"kernel\": \"" << p.name()
       << "\", \"threads\": " << threads << ", \"frames\": " << frames
       << ", \"frames_per_sec\": " << frames / seconds
       << ", \"tiles_executed\": " << stats.tiles_executed
       << ", \"cache\": {\"hits\": " << stats.cache.hits
       << ", \"misses\": " << stats.cache.misses << ", \"hit_ratio\": "
       << (lookups > 0 ? static_cast<double>(stats.cache.hits) / lookups
                       : 0.0)
       << "}, \"tile_latency_us\": {\"count\": " << latency.count
       << ", \"mean\": " << latency.mean()
       << ", \"p50\": " << latency.percentile(0.50)
       << ", \"p95\": " << latency.percentile(0.95)
       << ", \"p99\": " << latency.percentile(0.99)
       << ", \"max\": " << latency.max << "}}";
  nup::bench::write_json("BENCH_runtime.json", json.str());
}

// ---- design cache: hit vs miss ----------------------------------------

void BM_DesignCacheMiss(benchmark::State& state) {
  // Fresh cache every iteration: pays microarchitecture generation plus
  // fast-backend row-program compilation.
  const stencil::StencilProgram p = stencil::denoise_2d();
  for (auto _ : state) {
    runtime::DesignCache cache(4);
    benchmark::DoNotOptimize(cache.get_or_compile(p));
  }
}
BENCHMARK(BM_DesignCacheMiss)->Unit(benchmark::kMicrosecond);

void BM_DesignCacheHit(benchmark::State& state) {
  // Warm cache: canonical key + map lookup only. Target: >= 10x cheaper
  // than BM_DesignCacheMiss.
  const stencil::StencilProgram p = stencil::denoise_2d();
  runtime::DesignCache cache(4);
  cache.get_or_compile(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get_or_compile(p));
  }
}
BENCHMARK(BM_DesignCacheHit)->Unit(benchmark::kMicrosecond);

void BM_EngineFrameDenoise(benchmark::State& state) {
  // One full served frame (submit -> tiled execution -> stitched result)
  // at the sweep's best tile shape, threads from the benchmark argument.
  const stencil::StencilProgram p = stencil::denoise_2d();
  runtime::EngineOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  options.tile_shape = {96, 0};
  runtime::FrameEngine engine(options);
  engine.plan_for(p);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.submit(p, seed++).wait().outputs);
  }
}
BENCHMARK(BM_EngineFrameDenoise)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  nup::bench::banner(
      "Tiled-execution runtime: thread x tile sweep and design cache");
  print_thread_tile_sweep();
  print_gallery_frames();
  write_runtime_json();
  return nup::bench::run(argc, argv);
}
