// Performance characterization of the design-automation flow itself
// (Fig 11): frontend parsing, polyhedral analysis, microarchitecture
// generation, baseline searches, RTL emission, and simulator throughput.
// Not a paper artifact -- it documents tool scalability.

#include <cstdio>

#include "arch/builder.hpp"
#include "baseline/cyclic.hpp"
#include "baseline/gmp.hpp"
#include "bench_common.hpp"
#include "codegen/verilog.hpp"
#include "core/compiler.hpp"
#include "frontend/sema.hpp"
#include "sim/simulator.hpp"
#include "stencil/gallery.hpp"

namespace {

using namespace nup;

constexpr const char* kSource = R"(
  for (i = 1; i <= 766; i++)
    for (j = 1; j <= 1022; j++)
      B[i][j] = 0.5*A[i][j] + 0.125*(A[i-1][j] + A[i+1][j]
                                     + A[i][j-1] + A[i][j+1]);
)";

void BM_FrontendParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        frontend::parse_stencil(kSource, "DENOISE").total_references());
  }
}
BENCHMARK(BM_FrontendParse);

void BM_FullCompileNoSim(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::denoise_2d();
  core::CompileOptions options;
  options.verify_by_simulation = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compile(p, options).rtl.size());
  }
}
BENCHMARK(BM_FullCompileNoSim);

void BM_FullCompileWithVerification(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::denoise_2d(64, 80);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compile(p).verified);
  }
}
BENCHMARK(BM_FullCompileWithVerification)->Unit(benchmark::kMillisecond);

void BM_EmitVerilogSegmentation(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::segmentation_3d();
  const arch::AcceleratorDesign design = arch::build_design(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codegen::emit_verilog(p, design).size());
  }
}
BENCHMARK(BM_EmitVerilogSegmentation);

void BM_SimulatorThroughput3D(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::segmentation_3d(16, 32, 32);
  const arch::AcceleratorDesign design = arch::build_design(p);
  sim::SimOptions options;
  options.record_outputs = false;
  std::int64_t cycles = 0;
  for (auto _ : state) {
    cycles = sim::simulate(p, design, options).cycles;
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorThroughput3D)->Unit(benchmark::kMillisecond);

void BM_GmpVersusCyclicSearch(benchmark::State& state) {
  const stencil::StencilProgram p = stencil::sobel_2d();
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::gmp_partition(p, 0).banks +
                             baseline::cyclic_partition(p, 0).banks);
  }
}
BENCHMARK(BM_GmpVersusCyclicSearch);

}  // namespace

int main(int argc, char** argv) {
  nup::bench::banner("Tool-flow performance characterization");
  return nup::bench::run(argc, argv);
}
