// Experiment: Fig 5 -- for the constant DENOISE window, the number of banks
// needed by cyclic partitioning [5] varies with the row size of the data
// grid, while our design always uses n-1 = 4 FIFOs. Prints the sweep series
// and times the bank-count search.

#include <cstdio>
#include <map>

#include "arch/builder.hpp"
#include "baseline/cyclic.hpp"
#include "bench_common.hpp"
#include "stencil/gallery.hpp"
#include "util/table.hpp"

namespace {

using namespace nup;

const std::vector<poly::IntVec> kWindow = {
    {-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}};

void print_artifact() {
  bench::banner(
      "Fig 5: # of banks vs data-grid row size (DENOISE 5-point window)");
  std::printf("baseline: cyclic partitioning [5] on the flattened address "
              "space;\nours: always n-1 = 4 non-uniform reuse FIFOs\n\n");

  TextTable table;
  table.set_header({"row size", "banks [5]", "banks ours"});
  std::map<std::size_t, int> histogram;
  for (std::int64_t w = 993; w <= 1056; ++w) {
    const baseline::UniformPartition part =
        baseline::cyclic_partition_raw(kWindow, {768, w});
    ++histogram[part.banks];
    if (w % 4 == 1 || part.banks >= 8) {
      table.add_row({std::to_string(w), std::to_string(part.banks), "4"});
    }
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\nbank-count histogram over row sizes 993..1056 "
              "(paper reports the range 5..8):\n");
  for (const auto& [banks, count] : histogram) {
    std::printf("  %zu banks: %2d row sizes  ", banks, count);
    for (int i = 0; i < count; ++i) std::printf("#");
    std::printf("\n");
  }
  std::printf("ours: 4 banks at every row size (theoretical minimum)\n");
}

void BM_CyclicSearchPerRowSize(benchmark::State& state) {
  std::int64_t w = 993;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baseline::cyclic_partition_raw(kWindow, {768, w}).banks);
    w = w == 1056 ? 993 : w + 1;
  }
}
BENCHMARK(BM_CyclicSearchPerRowSize);

void BM_OurBuilderPerRowSize(benchmark::State& state) {
  std::int64_t w = 993;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        arch::build_design(stencil::denoise_2d(768, w)).total_bank_count());
    w = w == 1056 ? 993 : w + 1;
  }
}
BENCHMARK(BM_OurBuilderPerRowSize);

}  // namespace

int main(int argc, char** argv) {
  print_artifact();
  return nup::bench::run(argc, argv);
}
