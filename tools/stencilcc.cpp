// stencilcc -- the design-automation flow (Fig 11) as a command-line tool.
//
//   stencilcc [options] <kernel.c>
//
// Reads a mini-C stencil kernel, generates the non-uniform memory system,
// verifies it by cycle-accurate simulation against a golden software
// execution, and writes the Verilog, testbench, transformed HLS kernel,
// integration header and a JSON report into the output directory.
//
// Options:
//   -o <dir>       output directory (default: .)
//   --name <n>     accelerator name (default: derived from the file name)
//   --exact        exact union-domain sizing and streaming
//   --no-verify    skip the simulation run
//   --vcd <N>      dump a VCD of the first N cycles
//   --sim-backend <reference|fast>
//                  simulator backend for the verification run (default:
//                  reference; fast is the compiled lane, bit-identical)
//   --cpp-model    also emit a standalone C co-simulation model
//   --rtl-check    execute the generated Verilog in the built-in RTL
//                  interpreter (small programs only)
//   --serve <N>    batch mode: after compiling, serve N frames of the
//                  kernel through the concurrent tiled runtime (design
//                  cache + halo tiler + worker pool) and print the
//                  throughput and cache statistics
//   --threads <T>  worker threads for --serve (default: hardware)
//   --tile <a,b,..> tile extents per dimension for --serve (0 = full
//                  extent; default: automatic shape)
//   --metrics <f>  write the metrics registry (cache/engine/fifo/sim
//                  telemetry, see docs/OBSERVABILITY.md) as JSON to <f>
//   --trace <f>    record spans (tile execution, design compiles) and
//                  write Chrome trace-event JSON to <f>; open it in
//                  chrome://tracing or https://ui.perfetto.dev
//   --stats        print the metrics registry as an aligned table
//   --quiet        suppress the summary

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "codegen/cpp_model.hpp"
#include "core/json_export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/engine.hpp"
#include "runtime/telemetry.hpp"
#include "sim/vcd.hpp"
#include "util/error.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: stencilcc [-o dir] [--name n] [--exact] [--no-verify] "
      "[--vcd N] [--sim-backend reference|fast] [--cpp-model] "
      "[--rtl-check] [--serve N] [--threads T] [--tile a,b,..] "
      "[--metrics f.json] [--trace f.trace.json] [--stats] [--quiet] "
      "<kernel.c>\n");
}

bool parse_tile_shape(const std::string& spec, nup::poly::IntVec* shape) {
  shape->clear();
  std::istringstream in(spec);
  std::string field;
  while (std::getline(in, field, ',')) {
    char* end = nullptr;
    const long value = std::strtol(field.c_str(), &end, 10);
    if (end == field.c_str() || *end != '\0') return false;
    shape->push_back(value);
  }
  return !shape->empty();
}

int serve_frames(const nup::core::AcceleratorPackage& pkg,
                 const nup::core::CompileOptions& compile_options,
                 long frames, std::size_t threads,
                 nup::poly::IntVec tile_shape, bool quiet) {
  using namespace nup;
  runtime::EngineOptions options;
  options.threads = threads;
  options.tile_shape = std::move(tile_shape);
  options.build = compile_options.build;
  runtime::FrameEngine engine(options);
  const auto plan = engine.plan_for(pkg.program);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<runtime::FrameHandle> handles;
  handles.reserve(static_cast<std::size_t>(frames));
  for (long f = 0; f < frames; ++f) {
    handles.push_back(engine.submit(pkg.program,
                                    static_cast<std::uint64_t>(f)));
  }
  for (runtime::FrameHandle& handle : handles) {
    const runtime::FrameResult& result = handle.wait();
    if (!result.ok()) {
      std::fprintf(stderr, "stencilcc: frame %llu failed: %s\n",
                   static_cast<unsigned long long>(result.seed),
                   result.error.c_str());
      return 1;
    }
  }
  const auto seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (!quiet) {
    const runtime::EngineStats stats = engine.stats();
    std::printf("served %ld frames in %.3fs (%.2f frames/s), %zu tiles "
                "per frame\n",
                frames, seconds, frames / seconds, plan->tiles.size());
    std::printf(
        "design cache: %lld hits / %lld misses; peak queue depth %zu\n",
        static_cast<long long>(stats.cache.hits),
        static_cast<long long>(stats.cache.misses), stats.max_queue_depth);
  }
  return 0;
}

std::string basename_no_ext(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t start = slash == std::string::npos ? 0 : slash + 1;
  const std::size_t dot = path.find_last_of('.');
  const std::size_t end =
      dot == std::string::npos || dot < start ? path.size() : dot;
  return path.substr(start, end - start);
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "stencilcc: cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nup;

  std::string input;
  std::string out_dir = ".";
  std::string name;
  bool quiet = false;
  bool cpp_model = false;
  long vcd_cycles = 0;
  long serve = 0;
  std::size_t serve_threads = 0;
  poly::IntVec serve_tile;
  std::string metrics_path;
  std::string trace_path;
  bool stats_table = false;
  core::CompileOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--name" && i + 1 < argc) {
      name = argv[++i];
    } else if (arg == "--exact") {
      options.build.exact_sizing = true;
      options.build.exact_streaming = true;
    } else if (arg == "--no-verify") {
      options.verify_by_simulation = false;
    } else if (arg == "--vcd" && i + 1 < argc) {
      vcd_cycles = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--sim-backend" && i + 1 < argc) {
      const std::string backend = argv[++i];
      if (backend == "reference") {
        options.sim.backend = sim::SimBackend::kReference;
      } else if (backend == "fast") {
        options.sim.backend = sim::SimBackend::kFast;
      } else {
        std::fprintf(stderr, "stencilcc: unknown simulator backend '%s'\n",
                     backend.c_str());
        usage();
        return 2;
      }
    } else if (arg == "--cpp-model") {
      cpp_model = true;
    } else if (arg == "--rtl-check") {
      options.verify_rtl = true;
    } else if (arg == "--serve" && i + 1 < argc) {
      serve = std::strtol(argv[++i], nullptr, 10);
      if (serve <= 0) {
        std::fprintf(stderr, "stencilcc: --serve needs a frame count\n");
        usage();
        return 2;
      }
    } else if (arg == "--threads" && i + 1 < argc) {
      serve_threads =
          static_cast<std::size_t>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--tile" && i + 1 < argc) {
      if (!parse_tile_shape(argv[++i], &serve_tile)) {
        std::fprintf(stderr, "stencilcc: bad --tile shape '%s'\n",
                     argv[i]);
        usage();
        return 2;
      }
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--stats") {
      stats_table = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "stencilcc: unknown option %s\n", arg.c_str());
      usage();
      return 2;
    } else if (input.empty()) {
      input = arg;
    } else {
      usage();
      return 2;
    }
  }
  if (input.empty()) {
    usage();
    return 2;
  }
  if (name.empty()) name = basename_no_ext(input);
  if (vcd_cycles > 0) options.sim.trace_cycles = vcd_cycles;
  if (!trace_path.empty()) obs::Tracer::global().set_enabled(true);

  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "stencilcc: cannot read %s\n", input.c_str());
    return 1;
  }
  std::ostringstream source;
  source << in.rdbuf();

  try {
    const core::AcceleratorPackage pkg =
        core::compile_source(source.str(), name, options);
    if (!quiet) std::printf("%s", pkg.summary().c_str());

    const std::string base = out_dir + "/" + name;
    bool ok = write_file(base + "_memory_system.v", pkg.rtl) &&
              write_file(base + "_tb.v", pkg.testbench) &&
              write_file(base + "_kernel.cpp", pkg.kernel_code) &&
              write_file(base + "_accel.hpp", pkg.integration_header) &&
              write_file(base + "_report.json", core::to_json(pkg));
    if (ok && cpp_model) {
      ok = write_file(base + "_model.cpp",
                      codegen::emit_cpp_model(pkg.program, pkg.design));
    }
    if (ok && vcd_cycles > 0 && options.verify_by_simulation) {
      ok = sim::write_vcd(base + ".vcd", pkg.verification, pkg.design,
                          name);
    }
    if (!quiet && ok) {
      std::printf("artifacts written to %s/%s_*.{v,cpp,hpp,json}\n",
                  out_dir.c_str(), name.c_str());
    }
    if (options.verify_by_simulation) {
      // The one-shot verification run's telemetry (FIFO high-water marks,
      // stall cycles, phase latencies) joins the registry next to
      // whatever --serve adds.
      runtime::publish_sim_telemetry(obs::Registry::global(), pkg.design,
                                     pkg.verification);
    }
    int rc = ok ? 0 : 1;
    if (ok && serve > 0) {
      rc = serve_frames(pkg, options, serve, serve_threads,
                        std::move(serve_tile), quiet);
    }
    const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
    if (!metrics_path.empty() &&
        !write_file(metrics_path, snap.to_json() + "\n")) {
      rc = rc != 0 ? rc : 1;
    }
    if (!trace_path.empty() &&
        !write_file(trace_path, obs::Tracer::global().to_chrome_json())) {
      rc = rc != 0 ? rc : 1;
    }
    if (stats_table) std::printf("%s", snap.to_table().c_str());
    return rc;
  } catch (const Error& e) {
    std::fprintf(stderr, "stencilcc: %s\n", e.what());
    return 1;
  }
}
