// stencilcc -- the design-automation flow (Fig 11) as a command-line tool.
//
//   stencilcc [options] <kernel.c>
//
// Reads a mini-C stencil kernel, generates the non-uniform memory system,
// verifies it by cycle-accurate simulation against a golden software
// execution, and writes the Verilog, testbench, transformed HLS kernel,
// integration header and a JSON report into the output directory.
//
// Options:
//   -o <dir>       output directory (default: .)
//   --name <n>     accelerator name (default: derived from the file name)
//   --exact        exact union-domain sizing and streaming
//   --width <W>    datapath width (Fig 14's bandwidth knob): W elements
//                  stream per cycle and every reuse FIFO is organized as
//                  ceil(depth / W) W-element words. The fast simulator
//                  retires W-cell spans per machine cycle (AVX2 where the
//                  host supports it), bit-identical to W=1. Default 1
//   --no-verify    skip the simulation run
//   --vcd <N>      dump a VCD of the first N cycles
//   --sim-backend <reference|fast>
//                  simulator backend for the verification run (default:
//                  reference; fast is the compiled lane, bit-identical)
//   --cpp-model    also emit a standalone C co-simulation model
//   --rtl-check    execute the generated Verilog in the built-in RTL
//                  interpreter (small programs only)
//   --serve <N>    serving mode: after compiling, serve N frames of the
//                  kernel through the multi-tenant serving subsystem
//                  (admission quotas, weighted-fair scheduling, design-
//                  affinity batching over the tiled runtime; see
//                  docs/SERVING.md) and print throughput, shed and cache
//                  statistics. --tenants/--quota/--shed-after/
//                  --serve-policy/--serve-mix shape the workload and the
//                  admission rules; --serve-port additionally accepts
//                  remote tenants over the loopback line protocol
//   --threads <T>  worker threads for --serve (default: hardware)
//   --tile <a,b,..> tile extents per dimension for --serve (0 = full
//                  extent; default: automatic shape)
//   --numa <m>     locality mode of the staged/serving runtimes: auto
//                  discovers the memory-node topology, places tiles on
//                  nodes and pins per-node workers; interleave
//                  round-robins tiles over nodes; off (default) keeps
//                  the single-queue scheduler (docs/RUNTIME.md)
//   --pipeline <spec>
//                  stage-pipelined mode: <spec> holds several mini-C
//                  kernels separated by lines starting with `---`; they
//                  are chained into a stage DAG and executed with
//                  tile-granular producer-consumer overlap (stage k+1
//                  starts on a tile as soon as the producer tiles
//                  covering its halo resolve). --serve/--threads/--tile
//                  set the frame count, per-stage workers and tile shape;
//                  --barrier switches to the frame-barrier baseline
//   --barrier      with --pipeline: wait for whole producer frames
//                  instead of halo-covering tiles (scheduling baseline)
//   --frames <N>   with --pipeline: number of frames to pump (alias of
//                  --serve that reads naturally next to --inflight)
//   --inflight <K> with --pipeline: cross-frame admission window --
//                  at most K frames in flight at once (1 = frame-serial,
//                  0 = unbounded; default 4). Successive frames interleave
//                  tiles on the same stage engines, recycling buffer
//                  slabs, so steady state allocates nothing per tile
//   --timesteps <T>
//                  temporal mode: treat the kernel as one step of an
//                  iterative solver and sweep T generations (Zohouri-style
//                  temporal blocking). The step is unrolled into chains of
//                  B replica stages -- each replica's reuse FIFOs sized
//                  non-uniformly by the arch builder -- and ceil(T/B)
//                  passes stream through the pipelined runtime
//   --block <B>    temporal mode: blocking factor B in [1, T] -- replicas
//                  per pass (default 1 = frame-serial)
//   --boundary <shrink|clamp|wrap|constant>
//                  temporal mode: how replicas read past the previous
//                  generation's domain edge (default shrink)
//   --bc-value <V> temporal mode: Dirichlet value for --boundary constant
//   --tolerance <E>
//                  temporal mode: convergence monitor -- stop a frame's
//                  remaining passes once the pass-boundary max-abs
//                  residual is <= E (0 disables, the default)
//   --metrics <f>  write the metrics registry (cache/engine/fifo/sim
//                  telemetry, see docs/OBSERVABILITY.md) as JSON to <f>
//   --metrics-port <p>
//                  serve the live registry over HTTP on 127.0.0.1:<p>
//                  (0 = ephemeral; the bound port is printed):
//                  GET /metrics is OpenMetrics, /metrics.json is JSON
//   --hold <ms>    linger <ms> milliseconds after the run completes, so
//                  a scraper can hit --metrics-port before exit
//   --postmortem <dir>
//                  on frame failure / cancellation / deadlock / depth
//                  violation, write a flight-recorder bundle (last-N
//                  journal events, metrics snapshot, offending design)
//                  into <dir>
//   --cancel-frame <k>
//                  with --serve: cancel the k-th submitted frame mid
//                  flight (exercises the cancellation post-mortem path;
//                  that frame's cancellation is expected, not an error)
//   --trace <f>    record spans (tile execution, design compiles) and
//                  write Chrome trace-event JSON to <f>; open it in
//                  chrome://tracing or https://ui.perfetto.dev
//   --stats        print the metrics registry as an aligned table
//   --quiet        suppress the summary

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/compiler.hpp"
#include "codegen/cpp_model.hpp"
#include "core/json_export.hpp"
#include "frontend/sema.hpp"
#include "obs/expo.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/executor.hpp"
#include "pipeline/stage_graph.hpp"
#include "runtime/engine.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/topology.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "sim/vcd.hpp"
#include "stencil/boundary.hpp"
#include "stencil/gallery.hpp"
#include "temporal/runner.hpp"
#include "util/error.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: stencilcc [options] <kernel.c>\n"
      "       stencilcc --pipeline <spec> [options]\n"
      "       stencilcc --timesteps T [--block B] [options] <kernel.c>\n"
      "\n"
      "Compiles a mini-C stencil kernel into the non-uniformly partitioned\n"
      "reuse-buffer accelerator, verifies it by simulation against the\n"
      "golden software run, and writes Verilog, testbench, HLS kernel,\n"
      "integration header and a JSON report.\n"
      "\n"
      "compile options:\n"
      "  -o <dir>        output directory for the artifacts (default: .)\n"
      "  --name <n>      accelerator name (default: from the file name)\n"
      "  --exact         exact union-domain sizing and streaming\n"
      "  --width <W>     datapath width: W elements per cycle, FIFOs in\n"
      "                  W-element words (default 1)\n"
      "  --no-verify     skip the verification simulation\n"
      "  --vcd <N>       dump a VCD of the first N verification cycles\n"
      "  --sim-backend <reference|fast>\n"
      "                  simulator backend for verification (default:\n"
      "                  reference; fast is bit-identical)\n"
      "  --cpp-model     also emit a standalone C co-simulation model\n"
      "  --rtl-check     execute the generated Verilog in the built-in\n"
      "                  RTL interpreter (small programs only)\n"
      "\n"
      "serving options (single kernel, pipeline and temporal modes):\n"
      "  --serve <N>     serve N frames through the multi-tenant serving\n"
      "                  subsystem (see docs/SERVING.md) and print\n"
      "                  throughput / shed / cache statistics\n"
      "  --frames <N>    alias of --serve for the staged modes\n"
      "  --threads <T>   worker threads (per stage in the staged modes;\n"
      "                  default: hardware concurrency)\n"
      "  --tile <a,b,..> tile extents per dimension (0 = full extent;\n"
      "                  default: automatic shape)\n"
      "  --numa <auto|off|interleave>\n"
      "                  locality-aware execution: discover the memory-\n"
      "                  node topology (NUP_FAKE_TOPOLOGY=<n> simulates n\n"
      "                  nodes anywhere), place tiles on nodes and pin\n"
      "                  per-node workers with idle stealing (default:\n"
      "                  off; see docs/RUNTIME.md)\n"
      "\n"
      "multi-tenant serving (with --serve; see docs/SERVING.md):\n"
      "  --tenants <T>   spread the frames over T synthetic tenants\n"
      "                  t0..t<T-1>, scheduled weighted-fair (default 1)\n"
      "  --quota <Q>     per-tenant quota: at most Q of a tenant's frames\n"
      "                  execute concurrently (default 4)\n"
      "  --shed-after <S>\n"
      "                  per-tenant queue-depth cap: submits past S\n"
      "                  queued frames are shed with an explicit verdict\n"
      "                  instead of queuing without bound (default 64)\n"
      "  --serve-policy <affinity|rr>\n"
      "                  dispatch order: affinity drains same-design\n"
      "                  groups (one design compile per group); rr is the\n"
      "                  design-blind weighted-fair baseline (default:\n"
      "                  affinity)\n"
      "  --serve-mix <k1,k2,..>\n"
      "                  also register these gallery kernels and rotate\n"
      "                  the submitted frames across all kernels (e.g.\n"
      "                  jacobi_2d,blur_2d) -- a mixed-design workload\n"
      "  --serve-port <p>\n"
      "                  also accept remote tenants on 127.0.0.1:<p> via\n"
      "                  the line protocol (0 = ephemeral; the bound\n"
      "                  port is printed)\n"
      "\n"
      "pipeline mode:\n"
      "  --pipeline <spec>\n"
      "                  chain the mini-C kernels in <spec> (sections\n"
      "                  separated by `---` lines) into a stage DAG with\n"
      "                  tile-granular producer-consumer overlap\n"
      "  --barrier       wait for whole producer frames instead of\n"
      "                  halo-covering tiles (scheduling baseline)\n"
      "  --inflight <K>  cross-frame admission window: at most K frames\n"
      "                  (or temporal passes) in flight (1 = serial,\n"
      "                  0 = unbounded; default 4)\n"
      "\n"
      "temporal mode (iterative solvers; see docs/TEMPORAL.md):\n"
      "  --timesteps <T> sweep T generations of the kernel: the step is\n"
      "                  unrolled into chains of B replica stages, each\n"
      "                  replica's reuse FIFOs sized non-uniformly, and\n"
      "                  ceil(T/B) passes stream through the pipeline\n"
      "  --block <B>     blocking factor B in [1, T]: replicas per pass\n"
      "                  (default 1 = frame-serial)\n"
      "  --boundary <shrink|clamp|wrap|constant>\n"
      "                  reads past the previous generation's domain edge:\n"
      "                  shrink grows earlier replicas' domains so every\n"
      "                  read is contained; clamp/wrap/constant keep all\n"
      "                  replicas on the target box (default: shrink)\n"
      "  --bc-value <V>  Dirichlet value for --boundary constant\n"
      "  --tolerance <E> stop a frame early once the pass-boundary\n"
      "                  max-abs residual is <= E (0 = run all passes)\n"
      "\n"
      "observability:\n"
      "  --metrics <f>   write the metrics registry as JSON to <f>\n"
      "  --metrics-port <p>\n"
      "                  serve the live registry on 127.0.0.1:<p>\n"
      "                  (0 = ephemeral; bound port printed): /metrics is\n"
      "                  OpenMetrics, /metrics.json is JSON\n"
      "  --hold <ms>     linger <ms> ms after the run so a scraper can\n"
      "                  hit --metrics-port before exit\n"
      "  --postmortem <dir>\n"
      "                  write flight-recorder bundles for failed /\n"
      "                  cancelled / deadlocked frames into <dir>\n"
      "  --cancel-frame <k>\n"
      "                  with --serve: cancel the k-th frame mid-flight\n"
      "                  (exercises the cancellation post-mortem)\n"
      "  --trace <f>     write Chrome trace-event JSON to <f>\n"
      "  --stats         print the metrics registry as an aligned table\n"
      "  --quiet         suppress the summaries\n"
      "  -h, --help      this text\n"
      "\n"
      "example -- 8 Jacobi generations, 4 replicas per pass (2 passes),\n"
      "clamped boundary, metrics to heat.json:\n"
      "  stencilcc --timesteps 8 --block 4 --boundary clamp \\\n"
      "            --metrics heat.json heat.c\n"
      "heat.c being one update step, e.g.\n"
      "  out[i][j] = 0.1*(in[i-1][j]+in[i+1][j]+in[i][j-1]+in[i][j+1])\n"
      "            + 0.6*in[i][j];\n");
}

bool parse_tile_shape(const std::string& spec, nup::poly::IntVec* shape) {
  shape->clear();
  std::istringstream in(spec);
  std::string field;
  while (std::getline(in, field, ',')) {
    char* end = nullptr;
    const long value = std::strtol(field.c_str(), &end, 10);
    if (end == field.c_str() || *end != '\0') return false;
    shape->push_back(value);
  }
  return !shape->empty();
}

/// Serving-mode knobs of the CLI (see docs/SERVING.md).
struct ServeCliOptions {
  long tenants = 1;      ///< --tenants: synthetic tenants t0..t<N-1>
  long quota = 4;        ///< --quota: per-tenant max in-flight frames
  long shed_after = 64;  ///< --shed-after: per-tenant queue-depth cap
  nup::serve::Policy policy = nup::serve::Policy::kAffinity;
  std::vector<std::string> mix;  ///< --serve-mix: extra gallery kernels
  long port = -1;                ///< --serve-port: -1 = no endpoint
  long inflight = -1;            ///< --inflight (shared with pipeline)
};

/// Gallery kernels addressable from --serve-mix (default sizes).
std::optional<nup::stencil::StencilProgram> gallery_kernel(
    const std::string& name) {
  using namespace nup::stencil;
  if (name == "denoise_2d") return denoise_2d();
  if (name == "rician_2d") return rician_2d();
  if (name == "sobel_2d") return sobel_2d();
  if (name == "bicubic_2d") return bicubic_2d();
  if (name == "jacobi_2d") return jacobi_2d();
  if (name == "blur_2d") return blur_2d();
  if (name == "heat_3d") return heat_3d();
  return std::nullopt;
}

int serve_frames(const nup::core::AcceleratorPackage& pkg,
                 const nup::core::CompileOptions& compile_options,
                 long frames, std::size_t threads,
                 nup::poly::IntVec tile_shape, nup::runtime::NumaMode numa,
                 long cancel_frame, const ServeCliOptions& cli, bool quiet) {
  using namespace nup;
  serve::ServeOptions options;
  options.engine.threads = threads;
  options.engine.tile_shape = std::move(tile_shape);
  options.engine.build = compile_options.build;
  options.engine.numa = numa;
  if (cli.inflight >= 0) {
    options.max_frames_in_flight = static_cast<std::size_t>(cli.inflight);
  }
  options.default_quota.max_in_flight = static_cast<std::size_t>(cli.quota);
  options.default_quota.max_queued =
      static_cast<std::size_t>(cli.shed_after);
  // The CLI bounds backlog per tenant (--shed-after); no global cap, so
  // `--serve N` with one tenant and a large N sheds only past that knob.
  options.global_queue_limit = 0;
  options.policy = cli.policy;
  serve::StencilServer server(options);
  server.add_kernel(pkg.program);
  std::vector<std::string> kernels{pkg.program.name()};
  for (const std::string& mix_name : cli.mix) {
    const std::optional<stencil::StencilProgram> program =
        gallery_kernel(mix_name);
    if (!program) {
      std::fprintf(stderr, "stencilcc: --serve-mix: unknown kernel '%s'\n",
                   mix_name.c_str());
      return 2;
    }
    server.add_kernel(*program);
    kernels.push_back(program->name());
  }
  const auto plan = server.engine().plan_for(pkg.program);

  std::unique_ptr<serve::ServeEndpoint> endpoint;
  if (cli.port >= 0) {
    serve::ServeEndpointOptions ep;
    ep.port = static_cast<int>(cli.port);
    endpoint = std::make_unique<serve::ServeEndpoint>(server, ep);
    if (!endpoint->ok()) {
      std::fprintf(stderr, "stencilcc: --serve-port: %s\n",
                   endpoint->error().c_str());
      return 1;
    }
    std::printf("serve: listening on 127.0.0.1:%d\n", endpoint->port());
    std::fflush(stdout);
  }

  std::vector<serve::ServeClient> clients;
  clients.reserve(static_cast<std::size_t>(cli.tenants));
  for (long t = 0; t < cli.tenants; ++t) {
    clients.emplace_back(server, "t" + std::to_string(t),
                         options.default_quota);
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<serve::RequestHandle> handles(
      static_cast<std::size_t>(frames));
  long shed = 0;
  for (long f = 0; f < frames; ++f) {
    serve::ServeClient& client =
        clients[static_cast<std::size_t>(f % cli.tenants)];
    const std::string& kernel =
        kernels[static_cast<std::size_t>(f) % kernels.size()];
    const serve::SubmitResult r =
        client.submit(kernel, static_cast<std::uint64_t>(f));
    if (!r.admitted()) {
      ++shed;
      if (!quiet) {
        std::printf("frame %ld shed (%s)\n", f,
                    serve::to_string(r.reason));
      }
      continue;
    }
    handles[static_cast<std::size_t>(f)] = r.handle;
    if (f == cancel_frame) {
      // Cancel a *running* frame, not a queued one: wait until the
      // request reached the engine so the cancellation exercises the
      // mid-flight path (and its post-mortem), as it always has.
      serve::RequestHandle h = r.handle;
      h.wait_admitted();
      h.cancel();
    }
  }
  int rc = 0;
  for (long f = 0; f < frames; ++f) {
    serve::RequestHandle& h = handles[static_cast<std::size_t>(f)];
    if (!h.valid()) continue;
    const runtime::FrameResult& result = h.wait();
    if (f == cancel_frame && result.cancelled) {
      if (!quiet) {
        std::printf("frame %ld cancelled as requested\n", cancel_frame);
      }
      continue;
    }
    if (!result.ok()) {
      std::fprintf(stderr, "stencilcc: frame %llu failed: %s\n",
                   static_cast<unsigned long long>(result.seed),
                   result.error.c_str());
      rc = 1;
    }
  }
  const auto seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const serve::ServeStats sstats = server.stats();
  const runtime::EngineStats estats = server.engine().stats();
  server.shutdown();  // drop the design pins before any final scrape
  if (endpoint) endpoint->stop();
  if (!quiet) {
    std::printf(
        "served %ld frames in %.3fs (%.2f frames/s), %zu tiles per "
        "frame, %ld tenants\n",
        frames - shed, seconds, (frames - shed) / seconds,
        plan->tiles.size(), cli.tenants);
    std::printf(
        "serve: %lld groups, %lld design switches, %lld shed (policy "
        "%s)\n",
        static_cast<long long>(sstats.groups),
        static_cast<long long>(sstats.design_switches),
        static_cast<long long>(sstats.shed),
        serve::to_string(options.policy));
    std::printf(
        "design cache: %lld hits / %lld misses; peak queue depth %zu\n",
        static_cast<long long>(estats.cache.hits),
        static_cast<long long>(estats.cache.misses),
        estats.max_queue_depth);
  }
  return rc;
}

// Splits a pipeline spec into its stage kernels: sections separated by
// lines whose first non-blank characters are `---`.
std::vector<std::string> split_stage_sources(std::istream& in) {
  std::vector<std::string> sections;
  std::string line;
  std::string current;
  auto flush = [&] {
    if (current.find_first_not_of(" \t\r\n") != std::string::npos) {
      sections.push_back(current);
    }
    current.clear();
  };
  while (std::getline(in, line)) {
    const std::size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line.compare(first, 3, "---") == 0) {
      flush();
    } else {
      current += line;
      current += '\n';
    }
  }
  flush();
  return sections;
}

int run_pipeline(const std::string& spec_path, const std::string& name,
                 const nup::core::CompileOptions& compile_options,
                 long frames, long inflight, std::size_t threads,
                 nup::poly::IntVec tile_shape,
                 nup::runtime::NumaMode numa, bool barrier, bool quiet) {
  using namespace nup;

  std::ifstream in(spec_path);
  if (!in) {
    std::fprintf(stderr, "stencilcc: cannot read %s\n", spec_path.c_str());
    return 1;
  }
  const std::vector<std::string> sources = split_stage_sources(in);
  if (sources.empty()) {
    std::fprintf(stderr, "stencilcc: %s has no stage kernels\n",
                 spec_path.c_str());
    return 1;
  }

  std::vector<stencil::StencilProgram> stages;
  stages.reserve(sources.size());
  for (std::size_t s = 0; s < sources.size(); ++s) {
    stages.push_back(
        frontend::parse_stencil(sources[s], name + "_s" + std::to_string(s)));
  }
  pipeline::StageGraph graph = pipeline::StageGraph::chain(stages);

  pipeline::PipelineOptions options;
  options.name = name;
  options.threads_per_stage = threads;
  options.tile_shape = std::move(tile_shape);
  options.build = compile_options.build;
  options.sim = compile_options.sim;
  options.barrier = barrier;
  options.numa = numa;
  if (inflight >= 0) {
    options.max_frames_in_flight = static_cast<std::size_t>(inflight);
  }
  pipeline::PipelineExecutor executor(std::move(graph), options);

  if (!quiet) {
    std::printf("pipeline %s: %zu stages, %zu edges (%s scheduling, "
                "window %zu)\n",
                name.c_str(), executor.graph().stage_count(),
                executor.graph().edges().size(),
                barrier ? "frame-barrier" : "tile-granular",
                options.max_frames_in_flight);
  }

  if (frames <= 0) frames = 1;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<pipeline::PipelineHandle> handles;
  handles.reserve(static_cast<std::size_t>(frames));
  for (long f = 0; f < frames; ++f) {
    handles.push_back(executor.submit(static_cast<std::uint64_t>(f)));
  }
  for (pipeline::PipelineHandle& handle : handles) {
    const pipeline::PipelineResult& result = handle.wait();
    if (!result.ok()) {
      std::fprintf(stderr, "stencilcc: pipelined frame %llu failed: %s\n",
                   static_cast<unsigned long long>(result.seed),
                   result.error.c_str());
      return 1;
    }
  }
  const auto seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (!quiet) {
    const pipeline::PipelineResult& last = handles.back().wait();
    std::printf("served %ld pipelined frames in %.3fs (%.2f frames/s)\n",
                frames, seconds, frames / seconds);
    for (std::size_t s = 0; s < last.stages.size(); ++s) {
      const auto plan =
          executor.engine(s).plan_for(executor.graph().stages()[s].program);
      std::printf("  stage %s: %zu tiles, first/last tile %+lld/%+lld us%s\n",
                  executor.graph().stages()[s].program.name().c_str(),
                  plan->tiles.size(),
                  static_cast<long long>(last.timing[s].first_tile_us),
                  static_cast<long long>(last.timing[s].last_tile_us),
                  s > 0 && last.timing[s].first_tile_us <
                               last.timing[s - 1].last_tile_us
                      ? " (overlapped upstream)"
                      : "");
    }
    for (std::size_t e = 0; e < last.edges.size(); ++e) {
      std::printf("  edge %s: peak %zu tiles / %zu elements buffered, "
                  "%lld retired\n",
                  executor.graph().edges()[e].label.c_str(),
                  last.edges[e].max_tiles, last.edges[e].max_elements,
                  static_cast<long long>(last.edges[e].retired));
    }
    std::printf("  frame total %lld us\n",
                static_cast<long long>(last.total_us));
  }
  executor.shutdown();
  return 0;
}

// Temporal mode: read one mini-C kernel as the update step of an
// iterative solver and sweep `timesteps` generations per frame through
// the replica-stage pipeline (docs/TEMPORAL.md).
int run_temporal(const std::string& kernel_path, const std::string& name,
                 const nup::core::CompileOptions& compile_options,
                 const nup::temporal::TemporalConfig& config,
                 double tolerance, long frames, long inflight,
                 std::size_t threads, nup::poly::IntVec tile_shape,
                 nup::runtime::NumaMode numa, bool quiet) {
  using namespace nup;

  std::ifstream in(kernel_path);
  if (!in) {
    std::fprintf(stderr, "stencilcc: cannot read %s\n", kernel_path.c_str());
    return 1;
  }
  std::ostringstream source;
  source << in.rdbuf();
  const stencil::StencilProgram step =
      frontend::parse_stencil(source.str(), name);

  temporal::RunnerOptions options;
  options.pipeline.name = name;
  options.pipeline.threads_per_stage = threads;
  options.pipeline.tile_shape = std::move(tile_shape);
  options.pipeline.build = compile_options.build;
  options.pipeline.sim = compile_options.sim;
  options.pipeline.numa = numa;
  options.tolerance = tolerance;
  if (inflight > 0) {
    options.max_passes_in_flight = static_cast<std::size_t>(inflight);
  }
  temporal::TemporalRunner runner(step, config, options);

  if (!quiet) {
    std::printf(
        "temporal %s: T=%lld generations, B=%lld replicas/pass, %lld "
        "passes/frame, %zu pass shape%s, %s boundary\n",
        name.c_str(), static_cast<long long>(config.timesteps),
        static_cast<long long>(config.block),
        static_cast<long long>(runner.schedule().num_passes),
        runner.executor_count(), runner.executor_count() == 1 ? "" : "s",
        stencil::to_string(config.boundary));
  }

  if (frames <= 0) frames = 1;
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(frames));
  for (long f = 0; f < frames; ++f) {
    seeds.push_back(static_cast<std::uint64_t>(f));
  }
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<temporal::FrameOutcome> outcomes =
      runner.run_frames(seeds);
  const auto seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::int64_t generations = 0;
  std::int64_t passes = 0;
  long converged = 0;
  for (const temporal::FrameOutcome& outcome : outcomes) {
    if (!outcome.ok()) {
      std::fprintf(stderr, "stencilcc: temporal frame %llu failed: %s\n",
                   static_cast<unsigned long long>(outcome.seed),
                   outcome.error.c_str());
      return 1;
    }
    generations += outcome.generations_completed;
    passes += outcome.passes_completed;
    if (outcome.converged_early) ++converged;
  }

  if (!quiet) {
    std::printf(
        "swept %ld frame%s in %.3fs: %lld generations (%.2f gen/s), "
        "%lld passes\n",
        frames, frames == 1 ? "" : "s", seconds,
        static_cast<long long>(generations), generations / seconds,
        static_cast<long long>(passes));
    if (tolerance > 0.0) {
      std::printf("  convergence: %ld/%ld frames exited early "
                  "(tolerance %g, last residual %g)\n",
                  converged, frames, tolerance,
                  outcomes.back().last_residual);
    }
    std::printf("  %zu replica designs pinned across %zu executor%s\n",
                runner.pinned_designs(), runner.executor_count(),
                runner.executor_count() == 1 ? "" : "s");
  }
  runner.shutdown();
  return 0;
}

std::string basename_no_ext(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t start = slash == std::string::npos ? 0 : slash + 1;
  const std::size_t dot = path.find_last_of('.');
  const std::size_t end =
      dot == std::string::npos || dot < start ? path.size() : dot;
  return path.substr(start, end - start);
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "stencilcc: cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  return true;
}

// The shared observability tail: --metrics / --trace / --stats read the
// global registry and tracer, which both the compile path and the
// pipelined path feed. Returns nonzero when an export file cannot be
// written.
int emit_observability(const std::string& metrics_path,
                       const std::string& trace_path, bool stats_table) {
  const nup::obs::MetricsSnapshot snap =
      nup::obs::Registry::global().snapshot();
  int rc = 0;
  if (!metrics_path.empty() &&
      !write_file(metrics_path, snap.to_json() + "\n")) {
    rc = 1;
  }
  if (!trace_path.empty() &&
      !write_file(trace_path, nup::obs::Tracer::global().to_chrome_json())) {
    rc = 1;
  }
  if (stats_table) std::printf("%s", snap.to_table().c_str());
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nup;

  std::string input;
  std::string out_dir = ".";
  std::string name;
  bool quiet = false;
  bool cpp_model = false;
  long vcd_cycles = 0;
  long serve = 0;
  std::size_t serve_threads = 0;
  poly::IntVec serve_tile;
  runtime::NumaMode numa_mode = runtime::NumaMode::kOff;
  std::string pipeline_spec;
  bool pipeline_barrier = false;
  long pipeline_frames = 0;
  long pipeline_inflight = -1;  // -1 keeps the executor default
  temporal::TemporalConfig temporal_config;
  bool temporal_mode = false;
  double temporal_tolerance = 0.0;
  std::string metrics_path;
  std::string trace_path;
  long metrics_port = -1;  // -1 = no server
  long hold_ms = 0;
  std::string postmortem_dir;
  long cancel_frame = -1;
  bool stats_table = false;
  ServeCliOptions serve_cli;
  core::CompileOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--name" && i + 1 < argc) {
      name = argv[++i];
    } else if (arg == "--exact") {
      options.build.exact_sizing = true;
      options.build.exact_streaming = true;
    } else if (arg == "--width" && i + 1 < argc) {
      options.build.datapath_width = std::strtol(argv[++i], nullptr, 10);
      if (options.build.datapath_width < 1 ||
          options.build.datapath_width > arch::kMaxDatapathWidth) {
        std::fprintf(stderr,
                     "stencilcc: --width needs a datapath width in [1, %d]\n",
                     static_cast<int>(arch::kMaxDatapathWidth));
        usage();
        return 2;
      }
    } else if (arg == "--no-verify") {
      options.verify_by_simulation = false;
    } else if (arg == "--vcd" && i + 1 < argc) {
      vcd_cycles = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--sim-backend" && i + 1 < argc) {
      const std::string backend = argv[++i];
      if (backend == "reference") {
        options.sim.backend = sim::SimBackend::kReference;
      } else if (backend == "fast") {
        options.sim.backend = sim::SimBackend::kFast;
      } else {
        std::fprintf(stderr, "stencilcc: unknown simulator backend '%s'\n",
                     backend.c_str());
        usage();
        return 2;
      }
    } else if (arg == "--cpp-model") {
      cpp_model = true;
    } else if (arg == "--rtl-check") {
      options.verify_rtl = true;
    } else if (arg == "--serve" && i + 1 < argc) {
      serve = std::strtol(argv[++i], nullptr, 10);
      if (serve <= 0) {
        std::fprintf(stderr, "stencilcc: --serve needs a frame count\n");
        usage();
        return 2;
      }
    } else if (arg == "--threads" && i + 1 < argc) {
      serve_threads =
          static_cast<std::size_t>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--tenants" && i + 1 < argc) {
      serve_cli.tenants = std::strtol(argv[++i], nullptr, 10);
      if (serve_cli.tenants < 1) {
        std::fprintf(stderr, "stencilcc: --tenants needs a count >= 1\n");
        usage();
        return 2;
      }
    } else if (arg == "--quota" && i + 1 < argc) {
      serve_cli.quota = std::strtol(argv[++i], nullptr, 10);
      if (serve_cli.quota < 1) {
        std::fprintf(stderr,
                     "stencilcc: --quota needs an in-flight bound >= 1\n");
        usage();
        return 2;
      }
    } else if (arg == "--shed-after" && i + 1 < argc) {
      serve_cli.shed_after = std::strtol(argv[++i], nullptr, 10);
      if (serve_cli.shed_after < 1) {
        std::fprintf(stderr,
                     "stencilcc: --shed-after needs a queue depth >= 1\n");
        usage();
        return 2;
      }
    } else if (arg == "--serve-policy" && i + 1 < argc) {
      const std::string policy = argv[++i];
      if (policy == "affinity") {
        serve_cli.policy = serve::Policy::kAffinity;
      } else if (policy == "rr" || policy == "round-robin") {
        serve_cli.policy = serve::Policy::kRoundRobin;
      } else {
        std::fprintf(stderr,
                     "stencilcc: --serve-policy wants affinity or rr\n");
        usage();
        return 2;
      }
    } else if (arg == "--serve-mix" && i + 1 < argc) {
      std::istringstream mix_in(argv[++i]);
      std::string mix_name;
      while (std::getline(mix_in, mix_name, ',')) {
        if (!mix_name.empty()) serve_cli.mix.push_back(mix_name);
      }
    } else if (arg == "--serve-port" && i + 1 < argc) {
      char* end = nullptr;
      serve_cli.port = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || serve_cli.port < 0 ||
          serve_cli.port > 65535) {
        std::fprintf(stderr,
                     "stencilcc: --serve-port needs a port in [0, 65535] "
                     "(0 = ephemeral)\n");
        usage();
        return 2;
      }
    } else if (arg == "--tile" && i + 1 < argc) {
      if (!parse_tile_shape(argv[++i], &serve_tile)) {
        std::fprintf(stderr, "stencilcc: bad --tile shape '%s'\n",
                     argv[i]);
        usage();
        return 2;
      }
    } else if (arg == "--numa" && i + 1 < argc) {
      const std::optional<runtime::NumaMode> mode =
          runtime::numa_mode_from_string(argv[++i]);
      if (!mode) {
        std::fprintf(stderr,
                     "stencilcc: --numa wants auto, off or interleave\n");
        usage();
        return 2;
      }
      numa_mode = *mode;
    } else if (arg == "--pipeline" && i + 1 < argc) {
      pipeline_spec = argv[++i];
    } else if (arg == "--barrier") {
      pipeline_barrier = true;
    } else if (arg == "--frames" && i + 1 < argc) {
      pipeline_frames = std::strtol(argv[++i], nullptr, 10);
      if (pipeline_frames <= 0) {
        std::fprintf(stderr, "stencilcc: --frames needs a frame count\n");
        usage();
        return 2;
      }
    } else if (arg == "--inflight" && i + 1 < argc) {
      char* end = nullptr;
      pipeline_inflight = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || pipeline_inflight < 0) {
        std::fprintf(stderr,
                     "stencilcc: --inflight needs a window size >= 0\n");
        usage();
        return 2;
      }
    } else if (arg == "--timesteps" && i + 1 < argc) {
      temporal_config.timesteps = std::strtol(argv[++i], nullptr, 10);
      temporal_mode = true;
      if (temporal_config.timesteps < 1) {
        std::fprintf(stderr,
                     "stencilcc: --timesteps needs a generation count "
                     ">= 1\n");
        usage();
        return 2;
      }
    } else if (arg == "--block" && i + 1 < argc) {
      temporal_config.block = std::strtol(argv[++i], nullptr, 10);
      temporal_mode = true;
      if (temporal_config.block < 1) {
        std::fprintf(stderr,
                     "stencilcc: --block needs a blocking factor >= 1\n");
        usage();
        return 2;
      }
    } else if (arg == "--boundary" && i + 1 < argc) {
      const std::optional<stencil::BoundaryPolicy> policy =
          stencil::boundary_from_string(argv[++i]);
      if (!policy) {
        std::fprintf(stderr,
                     "stencilcc: unknown boundary policy '%s' (want "
                     "shrink, clamp, wrap or constant)\n",
                     argv[i]);
        usage();
        return 2;
      }
      temporal_config.boundary = *policy;
      temporal_mode = true;
    } else if (arg == "--bc-value" && i + 1 < argc) {
      temporal_config.constant_value = std::strtod(argv[++i], nullptr);
    } else if (arg == "--tolerance" && i + 1 < argc) {
      temporal_tolerance = std::strtod(argv[++i], nullptr);
      if (temporal_tolerance < 0.0) {
        std::fprintf(stderr,
                     "stencilcc: --tolerance needs a residual >= 0\n");
        usage();
        return 2;
      }
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--metrics-port" && i + 1 < argc) {
      char* end = nullptr;
      metrics_port = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || metrics_port < 0 ||
          metrics_port > 65535) {
        std::fprintf(stderr,
                     "stencilcc: --metrics-port needs a port in [0, 65535] "
                     "(0 = ephemeral)\n");
        usage();
        return 2;
      }
    } else if (arg == "--hold" && i + 1 < argc) {
      hold_ms = std::strtol(argv[++i], nullptr, 10);
      if (hold_ms < 0) hold_ms = 0;
    } else if (arg == "--postmortem" && i + 1 < argc) {
      postmortem_dir = argv[++i];
    } else if (arg == "--cancel-frame" && i + 1 < argc) {
      char* end = nullptr;
      cancel_frame = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || cancel_frame < 0) {
        std::fprintf(stderr,
                     "stencilcc: --cancel-frame needs a frame index >= 0\n");
        usage();
        return 2;
      }
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--stats") {
      stats_table = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "stencilcc: unknown option %s\n", arg.c_str());
      usage();
      return 2;
    } else if (input.empty()) {
      input = arg;
    } else {
      usage();
      return 2;
    }
  }
  if (input.empty() && pipeline_spec.empty()) {
    usage();
    return 2;
  }
  if (!pipeline_spec.empty() && !input.empty()) {
    std::fprintf(stderr,
                 "stencilcc: --pipeline reads its stages from the spec "
                 "file; drop the positional kernel\n");
    usage();
    return 2;
  }
  if (temporal_mode && !pipeline_spec.empty()) {
    std::fprintf(stderr,
                 "stencilcc: --timesteps/--block unroll a single kernel "
                 "in time; they do not combine with --pipeline\n");
    usage();
    return 2;
  }
  if (name.empty()) {
    name = basename_no_ext(pipeline_spec.empty() ? input : pipeline_spec);
  }
  if (vcd_cycles > 0) options.sim.trace_cycles = vcd_cycles;
  if (!trace_path.empty()) obs::Tracer::global().set_enabled(true);
  if (!postmortem_dir.empty()) {
    obs::Journal::global().set_postmortem_dir(postmortem_dir);
  }
  std::unique_ptr<obs::MetricsServer> server;
  if (metrics_port >= 0) {
    obs::MetricsServerOptions server_options;
    server_options.port = static_cast<int>(metrics_port);
    server_options.sample_period_ms = 200;
    server = std::make_unique<obs::MetricsServer>(server_options);
    if (!server->ok()) {
      std::fprintf(stderr, "stencilcc: --metrics-port: %s\n",
                   server->error().c_str());
      return 1;
    }
    std::printf("metrics: serving http://127.0.0.1:%d/metrics\n",
                server->port());
    std::fflush(stdout);
  }
  // Shared exit path: export files first, then linger (--hold) so a
  // scraper can still reach --metrics-port while the registry is final.
  const auto finish = [&](int rc) {
    const int obs_rc =
        emit_observability(metrics_path, trace_path, stats_table);
    if (hold_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
    }
    return rc != 0 ? rc : obs_rc;
  };

  if (temporal_mode) {
    try {
      int rc = run_temporal(input, name, options, temporal_config,
                            temporal_tolerance,
                            pipeline_frames > 0 ? pipeline_frames : serve,
                            pipeline_inflight, serve_threads,
                            std::move(serve_tile), numa_mode, quiet);
      return finish(rc);
    } catch (const Error& e) {
      std::fprintf(stderr, "stencilcc: %s\n", e.what());
      return 1;
    }
  }

  if (!pipeline_spec.empty()) {
    try {
      int rc = run_pipeline(pipeline_spec, name, options,
                            pipeline_frames > 0 ? pipeline_frames : serve,
                            pipeline_inflight, serve_threads,
                            std::move(serve_tile), numa_mode,
                            pipeline_barrier, quiet);
      return finish(rc);
    } catch (const Error& e) {
      std::fprintf(stderr, "stencilcc: %s\n", e.what());
      return 1;
    }
  }

  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "stencilcc: cannot read %s\n", input.c_str());
    return 1;
  }
  std::ostringstream source;
  source << in.rdbuf();

  try {
    const core::AcceleratorPackage pkg =
        core::compile_source(source.str(), name, options);
    if (!quiet) std::printf("%s", pkg.summary().c_str());

    const std::string base = out_dir + "/" + name;
    bool ok = write_file(base + "_memory_system.v", pkg.rtl) &&
              write_file(base + "_tb.v", pkg.testbench) &&
              write_file(base + "_kernel.cpp", pkg.kernel_code) &&
              write_file(base + "_accel.hpp", pkg.integration_header) &&
              write_file(base + "_report.json", core::to_json(pkg));
    if (ok && cpp_model) {
      ok = write_file(base + "_model.cpp",
                      codegen::emit_cpp_model(pkg.program, pkg.design));
    }
    if (ok && vcd_cycles > 0 && options.verify_by_simulation) {
      ok = sim::write_vcd(base + ".vcd", pkg.verification, pkg.design,
                          name);
    }
    if (!quiet && ok) {
      std::printf("artifacts written to %s/%s_*.{v,cpp,hpp,json}\n",
                  out_dir.c_str(), name.c_str());
    }
    if (options.verify_by_simulation) {
      // The one-shot verification run's telemetry (FIFO high-water marks,
      // stall cycles, phase latencies) joins the registry next to
      // whatever --serve adds.
      runtime::publish_sim_telemetry(obs::Registry::global(), pkg.design,
                                     pkg.verification);
    }
    int rc = ok ? 0 : 1;
    if (ok && serve > 0) {
      serve_cli.inflight = pipeline_inflight;
      rc = serve_frames(pkg, options, serve, serve_threads,
                        std::move(serve_tile), numa_mode, cancel_frame,
                        serve_cli, quiet);
    }
    return finish(rc);
  } catch (const Error& e) {
    std::fprintf(stderr, "stencilcc: %s\n", e.what());
    return 1;
  }
}
