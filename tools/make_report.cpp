// make_report -- regenerates a live markdown experiment report (the data
// behind EXPERIMENTS.md) by running the analysis pipeline on the spot.
//
//   make_report [output.md]
//
// Unlike the bench binaries (which print the paper's tables verbatim),
// this emits one consolidated machine-written report suitable for diffing
// across versions of the tool.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "arch/builder.hpp"
#include "arch/tradeoff.hpp"
#include "baseline/cyclic.hpp"
#include "baseline/gmp.hpp"
#include "baseline/reschedule.hpp"
#include "core/rtl_verify.hpp"
#include "hls/power.hpp"
#include "hls/report.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "stencil/boundary.hpp"
#include "stencil/gallery.hpp"
#include "temporal/golden.hpp"
#include "temporal/runner.hpp"
#include "util/strings.hpp"

namespace {

using namespace nup;

void emit_partitioning(std::ostream& out) {
  out << "## Partitioning (Table 4)\n\n"
      << "| benchmark | n | banks ours | banks [7] | banks [8] | banks [5] "
         "| size ours | size [8] |\n|---|---|---|---|---|---|---|---|\n";
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    const arch::AcceleratorDesign ours = arch::build_design(p);
    const baseline::UniformPartition gmp = baseline::gmp_partition(p, 0);
    const baseline::UniformPartition cyc = baseline::cyclic_partition(p, 0);
    const baseline::ReschedulePartition res =
        baseline::reschedule_partition(p, 0);
    out << "| " << p.name() << " | " << p.total_references() << " | "
        << ours.systems[0].bank_count() << " | " << res.partition.banks
        << " | " << gmp.banks << " | " << cyc.banks << " | "
        << ours.systems[0].total_buffer_size() << " | " << gmp.total_size
        << " |\n";
  }
  out << "\n";
}

void emit_synthesis(std::ostream& out) {
  const hls::DeviceModel device = hls::virtex7_485t();
  std::vector<hls::SynthesisComparison> rows;
  for (const stencil::StencilProgram& p : stencil::paper_benchmarks()) {
    hls::SynthesisComparison row;
    row.benchmark = p.name();
    row.baseline = hls::estimate_uniform(baseline::gmp_partition(p, 0),
                                         p.total_references(), device);
    row.ours = hls::estimate_streaming(arch::build_design(p), p, device);
    rows.push_back(row);
  }
  const hls::SynthesisAverages avg = hls::average_deltas(rows);
  out << "## Synthesis model (Table 5)\n\n"
      << "Average deltas vs [8]: BRAM " << format_percent(avg.bram)
      << ", slices " << format_percent(avg.slices) << ", DSP "
      << format_percent(avg.dsp) << ", CP "
      << format_percent(avg.clock_period) << ".\n\n```\n"
      << hls::render_synthesis_table(rows) << "```\n\n";
}

void emit_simulation(std::ostream& out) {
  out << "## Simulation (Table 3 / throughput)\n\n"
      << "| benchmark | outputs | cycles | fill | steady II |\n"
      << "|---|---|---|---|---|\n";
  for (const stencil::StencilProgram& p :
       {stencil::denoise_2d(), stencil::sobel_2d(),
        stencil::denoise_3d(48, 64, 64)}) {
    sim::SimOptions options;
    options.record_outputs = false;
    const sim::SimResult r =
        sim::simulate(p, arch::build_design(p), options);
    out << "| " << p.name() << " | " << r.kernel_fires << " | " << r.cycles
        << " | " << r.fill_latency << " | " << format_fixed(r.steady_ii, 4)
        << " |\n";
  }
  out << "\n";
}

void emit_rtl(std::ostream& out) {
  out << "## RTL co-simulation\n\n";
  const stencil::StencilProgram p = stencil::denoise_2d(16, 20);
  const arch::AcceleratorDesign design = arch::build_design(p);
  const core::RtlVerification rtl = core::verify_rtl(p, design);
  sim::SimOptions options;
  options.record_outputs = false;
  const sim::SimResult cxx = sim::simulate(p, design, options);
  out << "DENOISE 16x20: RTL " << (rtl.passed ? "passed" : "FAILED")
      << " with " << rtl.fires << " fires in " << rtl.cycles
      << " cycles; C++ model " << cxx.kernel_fires << " fires in "
      << cxx.cycles << " cycles ("
      << (rtl.cycles == cxx.cycles ? "cycle-exact match" : "MISMATCH")
      << ").\n\n";
}

void emit_tradeoff(std::ostream& out) {
  out << "## Bandwidth/memory trade-off (Fig 15)\n\n"
      << "| accesses/cycle | on-chip elements |\n|---|---|\n";
  const arch::MemorySystem system =
      arch::build_design(stencil::segmentation_3d()).systems[0];
  for (const arch::TradeoffPoint& point : arch::bandwidth_sweep(system)) {
    out << "| " << point.offchip_streams << " | "
        << point.total_buffer_size << " |\n";
  }
  out << "\n";
}

void emit_temporal(std::ostream& out) {
  out << "## Temporal blocking (docs/TEMPORAL.md)\n\n"
      << "HEAT_2D 48x64 swept T=8 generations per frame under the clamp "
         "boundary; every blocking factor's pipeline output is checked "
         "bit-for-bit against the naive T-sweep golden.\n\n"
      << "| B | pass shapes | replicas/pass | passes/frame | bit-identical "
         "|\n|---|---|---|---|---|\n";
  const stencil::StencilProgram step = stencil::heat_2d(48, 64);
  for (const std::int64_t block : {1, 2, 4}) {
    const temporal::TemporalConfig config{
        .timesteps = 8, .block = block,
        .boundary = stencil::BoundaryPolicy::kClamp};
    obs::Registry registry;
    temporal::RunnerOptions options;
    options.pipeline.threads_per_stage = 2;
    options.pipeline.metrics = &registry;
    temporal::TemporalRunner runner(step, config, options);
    const temporal::FrameOutcome outcome = runner.run(42);
    const bool identical =
        outcome.ok() &&
        outcome.outputs == temporal::run_golden_sweeps(step, config, 42);
    out << "| " << block << " | " << runner.executor_count() << " | "
        << runner.schedule().shapes[0].replicas << " | "
        << outcome.passes_completed << " | "
        << (identical ? "yes" : "NO") << " |\n";
  }

  out << "\nConvergence monitor (HEAT_2D 24x32, T=64, tolerance 5e-3): "
         "pass-boundary max-abs residual, early exit per blocking "
         "factor.\n\n"
      << "| B | generations run | generations saved | last residual |\n"
      << "|---|---|---|---|\n";
  const stencil::StencilProgram small = stencil::heat_2d(24, 32);
  for (const std::int64_t block : {1, 2, 4}) {
    obs::Registry registry;
    temporal::RunnerOptions options;
    options.pipeline.threads_per_stage = 2;
    options.pipeline.metrics = &registry;
    options.tolerance = 5e-3;
    temporal::TemporalRunner runner(
        small,
        {.timesteps = 64, .block = block,
         .boundary = stencil::BoundaryPolicy::kClamp},
        options);
    const temporal::FrameOutcome outcome = runner.run(7);
    out << "| " << block << " | " << outcome.generations_completed << " | "
        << 64 - outcome.generations_completed << " | "
        << format_fixed(outcome.last_residual, 6) << " |\n";
  }
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::ostringstream report;
  report << "# nup-stencil live experiment report\n\n"
         << "Generated by tools/make_report; every number below was "
            "computed in this run.\n\n";
  emit_partitioning(report);
  emit_synthesis(report);
  emit_simulation(report);
  emit_rtl(report);
  emit_tradeoff(report);
  emit_temporal(report);

  if (argc > 1) {
    std::ofstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "make_report: cannot write %s\n", argv[1]);
      return 1;
    }
    file << report.str();
    std::printf("wrote %s (%zu bytes)\n", argv[1], report.str().size());
  } else {
    std::printf("%s", report.str().c_str());
  }
  return 0;
}
