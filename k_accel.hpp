// Integration description of the generated accelerator 'k'.
#pragma once

namespace k_accel {

inline constexpr long kIterations = 5828L;
inline constexpr int kMemorySystems = 1;

// array A: 5 ports, 1 off-chip stream(s)
inline constexpr int kPorts_A = 5;
inline constexpr long kFifoDepths_A[] = {95, 1, 1, 95};

}  // namespace k_accel
