// StageGraph IR: construction and validation of stage DAGs -- edge window
// algebra, typed fuse errors surfacing at graph-build time, topological
// scheduling with cycle rejection, and the chain() convenience factory.

#include "pipeline/stage_graph.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stencil/fuse.hpp"
#include "stencil/gallery.hpp"
#include "util/error.hpp"

namespace nup::pipeline {
namespace {

// 5-point smoother on [lo,lo] .. [rows-1-lo, cols-1-lo]: successive lo
// values chain with exact window containment.
stencil::StencilProgram smoother(const std::string& name, std::int64_t lo,
                                 std::int64_t rows, std::int64_t cols) {
  stencil::StencilProgram p(
      name, poly::Domain::box({lo, lo}, {rows - 1 - lo, cols - 1 - lo}));
  p.add_input("A", {{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}});
  return p;
}

stencil::StencilProgram pointwise(const std::string& name, std::int64_t lo,
                                  std::int64_t rows, std::int64_t cols) {
  stencil::StencilProgram p(
      name, poly::Domain::box({lo, lo}, {rows - 1 - lo, cols - 1 - lo}));
  p.add_input("A", {{0, 0}});
  return p;
}

TEST(StageGraph, ChainBuildsEdgesWithWindows) {
  const std::vector<stencil::StencilProgram> stages = {
      smoother("S0", 1, 20, 24), smoother("S1", 2, 20, 24),
      smoother("S2", 3, 20, 24)};
  const StageGraph graph = StageGraph::chain(stages);

  ASSERT_EQ(graph.stage_count(), 3u);
  ASSERT_EQ(graph.edges().size(), 2u);
  for (std::size_t e = 0; e < 2; ++e) {
    const StageEdge& edge = graph.edges()[e];
    EXPECT_EQ(edge.producer, e);
    EXPECT_EQ(edge.consumer, e + 1);
    EXPECT_EQ(edge.input, 0u);
    EXPECT_EQ(edge.window_lo, (poly::IntVec{-1, -1}));
    EXPECT_EQ(edge.window_hi, (poly::IntVec{1, 1}));
  }
  EXPECT_EQ(graph.edges()[0].label, "s0_to_s1");
  EXPECT_EQ(graph.edges()[1].label, "s1_to_s2");

  EXPECT_EQ(graph.schedule(), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(graph.sinks(), (std::vector<std::size_t>{2}));
  EXPECT_EQ(graph.edge_into(1, 0), 0u);
  EXPECT_EQ(graph.edge_into(0, 0), StageGraph::npos);
}

TEST(StageGraph, GalleryFrontendChains) {
  // A gallery kernel heads the chain; the inner stages shrink their
  // domains by the accumulated halo.
  StageGraph graph;
  graph.add_stage(stencil::denoise_2d(20, 24));
  graph.add_stage(smoother("INNER", 2, 20, 24));
  graph.add_edge(0, 1);
  EXPECT_EQ(graph.edges()[0].window_lo, (poly::IntVec{-1, -1}));
  EXPECT_EQ(graph.schedule().size(), 2u);
}

TEST(StageGraph, DomainEscapeIsTypedError) {
  StageGraph graph;
  graph.add_stage(smoother("S0", 1, 20, 24));
  // Same halo as the producer: reference (-1, 0) at row 1 escapes.
  graph.add_stage(smoother("S1", 1, 20, 24));
  EXPECT_THROW(graph.add_edge(0, 1), stencil::FuseDomainError);
  // Still the legacy base type, so pre-existing handlers keep working.
  EXPECT_THROW(graph.add_edge(0, 1), NotStencilError);
  EXPECT_TRUE(graph.edges().empty());
}

TEST(StageGraph, DimensionMismatchIsTypedError) {
  StageGraph graph;
  graph.add_stage(smoother("S0", 1, 20, 24));
  stencil::StencilProgram p1("S1", poly::Domain::box({2}, {17}));
  p1.add_input("A", {{0}});
  graph.add_stage(std::move(p1));
  EXPECT_THROW(graph.add_edge(0, 1), stencil::FuseDimensionError);
}

TEST(StageGraph, RejectsBadEdges) {
  StageGraph graph;
  graph.add_stage(smoother("S0", 1, 20, 24));
  graph.add_stage(smoother("S1", 2, 20, 24));
  EXPECT_THROW(graph.add_edge(0, 7), Error);   // id out of range
  EXPECT_THROW(graph.add_edge(0, 0), Error);   // self edge
  EXPECT_THROW(graph.add_edge(0, 1, 3), Error);  // no such input
  graph.add_edge(0, 1);
  EXPECT_THROW(graph.add_edge(0, 1), Error);   // input already fed
}

TEST(StageGraph, ChainRequiresSingleInputStages) {
  stencil::StencilProgram two("TWO", poly::Domain::box({1, 1}, {8, 8}));
  two.add_input("A", {{0, 0}});
  two.add_input("B", {{0, 0}});
  const std::vector<stencil::StencilProgram> stages = {
      smoother("S0", 1, 20, 24), two};
  EXPECT_THROW(StageGraph::chain(stages), stencil::FuseArityError);
  EXPECT_THROW(StageGraph::chain({}), Error);
}

TEST(StageGraph, DiamondSchedulesTopologically) {
  // s0 feeds s1 and s2; s3 reads both (a two-input join).
  StageGraph graph;
  graph.add_stage(pointwise("SRC", 1, 12, 12));
  graph.add_stage(pointwise("L", 1, 12, 12));
  graph.add_stage(pointwise("R", 1, 12, 12));
  stencil::StencilProgram join("JOIN", poly::Domain::box({1, 1}, {10, 10}));
  join.add_input("A", {{0, 0}});
  join.add_input("B", {{0, 0}});
  graph.add_stage(std::move(join));
  graph.add_edge(0, 1);
  graph.add_edge(0, 2);
  graph.add_edge(1, 3, 0);
  graph.add_edge(2, 3, 1);

  const std::vector<std::size_t> order = graph.schedule();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t k = 0; k < 4; ++k) pos[order[k]] = k;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
  EXPECT_EQ(graph.sinks(), (std::vector<std::size_t>{3}));
  EXPECT_EQ(graph.edge_into(3, 1), 3u);
}

TEST(StageGraph, CycleIsRejectedByName) {
  StageGraph graph;
  graph.add_stage(pointwise("A", 1, 10, 10));
  graph.add_stage(pointwise("B", 1, 10, 10));
  graph.add_edge(0, 1);
  graph.add_edge(1, 0);  // window containment holds; the cycle does not
  try {
    graph.schedule();
    FAIL() << "cycle not detected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos);
  }
}

}  // namespace
}  // namespace nup::pipeline
